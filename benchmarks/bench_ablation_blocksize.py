"""Ablation: strand-block size vs. parallel scaling (paper §6.4).

"With some experimentation, we found that the biggest limitation to
parallelism was the lock that controls access to the work-list.  With
smaller blocks of strands ... we saw a significant reduction in parallel
scaling."

We run one benchmark sequentially at several block sizes, collect the
block traces, and simulate 8-worker scaling with a lock cost that
reflects Python-level work-list overhead.  Expected shape: tiny blocks
lose to lock traffic *and* per-block dispatch overhead; huge blocks lose
to load imbalance (too few blocks for 8 workers); the paper's 4096 sits
in the sweet band for its workloads.
"""

from __future__ import annotations

from conftest import SCALE, record

from repro.obs import Tracer
from repro.programs import lic2d
from repro.runtime.simsched import speedup_curve

BLOCK_SIZES = [32, 128, 512, 2048, 8192]

#: a lock cost reflecting our runtime's per-grab overhead (Python-level
#: list pop + closure dispatch, ~20 µs measured) rather than a raw mutex.
LOCK_OVERHEAD = 2e-5


def test_blocksize_ablation(benchmark):
    res = max(64, int(round(128 * SCALE)))
    speedups = {}
    seq_times = {}
    for bs in BLOCK_SIZES:
        prog = lic2d.make_program(precision="single", scale=res / 250.0,
                                  field_size=64)
        tracer = Tracer()
        prog.run(block_size=bs, tracer=tracer)
        trace = tracer.block_step_times()
        speedups[bs] = speedup_curve(trace, [8], LOCK_OVERHEAD)[8]
        seq_times[bs] = sum(sum(step) for step in trace)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    n = res * res
    print(f"\n\n§6.4 ablation — block size vs 8-worker scaling ({n} strands)")
    print(f"{'block size':>10}{'blocks':>8}{'seq (s)':>9}{'8P speedup':>12}")
    for bs in BLOCK_SIZES:
        print(f"{bs:>10}{-(-n // bs):>8}{seq_times[bs]:>9.3f}{speedups[bs]:>12.2f}")

    best = max(speedups.values())
    # huge blocks starve the workers (load imbalance)
    assert speedups[8192] < 0.7 * best, "few-block regime must scale worse"
    # the best configuration is an intermediate block size
    best_bs = max(speedups, key=speedups.get)
    assert 32 <= best_bs <= 2048
    record(
        "ablation_blocksize",
        {"block_sizes": BLOCK_SIZES, "speedups_8p": speedups,
         "seq_times": seq_times, "strands": n},
    )
