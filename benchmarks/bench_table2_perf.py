"""Table 2: wall-clock performance, baseline vs Diderot, seq + parallel.

Methodology (DESIGN.md substitutions):

* Workloads are scaled-down versions of the paper's grids; each row
  prints the grid used.
* The "baseline" column (the paper's Teem column) is measured by running
  the per-point gage implementation on a calibration subset and scaling
  per-strand cost to the benchmark grid — per-point probing cost is linear
  in probe count, and running the full grid through the Python baseline
  would take tens of minutes.
* 1P/2P/8P come from the simulated multicore scheduler replaying the
  *measured* per-block costs of the sequential run (the container has one
  core; see repro.runtime.simsched).

The reproduction targets are the paper's *shapes*: Diderot beats the
baseline API at both precisions, double precision costs more than single,
and parallel scaling is near-linear in the simulated scheduler.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import SCALE, measure, record

from repro.baselines import illust_vr as b_ivr
from repro.baselines import lic2d as b_lic
from repro.baselines import ridge3d as b_ridge
from repro.baselines import vr_lite as b_vr
from repro.data import hand_phantom, lung_phantom, noise_texture, vector_field_2d
from repro.obs import Tracer
from repro.programs import illust_vr as p_ivr
from repro.programs import lic2d as p_lic
from repro.programs import ridge3d as p_ridge
from repro.programs import vr_lite as p_vr
from repro.programs.illust_vr import curvature_colormap
from repro.runtime.simsched import simulate_run

#: paper Table 2 (seconds): teem, single (seq,1P,2P,8P), double (seq,1P,2P,8P)
PAPER = {
    "vr-lite": (26.77, (14.92, 14.95, 7.59, 2.62), (16.52, 16.44, 8.35, 2.92)),
    "illust-vr": (132.85, (54.17, 54.40, 27.55, 8.00), (80.63, 82.16, 41.18, 11.86)),
    "lic2d": (3.22, (2.02, 2.03, 1.02, 0.30), (2.47, 2.47, 1.24, 0.37)),
    "ridge3d": (11.18, (8.40, 8.36, 4.22, 1.14), (9.34, 10.27, 5.16, 1.39)),
}

_ROWS: dict[str, dict] = {}


def _res(base: int) -> int:
    return max(4, int(round(base * SCALE)))


def _case(name: str):
    """Build (workload descr, strands, baseline_calibration, dsl_run(prec))."""
    if name == "vr-lite":
        img = hand_phantom(48)
        res = _res(48)
        calib = _res(8)

        def baseline():
            b_vr.run(img, res_u=calib, res_v=calib,
                     c_vec=(30.0 / calib, 0, 0), r_vec=(0, 30.0 / calib, 0))

        def dsl(precision):
            prog = p_vr.make_program(precision=precision, scale=res / 100.0,
                                     volume_size=48)
            return prog

        return f"{res}x{res} rays", res * res, calib * calib, baseline, dsl
    if name == "illust-vr":
        img = hand_phantom(48)
        xfer = curvature_colormap()
        res = _res(32)
        calib = _res(6)

        def baseline():
            b_ivr.run(img, xfer, res_u=calib, res_v=calib,
                      c_vec=(30.0 / calib, 0, 0), r_vec=(0, 30.0 / calib, 0))

        def dsl(precision):
            return p_ivr.make_program(precision=precision, scale=res / 100.0,
                                      volume_size=48)

        return f"{res}x{res} rays", res * res, calib * calib, baseline, dsl
    if name == "lic2d":
        vf = vector_field_2d(64)
        nz = noise_texture(64)
        res = _res(100)
        calib = _res(12)

        def baseline():
            b_lic.run(vf, nz, res_u=calib, res_v=calib)

        def dsl(precision):
            return p_lic.make_program(precision=precision, scale=res / 250.0,
                                      field_size=64)

        return f"{res}x{res} seeds", res * res, calib * calib, baseline, dsl
    if name == "ridge3d":
        img = lung_phantom(48)
        res = _res(26)
        calib = _res(5)

        def baseline():
            b_ridge.run(img, grid_res=calib)

        def dsl(precision):
            prog = p_ridge.make_program(precision=precision, volume_size=48)
            prog.set_input("gridRes", res)
            return prog

        return f"{res}^3 particles", res**3, calib**3, baseline, dsl
    raise KeyError(name)


@pytest.mark.parametrize("name", list(PAPER))
def test_table2_row(benchmark, name):
    descr, n_strands, n_calib, baseline, dsl = _case(name)

    # baseline: calibrate per-strand cost and scale to the benchmark grid
    t_calib = measure(baseline)
    t_base = t_calib * (n_strands / n_calib)

    times = {}
    trace = None
    for precision in ("single", "double"):
        prog = dsl(precision)
        block = max(64, n_strands // 128)
        import time as _t

        tracer = Tracer()
        t1 = _t.perf_counter()
        prog.run(block_size=block, tracer=tracer)
        times[precision] = _t.perf_counter() - t1
        if precision == "single":
            trace = tracer.block_step_times()
    # satisfy pytest-benchmark's fixture-use requirement without re-running
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    sims = {w: simulate_run(trace, w).total_time for w in (1, 2, 8)}
    seq_s = times["single"]

    paper_teem, paper_single, paper_double = PAPER[name]
    print(f"\n\nTable 2 — {name} ({descr}; paper grid larger, see Table 1)")
    print(f"{'':<12}{'baseline':>10}{'seq-sgl':>9}{'1P':>8}{'2P':>8}{'8P':>8}{'seq-dbl':>9}")
    print(
        f"{'measured':<12}{t_base:>10.2f}{seq_s:>9.2f}"
        f"{sims[1]:>8.2f}{sims[2]:>8.2f}{sims[8]:>8.2f}{times['double']:>9.2f}"
    )
    print(
        f"{'paper':<12}{paper_teem:>10.2f}{paper_single[0]:>9.2f}"
        f"{paper_single[1]:>8.2f}{paper_single[2]:>8.2f}{paper_single[3]:>8.2f}"
        f"{paper_double[0]:>9.2f}"
    )
    print(
        f"{'shape':<12}  baseline/diderot: measured {t_base / seq_s:.1f}x, "
        f"paper {paper_teem / paper_single[0]:.1f}x; "
        f"8P speedup: measured {sims[1] / sims[8]:.1f}x, "
        f"paper {paper_single[1] / paper_single[3]:.1f}x"
    )

    # --- the paper's qualitative claims ---
    assert t_base > seq_s, "compiled Diderot must beat per-point baseline"
    assert times["double"] >= 0.8 * seq_s, "double should not be faster"
    assert sims[1] / sims[8] > 2.0, "8 workers must give real scaling"
    assert sims[1] / sims[2] > 1.5, "2 workers near-2x"

    _ROWS[name] = {
        "workload": descr,
        "strands": n_strands,
        "baseline_est": t_base,
        "baseline_calib_strands": n_calib,
        "seq_single": seq_s,
        "seq_double": times["double"],
        "sim_1p": sims[1],
        "sim_2p": sims[2],
        "sim_8p": sims[8],
        "paper": {
            "teem": paper_teem,
            "single": paper_single,
            "double": paper_double,
        },
    }
    record("table2", _ROWS)
