"""Serving layer: compile-once economics and coalesced-batch throughput.

Two headline measurements for the serving layer (DESIGN.md "Serving
layer"):

1. **Cold vs warm compile** — the persistent compile cache keys on the
   normalized HighIR, so the second ``compile_program`` of the same
   program skips contraction, value numbering, lowering, and codegen and
   just unpickles artifacts.  We compile ``illust_vr`` (the heaviest
   compile in the repo: F, ∇F and ∇⊗∇F probes) cold and warm and report
   the speedup plus the per-pass time a hit avoids.

2. **Coalesced vs singleton probe serving** — the front door coalesces
   concurrent probe requests into one strand batch.  We compare N
   singleton ``run_batch`` calls against one N-point batch through a
   warm :class:`~repro.serve.registry.ProgramEntry` and report
   points/sec both ways; the coalesced path amortizes per-run setup
   (input resolution, scheduler dispatch) over the whole batch.

Results go to ``benchmarks/results/serve.json`` and the repo root
``BENCH_serve.json``, plus a ``history.jsonl`` row for the regression
tracker.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

import numpy as np
from conftest import SCALE, append_history, measure, record

from repro.core.driver import compile_program
from repro.obs import Tracer
from repro.programs import illust_vr
from repro.serve.registry import ProbeSpec, ProgramRegistry

EXAMPLE = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                       "examples", "programs", "probe_serve.diderot")

#: singleton requests folded into one coalesced batch
BATCH = max(16, int(round(64 * SCALE)))
REPEATS = 3

#: backend pass spans a cache hit must not re-run
BACKEND_PASSES = ("contraction", "value-numbering", "midir", "probe-fuse",
                  "lowir", "codegen")


def _pass_seconds(tracer: Tracer) -> dict:
    out = {}
    for ev in tracer.spans("pass"):
        out[ev.name] = out.get(ev.name, 0.0) + ev.dur
    return out


def test_compile_cache_cold_vs_warm(benchmark):
    rows = {}
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_COMPILE_CACHE_DIR"] = tmp
        try:
            tr_cold = Tracer()
            t0 = time.perf_counter()
            compile_program(illust_vr.SOURCE, precision="single",
                            tracer=tr_cold, cache=True)
            cold = time.perf_counter() - t0

            warm = measure(
                lambda: compile_program(illust_vr.SOURCE, precision="single",
                                        cache=True),
                repeats=REPEATS,
            )
            tr_warm = Tracer()
            compile_program(illust_vr.SOURCE, precision="single",
                            tracer=tr_warm, cache=True)
        finally:
            del os.environ["REPRO_COMPILE_CACHE_DIR"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    cold_passes = _pass_seconds(tr_cold)
    warm_passes = _pass_seconds(tr_warm)
    skipped = sum(cold_passes.get(p, 0.0) for p in BACKEND_PASSES)
    speedup = cold / warm if warm > 0 else float("inf")

    print(f"\n\nCompile cache — illust_vr, best of {REPEATS}")
    print(f"  cold compile: {cold * 1e3:8.1f}ms "
          f"(backend passes {skipped * 1e3:.1f}ms)")
    print(f"  warm compile: {warm * 1e3:8.1f}ms   speedup {speedup:.1f}x")

    # contract, not a timing: a hit must skip every backend pass
    for p in BACKEND_PASSES:
        assert p not in warm_passes, f"cache hit re-ran {p}"
    assert warm < cold

    rows["compile"] = {
        "cold_s": cold, "warm_s": warm, "speedup": speedup,
        "backend_pass_s": skipped,
        "cold_passes": cold_passes,
    }
    _finish(rows)


def _finish(rows):
    """Accumulate both tests' rows into one payload (file-level merge)."""
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "results", "serve.json")
    merged = {}
    if os.path.exists(path):
        try:
            with open(path) as fp:
                merged = json.load(fp)
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(rows)
    merged["scale"] = SCALE
    record("serve", merged)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "BENCH_serve.json"), "w") as fp:
        json.dump(merged, fp, indent=2, default=float)


def test_batched_vs_singleton_throughput(benchmark):
    rng = np.random.default_rng(7)
    points = np.asarray(rng.random((BATCH, 3)) * 30.0)
    registry = ProgramRegistry()
    try:
        entry = registry.register("bench", path=EXAMPLE,
                                  probe=ProbeSpec("pts", "N"), cache=False)
        entry.run_batch(points[:2])  # warm the entry (image load, codegen)

        def singletons():
            for p in points:
                entry.run_batch(p[None, :])

        def coalesced():
            entry.run_batch(points)

        t_single = measure(singletons, repeats=REPEATS)
        t_batch = measure(coalesced, repeats=REPEATS)
    finally:
        registry.clear()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    gain = t_single / t_batch if t_batch > 0 else float("inf")
    print(f"\n\nBatch coalescing — {BATCH} probe points, best of {REPEATS}")
    print(f"  {BATCH} singleton runs: {t_single * 1e3:8.1f}ms "
          f"({BATCH / t_single:8.0f} pts/s)")
    print(f"  1 coalesced batch:  {t_batch * 1e3:8.1f}ms "
          f"({BATCH / t_batch:8.0f} pts/s)")
    print(f"  coalescing gain: {gain:.1f}x")

    # per-run fixed costs dominate singletons; coalescing must win clearly
    assert gain > 2.0, f"coalesced batch only {gain:.2f}x faster"

    _finish({"serve_batch": {
        "batch": BATCH,
        "singleton_s": t_single, "coalesced_s": t_batch,
        "gain": gain,
        "singleton_pts_per_s": BATCH / t_single,
        "coalesced_pts_per_s": BATCH / t_batch,
    }})
    append_history("serve", {
        "coalescing_gain": gain,
        "coalesced_pts_per_s": BATCH / t_batch,
    })
