"""Figure 6: line integral convolution on synthetic data.

The defining property of LIC (paper §4.2): intensity is *correlated along
streamlines and uncorrelated across them*.  For our vortex field the
streamlines are (distorted) circles around the grid center, so we check
that correlation along the tangential direction beats correlation along
the radial direction — a quantitative stand-in for "the image shows
flow-aligned streaks".  The rendered image is saved for inspection.
"""

from __future__ import annotations

import os

import numpy as np
from conftest import RESULTS_DIR, SCALE, record

from repro.data.ppm import save_pgm
from repro.programs import lic2d


def _directional_autocorr(img: np.ndarray) -> tuple[float, float]:
    """(tangential, radial) lag-1 correlation, averaged over a ring.

    The raw LIC image is dominated by the smooth |V| modulation, so we
    high-pass it first (subtract a local box mean); what remains is the
    smeared noise whose anisotropy is the streak structure.
    """
    from scipy.ndimage import uniform_filter

    img = img - uniform_filter(img, size=7)
    h, w = img.shape
    cy = cx = (h - 1) / 2.0
    ys, xs = np.mgrid[0:h, 0:w]
    r = np.sqrt((ys - cy) ** 2 + (xs - cx) ** 2)
    ring = (r > h * 0.22) & (r < h * 0.38)
    # tangential neighbor ≈ rotate by one pixel arc; approximate with the
    # perpendicular-to-radius pixel step
    ny = ys - cy
    nx = xs - cx
    inv = 1.0 / np.maximum(r, 1e-6)
    ty = np.clip((ys + np.rint(-nx * inv)).astype(int), 0, h - 1)
    tx = np.clip((xs + np.rint(ny * inv)).astype(int), 0, w - 1)
    ry_ = np.clip((ys + np.rint(ny * inv)).astype(int), 0, h - 1)
    rx_ = np.clip((xs + np.rint(nx * inv)).astype(int), 0, w - 1)

    def corr(sel_y, sel_x):
        a = img[ring]
        b = img[sel_y[ring], sel_x[ring]]
        a = a - a.mean()
        b = b - b.mean()
        return float((a * b).mean() / (a.std() * b.std() + 1e-12))

    return corr(ty, tx), corr(ry_, rx_)


def test_figure06_lic(benchmark):
    res = max(64, int(round(200 * SCALE)))
    prog = lic2d.make_program(scale=res / 250.0, field_size=64)
    prog.set_input("stepNum", 25)
    result = benchmark.pedantic(prog.run, rounds=1, iterations=1)
    img = result.outputs["sum"]

    os.makedirs(RESULTS_DIR, exist_ok=True)
    save_pgm(os.path.join(RESULTS_DIR, "figure06_lic.pgm"), img)

    tang, rad = _directional_autocorr(img)
    print(
        f"\nFigure 6 — {res}x{res} LIC: along-streamline correlation "
        f"{tang:.3f} vs across {rad:.3f}"
    )
    assert tang > rad + 0.15, "LIC must produce flow-aligned streaks"
    # velocity modulation darkens the stagnation center (Figure 5 line 16)
    c = img.shape[0] // 2
    assert img[c, c] < img.mean()
    record("figure06", {"res": res, "tangential": tang, "radial": rad})
