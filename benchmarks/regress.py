"""The CI perf gate: compare fresh benchmark results to the baseline.

::

    python benchmarks/regress.py [--baseline benchmarks/baseline.json]
                                 [--results benchmarks/results] [--strict]

Reads the headline numbers the benchmarks just wrote under
``results/`` and checks them against the committed
``benchmarks/baseline.json`` bounds:

* ``probe.min_headline_speedup`` — the probe-fusion 3-D Hessian
  headline must not decay below the floor;
* ``metrics.max_overhead`` — the always-on metrics registry must stay
  within its wall-clock budget (``bench_metrics.py``);
* ``scaling.min_process_speedup_4w`` — the process scheduler's 4-worker
  speedup on the measured programs, **gated on the recorded
  ``cpu_count``** so starved runners skip rather than fail;
* ``native.min_speedup`` — the C backend's single-core speedup over
  NumPy on the 3-D Hessian probe (``bench_native.py``) must not decay
  below the floor;
* ``native.min_batch_speedup`` — the batched SIMD kernel's in-kernel
  speedup over the scalar (batch-width-1) C kernel.  Gated on the
  recorded ``scale`` (smoke runs are setup-dominated), and the
  thread-scaling leg must have actually run whenever the recorded
  ``cpu_count`` allows it — a null ``thread2_speedup`` on a ≥2-core
  machine is a lost measurement, not a skip;
* ``incremental.min_speedup`` — the dirty-region update path
  (``bench_incremental.py``) must beat a full re-run by the floor at
  full scale, and its ``bit_identical`` flag gates at every scale.

Ratio/bound checks (not absolute seconds) keep the gate portable across
machines; cross-commit wall-clock drift is tracked separately in
``results/history.jsonl`` and compared with ``python -m repro.obs
diff``'s noise-tolerant thresholds.  Missing results files are skipped
with a notice (``--strict`` turns them into failures), so the gate can
run after any benchmark subset.  Exit status: 0 clean, 1 on any
regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "baseline.json")
DEFAULT_RESULTS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "results")


def _load(results_dir: str, name: str, strict: bool, failures: list):
    path = os.path.join(results_dir, f"{name}.json")
    if not os.path.exists(path):
        msg = f"{name}: no results file ({path})"
        if strict:
            failures.append(msg)
        else:
            print(f"skip  {msg}")
        return None
    with open(path) as fp:
        return json.load(fp)


def check_probe(doc, bounds, failures) -> None:
    floor = bounds.get("min_headline_speedup")
    got = doc.get("headline_speedup")
    if floor is None or got is None:
        return
    status = "ok  " if got >= floor else "FAIL"
    print(f"{status}  probe: headline speedup {got:.2f}x (floor {floor}x)")
    if got < floor:
        failures.append(
            f"probe: 3-D Hessian fusion speedup {got:.2f}x < floor {floor}x")


def check_metrics(doc, bounds, failures) -> None:
    cap = bounds.get("max_overhead")
    got = doc.get("overhead")
    if cap is None or got is None:
        return
    status = "ok  " if got <= cap else "FAIL"
    print(f"{status}  metrics: always-on overhead {got:+.1%} (cap {cap:.0%})")
    if got > cap:
        failures.append(
            f"metrics: always-on overhead {got:+.1%} > cap {cap:.0%}")


def check_scaling(doc, bounds, failures) -> None:
    floor = bounds.get("min_process_speedup_4w")
    measured = doc.get("measured")
    if floor is None or not measured:
        return
    cores = measured.get("cpu_count", 0)
    if cores < 4:
        print(f"skip  scaling: only {cores} core(s) recorded — speedup "
              "floor needs 4")
        return
    for name, entry in measured.get("programs", {}).items():
        rows = entry.get("seconds", {})
        t_seq = rows.get("seq", {}).get("1")
        t_p4 = rows.get("process", {}).get("4")
        if not t_seq or not t_p4:
            continue
        got = t_seq / t_p4
        status = "ok  " if got >= floor else "FAIL"
        print(f"{status}  scaling: {name} process@4 speedup {got:.2f}x "
              f"(floor {floor}x, {cores} cores)")
        if got < floor:
            failures.append(
                f"scaling: {name} process@4 speedup {got:.2f}x < floor "
                f"{floor}x on a {cores}-core machine")


def check_native(doc, bounds, failures) -> None:
    floor = bounds.get("min_speedup")
    got = doc.get("native_speedup")
    if floor is None or got is None:
        return
    status = "ok  " if got >= floor else "FAIL"
    print(f"{status}  native: C-vs-NumPy single-core speedup {got:.2f}x "
          f"(floor {floor}x)")
    if got < floor:
        failures.append(
            f"native: C backend speedup {got:.2f}x < floor {floor}x")
    floor_b = bounds.get("min_batch_speedup")
    got_b = doc.get("batch_kernel_speedup")
    if floor_b is not None and got_b is not None:
        if doc.get("scale", 1.0) >= 0.9:
            status = "ok  " if got_b >= floor_b else "FAIL"
            print(f"{status}  native: batched-vs-scalar kernel speedup "
                  f"{got_b:.2f}x (floor {floor_b}x)")
            if got_b < floor_b:
                failures.append(
                    f"native: batched SIMD kernel speedup {got_b:.2f}x < "
                    f"floor {floor_b}x over the scalar C kernel")
        else:
            print(f"note  native: batched-vs-scalar kernel speedup "
                  f"{got_b:.2f}x at smoke scale {doc.get('scale')} — "
                  f"floor {floor_b}x applies at full scale only")
    t2 = doc.get("thread2_speedup")
    cores = doc.get("cpu_count")
    if t2 is None and cores is not None and cores >= 2:
        print("FAIL  native: thread-scaling leg missing despite "
              f"{cores} cores")
        failures.append(
            f"native: thread2_speedup is null but the run recorded "
            f"{cores} cores — the thread leg must run when cpu_count >= 2")
    if t2 is not None:
        status = "ok  " if t2 > 1.0 else "FAIL"
        print(f"{status}  native: thread@2 over seq (C backend) {t2:.2f}x")
        if t2 <= 1.0:
            failures.append(
                f"native: thread scheduler at 2 workers does not beat "
                f"sequential native execution ({t2:.2f}x)")


def check_incremental(doc, bounds, failures) -> None:
    # bit-identity gates at every scale: a fast wrong answer is a bug
    ident = doc.get("bit_identical")
    if ident is not None:
        status = "ok  " if ident else "FAIL"
        print(f"{status}  incremental: update bit-identical to cold run "
              f"({ident})")
        if not ident:
            failures.append(
                "incremental: dirty-region update diverged from the cold "
                "re-run oracle")
    floor = bounds.get("min_speedup")
    got = doc.get("speedup")
    if floor is None or got is None:
        return
    if doc.get("scale", 1.0) >= 0.9:
        status = "ok  " if got >= floor else "FAIL"
        print(f"{status}  incremental: 5%-dirty update speedup {got:.2f}x "
              f"(floor {floor}x)")
        if got < floor:
            failures.append(
                f"incremental: dirty-region update speedup {got:.2f}x < "
                f"floor {floor}x over a full re-run")
    else:
        print(f"note  incremental: update speedup {got:.2f}x at smoke "
              f"scale {doc.get('scale')} — floor {floor}x applies at full "
              f"scale only")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="benchmark perf-regression gate")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--results", default=DEFAULT_RESULTS)
    ap.add_argument("--strict", action="store_true",
                    help="missing results files fail instead of skipping")
    args = ap.parse_args(argv)

    with open(args.baseline) as fp:
        baseline = json.load(fp)

    failures: list[str] = []
    doc = _load(args.results, "probe", args.strict, failures)
    if doc is not None:
        check_probe(doc, baseline.get("probe", {}), failures)
    doc = _load(args.results, "metrics_overhead", args.strict, failures)
    if doc is not None:
        check_metrics(doc, baseline.get("metrics", {}), failures)
    doc = _load(args.results, "figure12", args.strict, failures)
    if doc is not None:
        check_scaling(doc, baseline.get("scaling", {}), failures)
    doc = _load(args.results, "native", args.strict, failures)
    if doc is not None:
        check_native(doc, baseline.get("native", {}), failures)
    doc = _load(args.results, "incremental", args.strict, failures)
    if doc is not None:
        check_incremental(doc, baseline.get("incremental", {}), failures)

    if failures:
        print(f"\n{len(failures)} perf regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
