"""Probe fusion: shared partial-contraction trees vs per-combo einsums.

The unfused pipeline evaluates each derivative combo of a probe as one
full separable contraction (``rt.conv_contract`` — an einsum over every
axis at once, §5.3's reconstruction sum).  The probe-fusion pass
(``repro.core.xform.probe_fuse``) reassociates co-located combos into a
shared tree that contracts one axis at a time and reuses the partial
sums (``rt.probe_parts``), so an order-2 3-D probe pays for six axis
contractions' worth of unique prefixes instead of ten full products.

This benchmark compiles the same probe programs both ways across
dimension × derivative order × kernel, measures steady-state run time,
and records the headline 3-D Hessian row (dim=3, deriv=2, bspln3) where
the target is a ≥2x speedup.  Per-phase numbers come from ``repro.obs``
spans (compiler passes, runtime super-steps).  A fused/unfused A/B of
the Figure-4 curvature renderer rides along.  Results go to
``benchmarks/results/probe.json`` and the repo root ``BENCH_probe.json``.
"""

from __future__ import annotations

import json
import math
import os
import time

import numpy as np
from conftest import SCALE, append_history, measure, record

from repro.core.driver import OptOptions, compile_program
from repro.image import Image
from repro.kernels import KERNELS
from repro.obs import Tracer
from repro.programs import illust_vr

N_STRANDS = max(256, int(round(4096 * SCALE)))
STEPS = 3
REPEATS = 2

#: every (dim, deriv, kernel) the language supports at that derivative level
COMBOS = [
    (dim, deriv, kname)
    for dim in (1, 2, 3)
    for kname in ("tent", "ctmr", "bspln3")
    for deriv in range(KERNELS[kname].continuity + 1)
    if deriv <= 2
]

HEADLINE = (3, 2, "bspln3")


def smooth_image(dim: int, n: int = 24) -> Image:
    axes = np.meshgrid(*[np.linspace(0.0, 3.0, n)] * dim, indexing="ij")
    data = np.sin(1.3 * axes[0])
    for a, x in enumerate(axes[1:], start=2):
        data = data + np.cos(0.7 * a * x) * (1.0 + 0.1 * axes[0])
    return Image(data, dim=dim)


def probe_source(dim: int, deriv: int, kname: str) -> str:
    """A strand per position probing F (and ∇F, ∇⊗∇F) every super-step."""
    k = KERNELS[kname].continuity
    span = N_STRANDS * 0.35
    if dim == 1:
        pos = f"real p = 2.5 + real(i) * {18.0 / span:.6f};"
    else:
        comps = ", ".join(
            f"2.5 + real(i) * {18.0 / span:.6f} + {0.2 * a:.1f}"
            for a in range(dim)
        )
        pos = f"vec{dim} p = [{comps}];"
    outs, assigns = ["output real o0 = 0.0;"], ["o0 = F(p);"]
    if deriv >= 1:
        if dim == 1:
            outs.append("output real o1 = 0.0;")
            assigns.append("o1 = (∇F(p))[0];")
        else:
            zero = ", ".join(["0.0"] * dim)
            outs.append(f"output vec{dim} o1 = [{zero}];")
            assigns.append("o1 = ∇F(p);")
    if deriv >= 2:
        if dim == 1:
            outs.append("output real o2 = 0.0;")
            assigns.append("o2 = (∇⊗∇F(p))[0][0];")
        else:
            outs.append(f"output tensor[{dim},{dim}] o2 = identity[{dim}];")
            assigns.append("o2 = ∇⊗∇F(p);")
    nl = "\n                "
    return f"""
        image({dim})[] img = load("p.nrrd");
        field#{k}({dim})[] F = img ⊛ {kname};
        strand S (int i) {{
            {nl.join(outs)}
            update {{
                {pos}
                {nl.join(assigns)}
            }}
        }}
        initially [ S(i) | i in 0 .. {N_STRANDS - 1} ];
    """


def _compiled(src: str, image: Image, fuse: bool, tracer=None):
    prog = compile_program(src, optimize=OptOptions(probe_fusion=fuse),
                           tracer=tracer)
    prog.bind_image("img", image)
    return prog


def _time_run(prog, tracer=None) -> float:
    prog.run(max_steps=1)  # warm scratch pools / einsum path caches
    return measure(lambda: prog.run(max_steps=STEPS, tracer=tracer),
                   repeats=REPEATS)


def _phase_totals(tracer: Tracer) -> dict:
    """Total seconds per compiler pass and runtime phase from obs spans."""
    phases: dict[str, float] = {}
    for ev in tracer.spans("pass"):
        phases[f"pass:{ev.name}"] = phases.get(f"pass:{ev.name}", 0.0) + ev.dur
    for ev in tracer.spans("superstep"):
        phases["run:supersteps"] = phases.get("run:supersteps", 0.0) + ev.dur
    for ev in tracer.spans("run"):
        phases[f"run:{ev.name}"] = phases.get(f"run:{ev.name}", 0.0) + ev.dur
    return phases


def test_probe_fusion_speedup(benchmark):
    rows = []
    phases = {}
    for dim, deriv, kname in COMBOS:
        image = smooth_image(dim)
        src = probe_source(dim, deriv, kname)
        times = {}
        for fuse in (True, False):
            tracer = Tracer() if (dim, deriv, kname) == HEADLINE else None
            prog = _compiled(src, image, fuse, tracer=tracer)
            times[fuse] = _time_run(prog, tracer=tracer)
            if tracer is not None:
                phases["fused" if fuse else "unfused"] = _phase_totals(tracer)
        rows.append({
            "dim": dim, "deriv": deriv, "kernel": kname,
            "fused_s": times[True], "unfused_s": times[False],
            "speedup": times[False] / times[True],
        })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print(f"\n\nProbe fusion — {N_STRANDS} strands × {STEPS} super-steps, "
          f"best of {REPEATS}")
    print(f"{'dim':>3} {'deriv':>5} {'kernel':>7} {'unfused':>9} "
          f"{'fused':>9} {'speedup':>8}")
    for r in rows:
        print(f"{r['dim']:>3} {r['deriv']:>5} {r['kernel']:>7} "
              f"{r['unfused_s'] * 1e3:>8.2f}ms {r['fused_s'] * 1e3:>8.2f}ms "
              f"{r['speedup']:>7.2f}x")

    head = next(r for r in rows if (r["dim"], r["deriv"], r["kernel"])
                == HEADLINE)
    hess = [r for r in rows if r["deriv"] == 2 and r["dim"] >= 2]
    geomean = math.exp(sum(math.log(r["speedup"]) for r in hess) / len(hess))
    print(f"3-D Hessian (bspln3) headline: {head['speedup']:.2f}x; "
          f"multi-D deriv-2 geomean: {geomean:.2f}x")
    for name, ph in sorted(phases.items()):
        fuse_t = ph.get("pass:probe-fuse", 0.0)
        print(f"  {name} phases: supersteps {ph.get('run:supersteps', 0):.4f}s, "
              f"probe-fuse pass {fuse_t * 1e3:.2f}ms")

    # ISSUE 5's headline target.  At heavily reduced scale (CI smoke) the
    # per-run fixed costs dominate, so only gate the soft bound there.
    if SCALE >= 0.9:
        assert head["speedup"] >= 2.0
    assert head["speedup"] >= 1.2

    payload = {
        "n_strands": N_STRANDS, "steps": STEPS, "scale": SCALE,
        "rows": rows,
        "headline_speedup": head["speedup"],
        "hessian_geomean_speedup": geomean,
        "phases": phases,
    }
    record("probe", payload)
    append_history("probe", {
        "headline_speedup": head["speedup"],
        "hessian_geomean_speedup": geomean,
        "headline_fused_s": head["fused_s"],
        "headline_unfused_s": head["unfused_s"],
    })
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "BENCH_probe.json"), "w") as fp:
        json.dump(payload, fp, indent=2, default=float)


def test_probe_fusion_1d_no_regression(benchmark):
    """The cost model must leave 1-D probes on the direct contraction path.

    BENCH_probe measured the incremental schedule losing (0.67–0.98x) on
    1-D combos, so ``probe_fuse`` now rejects 1-D groups outright: the
    fused pipeline must emit byte-identical code to the unfused one there
    — a structural guarantee that the 1-D rows can never regress again.
    """
    import re

    from repro.core.driver import compile_to_source

    def canon(src: str) -> str:
        # SSA ids are process-global; compare modulo renumbering
        names: dict[str, str] = {}
        return re.sub(
            r"\bv\d+\b",
            lambda m: names.setdefault(m.group(0), f"x{len(names)}"),
            src,
        )

    rows = []
    for dim, deriv, kname in COMBOS:
        if dim != 1:
            continue
        src = probe_source(dim, deriv, kname)
        fused_src, _, _ = compile_to_source(
            src, optimize=OptOptions(probe_fusion=True))
        unfused_src, _, _ = compile_to_source(
            src, optimize=OptOptions(probe_fusion=False))
        identical = canon(fused_src) == canon(unfused_src)
        rows.append({"dim": dim, "deriv": deriv, "kernel": kname,
                     "identical_code": identical})
        assert identical, (dim, deriv, kname)
        assert "rt.probe_parts" not in fused_src
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print(f"\n\n1-D no-regression: {len(rows)} combos compile to identical "
          "fused/unfused code (cost model rejects 1-D groups)")
    record("probe_1d_noregression", {"rows": rows})


def _curvature_prog(fuse: bool):
    prog = illust_vr.make_program(
        precision="single",
        scale=max(0.12, 0.24 * SCALE),
        volume_size=48,
    )
    prog2 = compile_program(illust_vr.SOURCE, precision="single",
                            optimize=OptOptions(probe_fusion=fuse))
    prog2._inputs = dict(prog._inputs)
    prog2._bound_images = dict(prog._bound_images)
    return prog2


def test_probe_fusion_curvature(benchmark):
    times = {}
    for fuse in (True, False):
        prog = _curvature_prog(fuse)
        t0 = time.perf_counter()
        res = prog.run()
        times[fuse] = time.perf_counter() - t0
        assert "rgb" in res.outputs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    speedup = times[False] / times[True]
    print(f"\n\nFigure-4 curvature renderer (F, ∇F, ∇⊗∇F per ray step): "
          f"unfused {times[False]:.2f}s → fused {times[True]:.2f}s "
          f"({speedup:.2f}x)")
    # fusion must not regress the end-to-end renderer
    assert times[True] < times[False] * 1.10

    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "results", "probe_curvature.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fp:
        json.dump({"fused_s": times[True], "unfused_s": times[False],
                   "speedup": speedup}, fp, indent=2)
