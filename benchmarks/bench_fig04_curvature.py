"""Figure 4: volume rendering colored by implicit-surface curvature.

The paper's Figure 4 shows the curvature-shaded rendering and its
bivariate (κ₁, κ₂) colormap.  This harness regenerates both (as PPM files
under benchmarks/results/) and checks the qualitative content: the image
is non-trivial, and the curvature computation drives visible color
variation that a constant-color rendering would not have.
"""

from __future__ import annotations

import os

import numpy as np
from conftest import RESULTS_DIR, SCALE, record

from repro.data.ppm import save_ppm
from repro.programs import illust_vr


def test_figure04_curvature_rendering(benchmark):
    res = max(24, int(round(96 * SCALE)))
    prog = illust_vr.make_program(scale=res / 100.0, volume_size=48)
    result = benchmark.pedantic(prog.run, rounds=1, iterations=1)
    rgb = result.outputs["rgb"]

    os.makedirs(RESULTS_DIR, exist_ok=True)
    save_ppm(os.path.join(RESULTS_DIR, "figure04_curvature.ppm"),
             np.clip(rgb, 0, 1), vmin=0.0, vmax=1.0)
    save_ppm(os.path.join(RESULTS_DIR, "figure04_colormap.ppm"),
             illust_vr.curvature_colormap(65).data, vmin=0.0, vmax=1.0)

    lit = rgb[rgb.sum(axis=-1) > 0.05]
    coverage = lit.shape[0] / (rgb.shape[0] * rgb.shape[1])
    # hue spread among lit pixels = curvature-driven coloring
    hue_spread = float(np.std(lit[:, 0] - lit[:, 1]) + np.std(lit[:, 1] - lit[:, 2]))
    print(
        f"\nFigure 4 — {res}x{res} rays; surface coverage {coverage:.0%}, "
        f"hue spread {hue_spread:.3f}"
    )
    assert 0.05 < coverage < 0.95  # surfaces visible, not saturated
    assert hue_spread > 0.02  # κ varies over the surface
    record(
        "figure04",
        {"res": res, "coverage": coverage, "hue_spread": hue_spread},
    )
