"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark prints the paper's numbers next to ours and appends its
rows to ``benchmarks/results/<name>.json`` so EXPERIMENTS.md can be
regenerated from a run.  Workloads are scaled-down versions of the
paper's (DESIGN.md's benchmark scaling note); set ``REPRO_BENCH_SCALE``
to trade time for fidelity (default 1.0 ≈ a few minutes total on one
core).
"""

from __future__ import annotations

import json
import os
import subprocess
import time

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

HISTORY_PATH = os.path.join(RESULTS_DIR, "history.jsonl")


#: results-document schema: bumped when the stamped envelope changes
SCHEMA_VERSION = 2


def record(name: str, payload) -> None:
    """Persist one benchmark's results for EXPERIMENTS.md.

    Dict payloads are stamped in place with the results ``schema``
    version, the benchmark name, and the producing commit's ``git_sha``
    — callers that re-dump the same payload to a repo-root
    ``BENCH_*.json`` therefore carry the stamps too.
    """
    if isinstance(payload, dict):
        payload.setdefault("schema", SCHEMA_VERSION)
        payload.setdefault("bench", name)
        payload.setdefault("git_sha", git_sha())
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fp:
        json.dump(payload, fp, indent=2, default=float)


def git_sha() -> str:
    """The current commit's short SHA, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def append_history(bench: str, payload: dict) -> None:
    """Append one git-SHA-stamped row to ``results/history.jsonl``.

    The perf-regression tracker (``benchmarks/regress.py``,
    ``python -m repro.obs diff``) compares headline numbers across
    commits; each row carries enough environment context (cpu count,
    scale) that rows from starved machines can be told apart.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    row = {
        "bench": bench,
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_sha(),
        "cpu_count": len(os.sched_getaffinity(0)),
        "scale": SCALE,
        **payload,
    }
    with open(HISTORY_PATH, "a") as fp:
        fp.write(json.dumps(row, default=float) + "\n")


def measure(fn, repeats: int = 1) -> float:
    """Best-of-N wall-clock time of ``fn()`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE
