"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark prints the paper's numbers next to ours and appends its
rows to ``benchmarks/results/<name>.json`` so EXPERIMENTS.md can be
regenerated from a run.  Workloads are scaled-down versions of the
paper's (DESIGN.md's benchmark scaling note); set ``REPRO_BENCH_SCALE``
to trade time for fidelity (default 1.0 ≈ a few minutes total on one
core).
"""

from __future__ import annotations

import json
import os
import time

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record(name: str, payload) -> None:
    """Persist one benchmark's results for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fp:
        json.dump(payload, fp, indent=2, default=float)


def measure(fn, repeats: int = 1) -> float:
    """Best-of-N wall-clock time of ``fn()`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE
