"""Ablation: the §5.4 domain-specific optimizations, on vs off.

The paper claims contraction + value numbering yield domain-specific wins
a general-purpose compiler would miss: shared convolutions between F and
∇F probes at one position, and Hessian symmetry.  We compile illust-vr —
which probes F, ∇F, and ∇⊗∇F at every ray step — both ways and compare
(a) MidIR instruction counts and (b) measured run time.
"""

from __future__ import annotations

import time

from conftest import SCALE, record

from repro.core.driver import OptOptions, compile_program
from repro.programs import illust_vr


def _build(vn: bool):
    prog = illust_vr.make_program(
        precision="single",
        scale=max(0.12, 0.28 * SCALE),
        volume_size=48,
    )
    # recompile with explicit optimization flags
    from repro.core.driver import compile_program as cc

    prog2 = cc(illust_vr.SOURCE, precision="single",
               optimize=OptOptions(value_numbering=vn))
    # carry over inputs/bindings from the configured program
    prog2._inputs = dict(prog._inputs)
    prog2._bound_images = dict(prog._bound_images)
    return prog2


def test_value_numbering_ablation(benchmark):
    runs = {}
    stats = {}
    for vn in (True, False):
        prog = _build(vn)
        t0 = time.perf_counter()
        res = prog.run()
        runs[vn] = time.perf_counter() - t0
        stats[vn] = prog.stats
        assert "rgb" in res.outputs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    mid_with = stats[True].mid_instrs["update"]
    mid_without = stats[False].mid_instrs["update"]
    removed = stats[True].vn_removed["update"]
    print("\n\n§5.4 ablation — value numbering on illust-vr's update method")
    print(f"MidIR instructions: {mid_without} without VN → {mid_with} with VN "
          f"({removed} redundancies removed across levels)")
    print(f"run time: {runs[False]:.2f}s without VN → {runs[True]:.2f}s with VN "
          f"({runs[False] / runs[True]:.2f}x)")

    # the probes of F / ∇F / ∇⊗∇F at one position share heavily
    assert mid_with < 0.7 * mid_without
    assert removed > 20
    # and it should actually run faster (shared gathers and weights)
    assert runs[True] < runs[False] * 1.02

    record(
        "ablation_valnum",
        {
            "mid_instrs_with_vn": mid_with,
            "mid_instrs_without_vn": mid_without,
            "vn_removed": removed,
            "time_with_vn": runs[True],
            "time_without_vn": runs[False],
        },
    )
