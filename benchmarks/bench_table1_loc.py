"""Table 1: lines of code and strand counts.

Paper: "From this table it can be seen that Diderot provides a significant
advantage in conciseness over using the Teem library."  We recount both
sides on our implementations (baseline = Python + the gage API; Diderot =
the same programs in the DSL) and reproduce the *shape*: the Diderot
version is substantially smaller, total and core, for every benchmark.
"""

from __future__ import annotations

from conftest import record

from repro.bench.loc import table1_rows


def _fmt(pair):
    return f"{pair[0]}:{pair[1]}"


def test_table1_loc(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)

    print("\n\nTable 1 — benchmark program sizes (total:core LOC)")
    print(f"{'program':<11}{'baseline':>10}{'diderot':>9}   "
          f"{'paper Teem':>11}{'paper Did.':>11}{'# strands (paper)':>19}")
    for r in rows:
        print(
            f"{r['program']:<11}{_fmt(r['baseline_loc']):>10}"
            f"{_fmt(r['diderot_loc']):>9}   "
            f"{_fmt(r['paper_teem_loc']):>11}"
            f"{_fmt(r['paper_diderot_loc']):>11}"
            f"{r['paper_strands']:>19,}"
        )

    for r in rows:
        b_total, b_core = r["baseline_loc"]
        d_total, d_core = r["diderot_loc"]
        # the paper's shape: Diderot is smaller on both measures
        assert d_total < b_total, r["program"]
        assert d_core <= b_core, r["program"]
        # and by a similar factor (paper: 2.9x-8.2x total; Python baselines
        # are naturally terser than C, so require at least 1.3x)
        assert b_total / d_total > 1.3, r["program"]

    record("table1", rows)
