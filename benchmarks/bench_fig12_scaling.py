"""Figure 12: parallel speedup curves, 1-8 workers, all four benchmarks.

Paper: "we present the parallel speedup curves for the single-precision
version of our benchmarks ... all of the benchmarks scale well.  For
vr-lite, we see some tailing-off at eight threads, which we believe is
because of lack of work (notice from Table 1 that vr-lite has the fewest
strands)."

We run each benchmark sequentially with per-block timing and replay the
block trace through the simulated work-list scheduler (DESIGN.md).  The
claims asserted: near-linear scaling for every benchmark, monotonic in
workers, and the *fewest-strands benchmark scales worst at 8 workers*
when every benchmark uses the paper's fixed 4096-strand blocks — the
paper's vr-lite effect, reproduced mechanistically (fewer strands →
fewer blocks → a starved work-list).
"""

from __future__ import annotations

from conftest import SCALE, record

from repro.obs import Tracer
from repro.programs import illust_vr, lic2d, ridge3d, vr_lite
from repro.runtime.simsched import speedup_curve

WORKERS = [1, 2, 3, 4, 5, 6, 7, 8]

#: (module, kwargs, strand-count rank) — resolutions chosen so the strand
#: ordering matches Table 1: vr-lite < illust-vr < lic2d < ridge3d.
def _programs():
    s = SCALE
    vr = vr_lite.make_program(precision="single", scale=0.32 * s, volume_size=48)
    ivr = illust_vr.make_program(precision="single", scale=0.40 * s, volume_size=48)
    lic = lic2d.make_program(precision="single", scale=0.48 * s, field_size=64)
    rid = ridge3d.make_program(precision="single", volume_size=48)
    rid.set_input("gridRes", max(6, int(24 * s)))
    return {"vr-lite": vr, "illust-vr": ivr, "lic2d": lic, "ridge3d": rid}


def test_figure12_speedup_curves(benchmark):
    progs = _programs()
    # the paper's fixed block size, scaled with the workload so the block
    # *count* ratio matches the paper's (they had 40-420 blocks)
    curves = {}
    strands = {}
    for name, prog in progs.items():
        tracer = Tracer()
        result = prog.run(block_size=256, tracer=tracer)
        strands[name] = result.num_strands
        curves[name] = speedup_curve(tracer, WORKERS)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\n\nFigure 12 — simulated parallel speedup (single precision)")
    header = f"{'workers':<10}" + "".join(f"{w:>7}" for w in WORKERS)
    print(header)
    for name, curve in curves.items():
        row = f"{name:<10}" + "".join(f"{curve[w]:>7.2f}" for w in WORKERS)
        print(f"{row}   ({strands[name]} strands)")

    for name, curve in curves.items():
        # near-linear at low worker counts; ridge3d is tail-limited at our
        # scale (most strands die in the first steps, leaving few blocks in
        # later super-steps — at the paper's 1.7M strands the tail is still
        # wide), so it gets the weaker bound
        if name == "ridge3d":
            assert curve[2] > 1.5, name
            assert curve[8] > 2.5, name
        else:
            assert curve[2] > 1.8, name
            assert curve[4] > 2.8, name
        # monotone non-decreasing
        for lo, hi in zip(WORKERS, WORKERS[1:]):
            assert curve[hi] >= curve[lo] - 0.05, name

    # the vr-lite effect: the fewest-strands program shows the weakest
    # 8-worker speedup (lack of blocks to balance)
    fewest = min(strands, key=strands.get)
    others = [curves[n][8] for n in curves if n != fewest]
    print(f"fewest strands: {fewest}; its 8P speedup {curves[fewest][8]:.2f} "
          f"vs others {[f'{v:.2f}' for v in others]}")
    assert curves[fewest][8] <= max(others) + 0.05

    record(
        "figure12",
        {
            "workers": WORKERS,
            "curves": {n: [curves[n][w] for w in WORKERS] for n in curves},
            "strands": strands,
            "paper_note": "paper reports near-linear scaling to 8 threads "
            "with vr-lite tailing off for lack of work",
        },
    )
