"""Figure 12: parallel speedup, simulated curves + measured backends.

Paper: "we present the parallel speedup curves for the single-precision
version of our benchmarks ... all of the benchmarks scale well.  For
vr-lite, we see some tailing-off at eight threads, which we believe is
because of lack of work (notice from Table 1 that vr-lite has the fewest
strands)."

Two tests:

* ``test_figure12_speedup_curves`` runs each benchmark sequentially with
  per-block timing and replays the block trace through the simulated
  work-list scheduler (DESIGN.md).  Asserted: near-linear scaling,
  monotonicity, and the *fewest-strands benchmark scales worst at 8
  workers* — the paper's vr-lite effect, reproduced mechanistically.
* ``test_measured_backend_scaling`` measures real wall-clock time for
  the sequential, thread, and process schedulers at 1/2/4 workers and
  checks the parallel backends stay bit-identical to sequential.
  Speedup assertions are gated on the cores actually available (CPython
  threads cannot scale; processes can only scale when the container
  grants > 1 core), and ``cpu_count`` is recorded alongside the numbers
  so results from starved machines are not mistaken for regressions.
  The measurements land in ``results/figure12.json`` (``"measured"``
  section) and in ``BENCH_scaling.json`` at the repo root.
"""

from __future__ import annotations

import json
import os

from conftest import RESULTS_DIR, SCALE, append_history, record

from repro.obs import Tracer
from repro.programs import illust_vr, lic2d, ridge3d, vr_lite
from repro.runtime.simsched import speedup_curve

WORKERS = [1, 2, 3, 4, 5, 6, 7, 8]

#: worker counts measured with real backends; trimmed in CI smoke mode
#: via ``REPRO_BENCH_MAX_WORKERS=2``
MEASURED_WORKERS = [
    w for w in (1, 2, 4)
    if w <= int(os.environ.get("REPRO_BENCH_MAX_WORKERS", "4"))
]

#: (module, kwargs, strand-count rank) — resolutions chosen so the strand
#: ordering matches Table 1: vr-lite < illust-vr < lic2d < ridge3d.
def _programs():
    s = SCALE
    vr = vr_lite.make_program(precision="single", scale=0.32 * s, volume_size=48)
    ivr = illust_vr.make_program(precision="single", scale=0.40 * s, volume_size=48)
    lic = lic2d.make_program(precision="single", scale=0.48 * s, field_size=64)
    rid = ridge3d.make_program(precision="single", volume_size=48)
    rid.set_input("gridRes", max(6, int(24 * s)))
    return {"vr-lite": vr, "illust-vr": ivr, "lic2d": lic, "ridge3d": rid}


def test_figure12_speedup_curves(benchmark):
    progs = _programs()
    # the paper's fixed block size, scaled with the workload so the block
    # *count* ratio matches the paper's (they had 40-420 blocks)
    curves = {}
    strands = {}
    for name, prog in progs.items():
        tracer = Tracer()
        result = prog.run(block_size=256, tracer=tracer)
        strands[name] = result.num_strands
        curves[name] = speedup_curve(tracer, WORKERS)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\n\nFigure 12 — simulated parallel speedup (single precision)")
    header = f"{'workers':<10}" + "".join(f"{w:>7}" for w in WORKERS)
    print(header)
    for name, curve in curves.items():
        row = f"{name:<10}" + "".join(f"{curve[w]:>7.2f}" for w in WORKERS)
        print(f"{row}   ({strands[name]} strands)")

    for name, curve in curves.items():
        # near-linear at low worker counts; ridge3d is tail-limited at our
        # scale (most strands die in the first steps, leaving few blocks in
        # later super-steps — at the paper's 1.7M strands the tail is still
        # wide), so it gets the weaker bound
        if name == "ridge3d":
            assert curve[2] > 1.5, name
            assert curve[8] > 2.5, name
        else:
            assert curve[2] > 1.8, name
            assert curve[4] > 2.8, name
        # monotone non-decreasing
        for lo, hi in zip(WORKERS, WORKERS[1:]):
            assert curve[hi] >= curve[lo] - 0.05, name

    # the vr-lite effect: the fewest-strands program shows the weakest
    # 8-worker speedup (lack of blocks to balance)
    fewest = min(strands, key=strands.get)
    others = [curves[n][8] for n in curves if n != fewest]
    print(f"fewest strands: {fewest}; its 8P speedup {curves[fewest][8]:.2f} "
          f"vs others {[f'{v:.2f}' for v in others]}")
    assert curves[fewest][8] <= max(others) + 0.05

    record(
        "figure12",
        {
            "workers": WORKERS,
            "curves": {n: [curves[n][w] for w in WORKERS] for n in curves},
            "strands": strands,
            "paper_note": "paper reports near-linear scaling to 8 threads "
            "with vr-lite tailing off for lack of work",
        },
    )


# -- measured backends --------------------------------------------------------

#: block size for the measured runs — all backends must use the same one,
#: since bit-identity only holds per block size (reduction order differs)
MEASURED_BLOCK = 256


def _measured_programs():
    s = SCALE
    return {
        "vr-lite": vr_lite.make_program(precision="single", scale=0.32 * s,
                                        volume_size=48),
        "lic2d": lic2d.make_program(precision="single", scale=0.40 * s,
                                    field_size=64),
    }


def _outputs_equal(a, b) -> bool:
    import numpy as np

    return (
        a.steps == b.steps
        and set(a.outputs) == set(b.outputs)
        and all(np.array_equal(a.outputs[k], b.outputs[k]) for k in a.outputs)
    )


def _timed_run(prog, repeats: int = 2, **kwargs):
    """Best-of-N run; returns ``(seconds, RunResult)``."""
    best_t, best_res = float("inf"), None
    for _ in range(repeats):
        res = prog.run(block_size=MEASURED_BLOCK, **kwargs)
        if res.wall_time < best_t:
            best_t, best_res = res.wall_time, res
    return best_t, best_res


def test_measured_backend_scaling(benchmark):
    cores = len(os.sched_getaffinity(0))
    measured = {
        "cpu_count": cores,
        "workers": MEASURED_WORKERS,
        "block_size": MEASURED_BLOCK,
        "scale": SCALE,
        "programs": {},
        "note": "best-of-2 wall seconds; speedup assertions require the "
        "cores to actually exist (see cpu_count)",
    }
    for name, prog in _measured_programs().items():
        t_seq, base = _timed_run(prog)
        rows = {"seq": {"1": t_seq}, "thread": {}, "process": {}}
        for sched in ("thread", "process"):
            for w in MEASURED_WORKERS:
                t, res = _timed_run(prog, workers=w, scheduler=sched)
                assert _outputs_equal(res, base), (name, sched, w)
                rows[sched][str(w)] = t
        measured["programs"][name] = {
            "strands": base.num_strands,
            "steps": base.steps,
            "seconds": rows,
        }
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print(f"\n\nFigure 12 — measured backend wall time ({cores} cores)")
    print(f"{'program':<10}{'backend':<10}"
          + "".join(f"{w:>4}P" for w in MEASURED_WORKERS))
    for name, entry in measured["programs"].items():
        rows = entry["seconds"]
        print(f"{name:<10}{'seq':<10}{rows['seq']['1']:>5.2f}s")
        for sched in ("thread", "process"):
            cells = "".join(f"{rows[sched][str(w)]:>4.2f}s"
                            for w in MEASURED_WORKERS)
            print(f"{'':<10}{sched:<10}{cells}")

    # speedup claims, gated on the cores this container actually grants
    for name, entry in measured["programs"].items():
        rows = entry["seconds"]
        t_seq = rows["seq"]["1"]
        if cores >= 4 and "4" in rows["process"]:
            assert t_seq / rows["process"]["4"] >= 2.5, (
                f"{name}: process scheduler at 4 workers must beat "
                f"sequential by 2.5x on a >=4-core machine"
            )
        elif cores >= 2 and "2" in rows["process"]:
            assert t_seq / rows["process"]["2"] >= 1.3, (
                f"{name}: process scheduler at 2 workers must beat "
                f"sequential by 1.3x on a >=2-core machine"
            )
        else:
            print(f"{name}: {cores} core(s) — speedup assertions skipped, "
                  "recording wall times only")

    # merge into the simulated-curves record rather than clobbering it
    path = os.path.join(RESULTS_DIR, "figure12.json")
    payload = {}
    if os.path.exists(path):
        with open(path) as fp:
            payload = json.load(fp)
    payload["measured"] = measured
    record("figure12", payload)

    history = {"block_size": MEASURED_BLOCK}
    for name, entry in measured["programs"].items():
        rows = entry["seconds"]
        history[f"{name}_seq_s"] = rows["seq"]["1"]
        for sched in ("thread", "process"):
            best_w = max(rows[sched], key=int, default=None)
            if best_w is not None:
                history[f"{name}_{sched}{best_w}_s"] = rows[sched][best_w]
    append_history("scaling", history)

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "BENCH_scaling.json"), "w") as fp:
        json.dump(measured, fp, indent=2, default=float)
        fp.write("\n")
