"""Native C backend vs NumPy: single-core speedup and thread scaling.

The headline workload is the probe benchmark's hardest row — the 3-D
Hessian probe through ``bspln3`` (value + gradient + Hessian per strand
per super-step) — run through both backends with the sequential
scheduler.  The NumPy backend amortizes interpreter overhead across
strand lanes but still pays per-op dispatch, temporary allocation, and
gather/scatter; the C kernel runs the whole update as one compiled loop
over lanes, so the target is a ≥3x single-core speedup at full scale.

A second leg checks the GIL-release contract: with ≥2 cores, the thread
scheduler over the native kernel must beat sequential native execution
(cffi calls drop the GIL, so worker threads genuinely overlap).  On
single-core machines that leg skips.

Results go to ``benchmarks/results/native.json``, the repo root
``BENCH_native.json``, and a row in ``results/history.jsonl`` for the
cross-commit tracker; ``regress.py`` gates ``native.min_speedup``.
"""

from __future__ import annotations

import json
import os

import pytest
from bench_probe import N_STRANDS, STEPS, probe_source, smooth_image
from conftest import SCALE, append_history, measure, record

from repro.core.codegen import cbuild
from repro.core.driver import compile_program

pytestmark = pytest.mark.skipif(
    not cbuild.compiler_available(),
    reason="native backend needs cffi plus a C compiler on PATH",
)

REPEATS = 3
HEADLINE = (3, 2, "bspln3")


def _headline_prog():
    dim, deriv, kname = HEADLINE
    prog = compile_program(probe_source(dim, deriv, kname))
    prog.bind_image("img", smooth_image(dim))
    return prog


def _time_backend(prog, backend, scheduler="seq", workers=1) -> float:
    kw = dict(backend=backend, scheduler=scheduler, workers=workers)
    prog.run(max_steps=1, **kw)  # warm caches / compile the kernel
    return measure(lambda: prog.run(max_steps=STEPS, **kw), repeats=REPEATS)


def test_native_single_core_speedup(benchmark):
    prog = _headline_prog()
    t_numpy = _time_backend(prog, "numpy")
    t_c = _time_backend(prog, "c")
    speedup = t_numpy / t_c
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    dim, deriv, kname = HEADLINE
    print(f"\n\nNative backend — 3-D Hessian probe ({kname}), "
          f"{N_STRANDS} strands × {STEPS} super-steps, best of {REPEATS}")
    print(f"  numpy seq: {t_numpy * 1e3:8.2f}ms")
    print(f"  c     seq: {t_c * 1e3:8.2f}ms   ({speedup:.2f}x)")

    # ISSUE 7's headline target: ≥3x single-core at full scale.  At CI
    # smoke scale fixed costs dominate, so only the soft floor gates.
    if SCALE >= 0.9:
        assert speedup >= 3.0
    assert speedup >= 1.3

    payload = {
        "scale": SCALE,
        "steps": STEPS,
        "workload": {"dim": dim, "deriv": deriv, "kernel": kname},
        "numpy_seq_s": t_numpy,
        "c_seq_s": t_c,
        "native_speedup": speedup,
    }

    # thread scaling leg: seq+C vs thread+C, only meaningful with >1 core
    cores = len(os.sched_getaffinity(0))
    if cores >= 2:
        t_c_thread = _time_backend(prog, "c", scheduler="thread", workers=2)
        payload["c_thread2_s"] = t_c_thread
        payload["thread2_speedup"] = t_c / t_c_thread
        print(f"  c  thread2: {t_c_thread * 1e3:8.2f}ms   "
              f"({t_c / t_c_thread:.2f}x over seq+C)")
        assert t_c_thread < t_c  # GIL release must buy real overlap
    else:
        payload["thread2_speedup"] = None
        print(f"  (thread-scaling leg skipped: {cores} core(s))")

    record("native", payload)
    append_history("native", {
        "native_speedup": speedup,
        "numpy_seq_s": t_numpy,
        "c_seq_s": t_c,
        "thread2_speedup": payload["thread2_speedup"],
    })
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "BENCH_native.json"), "w") as fp:
        json.dump(payload, fp, indent=2, default=float)


def test_native_matches_numpy_on_headline(benchmark):
    """The timed workload itself is oracle-checked at 1e-12."""
    import numpy as np

    prog = _headline_prog()
    a = prog.run(max_steps=STEPS, backend="numpy")
    b = prog.run(max_steps=STEPS, backend="c")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in a.outputs:
        assert np.allclose(a.outputs[name], b.outputs[name],
                           rtol=1e-12, atol=1e-12, equal_nan=True), name
