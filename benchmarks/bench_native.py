"""Native C backend vs NumPy: SIMD batching, precision, thread scaling.

The headline workload is the probe benchmark's hardest row — the 3-D
Hessian probe through ``bspln3`` (value + gradient + Hessian per strand
per super-step).  Four legs run it through the sequential scheduler:

* **numpy** — the vectorized NumPy interpreter baseline;
* **scalar C** — the native kernel forced to batch width 1
  (``REPRO_CGEN_BATCH=1``), i.e. the pre-SIMD one-strand-at-a-time loop;
* **batched C** — the default strand-batched SoA kernel (``DD_VB``
  lanes per statement, ``#pragma omp simd``);
* **single C** — the batched kernel emitted in float32.

Each native leg records both wall-clock and pure kernel seconds (the
``op.native_update.seconds`` metric); the batched-vs-scalar gate uses the
kernel ratio because at this workload size a fixed ~0.4ms of per-run
Python setup dilutes the wall ratio identically across legs.  Targets at
full scale: batched kernel ≥2x over the scalar C kernel, and ≥3x
wall-clock over NumPy (measured ~13x).

A further leg checks the GIL-release contract: with ≥2 cores, the thread
scheduler over the native kernel must beat sequential native execution
(cffi calls drop the GIL, so worker threads genuinely overlap).  On
single-core machines that leg records ``thread2_speedup: null`` together
with the machine's ``cpu_count`` so the regression gate can tell
"skipped for lack of cores" from "silently lost".

Results go to ``benchmarks/results/native.json``, the repo root
``BENCH_native.json``, and a row in ``results/history.jsonl`` for the
cross-commit tracker; ``regress.py`` gates ``native.min_speedup`` and
``native.min_batch_speedup``.
"""

from __future__ import annotations

import json
import os

import pytest
from bench_probe import N_STRANDS, probe_source, smooth_image
from conftest import SCALE, append_history, measure, record

from repro.core.codegen import cbuild
from repro.core.driver import compile_program
from repro.obs import metrics as _mx

pytestmark = pytest.mark.skipif(
    not cbuild.compiler_available(),
    reason="native backend needs cffi plus a C compiler on PATH",
)

REPEATS = 3
#: more super-steps than bench_probe's 3 — the kernel is fast enough now
#: that per-run setup would otherwise dominate the wall numbers
STEPS = 10
HEADLINE = (3, 2, "bspln3")


def _headline_prog(precision="double"):
    dim, deriv, kname = HEADLINE
    prog = compile_program(probe_source(dim, deriv, kname),
                           precision=precision)
    prog.bind_image("img", smooth_image(dim))
    return prog


def _scalar_prog():
    """The headline program compiled with the batch width forced to 1."""
    os.environ["REPRO_CGEN_BATCH"] = "1"
    try:
        prog = _headline_prog()
        # compile + cache the native artifacts while the override is live
        prog.run(max_steps=1, backend="c")
    finally:
        del os.environ["REPRO_CGEN_BATCH"]
    return prog


def _time_backend(prog, backend, scheduler="seq", workers=1) -> float:
    kw = dict(backend=backend, scheduler=scheduler, workers=workers)
    prog.run(max_steps=1, **kw)  # warm caches / compile the kernel
    return measure(lambda: prog.run(max_steps=STEPS, **kw), repeats=REPEATS)


def _kernel_seconds(prog) -> float:
    """Best-of-REPEATS pure in-kernel time for a sequential native run."""
    prog.run(max_steps=1, backend="c")
    best = float("inf")
    for _ in range(REPEATS):
        with _mx.collect() as reg:
            prog.run(max_steps=STEPS, backend="c")
        best = min(best, reg.counters.get("op.native_update.seconds", 0.0))
    return best


def test_native_single_core_speedup(benchmark):
    prog = _headline_prog()
    prog_scalar = _scalar_prog()
    prog_single = _headline_prog(precision="single")

    t_numpy = _time_backend(prog, "numpy")
    t_scalar = _time_backend(prog_scalar, "c")
    t_c = _time_backend(prog, "c")
    t_single = _time_backend(prog_single, "c")
    k_scalar = _kernel_seconds(prog_scalar)
    k_c = _kernel_seconds(prog)
    k_single = _kernel_seconds(prog_single)

    speedup = t_numpy / t_c
    batch_wall = t_scalar / t_c
    batch_kernel = k_scalar / k_c
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    dim, deriv, kname = HEADLINE
    print(f"\n\nNative backend — 3-D Hessian probe ({kname}), "
          f"{N_STRANDS} strands × {STEPS} super-steps, best of {REPEATS}")
    print(f"  numpy    seq: {t_numpy * 1e3:8.2f}ms")
    print(f"  c scalar seq: {t_scalar * 1e3:8.2f}ms  "
          f"(kernel {k_scalar * 1e3:.2f}ms)")
    print(f"  c batch  seq: {t_c * 1e3:8.2f}ms  (kernel {k_c * 1e3:.2f}ms)  "
          f"{speedup:.2f}x over numpy")
    print(f"  c single seq: {t_single * 1e3:8.2f}ms  "
          f"(kernel {k_single * 1e3:.2f}ms)")
    print(f"  batched vs scalar: {batch_kernel:.2f}x kernel, "
          f"{batch_wall:.2f}x wall")

    # Full-scale targets: ≥3x over NumPy (ISSUE 7) and a ≥2x kernel-time
    # win for the batched SIMD kernel over the scalar C kernel (ISSUE 8).
    # At CI smoke scale fixed costs dominate, so only soft floors gate.
    if SCALE >= 0.9:
        assert speedup >= 3.0
        assert batch_kernel >= 2.0
    assert speedup >= 1.3
    assert batch_kernel >= 1.1

    payload = {
        "scale": SCALE,
        "steps": STEPS,
        "workload": {"dim": dim, "deriv": deriv, "kernel": kname},
        "cpu_count": len(os.sched_getaffinity(0)),
        "numpy_seq_s": t_numpy,
        "c_scalar_seq_s": t_scalar,
        "c_seq_s": t_c,
        "c_single_seq_s": t_single,
        "kernel_scalar_s": k_scalar,
        "kernel_batch_s": k_c,
        "kernel_single_s": k_single,
        "native_speedup": speedup,
        "batch_speedup": batch_wall,
        "batch_kernel_speedup": batch_kernel,
        "single_kernel_speedup": k_scalar / k_single,
    }

    # thread scaling leg: seq+C vs thread+C, only meaningful with >1 core
    cores = payload["cpu_count"]
    if cores >= 2:
        t_c_thread = _time_backend(prog, "c", scheduler="thread", workers=2)
        payload["c_thread2_s"] = t_c_thread
        payload["thread2_speedup"] = t_c / t_c_thread
        print(f"  c  thread2: {t_c_thread * 1e3:8.2f}ms   "
              f"({t_c / t_c_thread:.2f}x over seq+C)")
        assert t_c_thread < t_c  # GIL release must buy real overlap
    else:
        payload["thread2_speedup"] = None
        print(f"  (thread-scaling leg skipped: {cores} core(s))")

    record("native", payload)
    append_history("native", {
        "native_speedup": speedup,
        "batch_kernel_speedup": batch_kernel,
        "numpy_seq_s": t_numpy,
        "c_seq_s": t_c,
        "kernel_batch_s": k_c,
        "thread2_speedup": payload["thread2_speedup"],
    })
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "BENCH_native.json"), "w") as fp:
        json.dump(payload, fp, indent=2, default=float)


def test_native_matches_numpy_on_headline(benchmark):
    """The timed workload itself is oracle-checked at 1e-12."""
    import numpy as np

    prog = _headline_prog()
    a = prog.run(max_steps=STEPS, backend="numpy")
    b = prog.run(max_steps=STEPS, backend="c")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in a.outputs:
        assert np.allclose(a.outputs[name], b.outputs[name],
                           rtol=1e-12, atol=1e-12, equal_nan=True), name


def test_native_single_matches_oracle_on_headline(benchmark):
    """The float32 leg stays within its documented 1e-5 tolerance."""
    import numpy as np

    prog = _headline_prog()
    prog_single = _headline_prog(precision="single")
    a = prog.run(max_steps=STEPS, backend="numpy")
    b = prog_single.run(max_steps=STEPS, backend="c")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in a.outputs:
        assert np.allclose(a.outputs[name], b.outputs[name],
                           rtol=1e-5, atol=1e-5, equal_nan=True), name
