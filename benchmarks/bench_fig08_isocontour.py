"""Figures 7-8: particle-based isocontour detection.

The harness reruns the Figure 7 program and checks the Figure 8 content:
a strict subset of the initial strands stabilizes (some die by leaving
the domain or exceeding the step limit), and the stable particles lie on
the 10/30/50 isocontours to Newton-iteration accuracy.  The overlay image
is saved for inspection.
"""

from __future__ import annotations

import os

import numpy as np
from conftest import RESULTS_DIR, SCALE, record

from repro.data import portrait_phantom
from repro.data.ppm import save_pgm
from repro.fields import convolve
from repro.kernels import ctmr
from repro.programs import isocontour


def test_figure08_isocontours(benchmark):
    size = max(48, int(round(100 * SCALE)))
    prog = isocontour.make_program(image_size=size)
    result = benchmark.pedantic(prog.run, rounds=1, iterations=1)
    pos = result.outputs["pos"]

    # Figure 8's content: a subset survives, on smooth isocontours
    assert 0 < result.num_stable < result.num_strands
    assert result.num_died > 0

    f = convolve(portrait_phantom(size), ctmr)
    vals = f.probe(pos)
    err = np.min(
        np.abs(vals[:, None] - np.array([10.0, 30.0, 50.0])[None, :]), axis=1
    )
    on_contour = float(np.mean(err < 0.05))
    print(
        f"\nFigure 8 — {result.num_strands} seeds: {result.num_stable} stable, "
        f"{result.num_died} died; {on_contour:.0%} of stable particles within "
        f"0.05 of an isovalue (median |F-f0| = {np.median(err):.2e})"
    )
    assert on_contour > 0.9
    assert np.median(err) < 1e-3

    # overlay like examples/isocontours.py
    canvas = portrait_phantom(size).data.copy()
    canvas = canvas / canvas.max() * 0.6
    for x, y in pos:
        xi, yi = int(round(x)), int(round(y))
        if 0 <= xi < size and 0 <= yi < size:
            canvas[xi, yi] = 1.0
    os.makedirs(RESULTS_DIR, exist_ok=True)
    save_pgm(os.path.join(RESULTS_DIR, "figure08_isocontours.pgm"),
             canvas, vmin=0.0, vmax=1.0)
    record(
        "figure08",
        {
            "size": size,
            "stable": result.num_stable,
            "died": result.num_died,
            "on_contour_fraction": on_contour,
            "median_error": float(np.median(err)),
        },
    )
