#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from benchmarks/results/*.json.

Run the benchmark suite first:

    pytest benchmarks/ --benchmark-only
    python benchmarks/make_experiments_md.py
"""

from __future__ import annotations

import json
import os

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS = os.path.join(HERE, "results")
OUT = os.path.join(HERE, "..", "EXPERIMENTS.md")


def load(name: str):
    path = os.path.join(RESULTS, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as fp:
        return json.load(fp)


def fmt_pair(p):
    return f"{p[0]}:{p[1]}"


def main() -> None:
    t1 = load("table1")
    t2 = load("table2")
    f12 = load("figure12")
    f04 = load("figure04")
    f06 = load("figure06")
    f08 = load("figure08")
    ab_bs = load("ablation_blocksize")
    ab_vn = load("ablation_valnum")
    ab_pf = load("probe")
    pf_curv = load("probe_curvature")

    lines = []
    w = lines.append
    w("# Experiments: paper vs. measured")
    w("")
    w("Regenerated from `benchmarks/results/*.json` by"
      " `python benchmarks/make_experiments_md.py` after"
      " `pytest benchmarks/ --benchmark-only`.")
    w("")
    w("Environment: 1-core Linux container, CPython 3.11, NumPy 2.x.  The")
    w("paper used an 8-core Xeon X5570 and clang -O3; absolute times are not")
    w("comparable — every benchmark asserts the paper's *qualitative shape*")
    w("instead (who wins, by what rough factor, how scaling behaves).  See")
    w("DESIGN.md for the substitution rationale (simulated multicore,")
    w("synthetic phantoms, Python gage baseline).")
    w("")

    if t1:
        w("## Table 1 — program sizes and strand counts")
        w("")
        w("LOC counted without comments/blank lines; `total:core` where core")
        w("is the Diderot `update` method vs. the baseline's per-strand loop.")
        w("Our baseline is Python+gage (terser than the paper's C+Teem), so")
        w("the expected shape is a consistent Diderot advantage, smaller than")
        w("the paper's 3-8x vs C.")
        w("")
        w("| program | baseline (ours) | Diderot (ours) | Teem (paper) | Diderot (paper) | strands (paper) |")
        w("|---|---|---|---|---|---|")
        for r in t1:
            w(f"| {r['program']} | {fmt_pair(r['baseline_loc'])} | "
              f"{fmt_pair(r['diderot_loc'])} | {fmt_pair(r['paper_teem_loc'])} | "
              f"{fmt_pair(r['paper_diderot_loc'])} | {r['paper_strands']:,} |")
        ratios = [r["baseline_loc"][0] / r["diderot_loc"][0] for r in t1]
        w("")
        w(f"Shape check: Diderot smaller in every row "
          f"(total-LOC ratios {', '.join(f'{x:.1f}x' for x in ratios)}; "
          f"paper's C ratios 3.3x, 3.9x, 4.9x, 8.2x). ✓")
        w("")

    if t2:
        w("## Table 2 — wall-clock performance (seconds)")
        w("")
        w("Workloads are scaled-down grids (column 2); the baseline column is")
        w("per-strand cost calibrated on a subset and scaled (running the")
        w("full grid through per-point Python probing takes tens of minutes);")
        w("1P/2P/8P replay measured block traces through the simulated")
        w("work-list scheduler.")
        w("")
        w("| program | workload | baseline | seq single | 1P | 2P | 8P | seq double | paper: Teem / seq-sgl / 8P-sgl |")
        w("|---|---|---|---|---|---|---|---|---|")
        for name, r in t2.items():
            p = r["paper"]
            w(f"| {name} | {r['workload']} | {r['baseline_est']:.2f}* | "
              f"{r['seq_single']:.2f} | {r['sim_1p']:.2f} | {r['sim_2p']:.2f} | "
              f"{r['sim_8p']:.2f} | {r['seq_double']:.2f} | "
              f"{p['teem']:.2f} / {p['single'][0]:.2f} / {p['single'][3]:.2f} |")
        w("")
        w("\\* estimated from calibrated per-strand cost.")
        w("")
        w("Shape checks (all asserted by `bench_table2_perf.py`): compiled")
        w("Diderot beats the probe-context baseline in every row (paper:")
        w("1.3-2.5x vs C Teem; ours 10-150x because the Python baseline pays")
        w("interpreter overhead per probe while compiled Diderot amortizes it")
        w("across a strand block — the same mechanism, amplified); double")
        w("precision is never faster than single; 1P ≈ sequential; 2P ≈ 2x;")
        w("8P gives substantial scaling. ✓")
        w("")

    if f12:
        w("## Figure 12 — parallel speedup, 1-8 workers (single precision)")
        w("")
        hdr = "| program |" + "".join(f" {wk} |" for wk in f12["workers"])
        w(hdr)
        w("|---|" + "---|" * len(f12["workers"]))
        for name, curve in f12["curves"].items():
            w(f"| {name} ({f12['strands'][name]:,} strands) |"
              + "".join(f" {v:.2f} |" for v in curve))
        w("")
        w("Shape checks: all curves near-linear at low worker counts and")
        w("monotone; the fewest-strands benchmark (vr-lite) plateaus first —")
        w("the paper's 'tailing-off at eight threads ... because of lack of")
        w("work'. ridge3d is additionally tail-limited at our scale because")
        w("most particles die in early super-steps (at the paper's 1.7M")
        w("strands the surviving tail still fills the work-list). ✓")
        w("")

    w("## Figures 4, 6, 8 — rendered outputs")
    w("")
    if f04:
        w(f"* **Figure 4** (curvature-shaded rendering): regenerated at "
          f"{f04['res']}×{f04['res']} (`results/figure04_curvature.ppm` plus "
          f"the (κ₁,κ₂) colormap). Surface coverage {f04['coverage']:.0%}, "
          f"curvature-driven hue spread {f04['hue_spread']:.2f} — the color "
          f"variation over the surface that constant shading would lack. ✓")
    if f06:
        w(f"* **Figure 6** (LIC): regenerated at {f06['res']}×{f06['res']} "
          f"(`results/figure06_lic.pgm`). High-passed lag-1 correlation "
          f"along streamlines {f06['tangential']:.2f} vs across "
          f"{f06['radial']:.2f} — quantifying the flow-aligned streaks. ✓")
    if f08:
        w(f"* **Figure 8** (isocontour particles): {f08['stable']:,} of "
          f"{f08['stable'] + f08['died']:,} strands stabilized "
          f"({f08['died']:,} died), {f08['on_contour_fraction']:.0%} of "
          f"survivors within 0.05 of an isovalue (median error "
          f"{f08['median_error']:.1e}) — the Figure 8 dots, with convergence "
          f"quantified (`results/figure08_isocontours.pgm`). ✓")
    w("")

    w("## Ablations")
    w("")
    if ab_vn:
        w(f"* **§5.4 value numbering** (illust-vr update): MidIR "
          f"{ab_vn['mid_instrs_without_vn']} → {ab_vn['mid_instrs_with_vn']} "
          f"instructions with VN; run time "
          f"{ab_vn['time_without_vn']:.2f}s → {ab_vn['time_with_vn']:.2f}s "
          f"({ab_vn['time_without_vn'] / ab_vn['time_with_vn']:.2f}x). The "
          f"shared F/∇F/∇⊗∇F convolutions and the Hessian symmetry are "
          f"verified structurally in `tests/test_value_numbering.py` "
          f"(1 gather instead of 3; 6 Hessian contractions instead of 9). ✓")
    if ab_bs:
        rows = ", ".join(
            f"{bs}→{ab_bs['speedups_8p'][str(bs)]:.1f}x"
            for bs in ab_bs["block_sizes"]
        )
        w(f"* **§6.4 strand-block size** (lic2d, {ab_bs['strands']:,} "
          f"strands, simulated 8 workers): {rows}. Too-large blocks starve "
          f"the work-list (load imbalance); small blocks pay per-grab lock "
          f"overhead — the trade-off the paper describes around its 4096 "
          f"default. ✓")
    if ab_pf:
        curv = ""
        if pf_curv:
            curv = (f" End to end, the Figure-4 curvature renderer runs "
                    f"{pf_curv['unfused_s']:.2f}s unfused → "
                    f"{pf_curv['fused_s']:.2f}s fused "
                    f"({pf_curv['speedup']:.2f}x).")
        w(f"* **Probe fusion** (shared partial contractions, DESIGN.md "
          f"'Probe fusion'; fused vs `--no-fuse` across dim × derivative "
          f"order × kernel, {ab_pf['n_strands']:,} strands): 3-D Hessian "
          f"headline (bspln3, F+∇F+∇⊗∇F) "
          f"{ab_pf['headline_speedup']:.2f}x; geomean over multi-D "
          f"order-2 rows {ab_pf['hessian_geomean_speedup']:.2f}x."
          + curv + " ✓")
    w("")
    w("## §8.3 extensions (future work in the paper, implemented here)")
    w("")
    w("Divergence (∇•) and curl (∇×) compile through the same normalization")
    w("pipeline; `examples/vector_field_ops.py` checks both against a vector")
    w("field with closed-form vorticity (∇×V = 2ω, ∇•V = 0), matching to")
    w("1e-6. The quintic `bspln5` (C⁴) kernel extends the paper's kernel set")
    w("and is property-tested alongside the built-ins.")
    w("")

    with open(OUT, "w") as fp:
        fp.write("\n".join(lines))
    print(f"wrote {os.path.abspath(OUT)}")


if __name__ == "__main__":
    main()
