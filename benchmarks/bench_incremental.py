"""Incremental re-execution: dirty-region updates vs full re-runs.

The headline workload is a 3-D grid program — ``G³`` strands, each
probing value + gradient of a ``bspln3`` field over a ``V³`` volume for
several super-steps.  After a cold checkpointed run (which records
per-strand input footprints as a side effect of the gathers), a thin
slab covering ~5% of the volume is patched through
``Program.update_input`` and only the strands whose footprints
intersect the dilated slab are re-executed from their seeds
(``Program.run_update``); every other strand's converged state is
restored from the checkpoint.

The benchmark alternates between applying and reverting the slab so
each timed update cycle re-runs the identical dirty set, and checks the
stitched result bit-exactly against a freshly compiled cold run over
the patched volume — the speedup is only meaningful if the answer is
the answer a full re-run would have produced.

Results go to ``benchmarks/results/incremental.json``, the repo root
``BENCH_incremental.json``, and a ``history.jsonl`` row; ``regress.py``
gates ``incremental.min_speedup`` (≥5x at full scale) and
``bit_identical`` unconditionally.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
from conftest import SCALE, append_history, measure, record

from repro.core.driver import compile_program
from repro.image import Image

REPEATS = 3

#: volume side, strand-grid side, and super-steps before stabilize
VOL = max(32, int(round(96 * min(SCALE, 2.0))))
GRID = max(12, int(round(36 * min(SCALE, 2.0))))
STEPS = 6

#: the dirty slab: ~5% of the volume's extent along axis 0
SLAB_LO = int(VOL * 0.42)
SLAB_HI = SLAB_LO + max(1, int(round(VOL * 0.05))) - 1


def _source() -> str:
    # spread the strand grid across the volume's interior so the slab
    # only dirties the strands whose probe footprints straddle it
    step = (VOL - 9.0) / GRID
    return f"""
input int N = {GRID};
image(3)[] img = load("vol.nrrd");
field#2(3)[] F = img ⊛ bspln3;

strand S (int i, int j, int k) {{
   output real x = 0.0;
   int n = 0;
   update {{
      vec3 p = [real(i) * {step:.6f} + 4.0,
                real(j) * {step:.6f} + 4.0,
                real(k) * {step:.6f} + 4.0];
      if (inside(p, F)) {{
         vec3 g = ∇F(p);
         x = x + F(p) + 0.25 * g[0] + 0.125 * g[1] + 0.0625 * g[2];
      }}
      n += 1;
      if (n >= {STEPS}) stabilize;
   }}
}}
initially [ S(i, j, k) | i in 0 .. N-1, j in 0 .. N-1, k in 0 .. N-1 ];
"""


def _volume(rng) -> np.ndarray:
    return rng.random((VOL, VOL, VOL))


def _prog(data: np.ndarray):
    prog = compile_program(_source())
    prog.bind_image("img", Image(data, dim=3))
    return prog


def _slab(data: np.ndarray) -> np.ndarray:
    return data[SLAB_LO:SLAB_HI + 1, :, :]


def test_incremental_update_speedup(benchmark):
    rng = np.random.default_rng(42)
    base = _volume(rng)
    patched = base.copy()
    patched[SLAB_LO:SLAB_HI + 1, :, :] += 0.5
    region = [[SLAB_LO, SLAB_HI], [0, VOL - 1], [0, VOL - 1]]

    # cold checkpointed run: seq + numpy records footprints inline
    prog = _prog(base)
    cold = prog.run(max_steps=STEPS + 1, checkpoint=True)
    total = cold.num_strands

    def one_update(data):
        prog.update_input("img", _slab(data), region=region)
        return prog.run_update()

    # warm cycle (applies the patch) + establish the dirty set
    res = one_update(patched)
    assert res.incremental and 0 < res.dirty_strands < total, (
        res.dirty_strands, total)
    dirty = res.dirty_strands

    # alternate revert/apply so every timed cycle re-runs the same set
    legs = []
    for data in [base, patched] * REPEATS:
        legs.append(measure(lambda d=data: one_update(d)))
    t_update = min(legs)

    # the alternative: a full cold re-run over the current (patched) image
    t_full = measure(lambda: prog.run(max_steps=STEPS + 1), repeats=REPEATS)

    # dirty-fraction sweep: how the win decays as the patch grows.
    # Each point applies a centered slab of the given width (timed) and
    # reverts it (untimed) so every point starts from the same state.
    sweep = []
    for vfrac in (0.05, 0.15, 0.4, 1.0):
        w = max(1, int(round(VOL * vfrac)))
        lo = max(0, (VOL - w) // 2)
        hi = min(VOL - 1, lo + w - 1)
        reg = [[lo, hi], [0, VOL - 1], [0, VOL - 1]]
        sl = (slice(lo, hi + 1), slice(None), slice(None))
        bumped = patched.copy()
        bumped[sl] += 0.25

        t0 = time.perf_counter()
        prog.update_input("img", bumped[sl], region=reg)
        point = prog.run_update()
        t = time.perf_counter() - t0
        # revert untimed so the next point starts from the same state
        prog.update_input("img", patched[sl], region=reg)
        prog.run_update()
        sweep.append({
            "volume_fraction": (hi - lo + 1) / VOL,
            "dirty_fraction": point.dirty_fraction,
            "update_s": t,
            "speedup": t_full / t,
        })

    # bit-identity: the stitched update result vs a fresh cold compile
    oracle = _prog(patched).run(max_steps=STEPS + 1)
    upd = prog.run_update()  # no pending regions → restored snapshot
    identical = all(
        np.array_equal(upd.outputs[k], oracle.outputs[k])
        for k in oracle.outputs
    )

    speedup = t_full / t_update
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    frac = dirty / total
    vol_frac = (SLAB_HI - SLAB_LO + 1) / VOL
    print(f"\n\nIncremental re-execution — {GRID}³ strands probing F/∇F "
          f"over a {VOL}³ volume, {STEPS} super-steps")
    print(f"  dirty slab: axis-0 [{SLAB_LO}, {SLAB_HI}] "
          f"({vol_frac:.1%} of the volume) → {dirty}/{total} strands "
          f"({frac:.1%}) re-run")
    print(f"  full re-run: {t_full * 1e3:8.2f}ms")
    print(f"  update:      {t_update * 1e3:8.2f}ms   {speedup:.2f}x")
    for p in sweep:
        print(f"  sweep: {p['volume_fraction']:5.1%} of volume dirty → "
              f"{p['dirty_fraction']:5.1%} strands, "
              f"{p['update_s'] * 1e3:7.2f}ms ({p['speedup']:.2f}x)")
    print(f"  bit-identical to a cold run on the patched volume: "
          f"{identical}")

    assert identical, "incremental update diverged from the cold oracle"
    if SCALE >= 0.9:
        assert speedup >= 5.0
    assert speedup >= 1.5

    payload = {
        "scale": SCALE,
        "volume": VOL,
        "grid": GRID,
        "steps": STEPS,
        "strands": total,
        "dirty_strands": dirty,
        "dirty_fraction": frac,
        "volume_dirty_fraction": vol_frac,
        "cpu_count": len(os.sched_getaffinity(0)),
        "full_s": t_full,
        "update_s": t_update,
        "speedup": speedup,
        "bit_identical": bool(identical),
        "sweep": sweep,
    }
    record("incremental", payload)
    append_history("incremental", {
        "speedup": speedup,
        "dirty_fraction": frac,
        "full_s": t_full,
        "update_s": t_update,
        "bit_identical": bool(identical),
    })
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "BENCH_incremental.json"), "w") as fp:
        json.dump(payload, fp, indent=2, default=float)
