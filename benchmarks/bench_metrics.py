"""Always-on metrics overhead: the Figure-4 renderer with and without.

The obs-v2 design keeps the metrics registry on by default, which is
only tenable if instrumentation stays within a few percent of wall
clock.  The registry records at *block* granularity — one lock-protected
dict update per runtime-kernel call over thousands of strands — so the
per-strand cost is amortized to ~nothing; this benchmark measures that
claim on the heaviest end-to-end program we have, the Figure-4
curvature renderer (F, ∇F, ∇⊗∇F probed per ray step).

Outputs:

* ``results/metrics_overhead.json`` — the measured on/off wall times and
  the overhead ratio (EXPERIMENTS.md's "metrics overhead" row);
* ``results/metrics_run.json`` — the instrumented run's metrics JSON
  document (a CI artifact; render with ``python -m repro.obs report``);
* ``results/metrics_report.txt`` — the rendered report;
* one ``metrics_overhead`` row in ``results/history.jsonl``.

The in-test assertion is lenient (wall-clock noise on shared CI runners
is larger than the effect being measured); the committed-baseline gate
lives in ``benchmarks/regress.py``.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from conftest import SCALE, append_history, record

from repro.obs import format_report, metrics_doc
from repro.obs.metrics import write_metrics_json
from repro.programs import illust_vr

PAIRS = 9


def _renderer():
    # at full scale this matches the EXPERIMENTS.md acceptance
    # measurement (scale 0.5 ≈ 0.26s/run); the CI smoke scale shrinks it
    return illust_vr.make_program(
        precision="single",
        scale=max(0.12, 0.5 * SCALE),
        volume_size=48,
    )


def _one(prog, metrics):
    t0 = time.perf_counter()
    prog.run(metrics=metrics)
    return time.perf_counter() - t0


def _arm(prog, metrics):
    # best-of-2 inside each arm damps one-off scheduler spikes
    return min(_one(prog, metrics), _one(prog, metrics))


def test_metrics_overhead(benchmark):
    prog = _renderer()
    prog.run(max_steps=1)  # warm einsum caches / scratch pools
    prog.run(metrics=False)

    # back-to-back off/on pairs with alternating order: each pair's ratio
    # cancels slow machine drift, the median discards spike pairs
    ratios, offs, ons = [], [], []
    for i in range(PAIRS):
        if i % 2:
            t_on = _arm(prog, None)
            t_off = _arm(prog, False)
        else:
            t_off = _arm(prog, False)
            t_on = _arm(prog, None)
        offs.append(t_off)
        ons.append(t_on)
        ratios.append(t_on / t_off)
    overhead = statistics.median(ratios) - 1.0
    t_off, t_on = min(offs), min(ons)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # one more instrumented run to capture the artifact document
    res = prog.run()
    results_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "results")
    os.makedirs(results_dir, exist_ok=True)
    meta = {"program": "illust-vr (Figure 4)", "scale": SCALE,
            "wall_seconds": res.wall_time}
    write_metrics_json(res.metrics,
                       os.path.join(results_dir, "metrics_run.json"),
                       meta=meta)
    with open(os.path.join(results_dir, "metrics_report.txt"), "w") as fp:
        fp.write(format_report(metrics_doc(res.metrics, meta)) + "\n")

    print(f"\n\nMetrics overhead — Figure-4 renderer, median of {PAIRS} "
          f"paired ratios: {overhead:+.1%} "
          f"(best off {t_off:.3f}s, best on {t_on:.3f}s)")
    ops = sorted(
        (k for k in res.metrics.counters if k.startswith("op.")
         and k.endswith(".calls")),
        key=lambda k: -res.metrics.counters[k],
    )
    for k in ops:
        print(f"  {k} = {int(res.metrics.counters[k])}")

    # the ≤3% acceptance number comes from a quiet full-scale run
    # (EXPERIMENTS.md); on shared runners allow generous jitter but catch
    # anything pathological (e.g. per-strand instrumentation)
    assert overhead < 0.15, (
        f"always-on metrics cost {overhead:.1%} (> 15%) — instrumentation "
        "has left the per-block fast path"
    )

    payload = {
        "scale": SCALE,
        "pairs": PAIRS,
        "metrics_off_s": t_off,
        "metrics_on_s": t_on,
        "overhead": overhead,
        "note": "Figure-4 renderer; overhead = median over back-to-back "
        "off/on pair ratios (best-of-2 per arm) - 1",
    }
    record("metrics_overhead", payload)
    append_history("metrics_overhead", {
        "metrics_off_s": t_off,
        "metrics_on_s": t_on,
        "overhead": overhead,
    })
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "BENCH_metrics.json"), "w") as fp:
        json.dump(payload, fp, indent=2, default=float)
        fp.write("\n")
