"""Tests for the closed-form symmetric eigensystems (ridge3d substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensors import eigen_symmetric, evals, evecs

finite = st.floats(min_value=-50, max_value=50, allow_nan=False)


def sym(m):
    m = np.asarray(m, dtype=np.float64)
    return 0.5 * (m + np.swapaxes(m, -1, -2))


sym3 = arrays(np.float64, (3, 3), elements=finite).map(sym)
sym2 = arrays(np.float64, (2, 2), elements=finite).map(sym)


class TestEigenvalues3:
    @given(sym3)
    @settings(max_examples=100)
    def test_matches_numpy_descending(self, m):
        ref = np.linalg.eigvalsh(m)[::-1]
        got = evals(m)
        scale = max(1.0, float(np.max(np.abs(ref))))
        assert np.allclose(got, ref, atol=1e-8 * scale)

    def test_isotropic(self):
        assert np.allclose(evals(2.5 * np.eye(3)), 2.5)

    def test_diagonal(self):
        assert np.allclose(evals(np.diag([3.0, -1.0, 7.0])), [7.0, 3.0, -1.0])

    def test_descending_order(self):
        lam = evals(np.diag([1.0, 2.0, 3.0]))
        assert lam[0] >= lam[1] >= lam[2]

    def test_batched(self):
        rng = np.random.default_rng(3)
        ms = sym(rng.standard_normal((64, 3, 3)))
        ref = np.linalg.eigvalsh(ms)[..., ::-1]
        assert np.allclose(evals(ms), ref, atol=1e-8)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            evals(np.zeros((2, 3)))

    def test_rejects_4x4(self):
        with pytest.raises(ValueError):
            evals(np.eye(4))


class TestEigenvectors3:
    @given(sym3)
    @settings(max_examples=100)
    def test_eigen_equation(self, m):
        lam, v = eigen_symmetric(m)
        scale = max(1.0, float(np.max(np.abs(lam))))
        for i in range(3):
            assert np.allclose(m @ v[i], lam[i] * v[i], atol=1e-6 * scale)

    @given(sym3)
    @settings(max_examples=100)
    def test_orthonormal(self, m):
        v = evecs(m)
        assert np.allclose(v @ v.T, np.eye(3), atol=1e-7)

    def test_repeated_eigenvalue(self):
        # λ = (5, 5, 2): any orthonormal frame in the eigenplane works
        m = np.diag([5.0, 5.0, 2.0])
        lam, v = eigen_symmetric(m)
        assert np.allclose(lam, [5, 5, 2])
        assert np.allclose(v @ v.T, np.eye(3), atol=1e-10)
        for i in range(3):
            assert np.allclose(m @ v[i], lam[i] * v[i], atol=1e-10)

    def test_isotropic_gives_orthonormal_frame(self):
        v = evecs(np.eye(3))
        assert np.allclose(v @ v.T, np.eye(3), atol=1e-12)

    def test_batched_consistency(self):
        rng = np.random.default_rng(7)
        ms = sym(rng.standard_normal((32, 3, 3)))
        lam, v = eigen_symmetric(ms)
        err = np.einsum("nij,nkj->nki", ms, v) - lam[..., None] * v
        assert np.max(np.abs(err)) < 1e-6


class TestEigen2:
    @given(sym2)
    @settings(max_examples=100)
    def test_matches_numpy(self, m):
        ref = np.linalg.eigvalsh(m)[::-1]
        scale = max(1.0, float(np.max(np.abs(ref))))
        assert np.allclose(evals(m), ref, atol=1e-9 * scale)

    @given(sym2)
    @settings(max_examples=100)
    def test_eigen_equation(self, m):
        lam, v = eigen_symmetric(m)
        scale = max(1.0, float(np.max(np.abs(lam))))
        for i in range(2):
            assert np.allclose(m @ v[i], lam[i] * v[i], atol=1e-7 * scale)

    def test_identity(self):
        lam, v = eigen_symmetric(np.eye(2))
        assert np.allclose(lam, 1.0)
        assert np.allclose(v @ v.T, np.eye(2))

    def test_rotation_invariance(self):
        theta = 0.7
        c, s = np.cos(theta), np.sin(theta)
        r = np.array([[c, -s], [s, c]])
        m = r @ np.diag([4.0, 1.0]) @ r.T
        assert np.allclose(evals(m), [4.0, 1.0], atol=1e-12)


class TestAsymmetricInput:
    def test_symmetrized_first(self):
        """evals symmetrizes tiny probe round-off asymmetry."""
        m = np.diag([3.0, 2.0, 1.0])
        m[0, 1] = 1e-13  # asymmetric perturbation
        assert np.allclose(evals(m), [3.0, 2.0, 1.0], atol=1e-10)
