"""Scheduler equivalence and uniform-branch-guard tests.

The paper's execution model (§5.5) makes scheduling invisible to the
program: strand blocks index disjoint strand sets, so the sequential
loop nest, the persistent thread pool, and the shared-memory process
pool must all produce **bit-identical** results at a given block size.
The uniform-branch guards emitted by pygen (``if rt.any_lane(c):``) must
likewise be invisible: the HighIR reference interpreter — which always
executes both predicated arms — is the oracle.
"""

import numpy as np
import pytest

from repro.__main__ import main
from repro.core.codegen.interp import HighInterpreter, compile_high
from repro.core.driver import compile_program
from repro.errors import InputError
from repro.nrrd import write_nrrd
from repro.obs import Tracer
from repro.runtime import ops as rt
from repro.runtime.scheduler import ThreadScheduler, resolve_workers

#: probe-free program with mixed branching, deaths, and staggered
#: stabilization — exercises partial blocks and active-set shrinkage
BRANCHY = """
input int res = 12;
strand S (int i, int j) {
    real x = real(i);
    real y = real(j);
    real acc = 0.0;
    int n = 0;
    output real v = 0.0;
    update {
        if (x * y > 40.0) {
            acc += sqrt(x + y) * 0.25;
        } else {
            acc += 0.125 * x + 0.01 * y;
        }
        n += 1;
        if (acc > 9.0) die;
        if (n >= 3 + i % 7) {
            v = acc + 0.001 * real(n);
            stabilize;
        }
    }
}
initially [ S(i, j) | i in 0 .. res-1, j in 0 .. res-1 ];
"""

#: image-probing program — under the process scheduler the payload
#: travels through a shared-memory block
PROBING = """
input real scale = 1.5;
image(2)[] img = load("data.nrrd");
field#1(2)[] F = img ⊛ ctmr;
strand S (int i, int j) {
    vec2 p = [real(i), real(j)];
    output real v = 0.0;
    update {
        if (inside(p, F)) v = scale * F(p) + 0.25 * (∇F(p) • [1.0, 0.5]);
        stabilize;
    }
}
initially [ S(i, j) | i in 0 .. 9, j in 0 .. 9 ];
"""


def _results_equal(a, b):
    assert a.steps == b.steps
    assert a.num_strands == b.num_strands
    assert a.num_stable == b.num_stable
    assert a.num_died == b.num_died
    assert set(a.outputs) == set(b.outputs)
    for key in a.outputs:
        assert a.outputs[key].dtype == b.outputs[key].dtype, key
        assert np.array_equal(a.outputs[key], b.outputs[key]), key


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("block_size", [1, 64, 4096])
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("scheduler", ["thread", "process"])
    def test_bit_identical_to_sequential(self, scheduler, workers, block_size):
        prog = compile_program(BRANCHY)
        base = prog.run(block_size=block_size)
        res = prog.run(workers=workers, block_size=block_size,
                       scheduler=scheduler)
        _results_equal(res, base)

    def test_process_scheduler_with_shared_image(self, noise32):
        prog = compile_program(PROBING)
        prog.bind_image("img", noise32)
        base = prog.run()
        res = prog.run(workers=2, scheduler="process", block_size=16)
        _results_equal(res, base)

    def test_explicit_seq_scheduler(self):
        prog = compile_program(BRANCHY)
        _results_equal(prog.run(scheduler="seq"), prog.run())

    def test_unknown_scheduler_rejected(self):
        prog = compile_program(BRANCHY)
        with pytest.raises(InputError, match="scheduler"):
            prog.run(scheduler="gpu")

    def test_process_workers_attributed(self):
        prog = compile_program(BRANCHY)
        tracer = Tracer()
        prog.run(workers=2, scheduler="process", block_size=16, tracer=tracer)
        tids = {ev.tid for ev in tracer.spans("block")}
        assert tids <= {"worker-0", "worker-1"}
        per_step = tracer.block_workers()
        assert all(all(t.startswith("worker-") for t in step) for step in per_step)

    def test_process_error_propagates(self):
        from repro.errors import RuntimeErrorD

        prog = compile_program(BRANCHY)
        # corrupt the generated source so workers fail during setup
        broken = prog.generated_source + "\nraise ValueError('boom')\n"
        object.__setattr__(prog, "generated_source", broken)
        with pytest.raises(RuntimeErrorD, match="boom"):
            prog.run(workers=2, scheduler="process")


class TestWorkersOption:
    def test_auto_resolves_to_cpu_count(self):
        import os

        assert resolve_workers("auto") == max(1, os.cpu_count() or 1)

    def test_plain_integers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("2") == 2

    @pytest.mark.parametrize("bad", [0, -1, "0", "-4"])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(InputError, match="workers"):
            resolve_workers(bad)

    def test_garbage_rejected(self):
        with pytest.raises(InputError, match="auto"):
            resolve_workers("many")

    def test_program_run_rejects_zero_workers(self):
        prog = compile_program(BRANCHY)
        with pytest.raises(InputError, match="workers"):
            prog.run(workers=0)

    def test_program_run_accepts_auto(self):
        prog = compile_program(BRANCHY)
        res = prog.run(workers="auto")
        assert res.num_strands == 144


class TestCliWorkers:
    @pytest.fixture
    def workspace(self, tmp_path):
        src = tmp_path / "prog.diderot"
        src.write_text(BRANCHY, encoding="utf-8")
        return tmp_path

    def test_workers_auto(self, workspace, capsys):
        code = main([str(workspace / "prog.diderot"), "--workers", "auto",
                     "--out", str(workspace / "o")])
        assert code == 0
        assert "144 strands" in capsys.readouterr().out

    def test_process_scheduler_flag(self, workspace, capsys):
        code = main([str(workspace / "prog.diderot"), "--scheduler", "process",
                     "--workers", "2", "--out", str(workspace / "o")])
        assert code == 0
        assert "144 strands" in capsys.readouterr().out

    @pytest.mark.parametrize("bad", ["0", "-2", "lots"])
    def test_bad_workers_clean_error(self, workspace, bad, capsys):
        code = main([str(workspace / "prog.diderot"), "--workers", bad,
                     "--out", str(workspace / "o")])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "workers" in err
        assert "Traceback" not in err


class TestThreadPoolPersistence:
    def test_workers_reused_across_steps(self):
        sched = ThreadScheduler(3)
        try:
            idents_before = {t.ident for t in sched._threads}
            for step in range(5):
                blocks = [np.arange(i, i + 4) for i in range(0, 32, 4)]
                results, times = sched.run_step(blocks, lambda b: int(b.sum()),
                                                step=step)
                assert results == [int(b.sum()) for b in blocks]
                assert len(times) == len(blocks)
            assert {t.ident for t in sched._threads} == idents_before
            assert all(t.is_alive() for t in sched._threads)
        finally:
            sched.close()

    def test_last_block_workers_filled(self):
        sched = ThreadScheduler(2)
        try:
            blocks = [np.arange(3)] * 7
            sched.run_step(blocks, lambda b: None)
            assert len(sched.last_block_workers) == 7
            assert all(w in (0, 1) for w in sched.last_block_workers)
        finally:
            sched.close()

    def test_error_propagates_and_pool_survives(self):
        sched = ThreadScheduler(2)
        try:
            def boom(block):
                raise ValueError("bad block")

            with pytest.raises(ValueError, match="bad block"):
                sched.run_step([np.arange(2)] * 4, boom)
            # the pool is still usable after an error
            results, _ = sched.run_step([np.arange(2)], lambda b: 7)
            assert results == [7]
        finally:
            sched.close()

    def test_closed_pool_rejects_work(self):
        sched = ThreadScheduler(2)
        sched.close()
        sched.close()  # idempotent
        with pytest.raises(RuntimeError):
            sched.run_step([np.arange(2)], lambda b: None)
        assert not any(t.is_alive() for t in sched._threads)


GUARD_CASES = {
    # every lane takes the then arm → the else arm never runs
    "all-true": "if (x >= 0.0) { w = x * 2.0 + 1.0; } else { w = -x; }",
    # no lane takes the then arm → it never runs
    "all-false": "if (x < -1.0) { w = sqrt(x - 100.0); } else { w = x + 0.5; }",
    # a genuine per-lane mix → both arms run, φ selects
    "mixed": "if (x > 5.0) { w = x - 5.0; } else { w = 0.1 * x; }",
}


def _guard_source(branch: str) -> str:
    return f"""
    strand S (int i) {{
        real x = real(i);
        output real w = 0.0;
        update {{
            {branch}
            stabilize;
        }}
    }}
    initially [ S(i) | i in 0 .. 11 ];
    """


class TestUniformBranchGuards:
    @pytest.mark.parametrize("case", list(GUARD_CASES))
    def test_matches_high_interpreter(self, case):
        src = _guard_source(GUARD_CASES[case])
        hp = compile_high(src)
        interp = HighInterpreter(hp, {})
        g = list(interp.call(hp.globals_func, []))
        params = interp.call(hp.seed_func, g + [np.arange(12)])
        state = interp.call(hp.init_func, g + list(params))
        out = interp.call(hp.update_func, g + list(state))
        ref = out[hp.update_func.result_names.index("w")]

        prog = compile_program(src)
        res = prog.run()
        assert np.allclose(res.outputs["w"], ref, atol=1e-12), case

    def test_uniform_arms_are_skipped(self):
        rt.reset_guard_stats()
        prog = compile_program(_guard_source(GUARD_CASES["all-false"]))
        prog.run()
        stats = rt.guard_stats()
        assert stats["checked"] > 0
        assert stats["skipped"] > 0  # the dead then-arm never executed

    def test_mixed_arms_are_not_skipped(self):
        prog = compile_program(_guard_source(GUARD_CASES["mixed"]))
        rt.reset_guard_stats()
        prog.run()
        stats = rt.guard_stats()
        assert stats["checked"] > 0
        assert stats["skipped"] == 0

    def test_dead_lane_heavy_program_skips_work(self, hand32):
        """vr-lite's exit-the-volume branch: once every ray in a block has
        left the volume, the probe arm is skipped entirely."""
        from repro.programs import vr_lite

        prog = vr_lite.make_program(scale=0.12, volume_size=32)
        rt.reset_guard_stats()
        res = prog.run()
        stats = rt.guard_stats()
        assert res.steps > 1
        assert stats["skipped"] > 0
        assert stats["skipped"] / stats["checked"] > 0.1


class TestInPlaceFastPath:
    def test_single_block_matches_many_blocks(self):
        prog = compile_program(BRANCHY)
        # 4096 ≫ 144 strands → every step is one full block (fast path);
        # tiny blocks force the gather/scatter path
        fast = prog.run(block_size=4096)
        slow = prog.run(block_size=144)
        _results_equal(fast, slow)

    def test_outputs_writeable_and_private(self):
        prog = compile_program(BRANCHY)
        res = prog.run(block_size=4096)
        arrs = list(res.outputs.values())
        for arr in arrs:
            assert arr.flags.writeable
        for i, a in enumerate(arrs):
            for b in arrs[i + 1:]:
                assert not np.may_share_memory(a, b)


def test_write_nrrd_roundtrip_under_process(tmp_path, noise32):
    """End-to-end CLI: compile, run under the process scheduler, save."""
    src = tmp_path / "prog.diderot"
    src.write_text(PROBING, encoding="utf-8")
    write_nrrd(str(tmp_path / "data.nrrd"), noise32)
    out = str(tmp_path / "res")
    code = main([str(src), "--scheduler", "process", "--workers", "2",
                 "--out", out])
    assert code == 0
    from repro.nrrd import read_nrrd

    img = read_nrrd(f"{out}-v.nrrd")
    assert img.sizes == (10, 10)
