"""The differential fuzzer: generator, N-way agreement, shrinking."""

from __future__ import annotations

import numpy as np

from repro.core.verify.fuzz import (
    ProgramGen,
    differential_check,
    fuzz,
    render_program,
    render_stmts,
    shrink_failure,
)


def _count_stmts(stmts) -> int:
    n = 0
    for s in stmts:
        if isinstance(s, str):
            n += 1
        else:
            _, _, then, els = s
            n += 1 + _count_stmts(then) + _count_stmts(els or [])
    return n


class TestGenerator:
    def test_deterministic(self):
        assert ProgramGen(5).program() == ProgramGen(5).program()

    def test_seeds_differ(self):
        assert ProgramGen(1).program() != ProgramGen(2).program()

    def test_generates_probes(self):
        probed = sum("F(" in ProgramGen(s).program() for s in range(40))
        assert probed > 20

    def test_generates_control_flow(self):
        branched = sum("if (" in ProgramGen(s).program() for s in range(40))
        assert branched > 15

    def test_tree_renders_to_same_program(self):
        g = ProgramGen(9)
        tree = g.program_tree()
        assert render_program(tree) == ProgramGen(9).program()


class TestDifferential:
    def test_fixed_seed_smoke(self):
        # the CI job runs 50 programs across all three schedulers; keep
        # the in-suite copy lighter but over the same generator
        report = fuzz(n=15, seed=0, schedulers=("seq", "thread"))
        assert report.ok, "\n".join(
            f"seed {f.seed}: {f.message}\n{f.minimized}" for f in report.failures
        )

    def test_process_scheduler_included(self):
        report = fuzz(n=4, seed=100)
        assert report.schedulers == ("seq", "thread", "process")
        assert report.ok

    def test_check_returns_none_on_agreement(self):
        src = ProgramGen(0).program()
        assert differential_check(src, schedulers=("seq",)) is None


class TestShrinker:
    def test_removes_irrelevant_statements(self):
        tree = [
            "x += 1.0;",
            "v = [2.0, 3.0];",
            ("if", "x < 0.0", ["x = 9.0;"], ["x -= 0.5;"]),
            "x *= 2.0;",
        ]
        # pretend the bug needs only the last statement
        small = shrink_failure(tree, lambda t: "x *= 2.0;" in render_stmts(t))
        assert _count_stmts(small) == 1

    def test_hoists_if_arms(self):
        tree = [("if", "x < 0.0", ["x = 1.0;", "x += 2.0;"], None)]
        small = shrink_failure(tree, lambda t: "x += 2.0;" in render_stmts(t))
        assert small == ["x += 2.0;"]

    def test_skips_reductions_that_stop_failing(self):
        tree = ["real t0 = 2.0;", "x = t0;"]
        # both statements are required: dropping either stops the "failure"
        # (stands in for a reduction that no longer compiles)
        pred = lambda t: "real t0 = 2.0;" in t and "x = t0;" in t
        assert shrink_failure(tree, pred) == tree

    def test_terminates_on_never_failing(self):
        tree = ProgramGen(3).program_tree()
        assert shrink_failure(tree, lambda t: False) == tree


class TestHarnessCatchesBugs:
    def test_scheduler_divergence_detected(self, monkeypatch):
        """Sanity for the oracle itself: a broken scheduler is flagged."""
        import repro.core.verify.fuzz as fz

        real = fz._run_scheduler

        def broken(src, image, scheduler, fuse=True, backend="numpy",
                   precision="double"):
            out = real(src, image, scheduler, fuse, backend, precision)
            if scheduler == "thread":
                out = {k: v + (1e-6 if v.dtype.kind == "f" else 1)
                       for k, v in out.items()}
            return out

        monkeypatch.setattr(fz, "_run_scheduler", broken)
        msg = fz.differential_check(ProgramGen(0).program(),
                                    schedulers=("seq", "thread"))
        assert msg is not None and "thread" in msg

    def test_interpreter_divergence_detected(self, monkeypatch):
        import repro.core.verify.fuzz as fz

        real = fz.interpret_program

        def broken(src, image):
            out = real(src, image)
            return {k: v + 1e-3 for k, v in out.items()}

        monkeypatch.setattr(fz, "interpret_program", broken)
        msg = fz.differential_check(ProgramGen(0).program(),
                                    schedulers=("seq",))
        assert msg is not None and "interpreter" in msg


def test_cli_fuzz_exit_status(capsys):
    from repro.core.verify.__main__ import main

    assert main(["fuzz", "--n", "3", "--seed", "0",
                 "--schedulers", "seq,thread"]) == 0
    assert "all agree" in capsys.readouterr().out


def test_outputs_are_real_arrays():
    from repro.core.verify.fuzz import _phantom, _run_scheduler

    out = _run_scheduler(ProgramGen(2).program(), _phantom(), "seq")
    assert set(out) == {"x", "v"}
    assert all(isinstance(v, np.ndarray) for v in out.values())
