"""Tests for the small-tensor operation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensors import (
    cross,
    determinant,
    dot,
    frobenius,
    identity,
    lerp,
    norm,
    normalize,
    outer,
    trace,
    transpose,
)

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)
vec3 = arrays(np.float64, (3,), elements=finite)
mat3 = arrays(np.float64, (3, 3), elements=finite)


class TestDot:
    def test_vector_vector(self):
        assert dot(np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0])) == 32.0

    def test_matrix_vector(self):
        m = np.array([[1.0, 0.0], [0.0, 2.0]])
        assert np.allclose(dot(m, np.array([3.0, 4.0])), [3.0, 8.0])

    def test_matrix_matrix(self):
        a = np.arange(4.0).reshape(2, 2)
        b = np.eye(2)
        assert np.allclose(dot(a, b), a)

    def test_batched(self):
        u = np.ones((10, 3))
        v = np.full((10, 3), 2.0)
        assert np.allclose(dot(u, v), 6.0)

    @given(vec3, vec3)
    @settings(max_examples=40)
    def test_commutative_on_vectors(self, u, v):
        assert dot(u, v) == pytest.approx(dot(v, u), rel=1e-12, abs=1e-9)


class TestCross:
    def test_right_handed_basis(self):
        e = np.eye(3)
        assert np.allclose(cross(e[0], e[1]), e[2])
        assert np.allclose(cross(e[1], e[2]), e[0])

    def test_2d_scalar_cross(self):
        assert cross(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    @given(vec3, vec3)
    @settings(max_examples=40)
    def test_orthogonal_to_operands(self, u, v):
        w = cross(u, v)
        assert float(dot(w, u)) == pytest.approx(0.0, abs=1e-6)
        assert float(dot(w, v)) == pytest.approx(0.0, abs=1e-6)

    @given(vec3, vec3)
    @settings(max_examples=40)
    def test_antisymmetric(self, u, v):
        assert np.allclose(cross(u, v), -cross(v, u), atol=1e-9)


class TestOuter:
    def test_shape(self):
        assert outer(np.zeros(3), np.zeros(2)).shape == (3, 2)

    def test_values(self):
        got = outer(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert np.allclose(got, [[3, 4], [6, 8]])

    @given(vec3, vec3)
    @settings(max_examples=40)
    def test_trace_of_outer_is_dot(self, u, v):
        assert float(trace(outer(u, v))) == pytest.approx(float(dot(u, v)), rel=1e-9, abs=1e-9)


class TestNorm:
    def test_scalar_norm_is_abs(self):
        assert norm(-3.5, order=0) == 3.5

    def test_vector_norm(self):
        assert norm(np.array([3.0, 4.0])) == 5.0

    def test_frobenius(self):
        assert frobenius(np.array([[3.0, 0.0], [0.0, 4.0]])) == 5.0

    @given(vec3, finite)
    @settings(max_examples=40)
    def test_homogeneous(self, v, s):
        assert float(norm(s * v)) == pytest.approx(abs(s) * float(norm(v)), rel=1e-9, abs=1e-6)


class TestNormalize:
    def test_unit_result(self):
        v = normalize(np.array([3.0, 4.0]))
        assert np.allclose(v, [0.6, 0.8])

    def test_zero_vector_stays_zero(self):
        assert np.allclose(normalize(np.zeros(3)), 0.0)

    @given(vec3)
    @settings(max_examples=40)
    def test_length_one_or_zero(self, v):
        n = float(norm(normalize(v)))
        assert n == pytest.approx(1.0, abs=1e-9) or n == 0.0


class TestMatrixOps:
    def test_trace(self):
        assert trace(np.diag([1.0, 2.0, 3.0])) == 6.0

    def test_transpose(self):
        m = np.arange(6.0).reshape(2, 3)
        assert transpose(m).shape == (3, 2)

    @given(mat3)
    @settings(max_examples=40)
    def test_det_matches_numpy(self, m):
        # hypothesis happily generates singular matrices, for which LAPACK's
        # det raises divide-by-zero/invalid warnings while computing the
        # reference value; those are expected here, not a test failure
        with np.errstate(divide="ignore", invalid="ignore"):
            expected = float(np.linalg.det(m))
        assert float(determinant(m)) == pytest.approx(
            expected, rel=1e-6, abs=1e-3
        )

    def test_det_2x2(self):
        assert determinant(np.array([[1.0, 2.0], [3.0, 4.0]])) == -2.0

    def test_det_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            determinant(np.zeros((2, 3)))

    def test_det_rejects_large(self):
        with pytest.raises(ValueError):
            determinant(np.eye(4))

    def test_identity(self):
        assert np.array_equal(identity(3), np.eye(3))


class TestLerp:
    def test_endpoints(self):
        assert lerp(2.0, 10.0, 0.0) == 2.0
        assert lerp(2.0, 10.0, 1.0) == 10.0

    def test_midpoint_vectors(self):
        got = lerp(np.zeros(3), np.ones(3), 0.5)
        assert np.allclose(got, 0.5)
