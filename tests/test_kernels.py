"""Tests for the built-in convolution kernels (paper §2, §3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import Kernel, bspln3, bspln5, ctmr, kernel_by_name, tent
from repro.kernels.library import bspline
from repro.kernels.piecewise import Polynomial

ALL_KERNELS = [tent, ctmr, bspln3, bspln5]

unit_fracs = st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False)


class TestLibrary:
    def test_supports(self):
        assert tent.support == 1
        assert ctmr.support == 2
        assert bspln3.support == 2
        assert bspln5.support == 3

    def test_continuities(self):
        assert tent.continuity == 0
        assert ctmr.continuity == 1
        assert bspln3.continuity == 2
        assert bspln5.continuity == 4

    def test_lookup_by_name(self):
        assert kernel_by_name("ctmr") is ctmr

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="built-ins"):
            kernel_by_name("gaussian")

    def test_interpolating(self):
        # tent and ctmr interpolate; B-splines do not (paper §3.1)
        assert tent.is_interpolating()
        assert ctmr.is_interpolating()
        assert not bspln3.is_interpolating()
        assert not bspln5.is_interpolating()

    @pytest.mark.parametrize("kern", ALL_KERNELS, ids=lambda k: k.name)
    def test_partition_of_unity(self, kern):
        assert kern.partition_of_unity_error() < 1e-12

    def test_bspline_construction_matches_handwritten(self):
        for built, hand in [(bspline(1), tent), (bspline(3), bspln3)]:
            for p, q in zip(built.pieces, hand.pieces):
                assert np.allclose(p.coeffs, q.coeffs)

    def test_bspline_rejects_even_degree(self):
        with pytest.raises(ValueError):
            bspline(2)

    def test_bspline_nonnegative(self):
        xs = np.linspace(-3, 3, 601)
        assert np.all(bspln5(xs) >= -1e-12)

    def test_bspline_integral_is_one(self):
        xs = np.linspace(-3, 3, 60001)
        assert np.trapezoid(bspln5(xs), xs) == pytest.approx(1.0, abs=1e-6)


class TestEvaluation:
    @pytest.mark.parametrize("kern", ALL_KERNELS, ids=lambda k: k.name)
    def test_zero_outside_support(self, kern):
        s = kern.support
        assert kern(float(s)) == 0.0
        assert kern(float(-s) - 0.5) == 0.0
        assert kern(float(s) + 3.0) == 0.0

    def test_tent_shape(self):
        assert tent(0.0) == 1.0
        assert tent(0.5) == 0.5
        assert tent(-0.5) == 0.5

    def test_ctmr_known_values(self):
        assert float(ctmr(0.0)) == pytest.approx(1.0)
        assert float(ctmr(1.0)) == pytest.approx(0.0)
        assert float(ctmr(0.5)) == pytest.approx(1 - 2.5 * 0.25 + 1.5 * 0.125)

    def test_bspln3_known_values(self):
        assert float(bspln3(0.0)) == pytest.approx(2.0 / 3.0)
        assert float(bspln3(1.0)) == pytest.approx(1.0 / 6.0)
        assert float(bspln3(2.0)) == 0.0

    @pytest.mark.parametrize("kern", ALL_KERNELS, ids=lambda k: k.name)
    def test_even_symmetry(self, kern):
        xs = np.linspace(0.01, kern.support - 0.01, 37)
        assert np.allclose(kern(xs), kern(-xs), atol=1e-12)


class TestContinuity:
    @pytest.mark.parametrize("kern", ALL_KERNELS, ids=lambda k: k.name)
    def test_continuous_across_knots(self, kern):
        """A kernel#k and its first k derivatives match at every knot."""
        eps = 1e-7
        for level in range(kern.continuity + 1):
            dk = kern.derivative(level)
            for knot in range(-kern.support + 1, kern.support):
                left = float(dk(knot - eps))
                right = float(dk(knot + eps))
                assert left == pytest.approx(right, abs=1e-4), (
                    f"{kern.name} deriv {level} jumps at {knot}"
                )

    def test_derivative_decrements_continuity(self):
        assert bspln3.derivative().continuity == 1
        assert bspln3.derivative(3).continuity == -1

    def test_derivative_cached(self):
        assert bspln3.derivative() is bspln3.derivative()
        assert bspln3.derivative(2) is bspln3.derivative().derivative()


class TestDerivatives:
    @pytest.mark.parametrize("kern", [ctmr, bspln3, bspln5], ids=lambda k: k.name)
    @given(x=st.floats(min_value=-1.9, max_value=1.9, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_derivative_matches_finite_difference(self, kern, x):
        h = 1e-6
        fd = (float(kern(x + h)) - float(kern(x - h))) / (2 * h)
        assert float(kern.derivative()(x)) == pytest.approx(fd, abs=1e-4)

    def test_derivative_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            bspln3.derivative(-1)

    def test_derivative_of_even_is_odd(self):
        d = bspln3.derivative()
        xs = np.linspace(0.05, 1.95, 20)
        assert np.allclose(d(xs), -d(-xs), atol=1e-12)


class TestWeights:
    @pytest.mark.parametrize("kern", ALL_KERNELS, ids=lambda k: k.name)
    @given(f=unit_fracs)
    @settings(max_examples=30, deadline=None)
    def test_weight_polynomials_match_direct_evaluation(self, kern, f):
        ws = kern.weights(np.array([f]))[0]
        for w, i in zip(ws, kern.offsets()):
            assert w == pytest.approx(float(kern(f - i)), abs=1e-12)

    @pytest.mark.parametrize("kern", ALL_KERNELS, ids=lambda k: k.name)
    def test_offsets_cover_support(self, kern):
        offs = list(kern.offsets())
        assert offs[0] == 1 - kern.support
        assert offs[-1] == kern.support
        assert len(offs) == 2 * kern.support

    @given(f=unit_fracs)
    @settings(max_examples=30)
    def test_derivative_weights_sum_to_zero(self, f):
        """∂/∂x of the partition of unity: derivative weights sum to 0."""
        ws = bspln3.derivative().weights(np.array([f]))[0]
        assert float(np.sum(ws)) == pytest.approx(0.0, abs=1e-12)

    def test_weights_shape_batched(self):
        f = np.random.default_rng(0).uniform(0, 1, (5, 7))
        assert bspln3.weights(f).shape == (5, 7, 4)


class TestValidation:
    def test_bad_piece_count(self):
        with pytest.raises(ValueError, match="pieces"):
            Kernel("bad", 2, 0, [Polynomial.of([1.0])])

    def test_bad_support(self):
        with pytest.raises(ValueError, match="support"):
            Kernel("bad", 0, 0, [])
