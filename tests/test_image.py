"""Tests for oriented images (the M / M⁻ᵀ machinery of paper §5.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.image import Image, Orientation


def _invertible(m):
    # det of a near-singular random draw can emit divide-by-zero /
    # overflow RuntimeWarnings, which filterwarnings=error would turn
    # into flaky generation failures — we only care about the magnitude
    with np.errstate(all="ignore"):
        return abs(np.linalg.det(m)) > 1e-3


orient3 = st.builds(
    Orientation,
    arrays(np.float64, (3, 3),
           elements=st.floats(min_value=-3, max_value=3, allow_nan=False)).filter(_invertible),
    arrays(np.float64, (3,),
           elements=st.floats(min_value=-10, max_value=10, allow_nan=False)),
)


class TestOrientation:
    def test_axis_aligned(self):
        o = Orientation.axis_aligned(3, spacing=2.0, origin=[1, 2, 3])
        assert np.allclose(o.to_world([[0, 0, 0]]), [[1, 2, 3]])
        assert np.allclose(o.to_world([[1, 1, 1]]), [[3, 4, 5]])

    def test_per_axis_spacing(self):
        o = Orientation.axis_aligned(2, spacing=[0.5, 2.0])
        assert np.allclose(o.to_world([[2, 2]]), [[1.0, 4.0]])

    @given(orient3)
    @settings(max_examples=50)
    def test_world_index_roundtrip(self, o):
        pts = np.array([[0.0, 0.0, 0.0], [1.5, -2.0, 3.0], [10.0, 0.1, -4.0]])
        back = o.to_index(o.to_world(pts))
        assert np.allclose(back, pts, atol=1e-6)

    @given(orient3)
    @settings(max_examples=50)
    def test_gradient_transform_is_inverse_transpose(self, o):
        g = o.gradient_transform
        assert np.allclose(g, np.linalg.inv(o.world_jacobian).T, atol=1e-9)

    def test_non_axis_aligned_detection(self):
        sheared = Orientation(np.array([[1.0, 0.1], [0.0, 1.0]]), np.zeros(2))
        assert not sheared.is_axis_aligned()
        assert Orientation.axis_aligned(2).is_axis_aligned()

    def test_rejects_singular(self):
        with pytest.raises(ValueError, match="singular"):
            Orientation(np.zeros((2, 2)), np.zeros(2))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Orientation(np.eye(3), np.zeros(2))
        with pytest.raises(ValueError):
            Orientation(np.zeros((2, 3)), np.zeros(2))

    def test_equality(self):
        a = Orientation.axis_aligned(2, 1.0)
        b = Orientation.axis_aligned(2, 1.0)
        c = Orientation.axis_aligned(2, 2.0)
        assert a == b and a != c

    def test_chirality_preserved(self):
        """World jacobian columns are the axis direction vectors."""
        dirs = np.array([[0.0, 1.0], [1.0, 0.0]])  # swapped axes
        o = Orientation(dirs, np.zeros(2))
        assert np.allclose(o.to_world([[1.0, 0.0]]), [[0.0, 1.0]])


class TestImage:
    def test_scalar_inference(self):
        img = Image(np.zeros((4, 5, 6)))
        assert img.dim == 3 and img.tensor_shape == () and img.sizes == (4, 5, 6)

    def test_vector_image(self):
        img = Image(np.zeros((4, 5, 2)), dim=2, tensor_shape=(2,))
        assert img.sizes == (4, 5)
        assert img.tensor_order == 1

    def test_infer_tensor_shape_from_dim(self):
        img = Image(np.zeros((4, 5, 3)), dim=2)
        assert img.tensor_shape == (3,)

    def test_dtype_conversion(self):
        img = Image(np.zeros((3, 3), dtype=np.int16))
        assert img.data.dtype == np.float64
        assert img.astype(np.float32).data.dtype == np.float32

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            Image(np.zeros((2, 2, 2, 2)), dim=4)

    def test_rejects_axis_count_mismatch(self):
        with pytest.raises(ValueError):
            Image(np.zeros((4, 5)), dim=2, tensor_shape=(3,))

    def test_rejects_tensor_shape_mismatch(self):
        with pytest.raises(ValueError):
            Image(np.zeros((4, 5, 2)), dim=2, tensor_shape=(3,))

    def test_rejects_orientation_dim_mismatch(self):
        with pytest.raises(ValueError):
            Image(np.zeros((4, 4)), orientation=Orientation.axis_aligned(3))

    def test_index_bounds(self):
        img = Image(np.zeros((10, 20)))
        lo, hi = img.index_bounds(support=2)
        assert list(lo) == [1, 1]
        assert list(hi) == [7, 17]

    def test_index_bounds_tent(self):
        img = Image(np.zeros(8), dim=1)
        lo, hi = img.index_bounds(support=1)
        assert list(lo) == [0] and list(hi) == [6]

    def test_repr(self):
        assert "dim=2" in repr(Image(np.zeros((3, 4))))
