"""Tests for the NRRD reader/writer (paper §5.5's image I/O substrate)."""

import gzip
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NrrdError
from repro.image import Image, Orientation
from repro.nrrd import read_nrrd, read_nrrd_header, write_nrrd


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestRoundTrip:
    @pytest.mark.parametrize("encoding", ["raw", "gzip", "ascii"])
    def test_scalar_3d(self, tmp_path, rng, encoding):
        img = Image(rng.standard_normal((5, 6, 7)))
        path = str(tmp_path / "t.nrrd")
        write_nrrd(path, img, encoding=encoding)
        back = read_nrrd(path)
        assert back.dim == 3 and back.sizes == (5, 6, 7)
        assert np.allclose(back.data, img.data)

    def test_orientation_preserved(self, tmp_path, rng):
        orient = Orientation(
            np.array([[0.5, 0.0, 0.0], [0.0, 0.7, 0.1], [0.0, 0.0, 0.9]]),
            np.array([-1.0, 2.0, 3.0]),
        )
        img = Image(rng.standard_normal((4, 4, 4)), orientation=orient)
        path = str(tmp_path / "t.nrrd")
        write_nrrd(path, img)
        assert read_nrrd(path).orientation == orient

    def test_vector_image(self, tmp_path, rng):
        img = Image(rng.standard_normal((6, 7, 2)), dim=2, tensor_shape=(2,))
        path = str(tmp_path / "v.nrrd")
        write_nrrd(path, img, encoding="gzip")
        back = read_nrrd(path)
        assert back.dim == 2 and back.tensor_shape == (2,)
        assert np.allclose(back.data, img.data)

    def test_matrix_image(self, tmp_path, rng):
        img = Image(rng.standard_normal((4, 5, 2, 2)), dim=2, tensor_shape=(2, 2))
        path = str(tmp_path / "m.nrrd")
        write_nrrd(path, img)
        back = read_nrrd(path)
        assert back.tensor_shape == (2, 2)
        assert np.allclose(back.data, img.data)

    @pytest.mark.parametrize("dtype", [np.uint8, np.int16, np.uint16, np.int32, np.float32, np.float64])
    def test_sample_types(self, tmp_path, rng, dtype):
        data = (rng.uniform(0, 100, (4, 5))).astype(dtype)
        img = Image(data.astype(np.float64))
        path = str(tmp_path / "d.nrrd")
        write_nrrd(path, img, dtype=dtype)
        back = read_nrrd(path)
        assert np.allclose(back.data, data.astype(np.float64))

    def test_bare_array(self, tmp_path, rng):
        arr = rng.standard_normal((3, 4))
        path = str(tmp_path / "b.nrrd")
        write_nrrd(path, arr)
        back = read_nrrd(path)
        assert back.dim == 2 and np.allclose(back.data, arr)

    def test_1d(self, tmp_path):
        arr = np.arange(9.0)
        path = str(tmp_path / "o.nrrd")
        write_nrrd(path, arr)
        assert np.allclose(read_nrrd(path).data, arr)

    @given(
        shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
        encoding=st.sampled_from(["raw", "gzip", "ascii"]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, shape, encoding, seed):
        import tempfile

        data = np.random.default_rng(seed).standard_normal(shape)
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "p.nrrd")
            write_nrrd(path, Image(data), encoding=encoding)
            assert np.allclose(read_nrrd(path).data, data)


class TestHandWrittenHeaders:
    def _write(self, tmp_path, header: str, payload: bytes) -> str:
        path = str(tmp_path / "h.nrrd")
        with open(path, "wb") as fp:
            fp.write(header.encode("ascii"))
            fp.write(payload)
        return path

    def test_minimal_header(self, tmp_path):
        data = np.arange(6, dtype="<f4")
        path = self._write(
            tmp_path,
            "NRRD0001\ntype: float\ndimension: 2\nsizes: 3 2\n"
            "endian: little\nencoding: raw\n\n",
            data.tobytes(),
        )
        img = read_nrrd(path)
        # NRRD axis 0 (size 3) is fastest
        assert img.sizes == (3, 2)
        assert img.data[1, 0] == 1.0
        assert img.data[0, 1] == 3.0

    def test_comments_and_keyvalues_ignored(self, tmp_path):
        data = np.zeros(4, dtype="<f4")
        path = self._write(
            tmp_path,
            "NRRD0004\n# a comment\ntype: float\ndimension: 1\nsizes: 4\n"
            "endian: little\nmykey:=myvalue\nencoding: raw\n\n",
            data.tobytes(),
        )
        assert read_nrrd(path).sizes == (4,)

    def test_big_endian(self, tmp_path):
        data = np.arange(4, dtype=">i2")
        path = self._write(
            tmp_path,
            "NRRD0001\ntype: short\ndimension: 1\nsizes: 4\n"
            "endian: big\nencoding: raw\n\n",
            data.tobytes(),
        )
        assert np.allclose(read_nrrd(path).data, [0, 1, 2, 3])

    def test_spacings(self, tmp_path):
        data = np.zeros(4, dtype="<f8")
        path = self._write(
            tmp_path,
            "NRRD0001\ntype: double\ndimension: 1\nsizes: 4\n"
            "endian: little\nspacings: 0.5\nencoding: raw\n\n",
            data.tobytes(),
        )
        img = read_nrrd(path)
        assert np.allclose(img.orientation.directions, [[0.5]])

    def test_kinds_classify_axes(self, tmp_path):
        data = np.arange(12, dtype="<f4")
        path = self._write(
            tmp_path,
            "NRRD0004\ntype: float\ndimension: 2\nsizes: 3 4\n"
            "endian: little\nkinds: vector domain\nencoding: raw\n\n",
            data.tobytes(),
        )
        img = read_nrrd(path)
        assert img.dim == 1 and img.tensor_shape == (3,)

    def test_detached_data_file(self, tmp_path):
        data = np.arange(6, dtype="<f4")
        with open(tmp_path / "payload.raw", "wb") as fp:
            fp.write(data.tobytes())
        path = str(tmp_path / "h.nhdr")
        with open(path, "w") as fp:
            fp.write(
                "NRRD0004\ntype: float\ndimension: 1\nsizes: 6\n"
                "endian: little\nencoding: raw\ndata file: payload.raw\n\n"
            )
        assert np.allclose(read_nrrd(path).data, data)

    def test_read_header_offset(self, tmp_path):
        data = np.zeros(2, dtype="<f4")
        path = self._write(
            tmp_path,
            "NRRD0001\ntype: float\ndimension: 1\nsizes: 2\n"
            "endian: little\nencoding: raw\n\n",
            data.tobytes(),
        )
        fields, offset = read_nrrd_header(path)
        assert fields["type"] == "float"
        assert offset == os.path.getsize(path) - data.nbytes


class TestErrors:
    def test_not_nrrd(self, tmp_path):
        path = str(tmp_path / "bad")
        with open(path, "wb") as fp:
            fp.write(b"PNG\n\n")
        with pytest.raises(NrrdError, match="not a NRRD"):
            read_nrrd(path)

    def test_missing_required_field(self, tmp_path):
        path = str(tmp_path / "bad.nrrd")
        with open(path, "wb") as fp:
            fp.write(b"NRRD0001\ntype: float\n\n")
        with pytest.raises(NrrdError, match="missing required"):
            read_nrrd(path)

    def test_truncated_data(self, tmp_path):
        path = str(tmp_path / "t.nrrd")
        with open(path, "wb") as fp:
            fp.write(
                b"NRRD0001\ntype: float\ndimension: 1\nsizes: 100\n"
                b"endian: little\nencoding: raw\n\n\x00\x00\x00\x00"
            )
        with pytest.raises(NrrdError, match="expected 100 samples"):
            read_nrrd(path)

    def test_unsupported_encoding(self, tmp_path):
        path = str(tmp_path / "e.nrrd")
        with open(path, "wb") as fp:
            fp.write(
                b"NRRD0001\ntype: float\ndimension: 1\nsizes: 1\n"
                b"endian: little\nencoding: hex\n\n00"
            )
        with pytest.raises(NrrdError, match="encoding"):
            read_nrrd(path)

    def test_bad_gzip(self, tmp_path):
        path = str(tmp_path / "g.nrrd")
        with open(path, "wb") as fp:
            fp.write(
                b"NRRD0001\ntype: float\ndimension: 1\nsizes: 1\n"
                b"endian: little\nencoding: gzip\n\nnot-gzip-data"
            )
        with pytest.raises(NrrdError, match="gzip"):
            read_nrrd(path)

    def test_bad_gzip_error_names_file(self, tmp_path):
        """Diagnosing a corrupted payload needs the offending path (the
        seed data files shipped with a mangled gzip magic byte)."""
        path = str(tmp_path / "mangled.nrrd")
        with open(path, "wb") as fp:
            fp.write(
                b"NRRD0001\ntype: float\ndimension: 1\nsizes: 1\n"
                b"endian: little\nencoding: gzip\n\n\x1f\x08\x00corrupt"
            )
        with pytest.raises(NrrdError, match="mangled.nrrd"):
            read_nrrd(path)

    def test_sizes_dimension_mismatch(self, tmp_path):
        path = str(tmp_path / "s.nrrd")
        with open(path, "wb") as fp:
            fp.write(
                b"NRRD0001\ntype: float\ndimension: 2\nsizes: 4\n"
                b"encoding: raw\n\n"
            )
        with pytest.raises(NrrdError, match="sizes"):
            read_nrrd(path)

    def test_write_rejects_high_rank_bare_array(self, tmp_path):
        with pytest.raises(NrrdError, match="ambiguous"):
            write_nrrd(str(tmp_path / "x.nrrd"), np.zeros((2, 2, 2, 2)))

    def test_unterminated_header(self, tmp_path):
        path = str(tmp_path / "u.nrrd")
        with open(path, "wb") as fp:
            fp.write(b"NRRD0001\ntype: float\n")
        with pytest.raises(NrrdError, match="EOF"):
            read_nrrd_header(path)


class TestWriterEndian:
    """``endian=`` writes either byte order; reading restores native data."""

    @pytest.mark.parametrize("encoding", ["raw", "gzip"])
    @pytest.mark.parametrize("endian", ["little", "big"])
    def test_roundtrip(self, tmp_path, rng, encoding, endian):
        img = Image(rng.standard_normal((4, 5)))
        path = str(tmp_path / "e.nrrd")
        write_nrrd(path, img, encoding=encoding, endian=endian)
        back = read_nrrd(path)
        assert np.array_equal(back.data, img.data)

    def test_big_endian_header_and_payload(self, tmp_path):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        path = str(tmp_path / "be.nrrd")
        write_nrrd(path, Image(data), endian="big")
        with open(path, "rb") as fp:
            raw = fp.read()
        header, _, payload = raw.partition(b"\n\n")
        assert b"endian: big" in header
        assert np.array_equal(
            np.frombuffer(payload, dtype=">f8"), [1.0, 3.0, 2.0, 4.0]
        )

    def test_big_endian_int_roundtrip(self, tmp_path):
        data = np.arange(12, dtype=np.int32).reshape(3, 4)
        path = str(tmp_path / "bi.nrrd")
        write_nrrd(path, Image(data, dtype=None), endian="big")
        back = read_nrrd(path, dtype=None)  # keep the stored sample type
        assert back.data.dtype == np.int32
        assert np.array_equal(back.data, data)

    def test_ascii_roundtrip_is_exact(self, tmp_path, rng):
        # repr() of a float round-trips exactly; the full read/write cycle
        # must preserve doubles bit-for-bit even in text form
        data = rng.standard_normal((3, 3))
        path = str(tmp_path / "a.nrrd")
        write_nrrd(path, Image(data), encoding="ascii")
        back = read_nrrd(path)
        assert np.array_equal(back.data, data)

    def test_bad_endian_rejected(self, tmp_path):
        with pytest.raises(NrrdError, match="endian"):
            write_nrrd(str(tmp_path / "x.nrrd"), Image(np.zeros((2, 2))),
                       endian="middle")


class TestCheckedCast:
    """``dtype=`` conversions refuse to corrupt samples silently."""

    def test_lossless_narrowing_allowed(self, tmp_path):
        data = np.array([[0.0, 1.0], [2.0, 255.0]])
        path = str(tmp_path / "ok.nrrd")
        write_nrrd(path, Image(data), dtype=np.uint8)
        back = read_nrrd(path, dtype=None)  # keep the stored sample type
        assert back.data.dtype == np.uint8
        assert np.array_equal(back.data, data)

    def test_out_of_range_int_rejected(self, tmp_path):
        data = np.array([[0.0, 256.0]])
        with pytest.raises(NrrdError, match="do not fit"):
            write_nrrd(str(tmp_path / "x.nrrd"), Image(data), dtype=np.uint8)

    def test_negative_into_unsigned_rejected(self, tmp_path):
        data = np.array([[-1, 3]], dtype=np.int64)
        with pytest.raises(NrrdError, match="do not fit"):
            write_nrrd(str(tmp_path / "x.nrrd"), Image(data), dtype=np.uint16)

    def test_nan_into_int_rejected(self, tmp_path):
        data = np.array([[np.nan, 1.0]])
        with pytest.raises(NrrdError, match="non-finite"):
            write_nrrd(str(tmp_path / "x.nrrd"), Image(data), dtype=np.int16)

    def test_fractional_into_int_rejected(self, tmp_path):
        data = np.array([[1.5, 2.0]])
        with pytest.raises(NrrdError, match="truncated"):
            write_nrrd(str(tmp_path / "x.nrrd"), Image(data), dtype=np.int32)

    def test_float_overflow_narrowing_rejected(self, tmp_path):
        data = np.array([[1e60, 0.0]])
        with pytest.raises(NrrdError, match="overflow"):
            write_nrrd(str(tmp_path / "x.nrrd"), Image(data), dtype=np.float32)

    def test_float_narrowing_in_range_allowed(self, tmp_path):
        data = np.array([[1.25, -0.5]])
        path = str(tmp_path / "f.nrrd")
        write_nrrd(path, Image(data), dtype=np.float32)
        back = read_nrrd(path, dtype=None)
        assert back.data.dtype == np.float32
        assert np.array_equal(back.data, data.astype(np.float32))
