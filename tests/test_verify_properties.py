"""The Figure-10 normalization identity harness (repro.core.verify)."""

from __future__ import annotations

import pytest

from repro.core.verify.properties import PropertyResult, run_properties

EXPECTED = {
    "probe-sum", "grad-scale", "grad-sum", "conv-deriv", "conv-deriv-2",
    "hessian-symmetry",
}


class TestIdentitiesHold:
    def test_all_identities_fixed_seed(self):
        results = run_properties(seed=0)
        assert {r.name for r in results} == EXPECTED
        failing = [str(r) for r in results if not r.ok]
        assert not failing, "\n".join(failing)

    @pytest.mark.parametrize("seed", [1, 7])
    def test_other_seeds(self, seed):
        results = run_properties(seed=seed, n_positions=8, size=32)
        failing = [str(r) for r in results if not r.ok]
        assert not failing, "\n".join(failing)


class TestReporting:
    def test_result_formatting(self):
        ok = PropertyResult("x", "a = b", 1e-12, 1e-10, 4)
        bad = PropertyResult("y", "c = d", 0.5, 1e-10, 4)
        assert ok.ok and str(ok).startswith("ok")
        assert not bad.ok and "FAIL" in str(bad)

    def test_exact_identities_are_exact(self):
        # probe-sum / grad-scale / grad-sum hold to rounding, not just to
        # tolerance: both sides traverse identical convolution code paths
        results = {r.name: r for r in run_properties(seed=0, n_positions=8)}
        for name in ("probe-sum", "grad-scale", "grad-sum"):
            assert results[name].max_err < 1e-10


def test_cli_props_exit_status(capsys):
    from repro.core.verify.__main__ import main

    assert main(["props", "--seed", "0", "--positions", "4"]) == 0
    out = capsys.readouterr().out
    assert "hessian-symmetry" in out
