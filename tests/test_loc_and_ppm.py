"""Tests for the LOC counter (Table 1 tooling) and the PGM/PPM writers."""

import numpy as np
import pytest

from repro.bench.loc import count_diderot, count_python
from repro.data.ppm import read_pgm, save_pgm, save_ppm


class TestDiderotLoc:
    SRC = """\
// a comment line
input real a = 1.0;

strand S (int i) {
    output real x = 0.0;  // trailing comment
    update {
        x = a;       // counted
        // not counted
        stabilize;
    }
}
initially [ S(i) | i in 0 .. 3 ];
"""

    def test_total_excludes_blanks_and_comments(self):
        total, core = count_diderot(self.SRC)
        assert total == 9

    def test_core_is_update_body(self):
        _, core = count_diderot(self.SRC)
        assert core == 2  # "x = a;" and "stabilize;"

    def test_nested_braces_in_update(self):
        src = self.SRC.replace(
            "x = a;       // counted",
            "if (true) { x = a; }",
        )
        _, core = count_diderot(src)
        assert core == 2


class TestPythonLoc:
    SRC = '''\
"""Module docstring
spanning lines."""

import numpy as np


def f(x):
    """Docstring."""
    # comment
    y = x + 1
    # BEGIN CORE
    z = y * 2
    w = z - 1
    # END CORE
    return w
'''

    def test_counts(self):
        total, core = count_python(self.SRC)
        assert core == 2
        assert total == 6  # import, def, y=, z=, w=, return

    def test_markers_excluded(self):
        total, core = count_python(self.SRC)
        assert core < total


class TestPpm:
    def test_pgm_roundtrip(self, tmp_path):
        img = np.linspace(0, 1, 12).reshape(3, 4)
        path = str(tmp_path / "t.pgm")
        save_pgm(path, img, vmin=0.0, vmax=1.0)
        back = read_pgm(path)
        assert back.shape == (3, 4)
        assert back[0, 0] == 0 and back[2, 3] == 255

    def test_pgm_normalizes_by_default(self, tmp_path):
        img = np.array([[5.0, 10.0]])
        path = str(tmp_path / "n.pgm")
        save_pgm(path, img)
        back = read_pgm(path)
        assert back[0, 0] == 0 and back[0, 1] == 255

    def test_pgm_handles_nan(self, tmp_path):
        img = np.array([[np.nan, 1.0]])
        save_pgm(str(tmp_path / "nan.pgm"), img, vmin=0.0, vmax=1.0)
        assert read_pgm(str(tmp_path / "nan.pgm"))[0, 0] == 0

    def test_pgm_rejects_3d(self, tmp_path):
        with pytest.raises(ValueError, match="2-D"):
            save_pgm(str(tmp_path / "x.pgm"), np.zeros((2, 2, 3)))

    def test_ppm_shape(self, tmp_path):
        rgb = np.zeros((4, 5, 3))
        rgb[..., 0] = 1.0
        path = str(tmp_path / "c.ppm")
        save_ppm(path, rgb, vmin=0.0, vmax=1.0)
        with open(path, "rb") as fp:
            assert fp.readline().strip() == b"P6"
            assert fp.readline().split() == [b"5", b"4"]

    def test_ppm_rejects_gray(self, tmp_path):
        with pytest.raises(ValueError, match="3"):
            save_ppm(str(tmp_path / "x.ppm"), np.zeros((2, 2)))

    def test_constant_image(self, tmp_path):
        save_pgm(str(tmp_path / "c.pgm"), np.full((2, 2), 3.0))
        assert read_pgm(str(tmp_path / "c.pgm")).shape == (2, 2)
