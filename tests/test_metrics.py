"""Tests for the obs-v2 metrics registry (repro.obs.metrics).

Covers the histogram math, the registry/merge/drain protocol, the
active/ambient/GLOBAL plumbing through ``Program.run``, the
cross-scheduler determinism contract (seq/thread/process report
bit-identical op counters at any block size), the metrics-off
zero-overhead path, and the ``python -m repro.obs`` report/diff CLI
including its regression exit codes.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.driver import compile_program
from repro.obs import metrics as mx
from repro.obs.__main__ import main as obs_main
from repro.obs.export import format_metrics, format_report
from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    metrics_doc,
    read_metrics_json,
    write_metrics_json,
)
from repro.runtime import ops as rt

PROBING = """
image(2)[] img = load("data.nrrd");
field#1(2)[] F = img ⊛ ctmr;
strand S (int i, int j) {
    vec2 p = [real(i), real(j)];
    output real v = 0.0;
    int n = 0;
    update {
        if (inside(p, F)) v = v + F(p) + 0.25 * (∇F(p) • [1.0, 0.5]);
        n += 1;
        if (n >= 2 + (i + j) % 3) stabilize;
    }
}
initially [ S(i, j) | i in 0 .. 9, j in 0 .. 9 ];
"""


@pytest.fixture()
def probing_prog(noise32):
    prog = compile_program(PROBING)
    prog.bind_image("img", noise32)
    return prog


# -- histogram math -----------------------------------------------------------


class TestHistogram:
    def test_bucketing_and_exact_stats(self):
        h = Histogram(bounds=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.7, 4.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 2, 1, 1]  # last = overflow
        assert h.count == 5
        assert h.sum == pytest.approx(107.7)
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(107.7 / 5)

    def test_percentiles_interpolate_and_clamp(self):
        h = Histogram(bounds=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.7, 4.0):
            h.observe(v)
        assert h.percentile(0) == 0.5
        assert h.percentile(100) == 4.0
        # p50 lands in the (1, 2] bucket
        assert 1.0 <= h.percentile(50) <= 2.0
        # p95 lands in the (2, 5] bucket but clamps to the observed max
        assert h.percentile(95) <= 4.0

    def test_percentile_of_empty(self):
        assert Histogram(bounds=(1.0,)).percentile(50) == 0.0

    def test_uniform_percentile_accuracy(self):
        h = Histogram(bounds=tuple(float(b) for b in range(1, 101)))
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(90) == pytest.approx(90.0, abs=1.0)

    def test_merge_accumulates(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.min == 0.5 and a.max == 9.0

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="increasing"):
            Histogram(bounds=())

    def test_roundtrip_dict(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(1.5)
        h2 = Histogram.from_dict(h.to_dict())
        assert h2.to_dict() == h.to_dict()


# -- registry protocol --------------------------------------------------------


class TestRegistry:
    def test_counters_gauges_series(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        reg.inc_many({"a": 1, "b": 5})
        reg.gauge("g", 7)
        reg.gauge("g", 9)
        reg.row("s", step=0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 4, "b": 5}
        assert snap["gauges"] == {"g": 9}
        assert snap["series"] == {"s": [{"step": 0}]}

    def test_op_accumulates_three_counters(self):
        reg = MetricsRegistry()
        reg.op("gather", 64, 0.25)
        reg.op("gather", 36, 0.75)
        c = reg.counters
        assert c["op.gather.calls"] == 2
        assert c["op.gather.lanes"] == 100
        assert c["op.gather.seconds"] == pytest.approx(1.0)

    def test_drain_resets_and_merge_restores(self):
        reg = MetricsRegistry()
        reg.inc("x", 3)
        reg.observe("h", 0.5, bounds=(1.0,))
        delta = reg.drain()
        assert reg.snapshot()["counters"] == {}
        other = MetricsRegistry()
        other.inc("x", 1)
        other.merge(delta)
        assert other.counters["x"] == 4
        assert other.histograms["h"].count == 1

    def test_merge_can_exclude_series(self):
        src = MetricsRegistry()
        src.row("steps", step=0)
        src.inc("x")
        dst = MetricsRegistry()
        dst.merge(src.snapshot(), include_series=False)
        assert dst.counters == {"x": 1}
        assert dst.series == {}

    def test_resolve_modes(self):
        reg, fold = mx.resolve(None)
        assert reg.enabled and fold == (mx.GLOBAL,)
        reg, fold = mx.resolve(False)
        assert reg is NULL_METRICS and fold == ()
        reg, fold = mx.resolve(True)
        assert reg.enabled and fold == (mx.GLOBAL,)
        mine = MetricsRegistry()
        reg, fold = mx.resolve(mine)
        assert reg is mine and fold == ()
        with mx.collect() as amb:
            reg, fold = mx.resolve(None)
            assert fold == (amb, mx.GLOBAL)


# -- Program.run plumbing -----------------------------------------------------


class TestRunPlumbing:
    def test_result_carries_registry(self, probing_prog):
        res = probing_prog.run()
        c = res.metrics.counters
        assert c["run.count"] == 1
        assert c["sched.supersteps"] == res.steps
        assert c["strands.stabilized"] == res.num_stable
        assert any(k.startswith("op.") and k.endswith(".calls") for k in c)
        assert res.metrics.series["steps"][0]["active"] == res.num_strands

    def test_run_folds_into_global_without_series(self, probing_prog):
        mx.GLOBAL.reset()
        res = probing_prog.run()
        assert mx.GLOBAL.counters["run.count"] == 1
        assert mx.GLOBAL.series == {}  # series stay per-run
        assert (mx.GLOBAL.counters["sched.supersteps"]
                == res.metrics.counters["sched.supersteps"])

    def test_metrics_off_returns_null_and_skips_global(self, probing_prog):
        mx.GLOBAL.reset()
        res = probing_prog.run(metrics=False)
        assert res.metrics is NULL_METRICS
        assert mx.GLOBAL.counters == {}

    def test_caller_registry_used_directly(self, probing_prog):
        mine = MetricsRegistry()
        res = probing_prog.run(metrics=mine)
        assert res.metrics is mine
        assert mine.counters["run.count"] == 1

    def test_collect_scope_aggregates_runs(self, probing_prog):
        with mx.collect() as reg:
            probing_prog.run()
            probing_prog.run()
        assert reg.counters["run.count"] == 2
        # series DO fold into the ambient scope
        assert len(reg.series["steps"]) > 0

    def test_active_restored_after_run(self, probing_prog):
        before = mx.ACTIVE
        probing_prog.run()
        assert mx.ACTIVE is before
        with pytest.raises(Exception):
            probing_prog.run(max_steps=0, scheduler="gpu")
        assert mx.ACTIVE is before  # restored on the error path too

    def test_guard_stats_still_work_across_runs(self, probing_prog):
        rt.reset_guard_stats()
        probing_prog.run()
        stats = rt.guard_stats()
        assert stats["checked"] > 0
        probing_prog.run()
        assert rt.guard_stats()["checked"] == 2 * stats["checked"]
        rt.reset_guard_stats()
        assert rt.guard_stats() == {"checked": 0, "skipped": 0}


# -- cross-scheduler determinism ---------------------------------------------

#: counters that must be bit-identical across schedulers at a fixed block
#: size: op work counters and guard counts (NOT ``.seconds``, NOT the
#: per-thread scratch-pool tallies, NOT per-worker attribution)
def _deterministic_counters(reg) -> dict:
    out = {}
    for name, v in reg.snapshot()["counters"].items():
        if name.endswith(".seconds") or name.endswith("_seconds"):
            continue
        if name.startswith("mem.scratch.") or ".worker." in name:
            continue
        out[name] = v
    return out


class TestCrossSchedulerEquivalence:
    @pytest.mark.parametrize("block_size", [1, 64, 4096])
    def test_identical_op_counters(self, probing_prog, block_size):
        base = _deterministic_counters(
            probing_prog.run(block_size=block_size).metrics)
        assert any(k.startswith("op.") for k in base)
        for scheduler in ("thread", "process"):
            got = _deterministic_counters(
                probing_prog.run(workers=2, scheduler=scheduler,
                                 block_size=block_size).metrics)
            assert got == base, scheduler

    def test_worker_drain_reaches_master(self, probing_prog):
        """Process workers' op counts must be merged, not dropped."""
        res = probing_prog.run(workers=2, scheduler="process", block_size=16)
        c = res.metrics.counters
        assert sum(v for k, v in c.items()
                   if k.startswith("op.") and k.endswith(".calls")) > 0
        assert c["guard.checked"] > 0


# -- the zero-overhead path ---------------------------------------------------


class TestNullRegistry:
    def test_all_methods_are_noops(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.inc_many({"x": 1})
        NULL_METRICS.gauge("g", 1)
        NULL_METRICS.observe("h", 1.0)
        NULL_METRICS.op("gather", 1, 1.0)
        NULL_METRICS.guard(True)
        NULL_METRICS.row("s", a=1)
        NULL_METRICS.merge({"counters": {"x": 1}})
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "series": {}}
        assert not NULL_METRICS.enabled

    def test_instrumented_ops_skip_work_when_disabled(self):
        """The guard in the hot path: with a NullRegistry active,
        instrumented kernels write to no registry at all."""
        mx.GLOBAL.reset()
        prev = mx.set_active(NULL_METRICS)
        try:
            rt.any_lane(np.array([True, False]))
            rt.contract_axis(np.ones((2, 3)), np.ones((2, 3)))
        finally:
            mx.set_active(prev)
        assert NULL_METRICS.counters == {}
        assert mx.GLOBAL.counters == {}


# -- JSON document + report/diff CLI ------------------------------------------


class TestMetricsJson:
    def test_roundtrip(self, tmp_path, probing_prog):
        res = probing_prog.run()
        path = str(tmp_path / "m.json")
        write_metrics_json(res.metrics, path, meta={"k": "v"})
        doc = read_metrics_json(path)
        assert doc["schema"] == mx.SCHEMA
        assert doc["meta"] == {"k": "v"}
        assert doc["counters"] == {
            k: pytest.approx(v) for k, v in res.metrics.counters.items()}

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError, match="not a repro-metrics"):
            read_metrics_json(str(path))

    def test_adapts_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "cat": "pass", "name": "parse", "ts": 0,
             "dur": 2e6, "pid": 1, "tid": 1},
            {"ph": "M", "name": "thread_name"},
        ]}))
        doc = read_metrics_json(str(path))
        assert doc["counters"]["pass.parse.seconds"] == pytest.approx(2.0)
        assert doc["counters"]["pass.parse.calls"] == 1


class TestReportAndDiff:
    @pytest.fixture()
    def saved(self, tmp_path, probing_prog):
        res = probing_prog.run(workers=2, scheduler="thread", block_size=16)
        path = str(tmp_path / "base.json")
        write_metrics_json(res.metrics, path, meta={"program": "probing"})
        return path

    def test_report_renders_tables(self, saved, capsys):
        assert obs_main(["report", saved]) == 0
        out = capsys.readouterr().out
        assert "hot ops:" in out
        assert "scheduler health:" in out
        assert "convergence:" in out
        assert "workers:" in out

    def test_format_metrics_smoke(self, probing_prog):
        res = probing_prog.run()
        text = format_metrics(res.metrics)
        assert "hot ops:" in text
        assert "guards" in text
        text2 = format_report(metrics_doc(res.metrics, {"a": 1}))
        assert "run metadata:" in text2

    def test_diff_identical_is_clean(self, saved, capsys):
        assert obs_main(["diff", saved, saved]) == 0
        assert "no significant differences" in capsys.readouterr().out

    def test_diff_flags_synthetic_slowdown(self, saved, tmp_path, capsys):
        doc = read_metrics_json(saved)
        for k in doc["counters"]:
            if k.endswith("seconds"):
                doc["counters"][k] = doc["counters"][k] * 1.5 + 0.05
        slow = str(tmp_path / "slow.json")
        with open(slow, "w") as fp:
            json.dump(doc, fp, default=float)
        assert obs_main(["diff", saved, slow]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out
        # the reverse direction is an improvement, never a failure
        assert obs_main(["diff", slow, saved]) == 0

    def test_diff_flags_count_increase(self, saved, tmp_path):
        doc = read_metrics_json(saved)
        key = next(k for k in doc["counters"] if k.endswith(".calls"))
        doc["counters"][key] *= 2
        more = str(tmp_path / "more.json")
        with open(more, "w") as fp:
            json.dump(doc, fp, default=float)
        assert obs_main(["diff", saved, more]) == 1

    def test_diff_tolerates_jitter(self, saved, tmp_path):
        doc = read_metrics_json(saved)
        for k in doc["counters"]:
            if k.endswith("seconds"):
                doc["counters"][k] *= 1.04  # within the 8% threshold
        near = str(tmp_path / "near.json")
        with open(near, "w") as fp:
            json.dump(doc, fp, default=float)
        assert obs_main(["diff", saved, near]) == 0


class TestCliMetricsFlags:
    def test_metrics_out_end_to_end(self, tmp_path):
        from repro.__main__ import main as repro_main

        src = tmp_path / "p.diderot"
        src.write_text("""
            strand S (int i) {
                output real v = 0.0;
                update { v = real(i); stabilize; }
            }
            initially [ S(i) | i in 0 .. 7 ];
        """)
        out = str(tmp_path / "m.json")
        assert repro_main([str(src), "--out", str(tmp_path / "o"),
                           "--metrics-out", out]) == 0
        doc = read_metrics_json(out)
        # compile passes AND runtime metrics in one document
        assert doc["counters"]["pass.parse.calls"] >= 1
        assert doc["counters"]["run.count"] == 1
        assert doc["meta"]["workers"] == 1

    def test_no_metrics_conflicts_with_metrics_out(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        src = tmp_path / "p.diderot"
        src.write_text("strand S (int i) { output real v = 0.0; "
                       "update { stabilize; } } "
                       "initially [ S(i) | i in 0 .. 1 ];")
        assert repro_main([str(src), "--no-metrics",
                           "--metrics-out", "x.json"]) == 1
        assert "requires metrics" in capsys.readouterr().err
