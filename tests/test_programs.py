"""Behavioral tests of the five paper programs at small scales."""

import numpy as np
import pytest

from repro.core.driver import compile_program
from repro.programs import ALL, illust_vr, isocontour, lic2d, ridge3d, vr_lite
from repro.bench.loc import count_diderot


class TestAllPrograms:
    @pytest.mark.parametrize("name", list(ALL))
    def test_compiles(self, name):
        prog = compile_program(ALL[name].SOURCE)
        assert prog.generated_source

    @pytest.mark.parametrize("name", list(ALL))
    def test_single_precision_compiles_and_runs(self, name):
        scale = 0.08 if name != "ridge3d" else 0.4
        prog = ALL[name].make_program(precision="single", scale=scale,
                                      **({"volume_size": 24} if name in ("vr-lite", "illust-vr", "ridge3d") else {}))
        res = prog.run(max_steps=300)
        for out in res.outputs.values():
            assert out.dtype in (np.float32, np.int64)

    @pytest.mark.parametrize("name", list(ALL))
    def test_core_loc_smaller_than_total(self, name):
        total, core = count_diderot(ALL[name].SOURCE)
        assert 0 < core < total


class TestVrLite:
    def test_transparency_monotone(self):
        """Accumulated gray is bounded by full opacity."""
        prog = vr_lite.make_program(scale=0.15, volume_size=24)
        res = prog.run()
        g = res.outputs["gray"]
        assert np.all(g >= 0) and np.all(g <= 1.0 + 1e-6)

    def test_all_rays_stabilize(self):
        prog = vr_lite.make_program(scale=0.1, volume_size=24)
        res = prog.run()
        assert res.num_stable == res.num_strands  # grid programs don't die

    def test_bone_window_shows_less_than_skin_window(self):
        """Narrower/higher opacity window (bone) lights fewer pixels."""
        lo = vr_lite.make_program(scale=0.15, volume_size=32)
        lo.set_input("opacMin", 300.0)
        hi = vr_lite.make_program(scale=0.15, volume_size=32)
        hi.set_input("opacMin", 1100.0)
        lit_lo = (lo.run().outputs["gray"] > 0.01).sum()
        lit_hi = (hi.run().outputs["gray"] > 0.01).sum()
        assert lit_hi < lit_lo


class TestIllustVr:
    def test_colormap_orientation(self):
        cmap = illust_vr.curvature_colormap(17)
        # κ=(−1,−1) maps to index (0,0); κ=(1,1) to (16,16)
        lo = cmap.orientation.to_index(np.array([[-1.0, -1.0]]))
        hi = cmap.orientation.to_index(np.array([[1.0, 1.0]]))
        assert np.allclose(lo, [[0, 0]])
        assert np.allclose(hi, [[16, 16]])

    def test_rgb_in_range(self):
        prog = illust_vr.make_program(scale=0.1, volume_size=24)
        rgb = prog.run().outputs["rgb"]
        assert rgb.min() >= 0.0
        assert rgb.max() <= 2.0  # accumulated, bounded by opacity*colors

    def test_color_variation_from_curvature(self):
        """Curvature shading must produce non-gray colors somewhere."""
        prog = illust_vr.make_program(scale=0.2, volume_size=32)
        rgb = prog.run().outputs["rgb"]
        lit = rgb[rgb.sum(axis=-1) > 0.05]
        assert lit.size > 0
        channel_spread = np.abs(lit[:, 0] - lit[:, 1]).max()
        assert channel_spread > 0.01


class TestLic2d:
    def test_fixed_iteration_count(self):
        prog = lic2d.make_program(scale=0.08)
        prog.set_input("stepNum", 13)
        res = prog.run()
        assert res.steps == 13

    def test_velocity_modulation(self):
        """Output scales with |V| at the seed: the stagnation center is dark."""
        prog = lic2d.make_program(scale=0.2)
        res = prog.run()
        img = res.outputs["sum"]
        c = img.shape[0] // 2
        assert img[c, c] == pytest.approx(0.0, abs=0.05)


class TestRidge3d:
    def test_strands_die_outside_vessels(self):
        prog = ridge3d.make_program(scale=0.5, volume_size=32)
        res = prog.run()
        assert res.num_died > 0
        assert res.num_stable < res.num_strands

    def test_stable_positions_inside_volume(self):
        prog = ridge3d.make_program(scale=0.6, volume_size=32)
        pos = prog.run().outputs["pos"]
        if pos.size:
            assert np.all(np.abs(pos) <= 20.0)

    def test_strength_threshold_filters(self):
        weak = ridge3d.make_program(scale=0.5, volume_size=32)
        weak.set_input("strengthMin", 1.0)
        strong = ridge3d.make_program(scale=0.5, volume_size=32)
        strong.set_input("strengthMin", 200.0)
        n_weak = weak.run().outputs["pos"].shape[0]
        n_strong = strong.run().outputs["pos"].shape[0]
        assert n_strong <= n_weak


class TestIsocontour:
    def test_converged_points_on_isocontours(self):
        prog = isocontour.make_program(image_size=64)
        prog.set_input("resU", 32)
        prog.set_input("resV", 32)
        res = prog.run()
        pos = res.outputs["pos"]
        assert pos.shape[0] > 20  # a healthy number converge
        # each stable point must lie on one of the three isocontours
        from repro.data import portrait_phantom
        from repro.fields import convolve
        from repro.kernels import ctmr

        f = convolve(portrait_phantom(64), ctmr)
        vals = f.probe(pos)
        dist = np.min(
            np.abs(vals[:, None] - np.array([10.0, 30.0, 50.0])[None, :]), axis=1
        )
        assert np.percentile(dist, 95) < 0.1

    def test_some_strands_die(self):
        prog = isocontour.make_program(image_size=64)
        prog.set_input("resU", 32)
        prog.set_input("resV", 32)
        res = prog.run()
        assert res.num_died > 0
        assert res.num_stable + res.num_died == res.num_strands
