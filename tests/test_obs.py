"""Tests for the observability layer (repro.obs): tracer, exporters,
CLI wiring, and the compile-stats trace view."""

import json
import time

import pytest

from repro.core.driver import CompileStats, OptOptions, compile_program, compile_to_source
from repro.obs import (
    NULL_TRACER,
    Tracer,
    chrome_trace,
    format_summary,
    tracer_from_env,
    write_chrome_trace,
)
from repro.runtime.simsched import as_block_trace, simulate_run

SRC = """
    strand S (int i) {
        output real x = 0.0;
        update { x += 1.0; if (x > 2.5) stabilize; }
    }
    initially [ S(i) | i in 0 .. 99 ];
"""


class TestTracerSpans:
    def test_span_records_duration(self):
        tr = Tracer()
        with tr.span("work", cat="test"):
            time.sleep(0.002)
        (ev,) = tr.spans("test")
        assert ev.name == "work"
        assert ev.dur >= 0.002

    def test_span_nesting(self):
        """A child span's interval lies within its parent's."""
        tr = Tracer()
        with tr.span("parent", cat="test"):
            with tr.span("child", cat="test"):
                time.sleep(0.001)
        child, parent = tr.spans("test")  # children close (record) first
        assert child.name == "child" and parent.name == "parent"
        assert parent.ts <= child.ts
        assert child.end <= parent.end + 1e-9
        assert child.tid == parent.tid

    def test_span_set_attaches_args(self):
        tr = Tracer()
        with tr.span("p", cat="pass") as sp:
            sp.set("removed", 7)
        assert tr.spans("pass")[0].args["removed"] == 7

    def test_span_records_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("p", cat="pass"):
                raise ValueError("boom")
        assert len(tr.spans("pass")) == 1

    def test_counters_accumulate(self):
        tr = Tracer()
        tr.counter("bytes", 10)
        tr.counter("bytes", 5)
        assert tr.counters["bytes"] == 15

    def test_gauge_keeps_latest(self):
        tr = Tracer()
        tr.gauge("active", 100)
        tr.gauge("active", 40)
        assert tr.gauges["active"] == 40

    def test_threaded_appends_are_complete(self):
        import threading

        tr = Tracer()

        def spam(k):
            for i in range(50):
                tr.instant("tick", cat="t", k=k, i=i)

        threads = [threading.Thread(target=spam, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len([e for e in tr.events if e.cat == "t"]) == 200


class TestDisabledMode:
    def test_null_span_is_shared(self):
        """Disabled tracing allocates no span objects on the hot path."""
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", cat="c", x=1)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("a") as sp:
            sp.set("k", 1)
        NULL_TRACER.instant("i")
        assert NULL_TRACER.counter("c", 5) == 0.0
        NULL_TRACER.gauge("g", 1)
        assert NULL_TRACER.events == ()
        assert NULL_TRACER.block_step_times() == []
        assert not NULL_TRACER.enabled

    def test_run_without_tracer_collects_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        res = compile_program(SRC).run(block_size=16)
        assert res.steps == 3  # runs normally; nothing to trace into


class TestHooks:
    def test_on_pass_fires_per_compiler_pass(self):
        seen = []
        tr = Tracer(on_pass=lambda ev: seen.append(ev.name))
        compile_to_source(SRC, tracer=tr)
        for name in ("parse", "typecheck", "simplify", "highir",
                     "contraction", "value-numbering", "midir", "lowir",
                     "codegen"):
            assert name in seen

    def test_on_superstep_fires_per_step(self):
        seen = []
        tr = Tracer(on_superstep=lambda ev: seen.append(ev.args["step"]))
        compile_program(SRC).run(block_size=16, tracer=tr)
        assert seen == [0, 1, 2]


class TestCompileStatsView:
    def test_stats_built_from_trace(self):
        tr = Tracer()
        _, _, stats = compile_to_source(SRC, tracer=tr)
        rebuilt = CompileStats.from_trace(tr.events)
        assert rebuilt == stats
        assert stats.high_instrs["update"] > 0
        assert stats.low_instrs["update"] >= stats.mid_instrs["update"]

    def test_stats_without_vn(self):
        tr = Tracer()
        _, _, stats = compile_to_source(
            SRC, OptOptions(value_numbering=False), tracer=tr
        )
        assert stats.vn_removed == {}
        assert tr.spans("pass")
        assert "value-numbering" not in {ev.name for ev in tr.spans("pass")}


class TestBlockStepTimes:
    def test_grouped_and_ordered_by_block(self):
        tr = Tracer()
        # record out of completion order: block 1 before block 0
        tr.complete("block", "block", tr.epoch + 0.2, 0.02, tid="worker-1",
                    step=0, block=1)
        tr.complete("block", "block", tr.epoch + 0.1, 0.01, tid="worker-0",
                    step=0, block=0)
        tr.complete("block", "block", tr.epoch + 0.3, 0.03, tid="worker-0",
                    step=1, block=0)
        assert tr.block_step_times() == [[0.01, 0.02], [0.03]]
        assert tr.block_workers() == [["worker-0", "worker-1"], ["worker-0"]]

    def test_simsched_accepts_tracer(self):
        tr = Tracer()
        prog = compile_program(SRC)
        prog.run(block_size=16, tracer=tr)
        sim = simulate_run(tr, workers=2)
        assert len(sim.per_step) == 3
        assert sim.total_time > 0
        assert as_block_trace([[1.0]]) == [[1.0]]


class TestChromeExport:
    def test_round_trip(self, tmp_path):
        tr = Tracer()
        prog = compile_program(SRC, tracer=tr)
        prog.run(block_size=16, workers=2, tracer=tr)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(tr, path)
        with open(path, encoding="utf-8") as fp:
            doc = json.load(fp)
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"X", "M"} <= phases
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"parse", "typecheck", "codegen", "superstep", "block"} <= names
        for e in events:
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
        # thread metadata names every tid used by an event
        tids = {e["tid"] for e in events if e["ph"] != "M"}
        named = {e["tid"] for e in events if e["ph"] == "M"}
        assert tids <= named

    def test_worker_attribution_in_export(self):
        tr = Tracer()
        compile_program(SRC).run(block_size=8, workers=2, tracer=tr)
        doc = chrome_trace(tr)
        tid_names = {e["tid"]: e["args"]["name"] for e in doc["traceEvents"]
                     if e["ph"] == "M"}
        block_tids = {tid_names[e["tid"]] for e in doc["traceEvents"]
                      if e.get("cat") == "block"}
        assert block_tids <= {f"worker-{i}" for i in range(2)}
        assert block_tids  # at least one worker ran blocks


class TestSummary:
    def test_summary_sections(self):
        tr = Tracer()
        prog = compile_program(SRC, tracer=tr)
        prog.run(block_size=16, tracer=tr)
        text = format_summary(tr)
        assert "compiler passes" in text
        assert "instruction counts" in text
        assert "super-steps" in text
        assert "workers" in text
        assert "worker-0" in text

    def test_empty_tracer_summary(self):
        assert "no trace events" in format_summary(Tracer())


class TestEnvActivation:
    def test_tracer_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.json"))
        tr, path = tracer_from_env()
        assert tr is not None and tr.enabled
        assert path == str(tmp_path / "t.json")
        monkeypatch.delenv("REPRO_TRACE")
        assert tracer_from_env() == (None, None)

    def test_run_honors_env_var(self, monkeypatch, tmp_path):
        out = tmp_path / "auto.json"
        monkeypatch.setenv("REPRO_TRACE", str(out))
        compile_program(SRC).run(block_size=16)
        doc = json.loads(out.read_text(encoding="utf-8"))
        names = {e["name"] for e in doc["traceEvents"]}
        assert "superstep" in names and "block" in names

    def test_explicit_tracer_wins_over_env(self, monkeypatch, tmp_path):
        out = tmp_path / "never.json"
        monkeypatch.setenv("REPRO_TRACE", str(out))
        tr = Tracer()
        compile_program(SRC).run(block_size=16, tracer=tr)
        assert not out.exists()  # caller owns export when passing a tracer
        assert tr.spans("superstep")
