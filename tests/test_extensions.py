"""End-to-end tests for the §8.3 extensions (divergence, curl, bspln5)."""

import numpy as np
import pytest

from repro.core.driver import compile_program
from repro.data import vector_field_2d
from repro.fields import convolve
from repro.image import Image
from repro.kernels import bspln5, ctmr


class TestDivCurl2D:
    SRC = """
        field#1(2)[2] V = load("vectors.nrrd") ⊛ ctmr;
        field#0(2)[] D = ∇•V;
        field#0(2)[] C = ∇×V;
        strand S (int i) {
            vec2 p = [real(i)*0.15 - 0.6, 0.1];
            output real div = 0.0;
            output real curl = 0.0;
            update {
                if (inside(p, V)) { div = D(p); curl = C(p); }
                stabilize;
            }
        }
        initially [ S(i) | i in 0 .. 8 ];
    """

    def test_against_analytic(self):
        prog = compile_program(self.SRC)
        prog.bind_image("vectors", vector_field_2d(64, vortex=0.8, saddle=0.2))
        res = prog.run()
        assert np.allclose(res.outputs["curl"], 1.6, atol=1e-8)
        assert np.allclose(res.outputs["div"], 0.0, atol=1e-8)

    def test_against_field_objects(self):
        vf = vector_field_2d(48)
        prog = compile_program(self.SRC)
        prog.bind_image("vectors", vf)
        res = prog.run()
        V = convolve(vf, ctmr)
        for i in range(9):
            p = np.array([i * 0.15 - 0.6, 0.1])
            assert float(res.outputs["div"][i]) == pytest.approx(
                float(V.divergence(p[None])[0]), abs=1e-12
            )
            assert float(res.outputs["curl"][i]) == pytest.approx(
                float(V.curl(p[None])[0]), abs=1e-12
            )


class TestCurl3D:
    SRC = """
        field#1(3)[3] W = load("w.nrrd") ⊛ ctmr;
        strand S (int i) {
            vec3 p = [real(i)*0.5 + 3.0, 5.0, 5.0];
            output vec3 c = [0.0, 0.0, 0.0];
            update {
                if (inside(p, W)) c = (∇×W)(p);
                stabilize;
            }
        }
        initially [ S(i) | i in 0 .. 5 ];
    """

    def test_rotational_field(self):
        xs, ys, zs = np.meshgrid(*[np.arange(12.0)] * 3, indexing="ij")
        data = np.stack([-ys, xs, np.zeros_like(xs)], axis=-1)
        img = Image(data, dim=3, tensor_shape=(3,))
        prog = compile_program(self.SRC)
        prog.bind_image("w", img)
        res = prog.run()
        assert np.allclose(res.outputs["c"], [0.0, 0.0, 2.0], atol=1e-9)


class TestBspln5:
    def test_usable_in_programs(self):
        src = """
            image(2)[] img = load("d.nrrd");
            field#4(2)[] F = img ⊛ bspln5;
            field#1(2)[2,2,2] T = ∇⊗∇⊗∇F;
            strand S (int i) {
                vec2 p = [real(i) + 4.0, 8.0];
                output real v = 0.0;
                output real t = 0.0;
                update {
                    if (inside(p, F)) {
                        v = F(p);
                        t = T(p)[0, 1, 1];
                    }
                    stabilize;
                }
            }
            initially [ S(i) | i in 0 .. 5 ];
        """
        rng = np.random.default_rng(5)
        img = Image(rng.standard_normal((20, 20)), dim=2)
        prog = compile_program(src)
        prog.bind_image("img", img)
        res = prog.run()
        F = convolve(img, bspln5)
        third = F.grad().grad().grad()
        for i in range(6):
            p = np.array([[i + 4.0, 8.0]])
            assert float(res.outputs["v"][i]) == pytest.approx(
                float(F.probe(p)[0]), abs=1e-12
            )
            assert float(res.outputs["t"][i]) == pytest.approx(
                float(third.probe(p)[0][0, 1, 1]), abs=1e-10
            )

    def test_third_derivative_continuity_typing(self):
        """field#4 ⊛ three ∇s leaves field#1 — Figure 2 bookkeeping."""
        from repro.core.syntax import parse_program
        from repro.core.ty import check_program
        from repro.errors import TypeErrorD

        bad = """
            image(2)[] img = load("d.nrrd");
            field#2(2)[] F = img ⊛ bspln3;
            field#0(2)[2,2,2] T = ∇⊗∇⊗∇F;
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ S(i) | i in 0 .. 3 ];
        """
        with pytest.raises(TypeErrorD, match="cannot differentiate"):
            check_program(parse_program(bad))
