"""Tests for the synthetic datasets (DESIGN.md substitution table)."""

import numpy as np
import pytest

from repro.data import (
    hand_phantom,
    lung_phantom,
    noise_texture,
    portrait_phantom,
    vector_field_2d,
)
from repro.data.synth import lung_vessel_centerlines
from repro.fields import convolve
from repro.kernels import bspln3, ctmr


class TestHandPhantom:
    def test_shape_and_orientation(self):
        img = hand_phantom(32)
        assert img.sizes == (32, 32, 32)
        # world extent 40, centered
        assert np.allclose(img.orientation.to_world([[0, 0, 0]]), [[-20, -20, -20]])
        world_max = img.orientation.to_world([[31, 31, 31]])
        assert np.allclose(world_max, [[20, 20, 20]])

    def test_two_tissue_ranges(self):
        """Skin-like and bone-like densities both present (opacity windows)."""
        img = hand_phantom(32)
        assert img.data.max() > 1000.0  # bone
        assert np.any((img.data > 300) & (img.data < 700))  # soft tissue
        assert img.data.min() >= 0.0

    def test_resolution_scales_geometry(self):
        lo = hand_phantom(24)
        hi = hand_phantom(48)
        # same world-space structure: density at center comparable
        assert lo.data[12, 12, 12] == pytest.approx(hi.data[24, 24, 24], rel=0.3)


class TestLungPhantom:
    def test_vessels_are_ridges(self):
        img = lung_phantom(32, n_vessels=4, seed=3)
        lines = lung_vessel_centerlines(32, n_vessels=4, seed=3, samples=50)
        F = convolve(img, bspln3)
        hits = 0
        for line in lines:
            for p in line[10:40:5]:
                if not F.inside(p):
                    continue
                hits += 1
                center = float(F.probe(p))
                # off-center (perpendicular) samples are dimmer
                for off in (np.array([1.5, 0, 0]), np.array([0, 1.5, 0])):
                    assert float(F.probe(p + off)) < center + 40.0
        assert hits > 10

    def test_deterministic(self):
        a = lung_phantom(24, seed=9)
        b = lung_phantom(24, seed=9)
        assert np.array_equal(a.data, b.data)
        c = lung_phantom(24, seed=10)
        assert not np.array_equal(a.data, c.data)


class TestVectorField:
    def test_curl_and_divergence(self):
        img = vector_field_2d(48, vortex=1.0, saddle=0.25)
        V = convolve(img, ctmr)
        p = np.array([[0.1, -0.2]])
        # analytic: curl = 2*vortex, div = 0 everywhere
        assert float(V.curl(p)[0]) == pytest.approx(2.0, abs=1e-6)
        assert float(V.divergence(p)[0]) == pytest.approx(0.0, abs=1e-6)

    def test_center_is_stagnation_point(self):
        img = vector_field_2d(33)
        V = convolve(img, ctmr)
        v = V.probe(np.array([[0.0, 0.0]]))[0]
        assert np.allclose(v, 0.0, atol=1e-10)


class TestNoise:
    def test_range_and_determinism(self):
        n = noise_texture(16, seed=5)
        assert n.data.min() >= 0.0 and n.data.max() < 1.0
        assert np.array_equal(n.data, noise_texture(16, seed=5).data)


class TestPortrait:
    def test_isovalues_present(self):
        img = portrait_phantom(64)
        # all three of Figure 7's isovalues must be crossed
        assert img.data.max() > 50.0
        assert img.data.min() < 10.0
        for iso in (10.0, 30.0, 50.0):
            assert np.any(img.data > iso) and np.any(img.data < iso)

    def test_smooth(self):
        img = portrait_phantom(64)
        grad = np.abs(np.diff(img.data, axis=0)).max()
        assert grad < 10.0  # no pixel-to-pixel jumps
