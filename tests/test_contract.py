"""Tests for contraction (constant folding + DCE, paper §5.4)."""

import numpy as np

from repro.core.ir import ops as irops
from repro.core.ir.base import Body, Func, IfRegion, Phi, Value
from repro.core.ty.types import BOOL, INT, REAL, TensorTy
from repro.core.xform.contract import contract


def instr_count(fn):
    return sum(1 for _ in fn.body.instructions())


def fold(build):
    """Build a function, contract it, return it."""
    body = Body()
    results = build(body)
    fn = Func("t", [], [], body, list(results), ["r"] * len(results))
    return contract(fn, irops.HIGH)


def final_const(fn):
    assert len(fn.results) == 1
    producer = fn.results[0].producer
    assert producer.op == "const", f"result not folded: {producer}"
    return producer.attrs["value"]


class TestFolding:
    def test_arithmetic(self):
        fn = fold(lambda b: [b.emit("add", [
            b.emit("const", [], INT, value=2),
            b.emit("mul", [b.emit("const", [], INT, value=3),
                           b.emit("const", [], INT, value=4)], INT),
        ], INT)])
        assert final_const(fn) == 14

    def test_int_division_truncates_toward_zero(self):
        fn = fold(lambda b: [b.emit("div", [
            b.emit("const", [], INT, value=-7),
            b.emit("const", [], INT, value=2),
        ], INT)])
        assert final_const(fn) == -3  # C semantics, not floor (-4)

    def test_div_by_zero_not_folded(self):
        fn = fold(lambda b: [b.emit("div", [
            b.emit("const", [], INT, value=1),
            b.emit("const", [], INT, value=0),
        ], INT)])
        assert fn.results[0].producer.op == "div"

    def test_real_math(self):
        fn = fold(lambda b: [b.emit("sqrt", [
            b.emit("const", [], REAL, value=16.0)], REAL)])
        assert final_const(fn) == 4.0

    def test_tensor_cons_and_index(self):
        def build(b):
            v = b.emit("tensor_cons", [
                b.emit("const", [], REAL, value=1.0),
                b.emit("const", [], REAL, value=2.0),
            ], TensorTy((2,)))
            return [b.emit("tensor_index", [v], REAL, indices=(1,))]
        assert final_const(fold(build)) == 2.0

    def test_dot_of_constants(self):
        def build(b):
            u = b.emit("const", [], TensorTy((2,)), value=np.array([1.0, 2.0]))
            v = b.emit("const", [], TensorTy((2,)), value=np.array([3.0, 4.0]))
            return [b.emit("dot", [u, v], REAL)]
        assert final_const(fold(build)) == 11.0

    def test_comparison(self):
        fn = fold(lambda b: [b.emit("lt", [
            b.emit("const", [], REAL, value=1.0),
            b.emit("const", [], REAL, value=2.0)], BOOL)])
        assert final_const(fn) is True

    def test_select_folds_on_const_cond(self):
        def build(b):
            c = b.emit("const", [], BOOL, value=False)
            return [b.emit("select", [
                c,
                b.emit("const", [], INT, value=1),
                b.emit("const", [], INT, value=2)], INT)]
        assert final_const(fold(build)) == 2


class TestAlgebraic:
    def test_and_with_true_propagates_other(self):
        body = Body()
        p = Value(BOOL)
        t = body.emit("const", [], BOOL, value=True)
        v = body.emit("and", [p, t], BOOL)
        fn = Func("t", [p], ["p"], body, [v], ["r"])
        contract(fn, irops.HIGH)
        assert fn.results[0] is p

    def test_or_with_true_is_true(self):
        body = Body()
        p = Value(BOOL)
        t = body.emit("const", [], BOOL, value=True)
        v = body.emit("or", [p, t], BOOL)
        fn = Func("t", [p], ["p"], body, [v], ["r"])
        contract(fn, irops.HIGH)
        assert final_const(fn) is True

    def test_select_same_branches(self):
        body = Body()
        c = Value(BOOL)
        x = Value(REAL)
        v = body.emit("select", [c, x, x], REAL)
        fn = Func("t", [c, x], ["c", "x"], body, [v], ["r"])
        contract(fn, irops.HIGH)
        assert fn.results[0] is x


class TestBranchSplicing:
    def _if_func(self, cond_value):
        body = Body()
        c = body.emit("const", [], BOOL, value=cond_value)
        then_b = Body()
        t = then_b.emit("const", [], REAL, value=1.0)
        else_b = Body()
        e = else_b.emit("const", [], REAL, value=2.0)
        merged = Value(REAL)
        body.add(IfRegion(c, then_b, else_b, [Phi(merged, t, e)]))
        return Func("t", [], [], body, [merged], ["r"])

    def test_true_branch_taken(self):
        fn = contract(self._if_func(True), irops.HIGH)
        assert final_const(fn) == 1.0
        assert not any(isinstance(i, IfRegion) for i in fn.body.items)

    def test_false_branch_taken(self):
        fn = contract(self._if_func(False), irops.HIGH)
        assert final_const(fn) == 2.0

    def test_phi_with_equal_operands_removed(self):
        body = Body()
        c = Value(BOOL)
        x = body.emit("const", [], REAL, value=5.0)
        merged = Value(REAL)
        body.add(IfRegion(c, Body(), Body(), [Phi(merged, x, x)]))
        fn = Func("t", [c], ["c"], body, [merged], ["r"])
        contract(fn, irops.HIGH)
        assert final_const(fn) == 5.0
        assert not any(isinstance(i, IfRegion) for i in fn.body.items)


class TestDeadCode:
    def test_unused_instruction_removed(self):
        body = Body()
        body.emit("const", [], REAL, value=3.0)  # dead
        live = body.emit("const", [], REAL, value=4.0)
        fn = Func("t", [], [], body, [live], ["r"])
        contract(fn, irops.HIGH)
        assert instr_count(fn) == 1

    def test_dead_probe_chain_removed(self):
        body = Body()
        p = Value(TensorTy((3,)))
        from repro.kernels import bspln3

        body.emit("probe", [p], REAL, image="img", kernel=bspln3, deriv=0,
                  out_shape=())  # dead
        live = body.emit("const", [], REAL, value=1.0)
        fn = Func("t", [p], ["p"], body, [live], ["r"])
        contract(fn, irops.HIGH)
        assert instr_count(fn) == 1

    def test_empty_if_removed(self):
        body = Body()
        body.emit("const", [], BOOL, value=True)  # becomes dead too
        inner = Body()
        inner.emit("const", [], REAL, value=1.0)  # dead
        body.add(IfRegion(Value(BOOL), inner, Body(), []))
        live = body.emit("const", [], REAL, value=2.0)
        fn = Func("t", [], [], body, [live], ["r"])
        contract(fn, irops.HIGH)
        assert instr_count(fn) == 1
        assert not any(isinstance(i, IfRegion) for i in fn.body.items)

    def test_live_if_cond_kept(self):
        c = Value(BOOL)
        body2 = Body()
        x = Value(REAL)
        then_b2 = Body()
        t2 = then_b2.emit("neg", [x], REAL)
        else_b2 = Body()
        merged = Value(REAL)
        body2.add(IfRegion(c, then_b2, else_b2, [Phi(merged, t2, x)]))
        fn = Func("t", [c, x], ["c", "x"], body2, [merged], ["r"])
        contract(fn, irops.HIGH)
        assert any(isinstance(i, IfRegion) for i in fn.body.items)


class TestFixpoint:
    def test_cascading_folds(self):
        """Folding exposes more folding; contract iterates to a fixpoint."""
        def build(b):
            one = b.emit("const", [], INT, value=1)
            two = b.emit("add", [one, one], INT)
            four = b.emit("mul", [two, two], INT)
            cmp = b.emit("gt", [four, one], BOOL)
            return [b.emit("select", [
                cmp, four, b.emit("const", [], INT, value=0)], INT)]
        assert final_const(fold(build)) == 4
