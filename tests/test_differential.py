"""Differential tests: three independent implementations must agree.

For each benchmark we compare (1) the compiled Diderot program — the full
pipeline through probe synthesis, kernel expansion, and NumPy codegen —
against (2) the hand-written gage baseline, and for probe-level programs
also against (3) the HighIR reference interpreter, which bypasses the
whole lowering half of the compiler.
"""

import numpy as np

from repro.baselines import illust_vr as b_ivr
from repro.baselines import lic2d as b_lic
from repro.baselines import ridge3d as b_ridge
from repro.baselines import vr_lite as b_vr
from repro.core.codegen.interp import HighInterpreter, compile_high
from repro.core.driver import compile_program
from repro.programs import illust_vr as p_ivr
from repro.programs import lic2d as p_lic
from repro.programs import ridge3d as p_ridge
from repro.programs import vr_lite as p_vr
from repro.programs.illust_vr import curvature_colormap


class TestVrLite:
    def test_matches_baseline(self, hand32):
        prog = compile_program(p_vr.SOURCE)
        prog.bind_image("img", hand32)
        prog.set_input("imgResU", 10)
        prog.set_input("imgResV", 10)
        prog.set_input("cVec", [3.0, 0.0, 0.0])
        prog.set_input("rVec", [0.0, 3.0, 0.0])
        res = prog.run()
        base = b_vr.run(hand32, res_u=10, res_v=10,
                        c_vec=(3.0, 0.0, 0.0), r_vec=(0.0, 3.0, 0.0))
        assert np.allclose(res.outputs["gray"], base, atol=1e-12)

    def test_renders_something(self, hand32):
        prog = p_vr.make_program(scale=0.12, volume_size=32)
        res = prog.run()
        gray = res.outputs["gray"]
        assert gray.max() > 0.3  # surfaces hit
        assert gray.min() == 0.0  # background rays


class TestIllustVr:
    def test_matches_baseline(self, hand32):
        xfer = curvature_colormap()
        prog = compile_program(p_ivr.SOURCE)
        prog.bind_image("img", hand32)
        prog.bind_image("xfer", xfer)
        prog.set_input("imgResU", 8)
        prog.set_input("imgResV", 8)
        prog.set_input("cVec", [30.0 / 8, 0.0, 0.0])
        prog.set_input("rVec", [0.0, 30.0 / 8, 0.0])
        res = prog.run()
        base = b_ivr.run(hand32, xfer, res_u=8, res_v=8,
                         c_vec=(30.0 / 8, 0.0, 0.0), r_vec=(0.0, 30.0 / 8, 0.0))
        assert np.allclose(res.outputs["rgb"], base, atol=1e-10)


class TestLic2d:
    def test_matches_baseline(self, vectors32, noise32):
        prog = compile_program(p_lic.SOURCE)
        prog.bind_image("vectors", vectors32)
        prog.bind_image("rand", noise32)
        prog.set_input("imgResU", 9)
        prog.set_input("imgResV", 9)
        res = prog.run()
        base = b_lic.run(vectors32, noise32, res_u=9, res_v=9)
        assert np.allclose(res.outputs["sum"], base, atol=1e-12)

    def test_streamline_contrast(self, vectors32, noise32):
        """LIC correlates along streamlines: center column (slow flow) is
        darker than the fast-flow rim (|V| modulation, Figure 5 line 16)."""
        prog = p_lic.make_program(scale=0.12, field_size=32)
        res = prog.run()
        img = res.outputs["sum"]
        center = img[img.shape[0] // 2, img.shape[1] // 2]
        corner = img[1, 1]
        assert center < corner


class TestRidge3d:
    def test_matches_baseline(self, lung32):
        prog = compile_program(p_ridge.SOURCE)
        prog.bind_image("img", lung32)
        prog.set_input("gridRes", 5)
        res = prog.run()
        base = b_ridge.run(lung32, grid_res=5)
        assert res.outputs["pos"].shape == base.shape
        if base.size:
            assert np.allclose(res.outputs["pos"], base, atol=1e-10)

    def test_converges_to_true_centerlines(self):
        """Stable particles land near analytic vessel centerlines."""
        from repro.data import lung_phantom
        from repro.data.synth import lung_vessel_centerlines

        img = lung_phantom(48)
        prog = compile_program(p_ridge.SOURCE)
        prog.bind_image("img", img)
        prog.set_input("gridRes", 8)
        res = prog.run()
        pos = res.outputs["pos"]
        assert pos.shape[0] >= 3  # some particles converged
        lines = lung_vessel_centerlines(48, samples=400).reshape(-1, 3)
        dists = np.array(
            [np.min(np.linalg.norm(lines - p, axis=1)) for p in pos]
        )
        # the parenchyma noise can create a few legitimate spurious ridges,
        # so require the bulk (not all) of the particles on true centerlines
        on_vessel = np.mean(dists < 1.5)
        assert on_vessel >= 0.8, f"only {on_vessel:.0%} of particles on centerlines"
        assert np.median(dists) < 0.25


class TestInterpreterAgainstCompiled:
    SRC = """
        image(3)[] img = load("a.nrrd");
        field#2(3)[] F = img ⊛ bspln3;
        field#2(3)[] G = 2.0 * F + F;
        strand S (int i) {
            vec3 pos = [real(i)*0.6 - 3.0, 0.4, -0.2];
            output real v = 0.0;
            output vec3 g = [0.0, 0.0, 0.0];
            output tensor[3,3] h = identity[3];
            update {
                if (inside(pos, G)) {
                    v = G(pos);
                    g = ∇G(pos);
                    h = ∇⊗∇F(pos);
                }
                stabilize;
            }
        }
        initially [ S(i) | i in 0 .. 11 ];
    """

    def test_interp_matches_compiled(self, hand32):
        hp = compile_high(self.SRC)
        interp = HighInterpreter(hp, {"img": hand32})
        g = list(interp.call(hp.globals_func, []))  # synthetic scale globals
        iters = [np.arange(12)]
        params = interp.call(hp.seed_func, g + iters)
        state = interp.call(hp.init_func, g + list(params))
        out = interp.call(hp.update_func, g + list(state))
        names = hp.update_func.result_names

        prog = compile_program(self.SRC)
        prog.bind_image("img", hand32)
        res = prog.run()
        for key in ("v", "g", "h"):
            ref = out[names.index(key)]
            got = res.outputs[key]
            assert np.allclose(ref, got, atol=1e-10), key
