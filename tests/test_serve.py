"""The serving layer: registry, batching front door, backpressure.

The load-bearing assertion (ISSUE acceptance): concurrent batched
requests through the front door return results **bit-identical** to a
direct ``Program.run`` under seq/thread/process schedulers — batching
changes latency, never values.  Float64 survives the JSON hop exactly
because Python serializes floats with shortest-round-trip repr.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.core.driver import compile_file
from repro.errors import InputError
from repro.image import Image
from repro.obs import metrics as _mx
from repro.serve.batch import Overloaded, ProbeBatcher
from repro.serve.registry import ProbeSpec, ProgramRegistry
from repro.serve.server import ServeApp

EXAMPLE = os.path.join(os.path.dirname(__file__), os.pardir,
                       "examples", "programs", "probe_serve.diderot")

SIMPLE = """
input int N = 4;
strand s (int i) {
    output real y = 0.0;
    update { y = real(i) * 3.0; stabilize; }
}
initially [ s(i) | i in 0..(N-1) ];
"""


def _counter(name: str) -> float:
    return _mx.GLOBAL.snapshot()["counters"].get(name, 0)


def _points(n: int) -> np.ndarray:
    rng = np.random.default_rng(99)
    return np.asarray(rng.random((n, 3)) * 30.0)


def _direct_oracle(points: np.ndarray) -> np.ndarray:
    """Ground truth: a separately-compiled Program, run directly."""
    prog = compile_file(EXAMPLE, cache=False)
    data = np.concatenate([points, points[-1:]], axis=0)
    prog.bind_image("pts", Image(data, dim=1, tensor_shape=(3,)))
    prog.set_input("N", points.shape[0])
    return prog.run().outputs["out"]


@pytest.fixture()
def registry():
    reg = ProgramRegistry()
    yield reg
    reg.clear()


class TestRegistry:
    def test_register_get_list_evict(self, registry):
        entry = registry.register("a", source=SIMPLE)
        assert registry.get("a") is entry
        assert "a" in registry and len(registry) == 1
        listed = registry.list()
        assert listed[0]["name"] == "a"
        assert listed[0]["outputs"] == ["y"]
        assert registry.evict("a") is True
        assert registry.evict("a") is False
        with pytest.raises(KeyError):
            registry.get("a")

    def test_source_xor_path_required(self, registry):
        with pytest.raises(InputError):
            registry.register("x")
        with pytest.raises(InputError):
            registry.register("x", source=SIMPLE, path=EXAMPLE)

    def test_evicted_entry_refuses_runs(self, registry):
        entry = registry.register("a", source=SIMPLE)
        registry.evict("a")
        with pytest.raises(InputError, match="evicted"):
            entry.run()

    def test_lru_capacity_eviction(self):
        reg = ProgramRegistry(capacity=2)
        before = _counter("serve.registry.evicted")
        reg.register("a", source=SIMPLE)
        reg.register("b", source=SIMPLE.replace("3.0", "4.0"))
        reg.get("a")  # refresh a's recency: b becomes the LRU
        reg.register("c", source=SIMPLE.replace("3.0", "5.0"))
        assert "a" in reg and "c" in reg and "b" not in reg
        assert _counter("serve.registry.evicted") == before + 1
        reg.clear()

    def test_replacement_closes_old_entry(self, registry):
        old = registry.register("a", source=SIMPLE, scheduler="thread",
                                workers=2)
        old.run()  # builds the pooled scheduler
        pool = old._pool
        assert pool is not None
        registry.register("a", source=SIMPLE)
        assert old._closed and old._pool is None
        assert pool._stop.is_set() if hasattr(pool, "_stop") else True

    def test_scheduler_pool_is_reused(self, registry):
        entry = registry.register("a", source=SIMPLE, scheduler="thread",
                                  workers=2)
        r1 = entry.run()
        pool1 = entry._pool
        r2 = entry.run()
        assert entry._pool is pool1 and pool1 is not None
        assert np.array_equal(r1.outputs["y"], r2.outputs["y"])

    def test_process_pool_reuses_workers(self, registry):
        entry = registry.register("a", source=SIMPLE, scheduler="process",
                                  workers=2)
        entry.run()
        pids1 = [p.pid for p in entry._pool._procs]
        entry.run()
        pids2 = [p.pid for p in entry._pool._procs]
        assert pids1 == pids2, "a pooled process scheduler must re-arm, not re-fork"


class TestRunBatch:
    @pytest.mark.parametrize("scheduler,workers", [
        (None, 1), ("thread", 2), ("process", 2),
    ])
    def test_batch_bit_identical_to_direct_run(self, registry, scheduler,
                                               workers):
        points = _points(10)
        want = _direct_oracle(points)
        entry = registry.register(f"p-{scheduler}", path=EXAMPLE,
                                  probe=ProbeSpec("pts", "N"),
                                  scheduler=scheduler, workers=workers)
        got = entry.run_batch(points)["out"]
        assert np.array_equal(got, want)
        # and a second batch through the (possibly pooled) scheduler
        got2 = entry.run_batch(points[:4])["out"]
        assert np.array_equal(got2, want[:4])

    def test_batch_requires_probe_spec(self, registry):
        entry = registry.register("a", source=SIMPLE)
        with pytest.raises(InputError, match="probe"):
            entry.run_batch(_points(2))


class TestBatcher:
    def test_coalesces_and_splits_bit_exact(self, registry):
        points = _points(9)
        want = _direct_oracle(points)
        entry = registry.register("p", path=EXAMPLE,
                                  probe=ProbeSpec("pts", "N"))
        before_b = _counter("serve.batch.batches")
        before_c = _counter("serve.batch.coalesced")

        async def drive():
            batcher = ProbeBatcher(entry, window=0.05)
            outs = await asyncio.gather(*[
                batcher.submit(points[i:i + 3]) for i in range(0, 9, 3)
            ])
            await batcher.close()
            return outs

        outs = asyncio.run(drive())
        for i, out in enumerate(outs):
            assert np.array_equal(out["out"], want[3 * i:3 * i + 3])
        assert _counter("serve.batch.batches") - before_b < 3, \
            "three concurrent submits should coalesce"
        assert _counter("serve.batch.coalesced") - before_c >= 2

    def test_queue_bound_sheds(self, registry):
        entry = registry.register("p", path=EXAMPLE,
                                  probe=ProbeSpec("pts", "N"))
        points = _points(8)
        before = _counter("serve.shed")

        async def drive():
            batcher = ProbeBatcher(entry, window=0.2, max_queue=2)
            results = await asyncio.gather(*[
                batcher.submit(points[i:i + 1]) for i in range(8)
            ], return_exceptions=True)
            await batcher.close()
            return results

        results = asyncio.run(drive())
        shed = [r for r in results if isinstance(r, Overloaded)]
        served = [r for r in results if isinstance(r, dict)]
        assert shed, "max_queue=2 under 8 concurrent submits must shed"
        assert served, "some requests must still be served"
        assert _counter("serve.shed") > before


async def _http(port: int, method: str, path: str, doc=None):
    from repro.serve.__main__ import _request

    return await _request(port, method, path, doc)


class TestHttpServer:
    def test_round_trip_coalesced_and_bit_exact(self):
        points = _points(8)
        want = _direct_oracle(points)

        async def drive():
            app = ServeApp(ProgramRegistry(), window=0.05)
            await app.start("127.0.0.1", 0)
            status, doc = await _http(app.port, "POST", "/programs/demo", {
                "path": EXAMPLE, "scheduler": "thread", "workers": 2,
                "probe": {"points_image": "pts", "count_input": "N"},
            })
            assert status == 200, doc
            results = await asyncio.gather(*[
                _http(app.port, "POST", "/probe/demo",
                      {"points": [p.tolist()]})
                for p in points
            ])
            status_h, health = await _http(app.port, "GET", "/healthz")
            status_m, metrics = await _http(app.port, "GET", "/metrics")
            await app.close()
            return results, (status_h, health), (status_m, metrics)

        results, (sh, health), (sm, metrics) = asyncio.run(drive())
        assert sh == 200 and health["ok"] and sm == 200
        for (status, doc), row in zip(results, want):
            assert status == 200, doc
            got = np.asarray(doc["outputs"]["out"][0])
            assert np.array_equal(got, row), "JSON hop must be bit-exact"
        counters = metrics["counters"]
        assert counters.get("serve.requests", 0) >= 9
        assert counters.get("serve.batch.coalesced", 0) >= 2

    def test_unknown_program_404_and_bad_body_400(self):
        async def drive():
            app = ServeApp(ProgramRegistry())
            await app.start("127.0.0.1", 0)
            r404 = await _http(app.port, "POST", "/probe/ghost",
                               {"points": [[0.0, 0.0, 0.0]]})
            r400 = await _http(app.port, "POST", "/programs/x",
                               {"source": "not diderot ("})
            r405 = await _http(app.port, "GET", "/programs/x/extra")
            await app.close()
            return r404, r400, r405

        (s404, _), (s400, _), (s405, _) = asyncio.run(drive())
        assert s404 == 404
        assert s400 == 400
        assert s405 == 404

    def test_shed_returns_429(self):
        points = _points(10)

        async def drive():
            app = ServeApp(ProgramRegistry(), window=0.1, max_queue=1)
            await app.start("127.0.0.1", 0)
            status, _ = await _http(app.port, "POST", "/programs/demo", {
                "path": EXAMPLE,
                "probe": {"points_image": "pts", "count_input": "N"},
            })
            assert status == 200
            flood = await asyncio.gather(*[
                _http(app.port, "POST", "/probe/demo",
                      {"points": [p.tolist()]})
                for p in points
            ])
            await app.close()
            return flood

        flood = asyncio.run(drive())
        codes = {s for s, _ in flood}
        assert 429 in codes
        assert 200 in codes

    def test_run_endpoint_and_evict(self):
        async def drive():
            app = ServeApp(ProgramRegistry())
            await app.start("127.0.0.1", 0)
            status, _ = await _http(app.port, "POST", "/programs/s",
                                    {"source": SIMPLE})
            assert status == 200
            s_run, doc = await _http(app.port, "POST", "/run/s",
                                     {"inputs": {"N": 5}})
            s_del, _ = await _http(app.port, "DELETE", "/programs/s")
            s_gone, _ = await _http(app.port, "POST", "/run/s", {})
            await app.close()
            return s_run, doc, s_del, s_gone

        s_run, doc, s_del, s_gone = asyncio.run(drive())
        assert s_run == 200
        assert doc["outputs"]["y"] == [0.0, 3.0, 6.0, 9.0, 12.0]
        assert s_del == 200
        assert s_gone == 404
