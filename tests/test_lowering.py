"""Tests for the lowering passes: probe synthesis (to_mid) and kernel
expansion (to_low) — paper §5.3."""


from repro.core.codegen.interp import compile_high
from repro.core.ir import ops as irops
from repro.core.ir.base import validate
from repro.core.xform.to_low import to_low
from repro.core.xform.to_mid import to_mid
from repro.core.xform.to_mid import _combos
from repro.kernels import bspln3, ctmr


def ops_of(fn):
    return [i.op for i in fn.body.instructions()]


def lower_update(src: str, to: str = "mid"):
    hp = compile_high(src)
    fn = hp.update_func
    to_mid(fn, hp.images)
    if to == "low":
        to_low(fn)
    return fn, hp


PROBE_SRC = """
image(3)[] img = load("a.nrrd");
field#2(3)[] F = img ⊛ bspln3;
strand S (int i) {
    vec3 pos = [real(i), 0.0, 0.0];
    output real v = 0.0;
    update { v = F(pos); stabilize; }
}
initially [ S(i) | i in 0 .. 9 ];
"""

GRAD_SRC = PROBE_SRC.replace("output real v = 0.0;", "output vec3 v = [0.0,0.0,0.0];").replace(
    "v = F(pos);", "v = ∇F(pos);"
)

INSIDE_SRC = PROBE_SRC.replace("v = F(pos);", "if (inside(pos, F)) v = 1.0;")

ONE_D_SRC = """
field#1(1)[] f = ctmr ⊛ load("sig.nrrd");
strand S (int i) {
    output real v = 0.0;
    update { v = f(real(i)); stabilize; }
}
initially [ S(i) | i in 0 .. 9 ];
"""


class TestCombos:
    def test_deriv0(self):
        assert _combos(3, 0) == [()]

    def test_deriv1(self):
        assert _combos(2, 1) == [(0,), (1,)]

    def test_deriv2_row_major(self):
        assert _combos(2, 2) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_count(self):
        assert len(_combos(3, 2)) == 9


class TestToMid:
    def test_probe_pipeline_ops(self):
        fn, _ = lower_update(PROBE_SRC)
        ops = ops_of(fn)
        for op in ("to_index", "floor_i", "fract", "gather", "weights", "conv_contract"):
            assert op in ops, op
        assert "probe" not in ops  # compiled away (§5.1)

    def test_scalar_probe_has_no_grad_xform(self):
        fn, _ = lower_update(PROBE_SRC)
        assert "grad_xform" not in ops_of(fn)
        assert "deriv_assemble" not in ops_of(fn)

    def test_gradient_probe_has_world_pushback(self):
        fn, _ = lower_update(GRAD_SRC)
        ops = ops_of(fn)
        assert "grad_xform" in ops
        assert "deriv_assemble" in ops

    def test_one_weight_vector_per_axis(self):
        fn, _ = lower_update(PROBE_SRC)
        assert ops_of(fn).count("weights") == 3

    def test_inside_lowering(self):
        fn, _ = lower_update(INSIDE_SRC)
        ops = ops_of(fn)
        assert "index_inside" in ops
        assert "inside" not in ops

    def test_1d_position_wrapped(self):
        fn, _ = lower_update(ONE_D_SRC)
        ops = ops_of(fn)
        assert "to_index" in ops
        assert "gather" in ops

    def test_validates_as_mid(self):
        fn, _ = lower_update(PROBE_SRC)
        validate(fn, irops.MID, "MidIR")


class TestToLow:
    def test_weights_expanded_to_horner(self):
        fn, _ = lower_update(PROBE_SRC, to="low")
        ops = ops_of(fn)
        assert "weights" not in ops
        # bspln3 support 2 → 4 horner evaluations per axis, 3 axes
        assert ops.count("horner") == 12
        assert ops.count("vec_cons") == 3

    def test_horner_coefficients_are_weight_polynomials(self):
        fn, _ = lower_update(PROBE_SRC, to="low")
        coeffs = [
            i.attrs["coeffs"]
            for i in fn.body.instructions()
            if i.op == "horner"
        ]
        expected = [p.coeffs for p in bspln3.weight_polynomials()]
        assert coeffs[:4] == expected

    def test_validates_as_low(self):
        fn, _ = lower_update(GRAD_SRC, to="low")
        validate(fn, irops.LOW, "LowIR")

    def test_derivative_weights_use_derivative_polynomials(self):
        fn, _ = lower_update(GRAD_SRC, to="low")
        coeff_sets = {
            i.attrs["coeffs"] for i in fn.body.instructions() if i.op == "horner"
        }
        d_polys = {p.coeffs for p in bspln3.derivative().weight_polynomials()}
        assert d_polys <= coeff_sets
