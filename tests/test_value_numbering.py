"""Tests for value numbering (paper §5.4's domain-specific CSE)."""

import numpy as np

from repro.core.driver import OptOptions
from repro.core.ir import ops as irops
from repro.core.ir.base import Body, Func, IfRegion, Phi, Value
from repro.core.ty.types import BOOL, REAL
from repro.core.xform.value_numbering import value_number


def count_ops(fn, name):
    return sum(1 for i in fn.body.instructions() if i.op == name)


class TestBasicMerging:
    def test_identical_instructions_merge(self):
        body = Body()
        x = Value(REAL)
        a = body.emit("neg", [x], REAL)
        b = body.emit("neg", [x], REAL)
        out = body.emit("add", [a, b], REAL)
        fn = Func("t", [x], ["x"], body, [out], ["r"])
        removed = value_number(fn)
        assert removed == 1
        assert count_ops(fn, "neg") == 1

    def test_equal_constants_merge(self):
        body = Body()
        a = body.emit("const", [], REAL, value=2.0)
        b = body.emit("const", [], REAL, value=2.0)
        out = body.emit("add", [a, b], REAL)
        fn = Func("t", [], [], body, [out], ["r"])
        value_number(fn)
        assert count_ops(fn, "const") == 1

    def test_nan_constants_do_not_merge(self):
        body = Body()
        a = body.emit("const", [], REAL, value=float("nan"))
        b = body.emit("const", [], REAL, value=float("nan"))
        out = body.emit("add", [a, b], REAL)
        fn = Func("t", [], [], body, [out], ["r"])
        value_number(fn)
        assert count_ops(fn, "const") == 2

    def test_commutative_ops_merge_swapped(self):
        body = Body()
        x, y = Value(REAL), Value(REAL)
        a = body.emit("add", [x, y], REAL)
        b = body.emit("add", [y, x], REAL)
        out = body.emit("mul", [a, b], REAL)
        fn = Func("t", [x, y], ["x", "y"], body, [out], ["r"])
        assert value_number(fn) == 1

    def test_noncommutative_not_merged_swapped(self):
        body = Body()
        x, y = Value(REAL), Value(REAL)
        a = body.emit("sub", [x, y], REAL)
        b = body.emit("sub", [y, x], REAL)
        out = body.emit("mul", [a, b], REAL)
        fn = Func("t", [x, y], ["x", "y"], body, [out], ["r"])
        assert value_number(fn) == 0

    def test_different_attrs_not_merged(self):
        body = Body()
        from repro.core.ty.types import TensorTy

        v = Value(TensorTy((2, 2)))
        a = body.emit("tensor_index", [v], REAL, indices=(0, 0))
        b = body.emit("tensor_index", [v], REAL, indices=(1, 1))
        out = body.emit("add", [a, b], REAL)
        fn = Func("t", [v], ["v"], body, [out], ["r"])
        assert value_number(fn) == 0

    def test_transitive_merging(self):
        """Merging args makes downstream expressions merge too."""
        body = Body()
        x = Value(REAL)
        a1 = body.emit("neg", [x], REAL)
        a2 = body.emit("neg", [x], REAL)
        b1 = body.emit("sqrt", [a1], REAL)
        b2 = body.emit("sqrt", [a2], REAL)
        out = body.emit("add", [b1, b2], REAL)
        fn = Func("t", [x], ["x"], body, [out], ["r"])
        assert value_number(fn) == 2


class TestScoping:
    def test_branch_values_not_shared_across_siblings(self):
        body = Body()
        c = Value(BOOL)
        x = Value(REAL)
        then_b = Body()
        t = then_b.emit("neg", [x], REAL)
        else_b = Body()
        e = else_b.emit("neg", [x], REAL)  # same expr, other branch
        merged = Value(REAL)
        body.add(IfRegion(c, then_b, else_b, [Phi(merged, t, e)]))
        fn = Func("t", [c, x], ["c", "x"], body, [merged], ["r"])
        assert value_number(fn) == 0  # neither branch dominates the other

    def test_outer_value_reused_in_branch(self):
        body = Body()
        c = Value(BOOL)
        x = Value(REAL)
        outer = body.emit("neg", [x], REAL)
        then_b = Body()
        t = then_b.emit("neg", [x], REAL)  # redundant with outer
        merged = Value(REAL)
        body.add(IfRegion(c, then_b, Body(), [Phi(merged, t, outer)]))
        fn = Func("t", [c, x], ["c", "x"], body, [merged], ["r"])
        value_number(fn)
        # phi collapsed to outer, region emptied
        assert fn.results[0] is outer


SHARED_PROBE_SRC = """
image(3)[] img = load("a.nrrd");
field#2(3)[] F = img ⊛ bspln3;
strand S (int i) {
    vec3 pos = [real(i), 0.0, 0.0];
    output real v = 0.0;
    output vec3 g = [0.0, 0.0, 0.0];
    update {
        v = F(pos);
        g = ∇F(pos);
        stabilize;
    }
}
initially [ S(i) | i in 0 .. 9 ];
"""

HESSIAN_SRC = """
image(3)[] img = load("a.nrrd");
field#2(3)[] F = img ⊛ bspln3;
strand S (int i) {
    vec3 pos = [real(i), 0.0, 0.0];
    output tensor[3,3] H = identity[3];
    update { H = ∇⊗∇F(pos); stabilize; }
}
initially [ S(i) | i in 0 .. 9 ];
"""


def mid_update_op_counts(src, vn: bool):
    """Compile to MidIR (optimized per flags) and count update-func ops."""
    from repro.core.driver import _optimize
    from repro.core.codegen.interp import compile_high
    from repro.core.xform.to_mid import to_mid
    from repro.obs import NULL_TRACER

    opts = OptOptions(value_numbering=vn)
    hp = compile_high(src, optimize=opts)
    fn = hp.update_func
    to_mid(fn, hp.images)
    _optimize(fn, irops.MID, opts, NULL_TRACER, "mid")
    return {
        op: count_ops(fn, op)
        for op in ("gather", "to_index", "conv_contract", "weights")
    }


class TestDomainSpecific:
    """The two §5.4 examples, reproduced as stated in the paper."""

    def test_shared_convolution_between_value_and_gradient(self):
        with_vn = mid_update_op_counts(SHARED_PROBE_SRC, vn=True)
        without = mid_update_op_counts(SHARED_PROBE_SRC, vn=False)
        # probing F and ∇F at the same position shares the gather and the
        # index computation
        assert with_vn["gather"] == 1
        assert without["gather"] == 2
        assert with_vn["to_index"] == 1

    def test_hessian_symmetry_detected(self):
        with_vn = mid_update_op_counts(HESSIAN_SRC, vn=True)
        without = mid_update_op_counts(HESSIAN_SRC, vn=False)
        # 3x3 Hessian: 9 combos, 6 unique by symmetry
        assert without["conv_contract"] == 9
        assert with_vn["conv_contract"] == 6

    def test_weight_sharing_across_hessian_components(self):
        with_vn = mid_update_op_counts(HESSIAN_SRC, vn=True)
        # per axis: order-0, order-1, order-2 weights = 9 weight vectors
        assert with_vn["weights"] == 9

    def test_outputs_identical_with_and_without_vn(self):
        """VN is semantics-preserving end to end."""
        from repro.core.driver import compile_program
        from repro.data import hand_phantom

        img = hand_phantom(24)
        outs = []
        for vn in (True, False):
            prog = compile_program(
                SHARED_PROBE_SRC, optimize=OptOptions(value_numbering=vn)
            )
            prog.bind_image("img", img)
            res = prog.run()
            outs.append((res.outputs["v"], res.outputs["g"]))
        assert np.array_equal(outs[0][0], outs[1][0])
        assert np.array_equal(outs[0][1], outs[1][1])


class TestKernelAttrKeys:
    """Kernels hash by structure, not identity (the `id(v)` latent bug)."""

    def test_structurally_equal_kernels_merge(self):
        from repro.kernels.library import KERNELS, bspline

        # bspline(3) builds a fresh Kernel structurally identical to the
        # interned bspln3; weight computations over the two must merge
        k1, k2 = bspline(3), KERNELS["bspln3"]
        assert k1 is not k2
        body = Body()
        x = Value(REAL)
        a = body.emit("weights", [x], ("weights", 4), kernel=k1, deriv=0, axis=0)
        b = body.emit("weights", [x], ("weights", 4), kernel=k2, deriv=0, axis=0)
        out = body.emit("conv_contract", [a, b], REAL)
        fn = Func("t", [x], ["x"], body, [out], ["r"])
        assert value_number(fn) == 1
        assert count_ops(fn, "weights") == 1

    def test_different_kernels_do_not_merge(self):
        from repro.kernels.library import KERNELS

        body = Body()
        x = Value(REAL)
        a = body.emit("weights", [x], ("weights", 4),
                      kernel=KERNELS["bspln3"], deriv=0, axis=0)
        b = body.emit("weights", [x], ("weights", 4),
                      kernel=KERNELS["ctmr"], deriv=0, axis=0)
        out = body.emit("conv_contract", [a, b], REAL)
        fn = Func("t", [x], ["x"], body, [out], ["r"])
        assert value_number(fn) == 0
        assert count_ops(fn, "weights") == 2

    def test_same_kernel_different_deriv_do_not_merge(self):
        from repro.kernels.library import KERNELS

        body = Body()
        x = Value(REAL)
        a = body.emit("weights", [x], ("weights", 4),
                      kernel=KERNELS["bspln3"], deriv=0, axis=0)
        b = body.emit("weights", [x], ("weights", 4),
                      kernel=KERNELS["bspln3"], deriv=1, axis=0)
        out = body.emit("conv_contract", [a, b], REAL)
        fn = Func("t", [x], ["x"], body, [out], ["r"])
        assert value_number(fn) == 0
