"""Tests for the ``python -m repro`` command-line driver."""

import os

import numpy as np
import pytest

from repro.__main__ import main
from repro.image import Image
from repro.nrrd import read_nrrd, write_nrrd

PROGRAM = """
input int res = 8;
input real scale = 1.0;
image(2)[] img = load("data.nrrd");
field#0(2)[] F = img ⊛ tent;
strand S (int i, int j) {
    output real v = 0.0;
    update {
        vec2 p = [real(i), real(j)];
        if (inside(p, F)) v = scale * F(p);
        stabilize;
    }
}
initially [ S(i, j) | i in 0 .. res-1, j in 0 .. res-1 ];
"""


@pytest.fixture
def workspace(tmp_path):
    src = tmp_path / "prog.diderot"
    src.write_text(PROGRAM, encoding="utf-8")
    data = Image(np.arange(64.0).reshape(8, 8), dim=2)
    write_nrrd(str(tmp_path / "data.nrrd"), data)
    return tmp_path


class TestCli:
    def test_run_and_write_nrrd(self, workspace, capsys):
        out_prefix = str(workspace / "res")
        code = main([str(workspace / "prog.diderot"), "--out", out_prefix])
        assert code == 0
        captured = capsys.readouterr().out
        assert "64 strands" in captured
        img = read_nrrd(f"{out_prefix}-v.nrrd")
        assert img.sizes == (8, 8)
        assert img.data[3, 4] == pytest.approx(3 * 8 + 4)

    def test_inputs_from_flags(self, workspace):
        out_prefix = str(workspace / "res2")
        code = main([
            str(workspace / "prog.diderot"),
            "--input", "scale=2.0",
            "--input", "res=4",
            "--out", out_prefix,
        ])
        assert code == 0
        img = read_nrrd(f"{out_prefix}-v.nrrd")
        assert img.sizes == (4, 4)
        assert img.data[1, 1] == pytest.approx(2.0 * 9.0)

    def test_text_output(self, workspace):
        out_prefix = str(workspace / "txt")
        code = main([str(workspace / "prog.diderot"), "--text", "--out", out_prefix])
        assert code == 0
        vals = np.loadtxt(f"{out_prefix}-v.txt")
        assert vals.shape == (8, 8)

    def test_emit_python(self, workspace, capsys):
        code = main([str(workspace / "prog.diderot"), "--emit-python"])
        assert code == 0
        out = capsys.readouterr().out
        assert "def update(" in out
        assert "rt.gather" in out

    def test_stats(self, workspace, capsys):
        code = main([str(workspace / "prog.diderot"), "--stats",
                     "--out", str(workspace / "s")])
        assert code == 0
        assert "instruction counts" in capsys.readouterr().out

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.diderot"
        bad.write_text("strand S (int i) { update { } }", encoding="utf-8")
        code = main([str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        code = main([str(tmp_path / "nope.diderot")])
        assert code == 1

    def test_bad_input_syntax(self, workspace, capsys):
        code = main([str(workspace / "prog.diderot"), "--input", "scale"])
        assert code == 1
        assert "NAME=VALUE" in capsys.readouterr().err

    def test_unknown_input_name(self, workspace, capsys):
        code = main([str(workspace / "prog.diderot"), "--input", "nope=1"])
        assert code == 1

    def test_precision_flag(self, workspace):
        out_prefix = str(workspace / "f32")
        code = main([str(workspace / "prog.diderot"), "--precision", "single",
                     "--out", out_prefix])
        assert code == 0
        img = read_nrrd(f"{out_prefix}-v.nrrd")
        assert img.sizes == (8, 8)

    def test_unparseable_input_value(self, workspace, capsys):
        code = main([str(workspace / "prog.diderot"), "--input", "scale=zork"])
        assert code == 1
        assert "cannot parse" in capsys.readouterr().err

    def test_trace_flag_writes_chrome_json(self, workspace):
        import json

        trace_path = workspace / "t.json"
        code = main([str(workspace / "prog.diderot"),
                     "--trace", str(trace_path),
                     "--out", str(workspace / "tr")])
        assert code == 0
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        names = {e["name"] for e in doc["traceEvents"]}
        # compiler-pass spans and runtime spans share one timeline
        assert {"parse", "typecheck", "codegen", "superstep", "block"} <= names

    def test_profile_flag_prints_summary(self, workspace, capsys):
        code = main([str(workspace / "prog.diderot"), "--profile",
                     "--out", str(workspace / "pf")])
        assert code == 0
        out = capsys.readouterr().out
        assert "compiler passes" in out
        assert "super-steps" in out
        assert "workers" in out

    def test_repro_trace_env_var(self, workspace, monkeypatch):
        import json

        trace_path = workspace / "env.json"
        monkeypatch.setenv("REPRO_TRACE", str(trace_path))
        code = main([str(workspace / "prog.diderot"),
                     "--out", str(workspace / "ev")])
        assert code == 0
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        assert any(e["name"] == "superstep" for e in doc["traceEvents"])


class TestParseValue:
    """The shared input-value parser (used by ``--input`` and
    ``Program.cli``)."""

    def test_forms(self):
        from repro.inputs import parse_value

        assert parse_value("true") is True
        assert parse_value("false") is False
        assert parse_value("42") == 42 and isinstance(parse_value("42"), int)
        assert parse_value("1.5") == 1.5
        assert parse_value("1e-3") == pytest.approx(1e-3)
        assert parse_value("[1, 2.5, 3]") == [1.0, 2.5, 3.0]
        assert parse_value("  7 ") == 7

    def test_errors(self):
        from repro.errors import InputError
        from repro.inputs import parse_value

        for bad in ("zork", "[1, 2", "[]", "[a,b]"):
            with pytest.raises(InputError):
                parse_value(bad)

    def test_program_cli_uses_shared_parser(self, workspace, monkeypatch):
        from repro.core.driver import compile_file

        monkeypatch.chdir(workspace)
        prog = compile_file(str(workspace / "prog.diderot"))
        res = prog.cli(["--scale", "2.0", "--res", "4"])
        assert res.num_strands == 16
        assert res.outputs["v"][1, 1] == pytest.approx(2.0 * 9.0)

    def test_program_cli_trace_and_profile(self, workspace, capsys, monkeypatch):
        import json

        from repro.core.driver import compile_file

        monkeypatch.chdir(workspace)
        prog = compile_file(str(workspace / "prog.diderot"))
        trace_path = workspace / "cli.json"
        prog.cli(["--res", "4", "--trace", str(trace_path), "--profile"])
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        assert any(e["name"] == "superstep" for e in doc["traceEvents"])
        assert "super-steps" in capsys.readouterr().out


class TestStandalonePrograms:
    """The .diderot files under examples/programs/ compile via the CLI."""

    @pytest.fixture(scope="class")
    def progdir(self):
        import repro

        root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        d = os.path.join(os.path.dirname(root), "examples", "programs")
        if not os.path.exists(os.path.join(d, "hand.nrrd")):
            pytest.skip("run examples/make_data.py first")
        return d

    def test_isocontour_via_cli(self, progdir, tmp_path):
        code = main([
            os.path.join(progdir, "isocontour.diderot"),
            "--input", "resU=20", "--input", "resV=20",
            "--out", str(tmp_path / "iso"),
        ])
        assert code == 0
        img = read_nrrd(str(tmp_path / "iso-pos.nrrd"))
        assert img.tensor_shape == (2,)
