"""Smoke tests: every example script runs end to end (tiny workloads)."""

import importlib
import os
import sys


EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)


def run_example(module_name: str, argv: list[str], tmp_path, monkeypatch):
    monkeypatch.syspath_prepend(EXAMPLES)
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(sys, "argv", [module_name] + argv)
    mod = importlib.import_module(module_name)
    try:
        mod.main()
    finally:
        sys.modules.pop(module_name, None)


class TestExamples:
    def test_quickstart(self, tmp_path, monkeypatch):
        run_example("quickstart", ["--res", "16", "--volume", "24"],
                    tmp_path, monkeypatch)
        assert (tmp_path / "vr_lite.pgm").exists()

    def test_curvature_vr(self, tmp_path, monkeypatch):
        run_example("curvature_vr", ["--res", "12", "--volume", "24"],
                    tmp_path, monkeypatch)
        assert (tmp_path / "curvature_vr.ppm").exists()
        assert (tmp_path / "curvature_cmap.ppm").exists()

    def test_lic2d(self, tmp_path, monkeypatch):
        run_example("lic2d", ["--res", "24", "--steps", "5", "--field", "32"],
                    tmp_path, monkeypatch)
        assert (tmp_path / "lic.pgm").exists()

    def test_isocontours(self, tmp_path, monkeypatch):
        run_example("isocontours", ["--size", "40"], tmp_path, monkeypatch)
        assert (tmp_path / "isocontours.pgm").exists()

    def test_ridge_particles(self, tmp_path, monkeypatch):
        run_example("ridge_particles", ["--grid", "6", "--volume", "32"],
                    tmp_path, monkeypatch)
        # output file written only when particles converge; stats printed always

    def test_vector_field_ops(self, tmp_path, monkeypatch):
        run_example("vector_field_ops", [], tmp_path, monkeypatch)

    def test_fields_api(self, tmp_path, monkeypatch):
        run_example("fields_api", [], tmp_path, monkeypatch)

    def test_make_data(self, tmp_path, monkeypatch):
        monkeypatch.syspath_prepend(EXAMPLES)
        mod = importlib.import_module("make_data")
        monkeypatch.setattr(mod, "HERE", str(tmp_path))
        mod.main()
        assert (tmp_path / "hand.nrrd").exists()
        assert (tmp_path / "xfer.nrrd").exists()
        sys.modules.pop("make_data", None)
