"""Tests for first-class field objects and the Figure 10 algebra."""

import numpy as np
import pytest

from repro.errors import DiderotError
from repro.fields import ConvField, ScaledField, SumField, convolve
from repro.image import Image
from repro.kernels import bspln3, ctmr, tent


@pytest.fixture
def img2(rng):
    return Image(rng.standard_normal((16, 16)), dim=2)


@pytest.fixture
def img2b(rng):
    return Image(rng.standard_normal((16, 16)), dim=2)


@pytest.fixture
def vecimg(rng):
    return Image(rng.standard_normal((16, 16, 2)), dim=2, tensor_shape=(2,))


P = np.array([[7.3, 8.1]])


class TestConvField:
    def test_type_attributes(self, img2):
        f = convolve(img2, bspln3)
        assert f.dim == 2 and f.shape == () and f.continuity == 2

    def test_grad_types(self, img2):
        g = convolve(img2, bspln3).grad()
        assert g.shape == (2,) and g.continuity == 1
        h = g.grad()
        assert h.shape == (2, 2) and h.continuity == 0

    def test_grad_beyond_continuity_rejected(self, img2):
        f = convolve(img2, tent)  # C0
        with pytest.raises(DiderotError, match="differentiate"):
            f.grad()

    def test_probe_call_sugar(self, img2):
        f = convolve(img2, bspln3)
        assert np.allclose(f(P), f.probe(P))

    def test_repr_shows_derivative_level(self, img2):
        assert "∇∇" in repr(convolve(img2, bspln3).grad().grad())


class TestAlgebra:
    def test_sum_probe(self, img2, img2b):
        f = convolve(img2, bspln3)
        g = convolve(img2b, bspln3)
        assert np.allclose((f + g).probe(P), f.probe(P) + g.probe(P))

    def test_difference_probe(self, img2, img2b):
        f = convolve(img2, bspln3)
        g = convolve(img2b, bspln3)
        assert np.allclose((f - g).probe(P), f.probe(P) - g.probe(P))

    def test_scale_probe(self, img2):
        f = convolve(img2, bspln3)
        assert np.allclose((2.5 * f).probe(P), 2.5 * f.probe(P))
        assert np.allclose((f * 2.5).probe(P), 2.5 * f.probe(P))
        assert np.allclose((f / 2.0).probe(P), f.probe(P) / 2.0)
        assert np.allclose((-f).probe(P), -f.probe(P))

    def test_nested_scale_collapses(self, img2):
        f = convolve(img2, bspln3)
        h = (2.0 * f).scaled(3.0)
        assert isinstance(h, ScaledField)
        assert h.scalar == 6.0
        assert isinstance(h.inner, ConvField)

    def test_grad_distributes_over_sum(self, img2, img2b):
        f = convolve(img2, bspln3)
        g = convolve(img2b, bspln3)
        lhs = (f + g).grad().probe(P)
        rhs = f.grad().probe(P) + g.grad().probe(P)
        assert np.allclose(lhs, rhs, atol=1e-12)

    def test_grad_commutes_with_scale(self, img2):
        f = convolve(img2, bspln3)
        assert np.allclose(
            (3.0 * f).grad().probe(P), 3.0 * f.grad().probe(P), atol=1e-12
        )

    def test_sum_continuity_is_min(self, img2, img2b):
        f = convolve(img2, bspln3)  # C2
        g = convolve(img2b, ctmr)  # C1
        assert (f + g).continuity == 1

    def test_sum_shape_mismatch_rejected(self, img2, vecimg):
        with pytest.raises(DiderotError, match="cannot add"):
            SumField(convolve(img2, bspln3), convolve(vecimg, bspln3))

    def test_sum_inside_is_conjunction(self, img2, img2b):
        f = convolve(img2, bspln3)  # support 2
        g = convolve(img2b, tent)  # support 1
        s = f + g
        edge = np.array([0.5, 5.0])  # inside tent's domain, outside bspln3's
        assert g.inside(edge)
        assert not f.inside(edge)
        assert not s.inside(edge)


class TestVectorFields:
    def test_divergence_of_linear_field(self):
        xs, ys = np.meshgrid(np.arange(16.0), np.arange(16.0), indexing="ij")
        data = np.stack([2 * xs, 5 * ys], axis=-1)
        v = convolve(Image(data, dim=2, tensor_shape=(2,)), ctmr)
        assert float(v.divergence(P)[0]) == pytest.approx(7.0, abs=1e-10)

    def test_curl_2d_of_rotational_field(self):
        xs, ys = np.meshgrid(np.arange(16.0), np.arange(16.0), indexing="ij")
        data = np.stack([-ys, xs], axis=-1)
        v = convolve(Image(data, dim=2, tensor_shape=(2,)), ctmr)
        assert float(v.curl(P)[0]) == pytest.approx(2.0, abs=1e-10)

    def test_curl_3d(self, rng):
        xs, ys, zs = np.meshgrid(*[np.arange(12.0)] * 3, indexing="ij")
        data = np.stack([-ys, xs, np.zeros_like(xs)], axis=-1)
        v = convolve(Image(data, dim=3, tensor_shape=(3,)), ctmr)
        got = v.curl(np.array([[5.3, 5.7, 6.1]]))[0]
        assert np.allclose(got, [0.0, 0.0, 2.0], atol=1e-10)

    def test_divergence_requires_vector_field(self, img2):
        with pytest.raises(DiderotError, match="vector field"):
            convolve(img2, bspln3).divergence(P)

    def test_curl_requires_vector_field(self, img2):
        with pytest.raises(DiderotError, match="vector field"):
            convolve(img2, bspln3).curl(P)

    def test_divergence_is_trace_of_jacobian(self, vecimg):
        v = convolve(vecimg, ctmr)
        jac = v.grad().probe(P)
        assert np.allclose(v.divergence(P), np.trace(jac[0]), atol=1e-12)
