"""Probe fusion: golden equivalence, A/B vs the unfused pipeline, validator
rules for the new MidIR/LowIR ops, and pass blaming.

The fused pipeline reassociates the separable contraction (one axis at a
time, partial sums shared across derivative combos), so agreement is
checked numerically at 1e-12 — both against the unfused compiled pipeline
and against :func:`repro.fields.probe.probe_convolution`, the reference
engine that never goes through probe synthesis at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import OptOptions, compile_program, compile_to_source
from repro.core.ir import ops as irops
from repro.core.ir.base import Body, Func, Instr, Value
from repro.core.ty.types import REAL, TensorTy
from repro.core.verify import verify_func
from repro.core.xform.probe_fuse import probe_fuse
from repro.core.xform.to_high import ImageSlot
from repro.errors import CompileError
from repro.fields.probe import probe_convolution
from repro.image import Image
from repro.kernels import KERNELS

N_STRANDS = 8

#: every (dim, deriv, kernel) the language supports at that derivative level
COMBOS = [
    (dim, deriv, kname)
    for dim in (1, 2, 3)
    for kname in ("tent", "ctmr", "bspln3")
    for deriv in range(KERNELS[kname].continuity + 1)
    if deriv <= 2
]


def smooth_image(dim: int, n: int = 16) -> Image:
    axes = np.meshgrid(*[np.linspace(0.0, 3.0, n)] * dim, indexing="ij")
    data = np.sin(1.3 * axes[0])
    for a, x in enumerate(axes[1:], start=2):
        data = data + np.cos(0.7 * a * x) * (1.0 + 0.1 * axes[0])
    return Image(data, dim=dim)


def positions(dim: int) -> np.ndarray:
    i = np.arange(N_STRANDS, dtype=np.float64)
    return np.stack([2.5 + 0.35 * i + 0.2 * a for a in range(dim)], axis=-1)


def probe_source(dim: int, deriv: int, kname: str) -> str:
    k = KERNELS[kname].continuity
    if dim == 1:
        pos = "real p = 2.5 + real(i) * 0.35;"
    else:
        comps = ", ".join(
            f"2.5 + real(i) * 0.35 + {0.2 * a:.1f}" for a in range(dim)
        )
        pos = f"vec{dim} p = [{comps}];"
    outs, assigns = ["output real o0 = 0.0;"], ["o0 = F(p);"]
    if deriv >= 1:
        if dim == 1:
            outs.append("output real o1 = 0.0;")
            assigns.append("o1 = (∇F(p))[0];")
        else:
            zero = ", ".join(["0.0"] * dim)
            outs.append(f"output vec{dim} o1 = [{zero}];")
            assigns.append("o1 = ∇F(p);")
    if deriv >= 2:
        if dim == 1:
            outs.append("output real o2 = 0.0;")
            assigns.append("o2 = (∇⊗∇F(p))[0][0];")
        else:
            outs.append(f"output tensor[{dim},{dim}] o2 = identity[{dim}];")
            assigns.append("o2 = ∇⊗∇F(p);")
    nl = "\n                "
    return f"""
        image({dim})[] img = load("p.nrrd");
        field#{k}({dim})[] F = img ⊛ {kname};
        strand S (int i) {{
            {nl.join(outs)}
            update {{
                {pos}
                {nl.join(assigns)}
                stabilize;
            }}
        }}
        initially [ S(i) | i in 0 .. {N_STRANDS - 1} ];
    """


def run_compiled(src: str, image: Image, fuse: bool, **kw):
    prog = compile_program(src, optimize=OptOptions(probe_fusion=fuse),
                           check=True)
    prog.bind_image("img", image)
    return prog, prog.run(max_steps=3, **kw).outputs


class TestGoldenEquivalence:
    @pytest.mark.parametrize("dim,deriv,kname", COMBOS)
    def test_fused_matches_reference_and_unfused(self, dim, deriv, kname):
        image = smooth_image(dim)
        src = probe_source(dim, deriv, kname)
        _, fused = run_compiled(src, image, fuse=True)
        _, unfused = run_compiled(src, image, fuse=False)
        for name in fused:
            assert np.allclose(fused[name], unfused[name],
                               rtol=1e-12, atol=1e-12), name

        kernel = KERNELS[kname]
        pos = positions(dim)
        for r in range(deriv + 1):
            ref = probe_convolution(image, kernel, pos, deriv=r)
            if dim == 1:
                for _ in range(r):
                    ref = ref[..., 0]
            got = fused[f"o{r}"]
            assert np.allclose(got, ref, rtol=1e-12, atol=1e-12), (
                f"o{r}: max diff {np.max(np.abs(got - ref))}"
            )

    def test_constant_position_probe_unbatched(self):
        image = smooth_image(2)
        src = """
            image(2)[] img = load("p.nrrd");
            field#2(2)[] F = img ⊛ bspln3;
            strand S (int i) {
                output real x = 0.0;
                output real h = 0.0;
                update {
                    tensor[2,2] H = ∇⊗∇F([4.2, 5.9]);
                    x = F([4.2, 5.9]);
                    h = H[0][0] + H[1][1] + H[0][1];
                    stabilize;
                }
            }
            initially [ S(i) | i in 0 .. 3 ];
        """
        _, fused = run_compiled(src, image, fuse=True)
        _, unfused = run_compiled(src, image, fuse=False)
        for name in fused:
            assert np.allclose(fused[name], unfused[name],
                               rtol=1e-12, atol=1e-12), name

    @pytest.mark.parametrize("scheduler", ["seq", "thread", "process"])
    def test_schedulers_agree_fused(self, scheduler):
        image = smooth_image(3)
        src = probe_source(3, 2, "bspln3")
        _, base = run_compiled(src, image, fuse=True)
        _, out = run_compiled(src, image, fuse=True, scheduler=scheduler,
                              workers=1 if scheduler == "seq" else 2,
                              block_size=3)
        for name in base:
            assert np.allclose(base[name], out[name],
                               rtol=1e-12, atol=1e-12), name


class TestDriverAB:
    def test_no_fuse_removes_probe_parts(self):
        src = probe_source(3, 2, "bspln3")
        fused_src, _, _ = compile_to_source(
            src, optimize=OptOptions(probe_fusion=True))
        unfused_src, _, _ = compile_to_source(
            src, optimize=OptOptions(probe_fusion=False))
        assert "rt.probe_parts" in fused_src
        assert "rt.probe_parts" not in unfused_src
        assert "rt.contract_axis" not in unfused_src

    def test_colocated_probes_share_one_fusion(self):
        """F, ∇F, and ∇⊗∇F at one position fuse into a single probe_parts
        (value numbering shares the gather; fusion shares the partials)."""
        src = probe_source(3, 2, "bspln3")
        fused_src, _, _ = compile_to_source(
            src, optimize=OptOptions(probe_fusion=True))
        calls = [ln for ln in fused_src.splitlines() if "rt.probe_parts" in ln]
        assert len(calls) == 1
        # 1 (value) + 3 (gradient) + 6 (symmetric Hessian) shared specs
        results = calls[0].split("=")[0].split(",")
        assert len([r for r in results if r.strip()]) == 10

    def test_fusion_pass_is_traced(self):
        from repro.obs import Tracer

        tr = Tracer()
        compile_to_source(probe_source(2, 2, "bspln3"), tracer=tr)
        spans = [e for e in tr.events if e.cat == "pass"
                 and e.name == "probe-fuse"]
        assert spans
        assert any(e.args.get("groups", 0) >= 1 for e in spans)

    def test_lone_order0_probe_becomes_chain(self):
        src = probe_source(3, 0, "bspln3")
        fused_src, _, _ = compile_to_source(
            src, optimize=OptOptions(probe_fusion=True))
        assert "rt.contract_axis" in fused_src
        assert "rt.conv_contract" not in fused_src


class TestCostModel:
    """The per-group profitability decision (BENCH_probe's 1-D regression)."""

    def test_one_d_rejected(self):
        from repro.core.xform.probe_fuse import _fusion_profitable

        assert not _fusion_profitable(1, 2, [(0,), (1,)])
        assert not _fusion_profitable(1, 1, [(0,)])

    def test_multi_d_accepted(self):
        from repro.core.xform.probe_fuse import _fusion_profitable

        assert _fusion_profitable(2, 2, [(0, 0), (0, 1), (1, 0)])
        assert _fusion_profitable(3, 2, [(0, 0, 0)])  # lone chain

    @pytest.mark.parametrize("deriv,kname",
                             [(d, k) for (dim, d, k) in COMBOS if dim == 1])
    def test_one_d_generates_unfused_code(self, deriv, kname):
        """1-D groups are left alone: fused output == unfused output.

        SSA value ids are process-global, so the sources are compared
        after canonical renumbering.
        """
        import re

        def canon(src: str) -> str:
            names: dict[str, str] = {}
            return re.sub(
                r"\bv\d+\b",
                lambda m: names.setdefault(m.group(0), f"x{len(names)}"),
                src,
            )

        src = probe_source(1, deriv, kname)
        fused_src, _, _ = compile_to_source(
            src, optimize=OptOptions(probe_fusion=True))
        unfused_src, _, _ = compile_to_source(
            src, optimize=OptOptions(probe_fusion=False))
        assert canon(fused_src) == canon(unfused_src)
        assert "rt.probe_parts" not in fused_src
        assert "rt.contract_axis" not in fused_src

    def test_rejection_counted_in_stats(self):
        from repro.core.driver import compile_to_source as cts
        from repro.obs import Tracer

        tr = Tracer()
        cts(probe_source(1, 1, "bspln3"), tracer=tr,
            optimize=OptOptions(probe_fusion=True))
        spans = [e for e in tr.events if e.cat == "pass"
                 and e.name == "probe-fuse"]
        assert any(e.args.get("rejected", 0) >= 1 for e in spans)
        assert all(e.args.get("groups", 0) == 0 for e in spans)


def _func(body: Body, results: list[Value]) -> Func:
    return Func("f", [], [], body, results,
                [f"r{i}" for i in range(len(results))])


IMAGES = {"img": ImageSlot("img", 2, (), None)}


def _probe_prefix(body: Body):
    """Emit pos → index → gather + two weight vectors (2-D, bspln3)."""
    p = body.emit("const", [], TensorTy((2,)), value=np.array([4.5, 5.5]))
    pidx = body.emit("to_index", [p], TensorTy((2,)), image="img")
    n = body.emit("floor_i", [pidx], ("ivec", 2))
    vox = body.emit("gather", [n], ("vox", "img", 2), image="img", support=2)
    f = body.emit("fract", [pidx], TensorTy((2,)))
    ws = []
    for a in range(2):
        fa = body.emit("tensor_index", [f], TensorTy(()), indices=(a,))
        ws.append(body.emit("weights", [fa], ("weights", 4),
                            kernel=KERNELS["bspln3"], deriv=0))
    return vox, ws


def _probe_parts(body: Body, vox, ws, specs, n_results):
    pp = Instr("probe_parts", [vox] + ws,
               {"image": "img", "support": 2, "dim": 2, "specs": specs})
    return [pp.new_result(TensorTy(())) for _ in range(n_results)], pp


class TestValidatorNewOps:
    def test_valid_probe_parts_accepted(self):
        body = Body()
        vox, ws = _probe_prefix(body)
        rs, pp = _probe_parts(body, vox, ws, ((0, 1), (1, 0)), 2)
        body.add(pp)
        verify_func(_func(body, rs), "mid", images=IMAGES)

    def test_valid_contract_axis_chain_accepted(self):
        body = Body()
        vox, ws = _probe_prefix(body)
        part = body.emit("contract_axis", [vox, ws[0]], ("part", "img", 2, 1),
                         image="img", support=2, axes=2)
        r = body.emit("contract_axis", [part, ws[1]], TensorTy(()),
                      image="img", support=2, axes=1)
        verify_func(_func(body, [r]), "mid", images=IMAGES)

    def test_new_ops_are_in_low_vocabulary(self):
        for op in ("probe_parts", "contract_axis"):
            assert op in irops.MID
            assert op in irops.LOW

    def test_spec_arity_mismatch_rejected(self):
        body = Body()
        vox, ws = _probe_prefix(body)
        rs, pp = _probe_parts(body, vox, ws, ((0,),), 1)  # 1 entry, dim 2
        body.add(pp)
        with pytest.raises(CompileError, match="entries for a 2-D probe"):
            verify_func(_func(body, rs), "mid", images=IMAGES)

    def test_spec_weight_index_out_of_range(self):
        body = Body()
        vox, ws = _probe_prefix(body)
        rs, pp = _probe_parts(body, vox, ws, ((0, 2),), 1)  # only 2 weights
        body.add(pp)
        with pytest.raises(CompileError, match="out of range"):
            verify_func(_func(body, rs), "mid", images=IMAGES)

    def test_result_count_mismatch_rejected(self):
        body = Body()
        vox, ws = _probe_prefix(body)
        rs, pp = _probe_parts(body, vox, ws, ((0, 1), (1, 0)), 1)
        body.add(pp)
        with pytest.raises(CompileError, match="results for 2 specs"):
            verify_func(_func(body, rs), "mid", images=IMAGES)

    def test_contract_axis_axes_mismatch_rejected(self):
        body = Body()
        vox, ws = _probe_prefix(body)
        r = body.emit("contract_axis", [vox, ws[0]], ("part", "img", 2, 1),
                      image="img", support=2, axes=1)  # first must be dim=2
        with pytest.raises(CompileError, match="axes"):
            verify_func(_func(body, [r]), "mid", images=IMAGES)

    def test_contract_axis_weight_support_mismatch(self):
        body = Body()
        vox, ws = _probe_prefix(body)
        f0 = body.emit("const", [], REAL, value=0.5)
        bad = body.emit("weights", [f0], ("weights", 2),
                        kernel=KERNELS["tent"], deriv=0)  # support 1, not 2
        r = body.emit("contract_axis", [vox, bad], ("part", "img", 2, 1),
                      image="img", support=2, axes=2)
        with pytest.raises(CompileError, match="does not match support"):
            verify_func(_func(body, [r]), "mid", images=IMAGES)

    def test_probe_parts_wrong_result_type_rejected(self):
        body = Body()
        vox, ws = _probe_prefix(body)
        pp = Instr("probe_parts", [vox] + ws,
                   {"image": "img", "support": 2, "dim": 2,
                    "specs": ((0, 1),)})
        r = pp.new_result(TensorTy((3,)))  # scalar image ⇒ scalar result
        body.add(pp)
        with pytest.raises(CompileError, match="does not match the op"):
            verify_func(_func(body, [r]), "mid", images=IMAGES)


class TestPassBlame:
    def test_probe_fuse_blamed_for_corruption(self, monkeypatch):
        from repro.core import driver

        def corrupting_fuse(func):
            stats = probe_fuse(func)
            if func.name == "update":
                func.body.emit("neg", [Value(REAL)], REAL)  # undefined arg
            return stats

        monkeypatch.setattr(driver, "probe_fuse", corrupting_fuse)
        with pytest.raises(CompileError, match="after pass 'probe-fuse'"):
            compile_to_source(probe_source(2, 1, "bspln3"), check=True)


class TestFuzzBothModes:
    @pytest.mark.parametrize("fuse", [True, False])
    def test_short_fuzz_agrees(self, fuse):
        from repro.core.verify.fuzz import fuzz

        report = fuzz(n=2, seed=7, schedulers=("seq", "thread"),
                      shrink=False, fuse=fuse)
        assert report.ok, report.failures[0].message
