"""Tests for the Diderot parser (grammar of paper §3)."""

import pytest

from repro.core.syntax import ast, parse_program
from repro.core.syntax.parser import Parser
from repro.errors import SyntaxErrorD

MINIMAL = """
strand S (int i) {
    output real x = 0.0;
    update { stabilize; }
}
initially [ S(i) | i in 0 .. 9 ];
"""


def parse_expr(src: str) -> ast.Expr:
    p = Parser(src)
    return p.parse_expr()


class TestProgramStructure:
    def test_minimal(self):
        prog = parse_program(MINIMAL)
        assert prog.strand.name == "S"
        assert prog.initially.kind == "grid"
        assert [p.name for p in prog.strand.params] == ["i"]

    def test_collection_initially(self):
        prog = parse_program(MINIMAL.replace("[ S(i)", "{ S(i)").replace("9 ];", "9 };"))
        assert prog.initially.kind == "collection"

    def test_globals_and_inputs(self):
        prog = parse_program("input real a = 1.0;\nint b = 2;\n" + MINIMAL)
        assert prog.globals[0].is_input and prog.globals[0].name == "a"
        assert not prog.globals[1].is_input

    def test_input_without_default(self):
        prog = parse_program("input int n;\n" + MINIMAL)
        assert prog.globals[0].init is None

    def test_non_input_global_requires_init(self):
        with pytest.raises(SyntaxErrorD, match="must be initialized"):
            parse_program("int n;\n" + MINIMAL)

    def test_strand_requires_update(self):
        with pytest.raises(SyntaxErrorD, match="no update method"):
            parse_program("""
                strand S (int i) { output real x = 0.0; }
                initially [ S(i) | i in 0 .. 9 ];
            """)

    def test_stabilize_method(self):
        prog = parse_program("""
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
                stabilize { x = 1.0; }
            }
            initially [ S(i) | i in 0 .. 9 ];
        """)
        assert prog.strand.method("stabilize") is not None

    def test_state_after_method_rejected(self):
        with pytest.raises(SyntaxErrorD, match="precede"):
            parse_program("""
                strand S (int i) {
                    update { stabilize; }
                    output real x = 0.0;
                }
                initially [ S(i) | i in 0 .. 9 ];
            """)

    def test_multi_iterator_comprehension(self):
        prog = parse_program("""
            strand S (int i, int j) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ S(i, j) | i in 0 .. 4, j in 1 .. 5 ];
        """)
        assert [it.name for it in prog.initially.iters] == ["i", "j"]

    def test_reserved_word_as_name_rejected(self):
        with pytest.raises(SyntaxErrorD, match="reserved"):
            parse_program(MINIMAL.replace("int i", "int strand"))

    def test_missing_strand(self):
        with pytest.raises(SyntaxErrorD, match="missing strand"):
            parse_program("input real a = 1.0;")


class TestTypes:
    def test_type_annotations(self):
        prog = parse_program("""
            input bool flag = true;
            image(3)[] img = load("x.nrrd");
            field#2(3)[3] F = img ⊛ bspln3;
            tensor[3,3] m = identity[3];
        """ + MINIMAL)
        tys = [g.ty_expr for g in prog.globals]
        assert tys[0].kind == "bool"
        assert tys[1].kind == "image" and tys[1].dim == 3 and tys[1].shape == []
        assert tys[2].kind == "field" and tys[2].continuity == 2 and tys[2].shape == [3]
        assert tys[3].kind == "tensor" and tys[3].shape == [3, 3]

    def test_vec_synonyms(self):
        prog = parse_program("input vec2 a = [0.0,0.0]; input vec4 b = [0.0,0.0,0.0,0.0];" + MINIMAL)
        assert prog.globals[0].ty_expr.shape == [2]
        assert prog.globals[1].ty_expr.shape == [4]

    def test_kernel_type(self):
        prog = parse_program("input real a = 1.0;" + MINIMAL.replace(
            "output real x = 0.0;", "output real x = 0.0;"))
        assert prog is not None  # smoke


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "*"

    def test_unary_minus_binds_tighter_than_mul(self):
        e = parse_expr("-a * b")
        assert isinstance(e, ast.BinOp) and e.op == "*"
        assert isinstance(e.left, ast.UnOp)

    def test_power_right_associative_under_unary(self):
        e = parse_expr("-x^2")
        # Diderot: -(x^2)
        assert isinstance(e, ast.UnOp) and e.op == "-"
        assert isinstance(e.operand, ast.BinOp) and e.operand.op == "^"

    def test_conditional_chain_right_associative(self):
        e = parse_expr("1.0 if a else 2.0 if b else 3.0")
        assert isinstance(e, ast.Cond)
        assert isinstance(e.else_e, ast.Cond)

    def test_nabla_probe_binding(self):
        """∇F(pos) is (∇F)(pos), not ∇(F(pos)) — Figure 1 line 26."""
        e = parse_expr("∇F(pos)")
        assert isinstance(e, ast.Probe)
        assert isinstance(e.field, ast.UnOp) and e.field.op == "∇"

    def test_nabla_chain(self):
        e = parse_expr("∇⊗∇F(pos)")
        assert isinstance(e, ast.Probe)
        outer = e.field
        assert isinstance(outer, ast.UnOp) and outer.op == "∇⊗"
        assert isinstance(outer.operand, ast.UnOp) and outer.operand.op == "∇"

    def test_nabla_div_and_curl(self):
        assert parse_expr("∇•V").op == "∇•"
        assert parse_expr("∇×V").op == "∇×"

    def test_paren_field_probe(self):
        e = parse_expr("(F1 if b else F2)(x)")
        assert isinstance(e, ast.Probe)
        assert isinstance(e.field, ast.Cond)

    def test_norm(self):
        e = parse_expr("|a + b|")
        assert isinstance(e, ast.Norm)
        assert isinstance(e.operand, ast.BinOp)

    def test_norm_of_probe(self):
        e = parse_expr("|V(pos0)|")
        assert isinstance(e, ast.Norm)
        assert isinstance(e.operand, ast.Call)

    def test_tensor_cons(self):
        e = parse_expr("[1.0, 2.0, 3.0]")
        assert isinstance(e, ast.TensorCons) and len(e.elements) == 3

    def test_indexing(self):
        e = parse_expr("m[1, 2]")
        assert isinstance(e, ast.Index) and len(e.indices) == 2

    def test_identity(self):
        e = parse_expr("identity[3]")
        assert isinstance(e, ast.Identity) and e.n == 3

    def test_load(self):
        e = parse_expr('load("a.nrrd")')
        assert isinstance(e, ast.Load) and e.path == "a.nrrd"

    def test_casts(self):
        e = parse_expr("real(i)")
        assert isinstance(e, ast.Call) and e.func == "real"

    def test_mul_ops(self):
        for op in ("•", "×", "⊗", "⊛"):
            e = parse_expr(f"a {op} b")
            assert isinstance(e, ast.BinOp) and e.op == op

    def test_bool_literals(self):
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False

    def test_keyword_in_expression_rejected(self):
        with pytest.raises(SyntaxErrorD, match="keyword"):
            parse_expr("1 + strand")


class TestStatements:
    def _update_stmts(self, body: str):
        prog = parse_program(MINIMAL.replace("stabilize;", body))
        return prog.strand.method("update").body.stmts

    def test_compound_assignment_ops(self):
        stmts = self._update_stmts("x += 1.0; x -= 2.0; x *= 3.0; x /= 4.0; stabilize;")
        ops = [s.op for s in stmts if isinstance(s, ast.AssignStmt)]
        assert ops == ["+=", "-=", "*=", "/="]

    def test_if_else(self):
        stmts = self._update_stmts("if (x > 0.0) x = 1.0; else x = 2.0; stabilize;")
        assert isinstance(stmts[0], ast.IfStmt)
        assert stmts[0].else_s is not None

    def test_dangling_else(self):
        stmts = self._update_stmts(
            "if (x > 0.0) if (x > 1.0) x = 1.0; else x = 2.0; stabilize;"
        )
        outer = stmts[0]
        assert outer.else_s is None  # else binds to inner if
        assert outer.then_s.else_s is not None

    def test_die(self):
        stmts = self._update_stmts("die;")
        assert isinstance(stmts[0], ast.DieStmt)

    def test_local_decl(self):
        stmts = self._update_stmts("real v = 1.0; stabilize;")
        assert isinstance(stmts[0], ast.DeclStmt)

    def test_nested_block(self):
        stmts = self._update_stmts("{ real v = 1.0; x = v; } stabilize;")
        assert isinstance(stmts[0], ast.Block)

    def test_missing_semicolon(self):
        with pytest.raises(SyntaxErrorD, match="';'"):
            self._update_stmts("x = 1.0 stabilize;")

    def test_expression_statement_rejected(self):
        with pytest.raises(SyntaxErrorD, match="assignment"):
            self._update_stmts("x; stabilize;")
