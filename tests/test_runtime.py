"""Tests for the bulk-synchronous runtime and schedulers (paper §5.5)."""

import numpy as np
import pytest

from repro.core.driver import compile_program
from repro.runtime.scheduler import SequentialScheduler, ThreadScheduler, make_blocks
from repro.runtime.simsched import (
    DEFAULT_LOCK_OVERHEAD,
    simulate_run,
    simulate_step,
    speedup_curve,
)


class TestBlocks:
    def test_even_split(self):
        blocks = make_blocks(np.arange(12), 4)
        assert [len(b) for b in blocks] == [4, 4, 4]

    def test_remainder_block(self):
        blocks = make_blocks(np.arange(10), 4)
        assert [len(b) for b in blocks] == [4, 4, 2]

    def test_paper_default_size(self):
        from repro.runtime.program import DEFAULT_BLOCK_SIZE

        assert DEFAULT_BLOCK_SIZE == 4096  # paper §5.5

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            make_blocks(np.arange(4), 0)

    def test_empty(self):
        assert make_blocks(np.arange(0), 4) == []


class TestSchedulers:
    def _run(self, sched, blocks):
        return sched.run_step(blocks, lambda b: b.sum())

    def test_sequential_results_in_order(self):
        res, times = self._run(SequentialScheduler(), make_blocks(np.arange(10), 3))
        assert res == [0 + 1 + 2, 3 + 4 + 5, 6 + 7 + 8, 9]
        assert len(times) == 4

    def test_thread_scheduler_matches_sequential(self):
        blocks = make_blocks(np.arange(100), 7)
        seq, _ = self._run(SequentialScheduler(), blocks)
        par, _ = self._run(ThreadScheduler(4), blocks)
        assert par == seq

    def test_thread_scheduler_propagates_errors(self):
        def boom(_):
            raise ValueError("kaput")

        with pytest.raises(ValueError, match="kaput"):
            ThreadScheduler(2).run_step(make_blocks(np.arange(4), 2), boom)

    def test_thread_worker_count_validation(self):
        with pytest.raises(ValueError):
            ThreadScheduler(0)


class TestSimulatedScheduler:
    def test_single_worker_is_sum(self):
        times = [0.2, 0.3, 0.5]
        got = simulate_step(times, 1, lock_overhead=0.0)
        assert got == pytest.approx(1.0)

    def test_perfect_split(self):
        got = simulate_step([1.0, 1.0], 2, lock_overhead=0.0)
        assert got == pytest.approx(1.0)

    def test_bounded_by_longest_block(self):
        # one huge block dominates regardless of workers
        got = simulate_step([10.0, 0.1, 0.1], 8, lock_overhead=0.0)
        assert got == pytest.approx(10.0, rel=0.01)

    def test_more_workers_never_slower(self):
        rng = np.random.default_rng(0)
        times = list(rng.uniform(0.01, 0.1, 50))
        prev = None
        for w in (1, 2, 4, 8):
            t = simulate_step(times, w, DEFAULT_LOCK_OVERHEAD)
            if prev is not None:
                assert t <= prev + 1e-12
            prev = t

    def test_speedup_bounded_by_workers_and_blocks(self):
        times = [[0.01] * 6]
        curve = speedup_curve(times, [1, 2, 4, 8, 16])
        assert curve[1] == pytest.approx(1.0)
        for w, s in curve.items():
            assert s <= w + 1e-9
            assert s <= 6 + 1e-9  # block-count bound (vr-lite effect, §6.4)

    def test_lock_overhead_hurts_small_blocks(self):
        """The paper's §6.4 observation: smaller strand blocks reduce
        parallel scaling because of work-list lock traffic."""
        total = 1.0
        big_blocks = [[total / 8] * 8]
        small_blocks = [[total / 512] * 512]
        lock = 5e-4  # exaggerated for the test
        s_big = speedup_curve(big_blocks, [8], lock)[8]
        s_small = speedup_curve(small_blocks, [8], lock)[8]
        assert s_small < s_big

    def test_empty_step(self):
        assert simulate_step([], 4, 1e-6) == 0.0

    def test_simulate_run_sums_steps(self):
        res = simulate_run([[0.5], [0.25]], 1, lock_overhead=0.0)
        assert res.total_time == pytest.approx(0.75)
        assert len(res.per_step) == 2

    def test_barrier_between_steps(self):
        """Two steps of one block each cannot overlap across the barrier."""
        res = simulate_run([[1.0], [1.0]], 8, lock_overhead=0.0)
        assert res.total_time == pytest.approx(2.0)


class TestTraceCollection:
    def test_block_trace_shape(self):
        src = """
            strand S (int i) {
                output real x = 0.0;
                update { x += 1.0; if (x > 2.5) stabilize; }
            }
            initially [ S(i) | i in 0 .. 99 ];
        """
        prog = compile_program(src)
        res = prog.run(block_size=16, collect_trace=True)
        assert res.steps == 3
        assert len(res.block_trace) == 3
        assert len(res.block_trace[0]) == 7  # ceil(100/16)
        assert all(t >= 0 for step in res.block_trace for t in step)

    def test_trace_off_by_default(self):
        src = """
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ S(i) | i in 0 .. 9 ];
        """
        res = compile_program(src).run()
        assert res.block_trace == []


class TestActiveSetShrinks:
    def test_stable_strands_not_updated_again(self):
        """Once stabilized, a strand's update must not run again."""
        src = """
            strand S (int i) {
                output real x = 0.0;
                update {
                    x += 1.0;
                    if (i == 0) stabilize;
                }
            }
            initially [ S(i) | i in 0 .. 3 ];
        """
        prog = compile_program(src)
        res = prog.run(max_steps=5)
        out = res.outputs["x"]
        assert out[0] == 1.0  # stabilized after first step
        assert np.allclose(out[1:], 5.0)
