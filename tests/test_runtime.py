"""Tests for the bulk-synchronous runtime and schedulers (paper §5.5)."""

import numpy as np
import pytest

from repro.core.driver import compile_program
from repro.obs import Tracer
from repro.runtime.scheduler import SequentialScheduler, ThreadScheduler, make_blocks
from repro.runtime.simsched import (
    DEFAULT_LOCK_OVERHEAD,
    simulate_run,
    simulate_step,
    speedup_curve,
)


class TestBlocks:
    def test_even_split(self):
        blocks = make_blocks(np.arange(12), 4)
        assert [len(b) for b in blocks] == [4, 4, 4]

    def test_remainder_block(self):
        blocks = make_blocks(np.arange(10), 4)
        assert [len(b) for b in blocks] == [4, 4, 2]

    def test_paper_default_size(self):
        from repro.runtime.program import DEFAULT_BLOCK_SIZE

        assert DEFAULT_BLOCK_SIZE == 4096  # paper §5.5

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            make_blocks(np.arange(4), 0)

    def test_negative_block_size(self):
        with pytest.raises(ValueError):
            make_blocks(np.arange(4), -3)

    def test_empty(self):
        assert make_blocks(np.arange(0), 4) == []

    def test_block_larger_than_input(self):
        blocks = make_blocks(np.arange(3), 100)
        assert len(blocks) == 1
        assert blocks[0].tolist() == [0, 1, 2]

    def test_single_element_blocks(self):
        blocks = make_blocks(np.arange(4), 1)
        assert [b.tolist() for b in blocks] == [[0], [1], [2], [3]]

    def test_blocks_preserve_order_and_content(self):
        idx = np.array([9, 2, 7, 4, 1])
        blocks = make_blocks(idx, 2)
        assert np.concatenate(blocks).tolist() == idx.tolist()


class TestSchedulers:
    def _run(self, sched, blocks):
        return sched.run_step(blocks, lambda b: b.sum())

    def test_sequential_results_in_order(self):
        res, times = self._run(SequentialScheduler(), make_blocks(np.arange(10), 3))
        assert res == [0 + 1 + 2, 3 + 4 + 5, 6 + 7 + 8, 9]
        assert len(times) == 4

    def test_thread_scheduler_matches_sequential(self):
        blocks = make_blocks(np.arange(100), 7)
        seq, _ = self._run(SequentialScheduler(), blocks)
        par, _ = self._run(ThreadScheduler(4), blocks)
        assert par == seq

    def test_thread_scheduler_propagates_errors(self):
        def boom(_):
            raise ValueError("kaput")

        with pytest.raises(ValueError, match="kaput"):
            ThreadScheduler(2).run_step(make_blocks(np.arange(4), 2), boom)

    def test_error_reaches_caller_after_barrier(self):
        """One poisoned block among many: the error surfaces in the
        caller, and the surviving workers still drain their blocks (the
        barrier completes before the raise)."""
        blocks = make_blocks(np.arange(64), 4)
        done = []

        def sometimes_boom(block):
            if block[0] == 24:
                raise RuntimeError("block 6 kaput")
            done.append(int(block[0]))
            return block.sum()

        sched = ThreadScheduler(3)
        with pytest.raises(RuntimeError, match="block 6 kaput"):
            sched.run_step(blocks, sometimes_boom)
        # every thread has joined, so the done-list is final and no
        # worker is still running
        assert len(done) <= len(blocks) - 1
        assert 24 not in done

    def test_thread_worker_count_validation(self):
        with pytest.raises(ValueError):
            ThreadScheduler(0)

    def test_worker_attribution_recorded(self):
        blocks = make_blocks(np.arange(40), 4)
        sched = ThreadScheduler(2)
        results, _ = sched.run_step(blocks, lambda b: b.sum())
        assert len(sched.last_block_workers) == len(blocks)
        assert all(w in (0, 1) for w in sched.last_block_workers)
        # a single worker must also be able to drain the whole list
        solo = ThreadScheduler(1)
        solo.run_step(blocks, lambda b: b.sum())
        assert solo.last_block_workers == [0] * len(blocks)

    def test_tracer_attribution_matches_workers(self):
        tracer = Tracer()
        blocks = make_blocks(np.arange(24), 4)
        sched = ThreadScheduler(2)
        sched.run_step(blocks, lambda b: b.sum(), tracer=tracer, step=0)
        spans = tracer.spans("block")
        assert len(spans) == len(blocks)
        by_block = {ev.args["block"]: ev.tid for ev in spans}
        for i, wid in enumerate(sched.last_block_workers):
            assert by_block[i] == f"worker-{wid}"

    def test_sequential_scheduler_traces_blocks(self):
        tracer = Tracer()
        blocks = make_blocks(np.arange(10), 3)
        SequentialScheduler().run_step(blocks, lambda b: b.sum(),
                                       tracer=tracer, step=7)
        spans = tracer.spans("block")
        assert [ev.args["step"] for ev in spans] == [7] * 4
        assert {ev.tid for ev in spans} == {"worker-0"}
        assert [ev.args["strands"] for ev in spans] == [3, 3, 3, 1]


class TestSimulatedScheduler:
    def test_single_worker_is_sum(self):
        times = [0.2, 0.3, 0.5]
        got = simulate_step(times, 1, lock_overhead=0.0)
        assert got == pytest.approx(1.0)

    def test_perfect_split(self):
        got = simulate_step([1.0, 1.0], 2, lock_overhead=0.0)
        assert got == pytest.approx(1.0)

    def test_bounded_by_longest_block(self):
        # one huge block dominates regardless of workers
        got = simulate_step([10.0, 0.1, 0.1], 8, lock_overhead=0.0)
        assert got == pytest.approx(10.0, rel=0.01)

    def test_more_workers_never_slower(self):
        rng = np.random.default_rng(0)
        times = list(rng.uniform(0.01, 0.1, 50))
        prev = None
        for w in (1, 2, 4, 8):
            t = simulate_step(times, w, DEFAULT_LOCK_OVERHEAD)
            if prev is not None:
                assert t <= prev + 1e-12
            prev = t

    def test_speedup_bounded_by_workers_and_blocks(self):
        times = [[0.01] * 6]
        curve = speedup_curve(times, [1, 2, 4, 8, 16])
        assert curve[1] == pytest.approx(1.0)
        for w, s in curve.items():
            assert s <= w + 1e-9
            assert s <= 6 + 1e-9  # block-count bound (vr-lite effect, §6.4)

    def test_lock_overhead_hurts_small_blocks(self):
        """The paper's §6.4 observation: smaller strand blocks reduce
        parallel scaling because of work-list lock traffic."""
        total = 1.0
        big_blocks = [[total / 8] * 8]
        small_blocks = [[total / 512] * 512]
        lock = 5e-4  # exaggerated for the test
        s_big = speedup_curve(big_blocks, [8], lock)[8]
        s_small = speedup_curve(small_blocks, [8], lock)[8]
        assert s_small < s_big

    def test_empty_step(self):
        assert simulate_step([], 4, 1e-6) == 0.0

    def test_simulate_run_sums_steps(self):
        res = simulate_run([[0.5], [0.25]], 1, lock_overhead=0.0)
        assert res.total_time == pytest.approx(0.75)
        assert len(res.per_step) == 2

    def test_barrier_between_steps(self):
        """Two steps of one block each cannot overlap across the barrier."""
        res = simulate_run([[1.0], [1.0]], 8, lock_overhead=0.0)
        assert res.total_time == pytest.approx(2.0)


class TestTraceCollection:
    def test_block_trace_shape(self):
        src = """
            strand S (int i) {
                output real x = 0.0;
                update { x += 1.0; if (x > 2.5) stabilize; }
            }
            initially [ S(i) | i in 0 .. 99 ];
        """
        prog = compile_program(src)
        tracer = Tracer()
        res = prog.run(block_size=16, tracer=tracer)
        trace = tracer.block_step_times()
        assert res.steps == 3
        assert len(trace) == 3
        assert len(trace[0]) == 7  # ceil(100/16)
        assert all(t >= 0 for step in trace for t in step)

    def test_superstep_spans_carry_strand_counts(self):
        src = """
            strand S (int i) {
                output real x = 0.0;
                update { x += 1.0; if (x > 2.5) stabilize; }
            }
            initially [ S(i) | i in 0 .. 99 ];
        """
        tracer = Tracer()
        compile_program(src).run(block_size=16, tracer=tracer)
        steps = tracer.spans("superstep")
        assert [ev.args["step"] for ev in steps] == [0, 1, 2]
        assert steps[0].args["active"] == 100
        assert steps[0].args["blocks"] == 7
        assert steps[-1].args["stable"] == 100

    def test_trace_off_by_default(self):
        src = """
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ S(i) | i in 0 .. 9 ];
        """
        res = compile_program(src).run()
        assert res.num_stable == 10  # no tracer: runs normally, no trace


class TestActiveSetShrinks:
    def test_stable_strands_not_updated_again(self):
        """Once stabilized, a strand's update must not run again."""
        src = """
            strand S (int i) {
                output real x = 0.0;
                update {
                    x += 1.0;
                    if (i == 0) stabilize;
                }
            }
            initially [ S(i) | i in 0 .. 3 ];
        """
        prog = compile_program(src)
        res = prog.run(max_steps=5)
        out = res.outputs["x"]
        assert out[0] == 1.0  # stabilized after first step
        assert np.allclose(out[1:], 5.0)
