"""End-to-end behavioral tests: compile and run small Diderot programs."""

import numpy as np
import pytest

from repro.core.driver import compile_program
from repro.errors import CompileError, InputError, RuntimeErrorD
from repro.image import Image


def run(src: str, images: dict | None = None, inputs: dict | None = None, **kw):
    prog = compile_program(src, **{k: v for k, v in kw.items() if k in ("precision", "optimize")})
    for name, img in (images or {}).items():
        prog.bind_image(name, img)
    for name, val in (inputs or {}).items():
        prog.set_input(name, val)
    return prog.run(**{k: v for k, v in kw.items() if k in ("workers", "block_size", "max_steps")})


def simple(body: str, state: str = "output real x = 0.0;", globs: str = "",
           init: str = "initially [ S(i) | i in 0 .. 9 ];") -> str:
    return f"""
        {globs}
        strand S (int i) {{
            {state}
            update {{ {body} }}
        }}
        {init}
    """


class TestArithmetic:
    def test_int_ops(self):
        src = simple(
            "n = (17 / 5) * 10 + 17 % 5 - 1; stabilize;",
            state="output int n = 0;",
        )
        res = run(src)
        assert np.all(res.outputs["n"] == 3 * 10 + 2 - 1)

    def test_negative_int_division_truncates(self):
        src = simple(
            "n = a / b; stabilize;",
            state="output int n = 0;",
            globs="input int a = -7; input int b = 2;",
        )
        assert np.all(run(src).outputs["n"] == -3)

    def test_real_math_functions(self):
        src = simple(
            "x = sqrt(4.0) + cos(0.0) + atan2(0.0, 1.0) + pow(2.0, 3.0); stabilize;",
        )
        assert np.allclose(run(src).outputs["x"], 2.0 + 1.0 + 0.0 + 8.0)

    def test_pi_constant(self):
        src = simple("x = sin(π / 2.0); stabilize;")
        assert np.allclose(run(src).outputs["x"], 1.0)

    def test_power_operator(self):
        src = simple("x = 3.0^2 + 2.0^-1; stabilize;")
        assert np.allclose(run(src).outputs["x"], 9.5)

    def test_clamp_lerp(self):
        src = simple("x = clamp(0.0, 1.0, 2.5) + lerp(10.0, 20.0, 0.25); stabilize;")
        assert np.allclose(run(src).outputs["x"], 1.0 + 12.5)

    def test_per_strand_computation(self):
        src = simple("x = real(i) * real(i); stabilize;")
        assert np.allclose(run(src).outputs["x"], np.arange(10.0) ** 2)


class TestTensors:
    def test_vector_ops(self):
        src = simple(
            """
            vec3 u = [1.0, 2.0, 2.0];
            vec3 v = [0.0, 1.0, 0.0];
            x = |u| + u • v + (u × v)[2];
            stabilize;
            """
        )
        assert np.allclose(run(src).outputs["x"], 3.0 + 2.0 + 1.0)

    def test_matrix_ops(self):
        src = simple(
            """
            tensor[2,2] m = [[1.0, 2.0], [3.0, 4.0]];
            x = trace(m) + det(m) + transpose(m)[0,1] + |m|^2;
            stabilize;
            """
        )
        assert np.allclose(run(src).outputs["x"], 5.0 - 2.0 + 3.0 + 30.0)

    def test_eigen_in_dsl(self):
        src = simple(
            """
            tensor[2,2] m = [[2.0, 0.0], [0.0, 5.0]];
            vec2 lam = evals(m);
            tensor[2,2] e = evecs(m);
            x = lam[0] + 10.0*lam[1] + |e[0]|;
            stabilize;
            """
        )
        assert np.allclose(run(src).outputs["x"], 5.0 + 20.0 + 1.0)

    def test_vector_output(self):
        src = simple(
            "v = [real(i), 2.0*real(i)]; stabilize;",
            state="output vec2 v = [0.0, 0.0];",
        )
        out = run(src).outputs["v"]
        assert out.shape == (10, 2)
        assert np.allclose(out[:, 1], 2.0 * np.arange(10))

    def test_identity_and_outer(self):
        src = simple(
            """
            vec2 n = [1.0, 0.0];
            tensor[2,2] p = identity[2] - n⊗n;
            x = p[0,0] + p[1,1];
            stabilize;
            """
        )
        assert np.allclose(run(src).outputs["x"], 1.0)


class TestControlFlow:
    def test_conditional_expression(self):
        src = simple("x = 1.0 if i < 5 else 2.0; stabilize;")
        out = run(src).outputs["x"]
        assert np.allclose(out[:5], 1.0) and np.allclose(out[5:], 2.0)

    def test_if_else_statement(self):
        src = simple("if (i % 2 == 0) x = 1.0; else x = -1.0; stabilize;")
        out = run(src).outputs["x"]
        assert np.allclose(out[::2], 1.0) and np.allclose(out[1::2], -1.0)

    def test_boolean_operators(self):
        src = simple("if (i > 2 && !(i > 7) || i == 0) x = 1.0; stabilize;")
        out = run(src).outputs["x"]
        expected = [(i > 2 and not i > 7) or i == 0 for i in range(10)]
        assert np.allclose(out, np.array(expected, dtype=float))

    def test_multi_step_loop(self):
        src = simple(
            """
            x += 1.0;
            n += 1;
            if (n == i + 1) stabilize;
            """,
            state="output real x = 0.0;\nint n = 0;",
        )
        res = run(src)
        assert np.allclose(res.outputs["x"], np.arange(1.0, 11.0))
        assert res.steps == 10

    def test_early_stabilize_freezes_state(self):
        src = simple(
            """
            if (i < 3) stabilize;
            x += 1.0;
            if (x >= 2.0) stabilize;
            """,
        )
        out = run(src).outputs["x"]
        assert np.allclose(out[:3], 0.0)
        assert np.allclose(out[3:], 2.0)


class TestDieAndCollections:
    def test_collection_excludes_dead(self):
        src = simple(
            "if (i % 2 == 0) die; x = real(i); stabilize;",
            init="initially { S(i) | i in 0 .. 9 };",
        )
        res = run(src)
        assert res.num_died == 5 and res.num_stable == 5
        assert np.allclose(res.outputs["x"], [1, 3, 5, 7, 9])

    def test_grid_keeps_shape(self):
        src = """
            strand S (int i, int j) {
                output real x = 0.0;
                update { x = real(i) * 10.0 + real(j); stabilize; }
            }
            initially [ S(i, j) | i in 0 .. 3, j in 0 .. 4 ];
        """
        out = run(src).outputs["x"]
        assert out.shape == (4, 5)
        assert out[2, 3] == 23.0

    def test_iteration_order_last_fastest(self):
        src = """
            strand S (int i, int j) {
                output real x = 0.0;
                update { x = real(i * 100 + j); stabilize; }
            }
            initially { S(i, j) | i in 0 .. 1, j in 0 .. 2 };
        """
        out = run(src).outputs["x"]
        assert np.allclose(out, [0, 1, 2, 100, 101, 102])

    def test_nonzero_range_bounds(self):
        src = simple("x = real(i); stabilize;",
                     init="initially [ S(i) | i in 3 .. 7 ];")
        assert np.allclose(run(src).outputs["x"], [3, 4, 5, 6, 7])

    def test_empty_range_rejected(self):
        src = simple("stabilize;", init="initially [ S(i) | i in 5 .. 2 ];")
        with pytest.raises(RuntimeErrorD, match="empty comprehension"):
            run(src)


class TestStabilizeMethod:
    def test_runs_once_on_stabilization(self):
        src = """
            strand S (int i) {
                output real x = 0.0;
                update {
                    x += 1.0;
                    if (x >= real(i + 1)) stabilize;
                }
                stabilize { x = -x; }
            }
            initially [ S(i) | i in 0 .. 4 ];
        """
        out = run(src).outputs["x"]
        assert np.allclose(out, [-1, -2, -3, -4, -5])

    def test_not_run_for_dead_strands(self):
        src = """
            strand S (int i) {
                output real x = 5.0;
                update {
                    if (i == 0) die;
                    stabilize;
                }
                stabilize { x = 1.0; }
            }
            initially { S(i) | i in 0 .. 3 };
        """
        out = run(src).outputs["x"]
        assert np.allclose(out, 1.0) and out.shape == (3,)


class TestParamsAndState:
    def test_param_used_in_update_persists(self):
        src = """
            strand S (int seed) {
                output real x = 0.0;
                update {
                    x += real(seed);
                    if (x >= 3.0 * real(seed)) stabilize;
                }
            }
            initially [ S(i + 1) | i in 0 .. 3 ];
        """
        out = run(src).outputs["x"]
        assert np.allclose(out, [3.0, 6.0, 9.0, 12.0])

    def test_two_state_vars_same_init_independent(self):
        """Regression: aliased initial state must not cross-contaminate."""
        src = simple(
            "a += 1.0; stabilize;",
            state="output real a = 0.0;\noutput real b = 0.0;",
        )
        res = run(src)
        assert np.allclose(res.outputs["a"], 1.0)
        assert np.allclose(res.outputs["b"], 0.0)

    def test_local_shadow_scope(self):
        src = simple(
            "{ real t = 5.0; x = t; } { real t = 7.0; x += t; } stabilize;"
        )
        assert np.allclose(run(src).outputs["x"], 12.0)


class TestInputs:
    def test_default_used_when_unset(self):
        src = simple("x = g; stabilize;", globs="input real g = 2.5;")
        assert np.allclose(run(src).outputs["x"], 2.5)

    def test_override_default(self):
        src = simple("x = g; stabilize;", globs="input real g = 2.5;")
        assert np.allclose(run(src, inputs={"g": 7.0}).outputs["x"], 7.0)

    def test_missing_required_input(self):
        src = simple("x = g; stabilize;", globs="input real g;")
        with pytest.raises(InputError, match="no default"):
            run(src)

    def test_unknown_input_rejected(self):
        src = simple("stabilize;")
        prog = compile_program(src)
        with pytest.raises(InputError, match="not an input"):
            prog.set_input("nope", 1)

    def test_wrong_shape_input(self):
        src = simple("x = v[0]; stabilize;", globs="input vec3 v;")
        prog = compile_program(src)
        with pytest.raises(InputError, match="shape"):
            prog.set_input("v", [1.0, 2.0])

    def test_vector_input(self):
        src = simple("x = v • v; stabilize;", globs="input vec2 v;")
        assert np.allclose(run(src, inputs={"v": [3.0, 4.0]}).outputs["x"], 25.0)

    def test_bool_input(self):
        src = simple("x = 1.0 if b else 0.0; stabilize;", globs="input bool b;")
        assert np.allclose(run(src, inputs={"b": True}).outputs["x"], 1.0)

    def test_derived_globals(self):
        src = simple(
            "x = h; stabilize;",
            globs="input real g = 3.0;\nreal h = g * 2.0 + 1.0;",
        )
        assert np.allclose(run(src).outputs["x"], 7.0)

    def test_default_referencing_global_rejected(self):
        src = simple(
            "stabilize;",
            globs="input real a = 1.0; input real b = a + 1.0;",
        )
        with pytest.raises(CompileError, match="closed expression"):
            compile_program(src)


class TestImages:
    def _img_src(self):
        return simple(
            "x = F([real(i), 0.0]); stabilize;",
            globs='image(2)[] img = load("missing.nrrd");\nfield#0(2)[] F = img ⊛ tent;',
        )

    def test_bind_image(self):
        img = Image(np.arange(64.0).reshape(8, 8), dim=2)
        res = run(self._img_src(), images={"img": img})
        assert np.allclose(res.outputs["x"][1:7], np.arange(1.0, 7.0) * 8.0)

    def test_missing_file_error(self):
        prog = compile_program(self._img_src())
        with pytest.raises(InputError, match="does not exist"):
            prog.run()

    def test_bind_wrong_type(self):
        prog = compile_program(self._img_src())
        with pytest.raises(InputError, match="expects image"):
            prog.bind_image("img", Image(np.zeros((4, 4, 4)), dim=3))

    def test_bind_unknown_slot(self):
        prog = compile_program(self._img_src())
        with pytest.raises(InputError, match="not an image global"):
            prog.bind_image("nope", Image(np.zeros((4, 4)), dim=2))

    def test_load_from_nrrd_file(self, tmp_path):
        from repro.nrrd import write_nrrd

        img = Image(np.arange(64.0).reshape(8, 8), dim=2)
        write_nrrd(str(tmp_path / "missing.nrrd"), img)
        prog = compile_program(self._img_src(), search_path=str(tmp_path))
        res = prog.run()
        assert np.allclose(res.outputs["x"][2], 16.0)

    def test_nrrd_shape_mismatch(self, tmp_path):
        from repro.nrrd import write_nrrd

        write_nrrd(str(tmp_path / "missing.nrrd"), Image(np.zeros((4, 4, 4)), dim=3))
        prog = compile_program(self._img_src(), search_path=str(tmp_path))
        with pytest.raises(InputError, match="declared"):
            prog.run()


class TestPrecision:
    def test_single_precision_outputs(self):
        src = simple("x = 1.0 / 3.0; stabilize;")
        res = run(src, precision="single")
        assert res.outputs["x"].dtype == np.float32

    def test_double_precision_outputs(self):
        src = simple("x = 1.0 / 3.0; stabilize;")
        res = run(src, precision="double")
        assert res.outputs["x"].dtype == np.float64

    def test_precisions_differ_measurably(self):
        src = simple("x = 1.0 / 3.0; stabilize;")
        a = run(src, precision="single").outputs["x"][0]
        b = run(src, precision="double").outputs["x"][0]
        assert a != b

    def test_bad_precision(self):
        with pytest.raises(CompileError, match="precision"):
            compile_program(simple("stabilize;"), precision="half")


class TestExecutionControls:
    def test_max_steps(self):
        src = simple("x += 1.0;")  # never stabilizes
        res = run(src, max_steps=7)
        assert res.steps == 7
        assert np.allclose(res.outputs["x"], 7.0)

    def test_block_size_does_not_change_results(self):
        src = simple("x += real(i) + 1.0; if (x > 10.0) stabilize;")
        a = run(src, block_size=3).outputs["x"]
        b = run(src, block_size=4096).outputs["x"]
        assert np.array_equal(a, b)

    def test_workers_do_not_change_results(self):
        src = simple("x += real(i) + 1.0; if (x > 10.0) stabilize;")
        a = run(src, workers=1, block_size=2).outputs["x"]
        b = run(src, workers=4, block_size=2).outputs["x"]
        assert np.array_equal(a, b)

    def test_run_result_stats(self):
        src = simple("if (i < 5) die; stabilize;",
                     init="initially { S(i) | i in 0 .. 9 };")
        res = run(src)
        assert res.num_strands == 10
        assert res.num_died == 5
        assert res.num_stable == 5
        assert res.wall_time > 0


class TestCli:
    def test_cli_sets_inputs(self, capsys):
        src = simple("x = g * 2.0; stabilize;", globs="input real g = 1.0;")
        prog = compile_program(src)
        res = prog.cli(["--g", "3.5"])
        assert np.allclose(res.outputs["x"], 7.0)

    def test_cli_int_input(self):
        src = simple("x = real(n); stabilize;", globs="input int n = 1;")
        prog = compile_program(src)
        res = prog.cli(["--n", "9"])
        assert np.allclose(res.outputs["x"], 9.0)


class TestGeneratedSource:
    def test_source_is_inspectable(self):
        prog = compile_program(simple("stabilize;"))
        assert "def update(" in prog.generated_source
        assert "Generated by the Diderot compiler" in prog.generated_source

    def test_deterministic_compilation(self):
        src = simple("x = real(i); stabilize;")
        import re

        def normalize(text):
            return re.sub(r"v\d+", "v#", text)

        a = normalize(compile_program(src).generated_source)
        b = normalize(compile_program(src).generated_source)
        assert a == b
