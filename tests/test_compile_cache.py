"""The persistent compile cache (:mod:`repro.serve.cache`).

The contract under test: a repeat compile of the same normalized HighIR
is a disk hit that skips every optimizer/lowering/codegen pass (verified
via obs spans), yields a Program whose behavior is bit-identical to the
cold compile's, and the fingerprint is stable across processes but
sensitive to everything that could change generated code.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.driver import OptOptions, compile_program
from repro.obs import Tracer
from repro.obs import metrics as _mx
from repro.serve import cache as cc

SRC = """
input int N = 6;
input real scale = 2.0;
strand s (int i) {
    output real y = 0.0;
    update { y = real(i) * scale + 1.0; stabilize; }
}
initially [ s(i) | i in 0..(N-1) ];
"""

#: front-end passes that always run, hit or miss
FRONTEND = {"parse", "typecheck", "simplify", "highir"}
#: passes that must NOT run on a cache hit
BACKEND = {"contraction", "value-numbering", "midir", "probe-fuse",
           "lowir", "codegen"}


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_COMPILE_CACHE_MAX", raising=False)
    return tmp_path


def _counter(name: str) -> float:
    return _mx.GLOBAL.snapshot()["counters"].get(name, 0)


class TestHitMiss:
    def test_cold_compile_misses_then_hits(self, cache_dir):
        miss0, hit0 = _counter("compile_cache.misses"), _counter("compile_cache.hits")
        tr1 = Tracer()
        p1 = compile_program(SRC, tracer=tr1, cache=True)
        assert _counter("compile_cache.misses") == miss0 + 1
        assert BACKEND <= {e.name for e in tr1.spans("pass")}
        assert len(list(cache_dir.glob("*.pkl"))) == 1

        tr2 = Tracer()
        p2 = compile_program(SRC, tracer=tr2, cache=True)
        assert _counter("compile_cache.hits") == hit0 + 1
        passes = {e.name for e in tr2.spans("pass")}
        assert passes <= FRONTEND, f"optimizer passes re-ran on a hit: {passes}"
        assert [e.name for e in tr2.events if e.cat == "cache"] == \
            ["compile-cache-hit"]
        assert p2.generated_source == p1.generated_source

    def test_hit_program_is_bit_identical(self, cache_dir):
        p1 = compile_program(SRC, cache=True)
        p2 = compile_program(SRC, cache=True)
        r1, r2 = p1.run(), p2.run()
        assert np.array_equal(r1.outputs["y"], r2.outputs["y"])
        assert r1.steps == r2.steps

    def test_formatting_changes_still_hit(self, cache_dir):
        compile_program(SRC, cache=True)
        tr = Tracer()
        reformatted = SRC.replace("input int N = 6;",
                                  "// renamed nothing\ninput int N = 6;")
        compile_program(reformatted, tracer=tr, cache=True)
        assert {e.name for e in tr.spans("pass")} <= FRONTEND

    def test_disabled_by_default(self, cache_dir, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILE_CACHE", raising=False)
        compile_program(SRC)
        assert list(cache_dir.glob("*.pkl")) == []
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "1")
        compile_program(SRC)
        assert len(list(cache_dir.glob("*.pkl"))) == 1


class TestKeySensitivity:
    def test_opt_options_key(self, cache_dir):
        compile_program(SRC, cache=True)
        tr = Tracer()
        compile_program(SRC, cache=True,
                        optimize=OptOptions(value_numbering=False))
        # different OptOptions → a different entry, i.e. a miss
        assert len(list(cache_dir.glob("*.pkl"))) == 2

    def test_precision_keys_differently(self, cache_dir):
        compile_program(SRC, cache=True, precision="double")
        compile_program(SRC, cache=True, precision="single")
        assert len(list(cache_dir.glob("*.pkl"))) == 2

    def test_program_change_keys_differently(self, cache_dir):
        compile_program(SRC, cache=True)
        compile_program(SRC.replace("+ 1.0", "+ 2.0"), cache=True)
        assert len(list(cache_dir.glob("*.pkl"))) == 2

    def test_fingerprint_stable_across_processes(self, cache_dir):
        script = (
            "from repro.core.driver import compile_to_source\n"
            "import repro.serve.cache as cc\n"
            "from repro.core.syntax import parse_program\n"
            "from repro.core.ty import check_program\n"
            "from repro.core.xform.to_high import HighBuilder\n"
            "from repro.core.driver import OptOptions\n"
            f"hp = HighBuilder(check_program(parse_program({SRC!r}))).build()\n"
            "print(cc.fingerprint(hp, OptOptions(), ('precision', 'double')))\n"
        )
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(sys.path))

        def one():
            out = subprocess.run([sys.executable, "-c", script], env=env,
                                 capture_output=True, text=True, check=True)
            return out.stdout.strip()

        assert one() == one(), "fingerprint must not depend on process state"


class TestRobustness:
    def test_corrupt_entry_recompiles(self, cache_dir):
        p1 = compile_program(SRC, cache=True)
        entry = next(cache_dir.glob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        tr = Tracer()
        p2 = compile_program(SRC, tracer=tr, cache=True)
        # the corrupt entry was purged, the compile re-ran and re-stored
        # (fresh SSA ids make the regenerated text differ; behavior and
        # the re-published cache entry are what matter)
        assert BACKEND <= {e.name for e in tr.spans("pass")}
        assert len(list(cache_dir.glob("*.pkl"))) == 1
        r1, r2 = p1.run(), p2.run()
        assert np.array_equal(r1.outputs["y"], r2.outputs["y"])

    def test_wrong_key_entry_ignored(self, cache_dir):
        compile_program(SRC, cache=True)
        entry = next(cache_dir.glob("*.pkl"))
        # an entry renamed to another key must not satisfy that key
        stolen = cache_dir / ("0" * 32 + ".pkl")
        entry.rename(stolen)
        assert cc.load("0" * 32) is None
        assert not stolen.exists(), "mismatched entry should be purged"

    def test_lru_eviction(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE_MAX", "2")
        import time

        for k in (1, 2, 3):
            compile_program(SRC.replace("+ 1.0", f"+ {k}.0"), cache=True)
            time.sleep(0.02)
        assert len(list(cache_dir.glob("*.pkl"))) == 2

    def test_clear(self, cache_dir):
        compile_program(SRC, cache=True)
        assert cc.clear() == 1
        assert list(cache_dir.glob("*.pkl")) == []
