"""Integer division/modulo by zero: the predicated-execution contract.

Generated code runs both arms of every ``if`` and selects results with
the φ masks, so a zero divisor can legitimately appear on a *dead* lane
(one the guard excluded).  The contract, enforced by
:func:`repro.runtime.ops.idiv` / :func:`~repro.runtime.ops.imod`:

* zero divisor on any **live** lane → :class:`~repro.errors.RuntimeErrorD`
  (deterministic, instead of NumPy's warning + garbage 0);
* zero divisor only on **dead** lanes → sanitized to 0 locally; the value
  never survives the φ-select.

Both the generated code and the HighIR interpreter thread the same lane
masks, so the differential tests below must agree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import compile_program
from repro.errors import RuntimeErrorD
from repro.runtime import ops as rt

GUARDED = """
    strand S (int i) {
        output int q = 0;
        update {
            int d = i % 3;
            if (d != 0) q = i / d;
            else q = -i;
            stabilize;
        }
    }
    initially [ S(i) | i in 0 .. 8 ];
"""

UNGUARDED = """
    strand S (int i) {
        output int q = 0;
        update { q = i / (i % 3); stabilize; }
    }
    initially [ S(i) | i in 0 .. 8 ];
"""

NESTED = """
    strand S (int i) {
        output int q = 0;
        update {
            if (i >= 3) {
                int d = i - 3;
                if (d != 0) q = 100 / d;
            } else {
                q = 7;
            }
            stabilize;
        }
    }
    initially [ S(i) | i in 0 .. 8 ];
"""


class TestOps:
    def test_idiv_live_zero_raises(self):
        with pytest.raises(RuntimeErrorD, match="division by zero"):
            rt.idiv(np.array([4, 2]), np.array([2, 0]))

    def test_imod_live_zero_raises(self):
        with pytest.raises(RuntimeErrorD, match="division by zero"):
            rt.imod(np.array([4, 2]), np.array([2, 0]))

    def test_idiv_dead_zero_sanitized(self):
        live = np.array([True, False])
        out = rt.idiv(np.array([4, 2]), np.array([2, 0]), live=live)
        assert out[0] == 2  # dead lane's value is unspecified but finite

    def test_imod_dead_zero_sanitized(self):
        live = np.array([False, True])
        out = rt.imod(np.array([7, 7]), np.array([0, 4]), live=live)
        assert out[1] == 3

    def test_live_zero_among_dead_still_raises(self):
        live = np.array([True, True, False])
        with pytest.raises(RuntimeErrorD):
            rt.idiv(np.array([1, 1, 1]), np.array([1, 0, 0]), live=live)

    def test_scalar_divisors(self):
        assert rt.idiv(np.array([9, 4]), 2).tolist() == [4, 2]
        with pytest.raises(RuntimeErrorD):
            rt.idiv(np.array([9, 4]), 0)

    def test_truncation_semantics_preserved(self):
        # Diderot int division is C-style: truncation toward zero
        assert rt.idiv(np.array([-7]), np.array([2]))[0] == -3
        assert rt.imod(np.array([-7]), np.array([2]))[0] == -1


class TestCompiled:
    def _interp(self, src):
        from tests.test_fuzz import interp_run

        return interp_run(src.replace("0 .. 8", "0 .. 11"))

    def test_guarded_zero_divisor_runs(self):
        prog = compile_program(GUARDED)
        out = prog.run(max_steps=2).outputs["q"]
        # i=0,3,6 take the else arm; the rest divide by i%3
        assert out.tolist() == [0, 1, 1, -3, 4, 2, -6, 7, 4]

    def test_nested_guard_zero_divisor_runs(self):
        prog = compile_program(NESTED)
        out = prog.run(max_steps=2).outputs["q"]
        assert out.tolist() == [7, 7, 7, 0, 100, 50, 33, 25, 20]

    def test_unguarded_zero_divisor_raises(self):
        prog = compile_program(UNGUARDED)
        with pytest.raises(RuntimeErrorD, match="division by zero"):
            prog.run(max_steps=2)

    def test_interpreter_agrees_on_guarded(self):
        # same source, 12 strands (interp_run's BSP loop is fixed at 12)
        src = GUARDED.replace("0 .. 8", "0 .. 11")
        prog = compile_program(src)
        compiled = prog.run(max_steps=2).outputs["q"]
        ref = self._interp(GUARDED)["q"]
        assert np.array_equal(compiled, ref)

    def test_interpreter_raises_on_unguarded(self):
        with pytest.raises(RuntimeErrorD, match="division by zero"):
            self._interp(UNGUARDED)

    def test_all_schedulers_agree_on_guarded(self):
        outs = []
        for scheduler, workers in (("seq", 1), ("thread", 2), ("process", 2)):
            prog = compile_program(GUARDED)
            res = prog.run(max_steps=2, scheduler=scheduler, workers=workers,
                           block_size=4)
            outs.append(res.outputs["q"])
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])
