"""Unit and property tests for the piecewise-polynomial substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.piecewise import Polynomial

coeff_lists = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=6
)


class TestConstruction:
    def test_of_trims_trailing_zeros(self):
        p = Polynomial.of([1.0, 2.0, 0.0, 0.0])
        assert p.coeffs == (1.0, 2.0)

    def test_of_keeps_single_zero(self):
        assert Polynomial.of([0.0, 0.0]).coeffs == (0.0,)

    def test_of_empty_is_zero(self):
        assert Polynomial.of([]).coeffs == (0.0,)

    def test_degree(self):
        assert Polynomial.of([1, 2, 3]).degree == 2
        assert Polynomial.of([5]).degree == 0


class TestEvaluation:
    def test_constant(self):
        assert Polynomial.of([3.5])(100.0) == 3.5

    def test_cubic_at_points(self):
        p = Polynomial.of([1.0, -2.0, 0.5, 1.0])  # 1 - 2x + x²/2 + x³
        for x in (-1.5, 0.0, 0.25, 2.0):
            expected = 1 - 2 * x + 0.5 * x * x + x**3
            assert p(x) == pytest.approx(expected, rel=1e-14)

    def test_vectorized(self):
        p = Polynomial.of([0.0, 1.0, 1.0])
        xs = np.linspace(-2, 2, 11)
        assert np.allclose(p(xs), xs + xs * xs)


class TestDerivative:
    def test_constant_derivative_is_zero(self):
        assert Polynomial.of([7.0]).derivative().coeffs == (0.0,)

    def test_power_rule(self):
        p = Polynomial.of([1.0, 2.0, 3.0, 4.0])
        assert p.derivative().coeffs == (2.0, 6.0, 12.0)

    @given(coeff_lists, st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=50)
    def test_derivative_matches_finite_difference(self, coeffs, x):
        p = Polynomial.of(coeffs)
        h = 1e-6
        fd = (p(x + h) - p(x - h)) / (2 * h)
        assert float(p.derivative()(x)) == pytest.approx(fd, rel=1e-4, abs=1e-4)


class TestShift:
    @given(coeff_lists, st.floats(min_value=-4, max_value=4, allow_nan=False),
           st.floats(min_value=-4, max_value=4, allow_nan=False))
    @settings(max_examples=50)
    def test_shift_is_composition(self, coeffs, a, x):
        p = Polynomial.of(coeffs)
        assert float(p.shift(a)(x)) == pytest.approx(float(p(x + a)), rel=1e-9, abs=1e-9)

    def test_shift_zero_is_identity(self):
        p = Polynomial.of([1.0, 2.0, 3.0])
        assert p.shift(0.0).coeffs == p.coeffs


class TestAlgebra:
    @given(coeff_lists, coeff_lists, st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=50)
    def test_add_pointwise(self, c1, c2, x):
        p, q = Polynomial.of(c1), Polynomial.of(c2)
        assert float(p.add(q)(x)) == pytest.approx(float(p(x)) + float(q(x)), rel=1e-9, abs=1e-9)

    @given(coeff_lists, st.floats(min_value=-5, max_value=5, allow_nan=False))
    @settings(max_examples=50)
    def test_scale_pointwise(self, c, s):
        p = Polynomial.of(c)
        assert float(p.scale(s)(1.7)) == pytest.approx(s * float(p(1.7)), rel=1e-9, abs=1e-9)

    def test_is_zero(self):
        assert Polynomial.of([0.0]).is_zero()
        assert not Polynomial.of([0.0, 1e-30]).is_zero()
