"""Incremental re-execution: footprints, dirty regions, bit-identity.

The load-bearing contract (ISSUE acceptance): a dirty-region update run
is **bit-identical** to a cold run over the patched inputs with the same
scheduler/backend configuration — restoring clean strands from the
checkpoint and re-running only the dirty ones must never change a
single bit of the answer.  The oracle is always a freshly compiled
program run cold with the *same* backend (native and NumPy agree only
to 1e-12, so cross-backend comparison would not be a bit-identity
test).
"""

from __future__ import annotations

import asyncio
import json
import os

import numpy as np
import pytest

from repro.core.codegen import cbuild
from repro.core.driver import compile_program
from repro.errors import InputError
from repro.image import Image
from repro.obs import metrics as _mx
from repro.runtime import incremental as inc

NATIVE = cbuild.compiler_available()

N = 20
IMG = 26

SOURCE = f"""
input int N = {N};
image(2)[] img = load("p.nrrd");
field#2(2)[] F = img ⊛ bspln3;

strand S (int i, int j) {{
   output real x = 0.0;
   int n = 0;
   update {{
      vec2 p = [real(i) + 2.5, real(j) + 2.5];
      if (inside(p, F)) {{ x = F(p) + 0.25 * (∇F(p))[0]; }}
      n += 1;
      if (n >= 2) stabilize;
   }}
}}
initially [ S(i, j) | i in 0 .. N-1, j in 0 .. N-1 ];
"""


def _base(seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).random((IMG, IMG))


def _prog(data: np.ndarray):
    prog = compile_program(SOURCE)
    prog.bind_image("img", Image(data.copy(), dim=2))
    return prog


CONFIGS = [("seq", 1, "numpy"), ("thread", 2, "numpy"),
           ("process", 2, "numpy")]
if NATIVE:
    CONFIGS += [("seq", 1, "c"), ("thread", 2, "c"), ("process", 2, "c")]


# -- Image.patch --------------------------------------------------------------


class TestImagePatch:
    def test_full_diff_finds_bbox(self):
        img = Image(_base(), dim=2)
        new = np.array(img.data)
        new[4:7, 9:11] += 1.0
        regions = img.patch(new)
        assert [[list(map(int, lo)), list(map(int, hi))]
                for lo, hi in regions] == [[[4, 9], [6, 10]]]
        assert np.array_equal(img.data, new)

    def test_no_change_returns_empty(self):
        img = Image(_base(), dim=2)
        assert img.patch(np.array(img.data)) == []

    def test_explicit_region_subblock(self):
        img = Image(_base(), dim=2)
        block = np.zeros((3, 2))
        regions = img.patch(block, region=[[4, 6], [9, 10]])
        assert len(regions) == 1
        assert np.array_equal(img.data[4:7, 9:11], block)

    def test_explicit_region_fullsize_data(self):
        img = Image(_base(), dim=2)
        new = np.array(img.data)
        new[1:3, 1:3] = -1.0
        new[20, 20] = 99.0  # outside the region: must NOT be applied
        img.patch(new, region=[[1, 2], [1, 2]])
        assert np.array_equal(img.data[1:3, 1:3], new[1:3, 1:3])
        assert img.data[20, 20] != 99.0

    def test_region_out_of_bounds_raises(self):
        img = Image(_base(), dim=2)
        with pytest.raises(ValueError):
            img.patch(np.zeros((2, 2)), region=[[25, 26], [0, 1]])

    def test_bad_subblock_shape_raises(self):
        img = Image(_base(), dim=2)
        with pytest.raises(ValueError):
            img.patch(np.zeros((5, 5)), region=[[0, 1], [0, 1]])


# -- the spatial index --------------------------------------------------------


class TestBlockIndex:
    def test_candidates_superset_of_bruteforce(self):
        rng = np.random.default_rng(3)
        n, sizes = 500, np.array([40, 40])
        lo = rng.integers(0, 30, size=(n, 2))
        hi = lo + rng.integers(0, 8, size=(n, 2))
        index = inc._BlockIndex(lo, hi, sizes)
        for _ in range(30):
            rlo = rng.integers(0, 35, size=2)
            rhi = rlo + rng.integers(0, 10, size=2)
            cand = index.candidates(rlo, rhi)
            exact = np.flatnonzero(
                ((lo <= rhi) & (hi >= rlo)).all(axis=1))
            assert np.isin(exact, cand).all()

    def test_dirty_strands_matches_bruteforce(self):
        prog = _prog(_base())
        prog.run(checkpoint=True)
        fps = prog._inc.footprints
        if fps is None:
            prog.build_footprints()
            fps = inc.Footprints(prog._inc.recorder,
                                 {"img": np.array([IMG, IMG])})
        rec = prog._inc.recorder
        lo, hi = rec.boxes["img"]
        d = fps.dilate
        for rlo, rhi in [([3, 3], [5, 5]), ([0, 0], [25, 25]),
                         ([24, 0], [25, 25])]:
            got = fps.dirty_strands("img", [(np.asarray(rlo),
                                             np.asarray(rhi))])
            exact = np.flatnonzero(
                ((lo - d <= np.asarray(rhi)) &
                 (hi + d >= np.asarray(rlo))).all(axis=1))
            assert got is not None
            assert np.array_equal(np.sort(got), exact)


# -- bit-identity across schedulers and backends ------------------------------


@pytest.mark.parametrize("scheduler,workers,backend", CONFIGS)
def test_update_bit_identical_to_cold_run(scheduler, workers, backend):
    base = _base()
    patched = base.copy()
    patched[3:6, 3:6] += 1.0

    prog = _prog(base)
    kw = dict(scheduler=scheduler, workers=workers, backend=backend)
    prog.run(checkpoint=True, **kw)
    info = prog.update_input("img", patched[3:6, 3:6],
                             region=[[3, 5], [3, 5]])
    assert not info["full"]
    assert 0 < info["dirty_strands"] < info["total_strands"]
    res = prog.run_update(workers=workers, scheduler=scheduler,
                          backend=backend)
    assert res.incremental
    assert res.dirty_strands == info["dirty_strands"]

    want = _prog(patched).run(**kw)
    for name in want.outputs:
        assert np.array_equal(res.outputs[name], want.outputs[name]), (
            scheduler, backend, name)


def test_overlapping_multi_region_update():
    base = _base()
    patched = base.copy()
    patched[2:8, 2:8] += 0.5
    patched[5:12, 5:12] -= 0.25  # overlaps the first region

    prog = _prog(base)
    prog.run(checkpoint=True)
    info = prog.update_input(
        "img", patched,
        region=[[[2, 7], [2, 7]], [[5, 11], [5, 11]]])
    assert len(info["regions"]) == 2
    res = prog.run_update()
    assert res.incremental

    want = _prog(patched).run()
    assert np.array_equal(res.outputs["x"], want.outputs["x"])


def test_sequential_updates_stay_identical():
    base = _base()
    prog = _prog(base)
    prog.run(checkpoint=True)
    data = base.copy()
    rng = np.random.default_rng(11)
    for _ in range(3):
        i, j = rng.integers(0, IMG - 4, size=2)
        data[i:i + 4, j:j + 4] += rng.normal(scale=0.3, size=(4, 4))
        prog.update_input("img", data,
                          region=[[int(i), int(i) + 3],
                                  [int(j), int(j) + 3]])
        res = prog.run_update()
        want = _prog(data).run()
        assert np.array_equal(res.outputs["x"], want.outputs["x"])


def test_whole_image_dirty_degenerates_to_full_rerun():
    base = _base()
    patched = base + 1.0
    prog = _prog(base)
    prog.run(checkpoint=True)
    info = prog.update_input("img", patched,
                             region=[[0, IMG - 1], [0, IMG - 1]])
    res = prog.run_update()
    # every strand's footprint intersects: this is a full re-run, and
    # the result says so (incremental=False marks the degeneration)
    assert info["dirty_strands"] == info["total_strands"] or info["full"]
    assert not res.incremental
    assert res.dirty_fraction == 1.0
    want = _prog(patched).run()
    assert np.array_equal(res.outputs["x"], want.outputs["x"])


def test_empty_update_restores_snapshot():
    base = _base()
    prog = _prog(base)
    cold = prog.run(checkpoint=True)
    res = prog.run_update()  # nothing pending
    assert res.incremental and res.steps == 0
    assert res.dirty_fraction == 0.0
    assert np.array_equal(res.outputs["x"], cold.outputs["x"])


def test_nonimage_input_change_forces_full_rerun():
    prog = _prog(_base())
    prog.run(checkpoint=True)
    info = prog.update_input("N", 10)
    assert info["full"]
    res = prog.run_update()
    assert not res.incremental
    assert res.outputs["x"].shape == (10, 10)


def test_update_without_checkpoint_raises():
    prog = _prog(_base())
    with pytest.raises(InputError):
        prog.update_input("img", _base())
    with pytest.raises(InputError):
        prog.run_update()


@pytest.mark.skipif(not NATIVE, reason="needs a C compiler")
def test_backend_mismatch_raises():
    prog = _prog(_base())
    prog.run(checkpoint=True, backend="numpy")
    prog.update_input("img", _base(1), region=[[0, 3], [0, 3]])
    with pytest.raises(InputError):
        prog.run_update(backend="c")


def test_rebinding_image_invalidates_checkpoint():
    prog = _prog(_base())
    prog.run(checkpoint=True)
    assert prog.has_checkpoint
    prog.bind_image("img", Image(_base(5), dim=2))
    assert not prog.has_checkpoint


# -- streaming ----------------------------------------------------------------


def test_on_step_events_cold_and_update():
    base = _base()
    prog = _prog(base)
    events = []
    prog.run(checkpoint=True, on_step=events.append)
    assert [e.step for e in events] == list(range(len(events)))
    assert sum((e.status == 1).sum() for e in events) == N * N
    for e in events:
        assert set(e.outputs) == {"x"}
        assert e.outputs["x"].shape[0] == e.active.size

    patched = base.copy()
    patched[3:6, 3:6] += 1.0
    prog.update_input("img", patched[3:6, 3:6], region=[[3, 5], [3, 5]])
    upd_events = []
    res = prog.run_update(on_step=upd_events.append)
    assert res.incremental
    # update-run events only carry the re-run strands
    assert all(e.active.size <= res.dirty_strands for e in upd_events)
    assert sum((e.status == 1).sum() for e in upd_events) == \
        res.dirty_strands


def test_metrics_record_dirty_fraction():
    base = _base()
    with _mx.collect() as reg:
        prog = _prog(base)
        prog.run(checkpoint=True)
        patched = base.copy()
        patched[3:6, 3:6] += 1.0
        prog.update_input("img", patched, region=[[3, 5], [3, 5]])
        res = prog.run_update()
    snap = reg.snapshot()["counters"]
    assert snap.get("runtime.incremental.checkpoints", 0) >= 2
    assert snap.get("runtime.incremental.updates", 0) == 1
    assert snap.get("runtime.incremental.rerun_strands", 0) == \
        res.dirty_strands
    assert "runtime.dirty_fraction" in reg.snapshot()["histograms"]


# -- the serving layer --------------------------------------------------------


def _write_nrrd(path: str, arr: np.ndarray) -> None:
    from repro.nrrd.writer import write_nrrd

    write_nrrd(path, arr)


def test_serve_update_route_and_streaming(tmp_path):
    from repro.serve.__main__ import _request, _request_stream
    from repro.serve.registry import ProgramRegistry
    from repro.serve.server import ServeApp

    base = _base()
    patched = base.copy()
    patched[3:6, 3:6] += 1.0
    _write_nrrd(str(tmp_path / "p.nrrd"), base)

    async def drive():
        app = ServeApp(ProgramRegistry())
        await app.start("127.0.0.1", 0)
        port = app.port
        s, _ = await _request(port, "POST", "/programs/inc", {
            "source": SOURCE, "search_path": str(tmp_path)})
        assert s == 200
        s, full = await _request(port, "POST", "/run/inc", {})
        assert s == 200
        s, events = await _request_stream(port, "/run/inc",
                                          {"stream": True})
        s2, upd = await _request(port, "POST", "/update/inc", {
            "image": "img", "data": patched[3:6, 3:6].tolist(),
            "region": [[3, 5], [3, 5]]})
        s3, bad = await _request(port, "POST", "/update/inc", {})
        await app.close()
        return full, events, (s, s2, s3), upd, bad

    full, events, codes, upd, bad = asyncio.run(drive())
    assert codes == (200, 200, 400), (codes, bad)
    assert events[-1]["done"]
    assert events[-1]["outputs"] == full["outputs"]
    assert sum(e.get("stabilized", 0) for e in events[:-1]) == N * N
    assert upd["incremental"] and upd["partial"]
    assert 0 < upd["dirty_strands"] < upd["strands"]

    # stitch the partial rows over the cold result; must equal a fresh
    # cold run on the patched image bit-exactly
    flat = np.asarray(full["outputs"]["x"], dtype=np.float64).reshape(-1)
    flat[np.asarray(upd["updated_indices"])] = np.asarray(
        upd["outputs"]["x"], dtype=np.float64)
    want = _prog(patched).run()
    assert np.array_equal(flat.reshape(N, N), want.outputs["x"])


def test_warm_manifest(tmp_path):
    from repro.serve.registry import ProgramRegistry, warm_manifest

    _write_nrrd(str(tmp_path / "p.nrrd"), _base())
    (tmp_path / "prog.diderot").write_text(SOURCE, encoding="utf-8")
    manifest = {"programs": [
        {"name": "w1", "path": "prog.diderot", "scheduler": "seq"},
    ]}
    (tmp_path / "manifest.json").write_text(json.dumps(manifest),
                                            encoding="utf-8")
    before = _mx.GLOBAL.snapshot()["counters"].get("serve.registry.warmed", 0)
    reg = ProgramRegistry()
    entries = warm_manifest(reg, str(tmp_path / "manifest.json"))
    assert [e.name for e in entries] == ["w1"]
    assert "w1" in reg
    res = entries[0].run(inputs={})
    assert res.outputs["x"].shape == (N, N)
    after = _mx.GLOBAL.snapshot()["counters"].get("serve.registry.warmed", 0)
    assert after == before + 1


# -- fuzz hook ----------------------------------------------------------------


def test_incremental_fuzz_smoke():
    from repro.core.verify.fuzz import fuzz

    report = fuzz(n=2, seed=7, schedulers=("seq",), incremental=True)
    assert report.ok, report.failures
