"""Tests for the pretty-printer (round-trip with the parser)."""

import dataclasses

import pytest

from repro.core.syntax import ast, parse_program
from repro.core.syntax.unparse import unparse, unparse_expr
from repro.core.ty import check_program
from repro.programs import ALL


def _unwrap(s):
    """Strip singleton Block wrappers (the unparser emits explicit braces
    around single-statement branches to avoid dangling-else ambiguity)."""
    while isinstance(s, ast.Block) and len(s.stmts) == 1:
        s = s.stmts[0]
    return s


def ast_equal(a, b) -> bool:
    """Structural AST equality, ignoring spans, type annotations, and
    singleton block wrappers."""
    if isinstance(a, ast.Stmt) or isinstance(b, ast.Stmt):
        a = _unwrap(a)
        b = _unwrap(b)
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Node):
        for f in dataclasses.fields(a):
            if f.name == "span":
                continue
            if not ast_equal(getattr(a, f.name), getattr(b, f.name)):
                return False
        return True
    if isinstance(a, list):
        return len(a) == len(b) and all(ast_equal(x, y) for x, y in zip(a, b))
    return a == b


class TestRoundTrip:
    @pytest.mark.parametrize("name", list(ALL))
    def test_benchmark_programs_roundtrip(self, name):
        prog = parse_program(ALL[name].SOURCE)
        text = unparse(prog)
        reparsed = parse_program(text)
        assert ast_equal(prog, reparsed), text

    def test_roundtrip_is_stable(self):
        prog = parse_program(ALL["vr-lite"].SOURCE)
        once = unparse(prog)
        twice = unparse(parse_program(once))
        assert once == twice

    def test_unparsed_program_still_typechecks(self):
        prog = parse_program(ALL["ridge3d"].SOURCE)
        check_program(parse_program(unparse(prog)))


class TestExpressions:
    def _rt(self, src: str) -> str:
        from repro.core.syntax.parser import Parser

        e = Parser(src).parse_expr()
        return unparse_expr(e)

    def test_precedence_preserved(self):
        for src in [
            "(a + b) * c",
            "a + b * c",
            "-a • b",
            "a if c else b if d else e",
            "|a + b|",
            "∇F(pos)",
            "∇⊗∇F(pos)",
            "m[1, 2]",
            "identity[3]",
            "(F1 if b else F2)(x)",
        ]:
            from repro.core.syntax.parser import Parser

            original = Parser(src).parse_expr()
            reparsed = Parser(self._rt(src)).parse_expr()
            assert ast_equal(original, reparsed), (src, self._rt(src))

    def test_string_escapes(self):
        assert self._rt('"a\\"b"') == '"a\\"b"'

    def test_norm_text(self):
        assert self._rt("|u|") == "|u|"

    def test_load_text(self):
        assert self._rt('load("f.nrrd")') == 'load("f.nrrd")'
