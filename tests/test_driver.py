"""Tests for the compiler driver: stats, files, options, diagnostics."""

import numpy as np
import pytest

from repro.core.driver import OptOptions, compile_file, compile_program, compile_to_source
from repro.errors import SyntaxErrorD, TypeErrorD
from repro.image import Image

SRC = """
image(2)[] img = load("d.nrrd");
field#2(2)[] F = img ⊛ bspln3;
strand S (int i) {
    vec2 pos = [real(i), 4.0];
    output real v = 0.0;
    output vec2 g = [0.0, 0.0];
    update {
        if (inside(pos, F)) { v = F(pos); g = ∇F(pos); }
        stabilize;
    }
}
initially [ S(i) | i in 0 .. 7 ];
"""


class TestCompileStats:
    def test_pipeline_counts_populated(self):
        _, _, stats = compile_to_source(SRC)
        for table in (stats.high_instrs, stats.mid_instrs, stats.low_instrs):
            assert "update" in table and table["update"] > 0

    def test_lowering_grows_instruction_count(self):
        _, _, stats = compile_to_source(SRC)
        # kernel expansion adds Horner arithmetic
        assert stats.low_instrs["update"] > stats.mid_instrs["update"]

    def test_vn_removes_shared_probe_work(self):
        _, _, stats = compile_to_source(SRC)
        assert stats.vn_removed["update"] > 0

    def test_unoptimized_mid_larger(self):
        _, _, opt = compile_to_source(SRC)
        _, _, unopt = compile_to_source(
            SRC, OptOptions(contraction=False, value_numbering=False)
        )
        assert unopt.mid_instrs["update"] > opt.mid_instrs["update"]


class TestOptOptionCombinations:
    @pytest.mark.parametrize(
        "contraction,vn", [(True, True), (True, False), (False, True), (False, False)]
    )
    def test_all_combinations_run_identically(self, contraction, vn, rng):
        img = Image(rng.standard_normal((12, 12)), dim=2)
        prog = compile_program(
            SRC, optimize=OptOptions(contraction=contraction, value_numbering=vn)
        )
        prog.bind_image("img", img)
        res = prog.run()
        ref_prog = compile_program(SRC)
        ref_prog.bind_image("img", img)
        ref = ref_prog.run()
        assert np.allclose(res.outputs["v"], ref.outputs["v"], atol=1e-12)
        assert np.allclose(res.outputs["g"], ref.outputs["g"], atol=1e-12)


class TestCompileFile:
    def test_search_path_defaults_to_file_dir(self, tmp_path, rng):
        from repro.nrrd import write_nrrd

        (tmp_path / "p.diderot").write_text(SRC, encoding="utf-8")
        write_nrrd(str(tmp_path / "d.nrrd"), Image(rng.standard_normal((12, 12)), dim=2))
        prog = compile_file(str(tmp_path / "p.diderot"))
        res = prog.run()
        assert res.num_stable == 8

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            compile_file(str(tmp_path / "nope.diderot"))


class TestDiagnostics:
    def test_syntax_error_carries_position(self):
        with pytest.raises(SyntaxErrorD) as exc:
            compile_program("strand S (int i) {\n    update { x = ; }\n}")
        assert "2:" in str(exc.value)

    def test_type_error_carries_position(self):
        src = SRC.replace("v = F(pos);", "v = F(1.0);")
        with pytest.raises(TypeErrorD) as exc:
            compile_program(src)
        assert "probe position" in str(exc.value)
        assert ":" in str(exc.value)


class TestSaveOutputs:
    def test_grid_save(self, tmp_path, rng):
        from repro.nrrd import read_nrrd

        img = Image(rng.standard_normal((12, 12)), dim=2)
        prog = compile_program(SRC)
        prog.bind_image("img", img)
        res = prog.run()
        paths = res.save(str(tmp_path / "out"))
        assert len(paths) == 2
        back = read_nrrd(str(tmp_path / "out-v.nrrd"))
        assert np.allclose(back.data, res.outputs["v"])
        vec = read_nrrd(str(tmp_path / "out-g.nrrd"))
        assert vec.tensor_shape == (2,)

    def test_collection_save(self, tmp_path, rng):
        from repro.nrrd import read_nrrd

        src = SRC.replace("initially [ S(i) | i in 0 .. 7 ];",
                          "initially { S(i) | i in 0 .. 7 };")
        prog = compile_program(src)
        prog.bind_image("img", Image(rng.standard_normal((12, 12)), dim=2))
        res = prog.run()
        res.save(str(tmp_path / "c"))
        back = read_nrrd(str(tmp_path / "c-g.nrrd"))
        assert back.dim == 1 and back.tensor_shape == (2,)
