"""Tests for the Diderot lexer."""

import pytest

from repro.core.syntax.lexer import tokenize
from repro.core.syntax.tokens import T
from repro.errors import SyntaxErrorD


def kinds(src):
    return [t.kind for t in tokenize(src)][:-1]  # drop EOF


def texts(src):
    return [t.text for t in tokenize(src)][:-1]


class TestBasics:
    def test_empty(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is T.EOF

    def test_identifiers_and_keywords_are_ids(self):
        assert kinds("strand foo _bar x2") == [T.ID] * 4

    def test_punctuation(self):
        assert kinds("( ) [ ] { } , ; # |") == [
            T.LPAREN, T.RPAREN, T.LBRACKET, T.RBRACKET, T.LBRACE, T.RBRACE,
            T.COMMA, T.SEMI, T.HASH, T.BAR,
        ]

    def test_operators(self):
        assert kinds("+ - * / % ^ = < >") == [
            T.PLUS, T.MINUS, T.TIMES, T.DIV, T.MOD, T.CARET, T.ASSIGN, T.LT, T.GT,
        ]

    def test_two_char_operators(self):
        assert kinds("== != <= >= && || += -= *= /= ..") == [
            T.EQEQ, T.NEQ, T.LEQ, T.GEQ, T.ANDAND, T.OROR,
            T.PLUS_EQ, T.MINUS_EQ, T.TIMES_EQ, T.DIV_EQ, T.DOTDOT,
        ]


class TestUnicode:
    def test_math_operators(self):
        assert kinds("⊛ • × ⊗ ∇") == [
            T.CONVOLVE, T.DOT_OP, T.CROSS_OP, T.OUTER_OP, T.NABLA,
        ]

    def test_ascii_convolve_alias(self):
        assert kinds("img @ bspln3") == [T.ID, T.CONVOLVE, T.ID]

    def test_nabla_keyword_alias(self):
        assert kinds("nabla F") == [T.NABLA, T.ID]

    def test_pi(self):
        toks = tokenize("π")
        assert toks[0].kind is T.ID and toks[0].text == "pi"


class TestNumbers:
    def test_int(self):
        tok = tokenize("42")[0]
        assert tok.kind is T.INT and tok.value == 42

    def test_real(self):
        tok = tokenize("3.25")[0]
        assert tok.kind is T.REAL and tok.value == 3.25

    def test_scientific(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025
        assert tokenize("1E+2")[0].value == 100.0

    def test_leading_dot(self):
        tok = tokenize(".5")[0]
        assert tok.kind is T.REAL and tok.value == 0.5

    def test_range_not_a_real(self):
        """``0 .. 9`` and ``0..9`` both lex as INT DOTDOT INT."""
        for src in ("0 .. 9", "0..9"):
            assert kinds(src) == [T.INT, T.DOTDOT, T.INT]


class TestStrings:
    def test_simple(self):
        tok = tokenize('"hand.nrrd"')[0]
        assert tok.kind is T.STRING and tok.value == "hand.nrrd"

    def test_escapes(self):
        assert tokenize(r'"a\nb\"c"')[0].value == 'a\nb"c'

    def test_unterminated(self):
        with pytest.raises(SyntaxErrorD, match="unterminated string"):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(SyntaxErrorD, match="unterminated string"):
            tokenize('"line\nbreak"')


class TestComments:
    def test_line_comment(self):
        assert kinds("x // comment\ny") == [T.ID, T.ID]

    def test_block_comment(self):
        assert kinds("x /* multi\nline */ y") == [T.ID, T.ID]

    def test_unterminated_block(self):
        with pytest.raises(SyntaxErrorD, match="unterminated block"):
            tokenize("/* never ends")


class TestSpans:
    def test_line_and_column(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].span.line, toks[0].span.col) == (1, 1)
        assert (toks[1].span.line, toks[1].span.col) == (2, 3)

    def test_error_position(self):
        with pytest.raises(SyntaxErrorD) as exc:
            tokenize("x\n  $")
        assert "2:3" in str(exc.value)

    def test_stray_character(self):
        with pytest.raises(SyntaxErrorD, match="unexpected character"):
            tokenize("a ~ b")
