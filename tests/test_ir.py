"""Tests for the structured-SSA infrastructure and op vocabularies."""

import pytest

from repro.core.ir import ops as irops
from repro.core.ir.base import Body, Func, IfRegion, Instr, Phi, Value, format_func, validate
from repro.core.ty.types import BOOL, INT, REAL
from repro.errors import CompileError


def make_func(body: Body, params=(), results=()):
    return Func("f", list(params), [f"p{i}" for i in range(len(params))],
                body, list(results), [f"r{i}" for i in range(len(results))])


class TestConstruction:
    def test_emit_returns_value(self):
        body = Body()
        v = body.emit("const", [], REAL, value=1.0)
        assert isinstance(v, Value)
        assert v.producer.op == "const"

    def test_instructions_iterates_nested(self):
        body = Body()
        c = body.emit("const", [], BOOL, value=True)
        inner = Body()
        inner.emit("const", [], REAL, value=2.0)
        body.add(IfRegion(c, inner, Body(), []))
        assert len(list(body.instructions())) == 2

    def test_single_result_accessor(self):
        i = Instr("const", [], {"value": 1})
        i.new_result(INT)
        assert i.result.ty == INT
        i.new_result(INT)
        with pytest.raises(CompileError, match="results"):
            _ = i.result

    def test_value_ids_unique(self):
        a = Value(REAL)
        b = Value(REAL)
        assert a.id != b.id


class TestValidation:
    def test_valid_function(self):
        body = Body()
        p = Value(REAL)
        v = body.emit("neg", [p], REAL)
        fn = Func("f", [p], ["x"], body, [v], ["y"])
        validate(fn, irops.HIGH, "HighIR")

    def test_unknown_op_rejected(self):
        body = Body()
        v = body.emit("frobnicate", [], REAL)
        fn = make_func(body, results=[v])
        with pytest.raises(CompileError, match="vocabulary"):
            validate(fn, irops.HIGH, "HighIR")

    def test_use_before_def_rejected(self):
        body = Body()
        ghost = Value(REAL)
        v = body.emit("neg", [ghost], REAL)
        fn = make_func(body, results=[v])
        with pytest.raises(CompileError, match="undefined"):
            validate(fn, irops.HIGH, "HighIR")

    def test_branch_values_not_visible_outside(self):
        body = Body()
        c = body.emit("const", [], BOOL, value=True)
        then_b = Body()
        inner = then_b.emit("const", [], REAL, value=1.0)
        body.add(IfRegion(c, then_b, Body(), []))
        leak = body.emit("neg", [inner], REAL)  # illegal use
        fn = make_func(body, results=[leak])
        with pytest.raises(CompileError, match="undefined"):
            validate(fn, irops.HIGH, "HighIR")

    def test_phi_makes_branch_value_visible(self):
        body = Body()
        c = body.emit("const", [], BOOL, value=True)
        then_b = Body()
        t = then_b.emit("const", [], REAL, value=1.0)
        else_b = Body()
        e = else_b.emit("const", [], REAL, value=2.0)
        merged = Value(REAL)
        body.add(IfRegion(c, then_b, else_b, [Phi(merged, t, e)]))
        out = body.emit("neg", [merged], REAL)
        fn = make_func(body, results=[out])
        validate(fn, irops.HIGH, "HighIR")

    def test_double_definition_rejected(self):
        body = Body()
        v = body.emit("const", [], REAL, value=1.0)
        dup = Instr("const", [], {"value": 2.0}, results=[v])
        body.add(dup)
        fn = make_func(body, results=[v])
        with pytest.raises(CompileError, match="twice"):
            validate(fn, irops.HIGH, "HighIR")

    def test_mid_vocab_rejects_high_probe(self):
        body = Body()
        p = Value(REAL)
        v = body.emit("probe", [p], REAL, image="i", kernel=None, deriv=0, out_shape=())
        fn = Func("f", [p], ["x"], body, [v], ["y"])
        with pytest.raises(CompileError, match="vocabulary"):
            validate(fn, irops.MID, "MidIR")

    def test_low_vocab_rejects_weights(self):
        assert "weights" in irops.MID
        assert "weights" not in irops.LOW
        assert "horner" in irops.LOW
        assert "horner" not in irops.MID


class TestFormat:
    def test_format_func_shows_structure(self):
        body = Body()
        c = body.emit("const", [], BOOL, value=True)
        then_b = Body()
        t = then_b.emit("const", [], REAL, value=1.0)
        else_b = Body()
        e = else_b.emit("const", [], REAL, value=2.0)
        merged = Value(REAL)
        body.add(IfRegion(c, then_b, else_b, [Phi(merged, t, e)]))
        fn = make_func(body, results=[merged])
        text = format_func(fn)
        assert "if " in text and "φ" in text and "return" in text


class TestVocabularies:
    def test_common_core_shared(self):
        for op in ("add", "mul", "dot", "select", "tensor_cons"):
            assert op in irops.HIGH
            assert op in irops.MID
            assert op in irops.LOW

    def test_probe_only_in_high(self):
        assert "probe" in irops.HIGH
        assert "probe" not in irops.MID

    def test_gather_only_mid_and_low(self):
        assert "gather" not in irops.HIGH
        assert "gather" in irops.MID
        assert "gather" in irops.LOW

    def test_probe_not_foldable(self):
        assert not irops.HIGH["probe"].foldable
        assert irops.HIGH["add"].foldable
