"""Artifact-cache correctness under concurrency and failure.

Covers the serving-layer hardening of :mod:`repro.core.codegen.cbuild`:
the memoized version probe with per-path failure sentinels, the per-key
inter-process build lock (cold-cache stampede → exactly one compiler
invocation), stale-lock recovery, failed-build cleanup, and the
``REPRO_CGEN_CACHE_MAX`` LRU bound.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import stat
import subprocess
import threading
import time

import pytest

from repro.core.codegen import cbuild
from repro.errors import CodegenError
from repro.obs import metrics as _mx

requires_cc = pytest.mark.skipif(
    not cbuild.compiler_available(),
    reason="needs cffi plus a C compiler on PATH",
)

#: a minimal translation unit satisfying the dd_update ABI
OK_SOURCE = """
#include <stdint.h>
int dd_update(void **RP, int64_t **IP, unsigned char **BP,
              const double *SC, const int64_t *IC,
              const int64_t *idx, int64_t start, int64_t end) {
    (void)RP; (void)IP; (void)BP; (void)SC; (void)IC; (void)idx;
    (void)start; (void)end;
    return %d;
}
"""


def _counter(name: str) -> float:
    return _mx.GLOBAL.snapshot()["counters"].get(name, 0)


class TestVersionProbe:
    def test_memoized_per_path(self, monkeypatch):
        cbuild._VERSION_CACHE.clear()
        calls = []
        real_run = subprocess.run

        def counting_run(cmd, *a, **kw):
            calls.append(cmd)
            return real_run(cmd, *a, **kw)

        monkeypatch.setattr(cbuild.subprocess, "run", counting_run)
        cc = cbuild.find_compiler() or "/usr/bin/definitely-missing-cc"
        v1 = cbuild.compiler_version(cc)
        v2 = cbuild.compiler_version(cc)
        v3 = cbuild.compiler_version(cc)
        assert v1 == v2 == v3
        assert len(calls) == 1, "probe must fork once per path, not per build"

    def test_failure_sentinel_is_per_path(self):
        cbuild._VERSION_CACHE.clear()
        a = cbuild.compiler_version("/no/such/toolchain-a")
        b = cbuild.compiler_version("/no/such/toolchain-b")
        assert a.startswith("version-probe-failed:")
        assert b.startswith("version-probe-failed:")
        assert a != b, "two broken toolchains must never share a sentinel"

    def test_failed_probe_keys_differently(self):
        cbuild._VERSION_CACHE.clear()
        src, flags = "int x;", ["-O2"]
        k1 = cbuild._cache_key(src, "/no/such/toolchain-a", flags)
        k2 = cbuild._cache_key(src, "/no/such/toolchain-b", flags)
        assert k1 != k2

    def test_version_participates_in_key(self, monkeypatch):
        cc = "/fake/cc"
        monkeypatch.setitem(cbuild._VERSION_CACHE, cc, "fake 1.0")
        k1 = cbuild._cache_key("int x;", cc, ["-O2"])
        monkeypatch.setitem(cbuild._VERSION_CACHE, cc, "fake 2.0")
        k2 = cbuild._cache_key("int x;", cc, ["-O2"])
        assert k1 != k2


def _stub_compiler(tmp_path, log_path):
    """A PATH shim named ``cc``: logs compile invocations, defers to the
    real compiler.  Version probes (``--version``) are not logged."""
    real = cbuild.find_compiler()
    stub_dir = tmp_path / "bin"
    stub_dir.mkdir()
    stub = stub_dir / "cc"
    stub.write_text(
        "#!/bin/sh\n"
        'case "$*" in *--version*) ;; *) echo "compile $$" >> '
        f'"{log_path}" ;; esac\n'
        f'exec "{real}" "$@"\n'
    )
    stub.chmod(stub.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH)
    return stub_dir


def _build_in_proc(args):
    src, cache, path = args
    os.environ["REPRO_CGEN_CACHE"] = cache
    os.environ["PATH"] = path
    from repro.core.codegen import cbuild as cb

    cb._VERSION_CACHE.clear()
    lib, _ = cb.build(src)
    return True


@requires_cc
class TestStampede:
    def test_thread_stampede_single_compile(self, tmp_path, monkeypatch):
        log = tmp_path / "log.txt"
        stub_dir = _stub_compiler(tmp_path, log)
        monkeypatch.setenv("PATH",
                           f"{stub_dir}{os.pathsep}{os.environ['PATH']}")
        monkeypatch.setenv("REPRO_CGEN_CACHE", str(tmp_path / "cache"))
        cbuild._VERSION_CACHE.clear()
        src = OK_SOURCE % 11
        errors = []

        def worker():
            try:
                cbuild.build(src)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert log.read_text().count("compile") == 1, (
            "a cold-key stampede must run the compiler exactly once"
        )

    def test_process_stampede_single_compile(self, tmp_path, monkeypatch):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork start method")
        log = tmp_path / "log.txt"
        stub_dir = _stub_compiler(tmp_path, log)
        path = f"{stub_dir}{os.pathsep}{os.environ['PATH']}"
        cache = str(tmp_path / "cache")
        src = OK_SOURCE % 23
        ctx = mp.get_context("fork")
        with ctx.Pool(4) as pool:
            results = pool.map(_build_in_proc, [(src, cache, path)] * 4)
        assert all(results)
        assert log.read_text().count("compile") == 1

    def test_waiters_reuse_not_rebuild(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CGEN_CACHE", str(tmp_path))
        src = OK_SOURCE % 31
        before_miss = _counter("cgen.cache.misses")
        cbuild.build(src)
        before_hit = _counter("cgen.cache.hits")
        cbuild.build(src)
        assert _counter("cgen.cache.misses") == before_miss + 1
        assert _counter("cgen.cache.hits") == before_hit + 1


@requires_cc
class TestLockRecovery:
    def test_stale_lock_is_broken(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CGEN_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_CGEN_LOCK_TIMEOUT", "1")
        src = OK_SOURCE % 41
        cc = cbuild.find_compiler()
        key = cbuild._cache_key(src, cc, cbuild.CFLAGS)
        lock = tmp_path / f"{key}.lock"
        lock.write_text("99999999\n")
        old = time.time() - 3600
        os.utime(lock, (old, old))
        lib, _ = cbuild.build(src)  # must not time out on the dead lock
        assert not lock.exists()

    def test_fresh_foreign_lock_times_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CGEN_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_CGEN_LOCK_TIMEOUT", "0.2")
        src = OK_SOURCE % 43
        cc = cbuild.find_compiler()
        key = cbuild._cache_key(src, cc, cbuild.CFLAGS)
        lock = tmp_path / f"{key}.lock"
        lock.write_text("99999999\n")

        def keep_fresh(stop):
            while not stop.is_set():
                try:
                    os.utime(lock)
                except OSError:
                    pass
                time.sleep(0.02)

        stop = threading.Event()
        t = threading.Thread(target=keep_fresh, args=(stop,))
        t.start()
        try:
            with pytest.raises(CodegenError, match="timed out"):
                cbuild.build(src)
        finally:
            stop.set()
            t.join()


@requires_cc
class TestHygiene:
    def test_failed_build_leaves_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CGEN_CACHE", str(tmp_path))
        with pytest.raises(CodegenError):
            cbuild.build("this is not C at all %%%")
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == [], f"failed build leaked {leftovers}"

    def test_lru_eviction_bounds_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CGEN_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_CGEN_CACHE_MAX", "2")
        before = _counter("cgen.cache.evicted")
        sources = [OK_SOURCE % n for n in (51, 52, 53)]
        for src in sources:
            cbuild.build(src)
            time.sleep(0.02)  # distinct mtimes for a deterministic LRU order
        sos = sorted(p.name for p in tmp_path.glob("*.so"))
        assert len(sos) == 2, sos
        cc = cbuild.find_compiler()
        oldest = cbuild._cache_key(sources[0], cc, cbuild.CFLAGS)
        assert f"{oldest}.so" not in sos
        assert len(list(tmp_path.glob("*.c"))) == 2
        assert _counter("cgen.cache.evicted") == before + 1

    def test_hit_refreshes_lru_position(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CGEN_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_CGEN_CACHE_MAX", "2")
        a, b, c = (OK_SOURCE % n for n in (61, 62, 63))
        cbuild.build(a)
        time.sleep(0.02)
        cbuild.build(b)
        time.sleep(0.02)
        cbuild.build(a)  # hit: re-touches a's artifact
        time.sleep(0.02)
        cbuild.build(c)  # evicts b (now the LRU), not a
        cc = cbuild.find_compiler()
        names = {p.name for p in tmp_path.glob("*.so")}
        assert f"{cbuild._cache_key(a, cc, cbuild.CFLAGS)}.so" in names
        assert f"{cbuild._cache_key(b, cc, cbuild.CFLAGS)}.so" not in names
