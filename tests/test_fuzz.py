"""Differential fuzzing of the compiler.

Generates random well-typed Diderot programs — arithmetic, tensors,
conditionals, nested control flow, probes, early exits — and checks that
three executions agree exactly:

1. the fully optimized compiled program (contraction + value numbering),
2. the unoptimized compiled program,
3. the HighIR reference interpreter driven by a hand-rolled BSP loop
   (which bypasses probe synthesis, kernel expansion, and codegen).

Any disagreement is a compiler bug: either an optimization changed
semantics or the lowering half diverged from the reference semantics.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codegen.interp import HighInterpreter, compile_high
from repro.core.driver import OptOptions, compile_program
from repro.data import portrait_phantom

N_STRANDS = 12
MAX_STEPS = 3

IMG = portrait_phantom(48)


class Gen:
    """Random well-typed program generator."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.locals_reals: list[str] = []
        self.n_locals = 0

    def real(self, depth: int) -> str:
        r = self.rng
        atoms = [
            lambda: f"{r.uniform(-3, 3):.3f}",
            lambda: "x",
            lambda: "real(i)",
            lambda: "real(n)",
        ]
        if self.locals_reals:
            atoms.append(lambda: r.choice(self.locals_reals))
        if depth <= 0:
            return r.choice(atoms)()
        compound = [
            lambda: f"({self.real(depth - 1)} + {self.real(depth - 1)})",
            lambda: f"({self.real(depth - 1)} - {self.real(depth - 1)})",
            lambda: f"({self.real(depth - 1)} * {self.real(depth - 1)})",
            lambda: f"({self.real(depth - 1)} / (|({self.real(depth - 1)})| + 1.5))",
            lambda: f"sqrt(|({self.real(depth - 1)})|)",
            lambda: f"min({self.real(depth - 1)}, {self.real(depth - 1)})",
            lambda: f"max({self.real(depth - 1)}, {self.real(depth - 1)})",
            lambda: f"-{self.real(depth - 1)}",
            lambda: f"clamp(-2.0, 2.0, {self.real(depth - 1)})",
            lambda: f"F({self.vec2(depth - 1)})",
            lambda: f"|∇F({self.vec2(depth - 1)})|",
            lambda: f"(∇F({self.vec2(depth - 1)}))[{r.randint(0, 1)}]",
            lambda: f"({self.real(depth - 1)} if {self.cond(depth - 1)} "
                    f"else {self.real(depth - 1)})",
            lambda: f"({self.vec2(depth - 1)} • {self.vec2(depth - 1)})",
            lambda: f"|{self.vec2(depth - 1)}|",
            lambda: f"lerp({self.real(depth - 1)}, {self.real(depth - 1)}, 0.25)",
        ]
        return r.choice(atoms + compound)()

    def vec2(self, depth: int) -> str:
        r = self.rng
        base = f"[{self.real(max(0, depth - 1))}, {self.real(max(0, depth - 1))}]"
        if depth > 0 and r.random() < 0.3:
            return f"({base} + [{r.uniform(5, 40):.2f}, {r.uniform(5, 40):.2f}])"
        return base

    def int_expr(self, depth: int) -> str:
        r = self.rng
        atoms = [lambda: str(r.randint(0, 5)), lambda: "i", lambda: "n"]
        if depth <= 0:
            return r.choice(atoms)()
        compound = [
            lambda: f"({self.int_expr(depth - 1)} + {self.int_expr(depth - 1)})",
            lambda: f"({self.int_expr(depth - 1)} * {r.randint(1, 3)})",
            lambda: f"({self.int_expr(depth - 1)} % {r.randint(2, 5)})",
        ]
        return r.choice(atoms + compound)()

    def cond(self, depth: int) -> str:
        r = self.rng
        base = [
            lambda: f"{self.real(max(0, depth - 1))} < {self.real(max(0, depth - 1))}",
            lambda: f"{self.int_expr(max(0, depth - 1))} == {self.int_expr(max(0, depth - 1))}",
            lambda: f"{self.int_expr(max(0, depth - 1))} >= {self.int_expr(max(0, depth - 1))}",
            lambda: f"inside({self.vec2(max(0, depth - 1))}, F)",
        ]
        if depth <= 0:
            return r.choice(base)()
        compound = [
            lambda: f"({self.cond(depth - 1)} && {self.cond(depth - 1)})",
            lambda: f"({self.cond(depth - 1)} || {self.cond(depth - 1)})",
            lambda: f"!({self.cond(depth - 1)})",
        ]
        return r.choice(base + compound)()

    def stmts(self, depth: int, budget: int) -> list[str]:
        r = self.rng
        out: list[str] = []
        for _ in range(r.randint(1, budget)):
            kind = r.random()
            if kind < 0.25 and depth > 0:
                # locals declared inside a branch are block-scoped; restore
                # a *fresh copy* each time (the branches must not append
                # into the snapshot we restore afterwards)
                saved = list(self.locals_reals)
                inner = self.stmts(depth - 1, 2)
                self.locals_reals = list(saved)
                els = self.stmts(depth - 1, 2) if r.random() < 0.5 else None
                self.locals_reals = list(saved)
                out.append(f"if ({self.cond(1)}) {{ " + " ".join(inner) + " }"
                           + (f" else {{ {' '.join(els)} }}" if els else ""))
            elif kind < 0.40:
                name = f"t{self.n_locals}"
                self.n_locals += 1
                out.append(f"real {name} = {self.real(2)};")
                self.locals_reals.append(name)
            elif kind < 0.55:
                out.append(f"v = {self.vec2(2)};")
            elif kind < 0.62 and depth > 0:
                out.append(f"if ({self.cond(1)}) stabilize;")
            elif kind < 0.67 and depth > 0:
                out.append(f"if ({self.cond(1)}) die;")
            else:
                op = r.choice(["=", "+=", "-=", "*="])
                out.append(f"x {op} {self.real(2)};")
        return out

    def program(self) -> str:
        body = " ".join(self.stmts(2, 5))
        return f"""
            image(2)[] img = load("p.nrrd");
            field#2(2)[] F = img ⊛ bspln3;
            strand S (int i) {{
                output real x = real(i) * 0.5;
                output vec2 v = [0.1, real(i)];
                int n = 0;
                update {{
                    {body}
                    n += 1;
                    if (n >= {MAX_STEPS}) stabilize;
                }}
            }}
            initially [ S(i) | i in 0 .. {N_STRANDS - 1} ];
        """


def interp_run(src: str) -> dict[str, np.ndarray]:
    """Execute via the HighIR interpreter with a hand-rolled BSP loop."""
    hp = compile_high(src)
    interp = HighInterpreter(hp, {"img": IMG})
    g = list(interp.call(hp.globals_func, []))
    iters = [np.arange(N_STRANDS)]
    params = interp.call(hp.seed_func, g + iters)
    raw = [np.asarray(s) for s in interp.call(hp.init_func, g + list(params))]
    # broadcast constant initializers to full lanes (N_STRANDS is chosen to
    # differ from any tensor axis length, so the shape test is unambiguous)
    state = []
    for s in raw:
        if s.ndim == 0 or s.shape[0] != N_STRANDS:
            s = np.broadcast_to(s, (N_STRANDS,) + s.shape).copy()
        else:
            s = s.copy()
        state.append(s)
    status = np.zeros(N_STRANDS, dtype=np.int64)
    for _ in range(100):
        active = np.flatnonzero(status == 0)
        if active.size == 0:
            break
        block = [s[active] for s in state]
        out = interp.call(hp.update_func, g + block)
        *new_state, block_status = out
        for arr, new in zip(state, new_state):
            arr[active] = new
        status[active] = block_status
    outputs = {}
    state_names = hp.init_func.result_names
    for out_name in hp.outputs:
        outputs[out_name] = state[state_names.index(out_name)]
    return outputs


def run_compiled(src: str, optimize: OptOptions) -> dict[str, np.ndarray]:
    prog = compile_program(src, optimize=optimize)
    prog.bind_image("img", IMG)
    res = prog.run(max_steps=100)
    return res.outputs


@given(seed=st.integers(min_value=0, max_value=10**9))
@settings(max_examples=40, deadline=None)
def test_three_way_differential(seed):
    src = Gen(seed).program()
    opt = run_compiled(src, OptOptions())
    unopt = run_compiled(
        src, OptOptions(contraction=False, value_numbering=False)
    )
    ref = interp_run(src)
    for name in opt:
        a, b, c = opt[name], unopt[name], ref[name]
        np.testing.assert_allclose(
            a, b, rtol=1e-12, atol=1e-12,
            err_msg=f"optimized vs unoptimized disagree on {name!r}\n{src}",
        )
        np.testing.assert_allclose(
            a, c, rtol=1e-9, atol=1e-10,
            err_msg=f"compiled vs interpreter disagree on {name!r}\n{src}",
        )


def test_known_seed_exercises_probes():
    """Sanity: the generator actually produces probe-containing programs."""
    probed = sum("F(" in Gen(s).program() for s in range(50))
    assert probed > 25
