"""Tests for the Teem/gage-style baseline probing library."""

import numpy as np
import pytest

from repro.errors import GageError
from repro.fields import convolve
from repro.gage import Context
from repro.gage.items import ITEMS, dependency_closure, item_names, resolve_shape
from repro.image import Image
from repro.kernels import bspln3, ctmr, tent


@pytest.fixture
def scal3(rng):
    return Image(rng.standard_normal((12, 13, 14)), dim=3)


@pytest.fixture
def vec2(rng):
    return Image(rng.standard_normal((12, 12, 2)), dim=2, tensor_shape=(2,))


def scalar_ctx(img, *items):
    ctx = Context(img)
    ctx.kernel_set(0, bspln3)
    ctx.kernel_set(1, bspln3.derivative())
    ctx.kernel_set(2, bspln3.derivative(2))
    for it in items:
        ctx.query_on(it)
    ctx.update()
    return ctx


class TestItemTable:
    def test_item_names_by_kind(self):
        assert "gradient" in item_names("scalar")
        assert "jacobian" in item_names("vector")
        assert "gradient" not in item_names("vector")

    def test_dependency_closure_ordering(self):
        order = dependency_closure(["normal"])
        assert order.index("gradient") < order.index("normal")
        assert order.index("gradmag") < order.index("normal")

    def test_closure_unknown_item(self):
        with pytest.raises(KeyError, match="unknown gage item"):
            dependency_closure(["bogus"])

    def test_resolve_shape_dims(self):
        assert resolve_shape(ITEMS["gradient"], 3) == (3,)
        assert resolve_shape(ITEMS["hessian"], 2) == (2, 2)
        assert resolve_shape(ITEMS["curl"], 3) == (3,)
        assert resolve_shape(ITEMS["curl"], 2) == ()


class TestWorkflowErrors:
    def test_probe_before_update(self, scal3):
        ctx = Context(scal3)
        ctx.kernel_set(0, bspln3)
        ctx.query_on("value")
        with pytest.raises(GageError, match="update"):
            ctx.probe(np.zeros(3))

    def test_update_without_query(self, scal3):
        ctx = Context(scal3)
        ctx.kernel_set(0, bspln3)
        with pytest.raises(GageError, match="no query items"):
            ctx.update()

    def test_update_missing_kernel_slot(self, scal3):
        ctx = Context(scal3)
        ctx.kernel_set(0, bspln3)
        ctx.query_on("gradient")
        with pytest.raises(GageError, match="slot 1"):
            ctx.update()

    def test_mixed_kernel_families_rejected(self, scal3):
        ctx = Context(scal3)
        ctx.kernel_set(0, bspln3)
        ctx.kernel_set(1, ctmr.derivative())  # not bspln3'
        ctx.query_on("gradient")
        with pytest.raises(GageError, match="not the 1-th derivative"):
            ctx.update()

    def test_wrong_kind_item(self, scal3):
        ctx = Context(scal3)
        with pytest.raises(GageError, match="vector images"):
            ctx.query_on("jacobian")

    def test_unknown_item(self, scal3):
        ctx = Context(scal3)
        with pytest.raises(GageError, match="unknown"):
            ctx.query_on("bogus")

    def test_bad_kernel_level(self, scal3):
        ctx = Context(scal3)
        with pytest.raises(GageError, match="level"):
            ctx.kernel_set(3, bspln3)

    def test_answer_not_in_query(self, scal3):
        ctx = scalar_ctx(scal3, "value")
        with pytest.raises(GageError, match="not part"):
            ctx.answer("gradient")

    def test_query_off(self, scal3):
        ctx = Context(scal3)
        ctx.kernel_set(0, bspln3)
        ctx.query_on("value")
        ctx.query_off("value")
        with pytest.raises(GageError, match="no query items"):
            ctx.update()


class TestScalarAnswers:
    def test_value_and_gradient_match_fields(self, scal3):
        ctx = scalar_ctx(scal3, "value", "gradient", "gradmag", "normal")
        f = convolve(scal3, bspln3)
        pos = np.array([5.3, 6.1, 7.7])
        assert ctx.probe(pos)
        assert float(ctx.answer("value")) == pytest.approx(float(f.probe(pos)))
        g_ref = f.grad().probe(pos)
        assert np.allclose(ctx.answer("gradient"), g_ref)
        assert float(ctx.answer("gradmag")) == pytest.approx(float(np.linalg.norm(g_ref)))
        assert np.allclose(ctx.answer("normal"), g_ref / np.linalg.norm(g_ref))

    def test_hessian_items(self, scal3):
        ctx = scalar_ctx(scal3, "hessian", "laplacian", "hesseval", "hessevec")
        pos = np.array([5.0, 6.0, 7.0])
        assert ctx.probe(pos)
        h = ctx.answer("hessian")
        assert np.allclose(h, h.T, atol=1e-12)
        assert float(ctx.answer("laplacian")) == pytest.approx(float(np.trace(h)))
        lam = ctx.answer("hesseval")
        vec = ctx.answer("hessevec")
        for i in range(3):
            assert np.allclose(h @ vec[i], lam[i] * vec[i], atol=1e-8)

    def test_2nd_directional_derivative(self, scal3):
        ctx = scalar_ctx(scal3, "2ndDD")
        pos = np.array([5.0, 6.0, 7.0])
        assert ctx.probe(pos)
        n = ctx.answer("normal")
        h = ctx.answer("hessian")
        assert float(ctx.answer("2ndDD")) == pytest.approx(float(n @ h @ n))

    def test_probe_outside_returns_false(self, scal3):
        ctx = scalar_ctx(scal3, "value")
        assert not ctx.probe(np.array([-5.0, 0.0, 0.0]))

    def test_outside_leaves_buffer(self, scal3):
        ctx = scalar_ctx(scal3, "value")
        assert ctx.probe(np.array([5.0, 6.0, 7.0]))
        before = float(ctx.answer("value"))
        assert not ctx.probe(np.array([100.0, 0.0, 0.0]))
        assert float(ctx.answer("value")) == before

    def test_buffers_reused_between_probes(self, scal3):
        ctx = scalar_ctx(scal3, "value")
        buf = ctx.answer("value")
        ctx.probe(np.array([5.0, 6.0, 7.0]))
        first = float(buf)
        ctx.probe(np.array([6.0, 6.0, 7.0]))
        assert float(buf) != first  # same buffer, new contents


class TestVectorAnswers:
    def _ctx(self, img, *items):
        ctx = Context(img)
        ctx.kernel_set(0, ctmr)
        ctx.kernel_set(1, ctmr.derivative())
        for it in items:
            ctx.query_on(it)
        ctx.update()
        return ctx

    def test_vector_and_length(self, vec2):
        ctx = self._ctx(vec2, "vector", "vectorlen")
        pos = np.array([5.5, 6.5])
        assert ctx.probe(pos)
        v = ctx.answer("vector")
        ref = convolve(vec2, ctmr).probe(pos)
        assert np.allclose(v, ref)
        assert float(ctx.answer("vectorlen")) == pytest.approx(float(np.linalg.norm(v)))

    def test_jacobian_divergence_curl(self, vec2):
        ctx = self._ctx(vec2, "jacobian", "divergence", "curl")
        pos = np.array([5.5, 6.5])
        assert ctx.probe(pos)
        j = ctx.answer("jacobian")
        assert float(ctx.answer("divergence")) == pytest.approx(float(np.trace(j)))
        assert float(ctx.answer("curl")) == pytest.approx(float(j[1, 0] - j[0, 1]))


class TestGenericKind:
    def test_rgb_lookup(self, rng):
        img = Image(rng.uniform(0, 1, (9, 9, 3)), dim=2, tensor_shape=(3,))
        ctx = Context(img)
        ctx.kernel_set(0, tent)
        ctx.query_on("value")
        ctx.update()
        assert ctx.probe(np.array([4.0, 4.0]))
        assert np.allclose(ctx.answer("value"), img.data[4, 4])

    def test_generic_rejects_other_items(self, rng):
        img = Image(rng.uniform(0, 1, (9, 9, 3)), dim=2, tensor_shape=(3,))
        ctx = Context(img)
        with pytest.raises(GageError, match="only the 'value' item"):
            ctx.query_on("gradient")
