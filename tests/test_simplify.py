"""Tests for the simplification phase (paper §5.1)."""


from repro.core.simple import (
    DIE,
    RUNNING,
    STABILIZE,
    STATUS_VAR,
    eliminate_exits,
    hoist_field_conditionals,
    simplify_method,
)
from repro.core.syntax import ast, parse_program
from repro.core.ty import check_program
from repro.core.ty.types import FieldTy


def update_of(src: str) -> ast.Block:
    prog = parse_program(src)
    check_program(prog)
    return prog.strand.method("update").body


def has_exit_nodes(stmt) -> bool:
    if isinstance(stmt, (ast.StabilizeStmt, ast.DieStmt)):
        return True
    if isinstance(stmt, ast.Block):
        return any(has_exit_nodes(s) for s in stmt.stmts)
    if isinstance(stmt, ast.IfStmt):
        return has_exit_nodes(stmt.then_s) or (
            stmt.else_s is not None and has_exit_nodes(stmt.else_s)
        )
    return False


WRAP = """
strand S (int i) {{
    output real x = 0.0;
    update {{ {body} }}
}}
initially [ S(i) | i in 0 .. 9 ];
"""


class TestExitElimination:
    def test_plain_stabilize_becomes_status_assign(self):
        body = update_of(WRAP.format(body="stabilize;"))
        out = eliminate_exits(body.stmts)
        assert len(out) == 1
        assign = out[0]
        assert isinstance(assign, ast.AssignStmt)
        assert assign.name == STATUS_VAR
        assert assign.value.value == STABILIZE

    def test_die_code(self):
        out = eliminate_exits(update_of(WRAP.format(body="die;")).stmts)
        assert out[0].value.value == DIE

    def test_unreachable_after_exit_dropped(self):
        out = eliminate_exits(
            update_of(WRAP.format(body="stabilize; x = 1.0;")).stmts
        )
        assert len(out) == 1

    def test_conditional_exit_guards_rest(self):
        out = eliminate_exits(
            update_of(WRAP.format(body="if (x > 1.0) stabilize; x = 2.0;")).stmts
        )
        assert isinstance(out[0], ast.IfStmt)
        guard = out[1]
        assert isinstance(guard, ast.IfStmt)
        # guard condition is $status == RUNNING
        assert isinstance(guard.cond, ast.BinOp) and guard.cond.op == "=="
        assert guard.cond.left.name == STATUS_VAR
        assert guard.cond.right.value == RUNNING

    def test_no_guard_when_nothing_follows(self):
        out = eliminate_exits(
            update_of(WRAP.format(body="x = 2.0; if (x > 1.0) stabilize;")).stmts
        )
        assert len(out) == 2

    def test_exit_inside_nested_block(self):
        out = eliminate_exits(
            update_of(WRAP.format(body="{ if (x > 0.0) die; } x = 1.0;")).stmts
        )
        assert isinstance(out[-1], ast.IfStmt)  # trailing guard

    def test_both_branches_exit(self):
        out = eliminate_exits(
            update_of(
                WRAP.format(body="if (x > 1.0) stabilize; else die; x = 9.0;")
            ).stmts
        )
        guard = out[-1]
        assert isinstance(guard, ast.IfStmt)

    def test_no_exit_nodes_remain(self):
        body = update_of(
            WRAP.format(
                body="if (x > 1.0) { stabilize; } else { if (x < 0.0) die; } x = 1.0;"
            )
        )
        new = simplify_method(body, is_update=True)
        assert not has_exit_nodes(new)

    def test_statements_without_exits_untouched(self):
        body = update_of(WRAP.format(body="x = 1.0; x += 2.0;"))
        out = eliminate_exits(body.stmts)
        assert len(out) == 2
        assert all(isinstance(s, ast.AssignStmt) for s in out)


FIELD_COND_SRC = """
input bool b = true;
image(3)[] i1 = load("a.nrrd");
image(3)[] i2 = load("b.nrrd");
field#2(3)[] F1 = i1 ⊛ bspln3;
field#2(3)[] F2 = i2 ⊛ bspln3;
strand S (int i) {
    output real x = 0.0;
    update {
        x = (F1 if b else F2)([0.0, 0.0, 0.0]);
        stabilize;
    }
}
initially [ S(i) | i in 0 .. 9 ];
"""


class TestFieldConditionals:
    def test_probe_pushed_into_branches(self):
        body = update_of(FIELD_COND_SRC)
        assign = body.stmts[0]
        rewritten = hoist_field_conditionals(assign.value)
        assert isinstance(rewritten, ast.Cond)
        assert isinstance(rewritten.then_e, ast.Probe)
        assert isinstance(rewritten.else_e, ast.Probe)
        # the Cond is now real-typed, not field-typed
        assert not isinstance(rewritten.ty, FieldTy)

    def test_gradient_of_conditional_field(self):
        src = FIELD_COND_SRC.replace(
            "x = (F1 if b else F2)([0.0, 0.0, 0.0]);",
            "vec3 g = ∇(F1 if b else F2)([0.0, 0.0, 0.0]); x = g[0];",
        )
        body = update_of(src)
        decl = body.stmts[0]
        rewritten = hoist_field_conditionals(decl.init)
        assert isinstance(rewritten, ast.Cond)
        # each branch: Probe of UnOp(∇, Var)
        assert isinstance(rewritten.then_e, ast.Probe)
        assert isinstance(rewritten.then_e.field, ast.UnOp)

    def test_non_field_conditional_untouched(self):
        body = update_of(WRAP.format(body="x = 1.0 if x > 0.0 else 2.0; stabilize;"))
        e = body.stmts[0].value
        assert hoist_field_conditionals(e) is e

    def test_whole_program_compiles(self):
        """End-to-end: the duplication makes the program compilable."""
        import numpy as np

        from repro.core.driver import compile_program
        from repro.image import Image

        prog = compile_program(FIELD_COND_SRC)
        a = Image(np.full((8, 8, 8), 5.0), dim=3)
        b = Image(np.full((8, 8, 8), 7.0), dim=3)
        prog.bind_image("i1", a)
        prog.bind_image("i2", b)
        res = prog.run()
        assert np.allclose(res.outputs["x"], 5.0)  # b defaults to true
        prog.set_input("b", False)
        res = prog.run()
        assert np.allclose(res.outputs["x"], 7.0)
