"""Tests for the type checker (paper §3.4, Figure 2; §5.1)."""

import pytest

from repro.core.syntax import parse_program
from repro.core.ty import check_program
from repro.core.ty.types import FieldTy, INT, REAL
from repro.errors import TypeErrorD


def check(src: str):
    return check_program(parse_program(src))


def check_fails(src: str, pattern: str):
    with pytest.raises(TypeErrorD, match=pattern):
        check(src)


def wrap(update_body: str, state: str = "output real x = 0.0;", globs: str = "") -> str:
    return f"""
        {globs}
        strand S (int i) {{
            {state}
            update {{ {update_body} }}
        }}
        initially [ S(i) | i in 0 .. 9 ];
    """


FIELD_GLOBALS = """
    image(3)[] img = load("a.nrrd");
    field#2(3)[] F = img ⊛ bspln3;
"""


class TestFieldTyping:
    """The typing judgments of Figure 2."""

    def test_convolution_type(self):
        check(wrap("stabilize;", globs=FIELD_GLOBALS))
        # F : field#2(3)[] — checked implicitly by acceptance; make explicit:
        src = FIELD_GLOBALS + wrap("x = F([0.0,0.0,0.0]); stabilize;")
        check(src)

    def test_convolution_continuity_mismatch(self):
        check_fails(
            "image(3)[] img = load(\"a.nrrd\");\nfield#1(3)[] F = img ⊛ bspln3;"
            + wrap("stabilize;"),
            "declared field#1",
        )

    def test_gradient_raises_order_lowers_continuity(self):
        # ∇F : field#1(3)[3]; ∇⊗∇F : field#0(3)[3,3]
        src = FIELD_GLOBALS + """
            field#1(3)[3] G = ∇F;
            field#0(3)[3,3] H = ∇⊗G;
        """ + wrap("stabilize;")
        check(src)

    def test_cannot_differentiate_c0(self):
        check_fails(
            'image(3)[] img = load("a.nrrd");\nfield#0(3)[] F = img ⊛ tent;\n'
            "field#0(3)[3] G = ∇F;" + wrap("stabilize;"),
            "cannot differentiate",
        )

    def test_nabla_requires_scalar_field(self):
        check_fails(
            'image(2)[2] img = load("a.nrrd");\nfield#1(2)[2] V = img ⊛ ctmr;\n'
            "field#0(2)[2] G = ∇V;" + wrap("stabilize;"),
            "no instance",
        )

    def test_nabla_otimes_requires_nonscalar(self):
        check_fails(
            FIELD_GLOBALS + "field#1(3)[3] G = ∇⊗F;" + wrap("stabilize;"),
            "no instance",
        )

    def test_probe_types(self):
        src = FIELD_GLOBALS + wrap(
            "vec3 p = [0.0,0.0,0.0]; x = F(p); vec3 g = ∇F(p); stabilize;"
        )
        check(src)

    def test_probe_wrong_position_dim(self):
        check_fails(
            FIELD_GLOBALS + wrap("x = F([0.0, 0.0]); stabilize;"),
            "must be tensor",
        )

    def test_probe_non_field(self):
        check_fails(wrap("x = x(1.0); stabilize;"), "cannot be applied")

    def test_inside(self):
        check(FIELD_GLOBALS + wrap(
            "if (inside([0.0,0.0,0.0], F)) x = 1.0; stabilize;"
        ))

    def test_field_arithmetic(self):
        src = FIELD_GLOBALS + """
            field#2(3)[] G = F + F;
            field#2(3)[] H = 2.0 * F;
            field#2(3)[] K = F / 2.0;
            field#2(3)[] M = -F;
        """ + wrap("stabilize;")
        check(src)

    def test_field_sum_continuity_is_min(self):
        src = FIELD_GLOBALS + """
            field#1(3)[] F1 = img ⊛ ctmr;
            field#1(3)[] G = F + F1;
        """ + wrap("stabilize;")
        check(src)

    def test_divergence_and_curl_extensions(self):
        src = """
            image(2)[2] v = load("v.nrrd");
            field#1(2)[2] V = v ⊛ ctmr;
            field#0(2)[] D = ∇•V;
            field#0(2)[] C = ∇×V;
        """ + wrap("stabilize;")
        check(src)

    def test_load_only_in_globals(self):
        check_fails(wrap('x = 1.0; image(3)[] i2 = load("b.nrrd"); stabilize;'),
                    "global section")

    def test_kernel_convolve_either_order(self):
        check('field#1(2)[] f = ctmr ⊛ load("d.nrrd");' + wrap("stabilize;"))
        check('field#1(2)[] f = load("d.nrrd") ⊛ ctmr;' + wrap("stabilize;"))


class TestOperators:
    def test_arithmetic_overloads(self):
        check(wrap("int n = 1 + 2 * 3; x = 1.0 + 2.0; stabilize;"))

    def test_no_implicit_int_to_real(self):
        check_fails(wrap("x = 1 + 2.0; stabilize;"), "no instance")

    def test_explicit_cast(self):
        check(wrap("x = real(1) + 2.0; stabilize;"))

    def test_tensor_ops(self):
        body = """
            vec3 u = [1.0, 0.0, 0.0];
            vec3 v = [0.0, 1.0, 0.0];
            x = u • v;
            vec3 w = u × v;
            tensor[3,3] m = u ⊗ v;
            x = |u| + trace(m) + det(m);
            vec3 n = normalize(u);
            vec3 lam = evals(m);
            tensor[3,3] e = evecs(m);
            stabilize;
        """
        check(wrap(body))

    def test_matrix_vector_dot(self):
        check(wrap("tensor[3,3] m = identity[3]; vec3 u = [1.0,0.0,0.0];"
                   " vec3 v = m • u; stabilize;"))

    def test_cross_2d_is_scalar(self):
        check(wrap("vec2 a = [1.0,0.0]; vec2 b = [0.0,1.0]; x = a × b; stabilize;"))

    def test_shape_mismatch(self):
        check_fails(
            wrap("vec3 u = [1.0,0.0,0.0]; vec2 v = [0.0,1.0]; x = u • v; stabilize;"),
            "no instance",
        )

    def test_vector_addition_shapes_must_match(self):
        check_fails(
            wrap("vec3 u = [1.0,0.0,0.0]; vec2 v = [0.0,1.0]; vec3 w = u + v; stabilize;"),
            "no instance",
        )

    def test_logical_ops_need_bool(self):
        check_fails(wrap("if (1 && true) x = 1.0; stabilize;"), "no instance")

    def test_comparison_type(self):
        check(wrap("if (1 < 2 && 1.0 >= 0.5) x = 1.0; stabilize;"))

    def test_norm_of_int_rejected(self):
        check_fails(wrap("int n = 3; x = |n|; stabilize;"), "not defined")

    def test_pow(self):
        check(wrap("x = 2.0^3 + 2.0^0.5; stabilize;"))

    def test_string_equality(self):
        # strings exist as a type; == is defined on them
        check(wrap("stabilize;"))


class TestTensorConstruction:
    def test_nested_matrix(self):
        check(wrap("tensor[2,2] m = [[1.0, 0.0], [0.0, 1.0]]; stabilize;"))

    def test_element_mismatch(self):
        check_fails(wrap("vec2 v = [1.0, 2]; stabilize;"), "disagree")

    def test_index_result_types(self):
        body = """
            tensor[3,3] m = identity[3];
            vec3 row = m[0];
            x = m[0, 1];
            stabilize;
        """
        check(wrap(body))

    def test_index_out_of_range(self):
        check_fails(
            wrap("tensor[2,2] m = identity[2]; x = m[2, 0]; stabilize;"),
            "out of range",
        )

    def test_too_many_indices(self):
        check_fails(
            wrap("vec2 v = [1.0, 2.0]; x = v[0, 1]; stabilize;"),
            "too many indices",
        )

    def test_shape_entry_must_be_ge2(self):
        check_fails(wrap("tensor[1] v = [1.0]; stabilize;"), ">= 2")


class TestStructure:
    def test_assign_to_global_rejected(self):
        check_fails(
            wrap("g = 2.0; stabilize;", globs="input real g = 1.0;"),
            "cannot assign to global",
        )

    def test_assign_to_param_rejected(self):
        check_fails(wrap("i = 2; stabilize;"), "cannot assign to param")

    def test_assign_to_iterator_rejected(self):
        # iterator only in scope inside initially, so this is 'undefined'
        check_fails(wrap("q = 2; stabilize;"), "undefined")

    def test_state_mutable(self):
        check(wrap("x = 1.0; x += 2.0; stabilize;"))

    def test_compound_assign_type(self):
        check_fails(wrap("x += 1; stabilize;"), "no instance")

    def test_local_scoping(self):
        check_fails(wrap("{ real v = 1.0; } x = v; stabilize;"), "undefined")

    def test_shadowing_rejected(self):
        check_fails(wrap("real x = 1.0; stabilize;"), "redefinition")

    def test_branch_local_scoping(self):
        check_fails(
            wrap("if (true) { real v = 1.0; } x = v; stabilize;"),
            "undefined",
        )

    def test_conditional_branch_types_must_match(self):
        check_fails(wrap("x = 1.0 if true else 2; stabilize;"), "disagree")

    def test_conditional_needs_bool(self):
        check_fails(wrap("x = 1.0 if 3 else 2.0; stabilize;"), "must be bool")

    def test_if_needs_bool(self):
        check_fails(wrap("if (1) x = 1.0; stabilize;"), "must be bool")

    def test_no_output_rejected(self):
        check_fails(
            wrap("stabilize;", state="real x = 0.0;"),
            "no output variables",
        )

    def test_output_in_stabilize_method_ok(self):
        check("""
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
                stabilize { x = 1.0; }
            }
            initially [ S(i) | i in 0 .. 9 ];
        """)

    def test_die_outside_update_rejected(self):
        check_fails("""
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
                stabilize { die; }
            }
            initially [ S(i) | i in 0 .. 9 ];
        """, "only allowed inside the update")

    def test_input_must_be_concrete(self):
        check_fails(
            wrap("stabilize;", globs="input field#1(2)[] F;"),
            "concrete types",
        )

    def test_state_must_be_concrete(self):
        check_fails(
            FIELD_GLOBALS + wrap("stabilize;", state="output real x = 0.0;\n field#2(3)[] G = F;"),
            "concrete",
        )

    def test_param_must_be_concrete(self):
        check_fails("""
            strand S (field#1(2)[] f) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ S(f) | f in 0 .. 9 ];
        """, "concrete type")

    def test_undefined_variable(self):
        check_fails(wrap("x = y; stabilize;"), "undefined variable")

    def test_undefined_function(self):
        check_fails(wrap("x = frobnicate(1.0); stabilize;"), "undefined function")

    def test_kernel_names_predefined(self):
        check('field#2(2)[] f = load("a.nrrd") ⊛ bspln3;' + wrap("stabilize;"))

    def test_duplicate_method(self):
        check_fails("""
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
                update { stabilize; }
            }
            initially [ S(i) | i in 0 .. 9 ];
        """, "duplicate method")


class TestInitially:
    def test_wrong_strand_name(self):
        check_fails("""
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ T(i) | i in 0 .. 9 ];
        """, "defines strand")

    def test_arity_mismatch(self):
        check_fails("""
            strand S (int i, int j) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ S(i) | i in 0 .. 9 ];
        """, "takes 2 arguments")

    def test_argument_type_mismatch(self):
        check_fails("""
            strand S (vec2 p) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ S(i) | i in 0 .. 9 ];
        """, "expected tensor")

    def test_bounds_must_be_int(self):
        check_fails("""
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ S(i) | i in 0.5 .. 9 ];
        """, "must be int")

    def test_duplicate_iterator(self):
        check_fails("""
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ S(i) | i in 0 .. 4, i in 0 .. 4 ];
        """, "duplicate iterator")

    def test_bounds_may_reference_globals(self):
        check("""
            input int n = 10;
            strand S (int i) {
                output real x = 0.0;
                update { stabilize; }
            }
            initially [ S(i) | i in 0 .. n-1 ];
        """)


class TestTypeAnnotations:
    def test_nodes_annotated(self):
        tp = check(FIELD_GLOBALS + wrap("x = F([0.0,0.0,0.0]); stabilize;"))
        update = tp.program.strand.method("update")
        assign = update.body.stmts[0]
        assert assign.value.ty == REAL

    def test_symbol_tables(self):
        tp = check(wrap("stabilize;", globs="input int n = 3; real m = 2.0;"))
        assert tp.inputs == ["n"]
        assert tp.global_order == ["n", "m"]
        assert tp.outputs == ["x"]
        assert isinstance(tp.globals["n"].ty, type(INT))
