"""Shared fixtures: synthetic images and compiled programs (small scales).

Session-scoped where construction is expensive; every test that mutates a
program gets its own instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    hand_phantom,
    lung_phantom,
    noise_texture,
    portrait_phantom,
    vector_field_2d,
)


@pytest.fixture(scope="session")
def hand32():
    return hand_phantom(32)


@pytest.fixture(scope="session")
def lung32():
    return lung_phantom(32)


@pytest.fixture(scope="session")
def vectors32():
    return vector_field_2d(32)


@pytest.fixture(scope="session")
def noise32():
    return noise_texture(32)


@pytest.fixture(scope="session")
def portrait64():
    return portrait_phantom(64)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)
