"""Tests for the separable-convolution probe engine (paper §5.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields.probe import (
    gather_neighborhood,
    probe_convolution,
    probe_inside,
    split_position,
)
from repro.image import Image, Orientation
from repro.kernels import bspln3, bspln5, ctmr, tent

ALL = [tent, ctmr, bspln3, bspln5]

pos1d = st.floats(min_value=4.0, max_value=14.0, allow_nan=False)


class TestSplitPosition:
    def test_basic(self):
        n, f = split_position(np.array([[2.75, -1.25]]))
        assert list(n[0]) == [2, -2]
        assert np.allclose(f[0], [0.75, 0.75])

    def test_integer_positions(self):
        n, f = split_position(np.array([[3.0]]))
        assert n[0, 0] == 3 and f[0, 0] == 0.0

    def test_nan_sanitized(self):
        n, f = split_position(np.array([[np.nan, np.inf]]))
        assert np.all(np.isfinite(f))

    def test_preserves_dtype(self):
        _, f = split_position(np.array([[1.5]], dtype=np.float32))
        assert f.dtype == np.float32


class TestGather:
    def test_1d_neighborhood(self):
        img = np.arange(10.0)
        vals = gather_neighborhood(img, np.array([[4]]), support=2, dim=1)
        assert np.allclose(vals[0], [3, 4, 5, 6])

    def test_2d_neighborhood_shape(self):
        img = np.arange(100.0).reshape(10, 10)
        vals = gather_neighborhood(img, np.array([[4, 5]]), support=2, dim=2)
        assert vals.shape == (1, 4, 4)
        assert vals[0, 0, 0] == img[3, 4]

    def test_clamping_at_edges(self):
        img = np.arange(5.0)
        vals = gather_neighborhood(img, np.array([[0]]), support=2, dim=1)
        assert np.allclose(vals[0], [0, 0, 1, 2])  # -1 clamps to 0

    def test_tensor_samples(self):
        img = np.zeros((6, 6, 3))
        vals = gather_neighborhood(img, np.array([[2, 2]]), support=1, dim=2)
        assert vals.shape == (1, 2, 2, 3)


class TestReconstruction:
    @pytest.mark.parametrize("kern", ALL, ids=lambda k: k.name)
    @given(x=pos1d)
    @settings(max_examples=25, deadline=None)
    def test_linear_exactness(self, kern, x):
        """Every kernel with PoU + symmetry reconstructs linears exactly."""
        img = Image(2.0 * np.arange(20.0) - 5.0, dim=1)
        got = probe_convolution(img, kern, np.array([[x]]))
        assert float(got[0]) == pytest.approx(2.0 * x - 5.0, rel=1e-12)

    @pytest.mark.parametrize("kern", [ctmr], ids=lambda k: k.name)
    @given(x=pos1d)
    @settings(max_examples=25, deadline=None)
    def test_catmull_rom_reconstructs_quadratics(self, kern, x):
        xs = np.arange(20.0)
        img = Image(xs * xs, dim=1)
        got = probe_convolution(img, kern, np.array([[x]]))
        assert float(got[0]) == pytest.approx(x * x, rel=1e-10)

    def test_interpolation_at_samples(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(16)
        img = Image(data, dim=1)
        for kern in (tent, ctmr):  # interpolating kernels only
            for i in range(4, 12):
                got = probe_convolution(img, kern, np.array([[float(i)]]))
                assert float(got[0]) == pytest.approx(data[i], abs=1e-12)

    @pytest.mark.parametrize("kern", [ctmr, bspln3, bspln5], ids=lambda k: k.name)
    def test_gradient_matches_finite_difference_3d(self, kern, rng):
        data = rng.standard_normal((14, 15, 16))
        img = Image(data, dim=3)
        pos = np.array([[6.3, 7.1, 8.9]])
        g = probe_convolution(img, kern, pos, deriv=1)[0]
        eps = 1e-5
        for a in range(3):
            dp = np.zeros(3)
            dp[a] = eps
            fd = (
                probe_convolution(img, kern, pos + dp)
                - probe_convolution(img, kern, pos - dp)
            )[0] / (2 * eps)
            assert g[a] == pytest.approx(float(fd), abs=1e-5)

    def test_hessian_symmetric(self, rng):
        img = Image(rng.standard_normal((12, 12, 12)), dim=3)
        h = probe_convolution(img, bspln3, np.array([[5.2, 5.7, 6.1]]), deriv=2)[0]
        assert np.allclose(h, h.T, atol=1e-14)

    def test_vector_image_probe(self, rng):
        data = rng.standard_normal((10, 10, 2))
        img = Image(data, dim=2, tensor_shape=(2,))
        v = probe_convolution(img, tent, np.array([[4.0, 5.0]]))[0]
        assert np.allclose(v, data[4, 5])

    def test_jacobian_of_linear_vector_field(self):
        xs, ys = np.meshgrid(np.arange(12.0), np.arange(12.0), indexing="ij")
        data = np.stack([2 * xs + ys, 3 * ys], axis=-1)
        img = Image(data, dim=2, tensor_shape=(2,))
        jac = probe_convolution(img, ctmr, np.array([[5.3, 6.7]]), deriv=1)[0]
        assert np.allclose(jac, [[2.0, 1.0], [0.0, 3.0]], atol=1e-10)


class TestOrientation:
    def test_world_spacing_scales_gradient(self):
        data = np.arange(20.0)  # slope 1 per index
        spacing = 0.25
        img = Image(data, dim=1, orientation=Orientation.axis_aligned(1, spacing))
        g = probe_convolution(img, ctmr, np.array([[1.0]]), deriv=1)[0]
        assert float(g[0]) == pytest.approx(1.0 / spacing)

    def test_rotated_gradient_is_covariant(self, rng):
        theta = 0.6
        c, s = np.cos(theta), np.sin(theta)
        rot = np.array([[c, -s], [s, c]])
        orient = Orientation(rot, np.zeros(2))  # rows = axis world steps
        data = rng.standard_normal((16, 16))
        img = Image(data, dim=2, orientation=orient)
        pos = orient.to_world(np.array([[7.3, 8.1]]))
        g = probe_convolution(img, bspln3, pos, deriv=1)[0]
        eps = 1e-5
        fd = np.array([
            float(
                (
                    probe_convolution(img, bspln3, pos + eps * np.eye(2)[a])
                    - probe_convolution(img, bspln3, pos - eps * np.eye(2)[a])
                )[0]
            ) / (2 * eps)
            for a in range(2)
        ])
        assert np.allclose(g, fd, atol=1e-5)

    def test_second_derivative_world_transform(self, rng):
        orient = Orientation(np.array([[0.5, 0.1], [0.0, 0.8]]), np.array([1.0, -2.0]))
        data = rng.standard_normal((16, 16))
        img = Image(data, dim=2, orientation=orient)
        pos = orient.to_world(np.array([[7.0, 7.5]]))
        hess = probe_convolution(img, bspln3, pos, deriv=2)[0]
        eps = 1e-4
        for a in range(2):
            dp = eps * np.eye(2)[a]
            fd = (
                probe_convolution(img, bspln3, pos + dp, deriv=1)
                - probe_convolution(img, bspln3, pos - dp, deriv=1)
            )[0] / (2 * eps)
            assert np.allclose(hess[:, a], fd, atol=2e-3)


class TestBatching:
    def test_single_equals_batched(self, rng):
        img = Image(rng.standard_normal((10, 10)), dim=2)
        pts = rng.uniform(3, 7, (8, 2))
        batched = probe_convolution(img, bspln3, pts)
        for i, p in enumerate(pts):
            single = probe_convolution(img, bspln3, p)
            assert single == pytest.approx(float(batched[i]))

    def test_float32(self, rng):
        img = Image(rng.standard_normal((10, 10)), dim=2)
        got = probe_convolution(
            img, bspln3, np.array([[4.5, 5.5]], dtype=np.float32)
        )
        assert got.dtype == np.float32

    def test_wrong_dimension_rejected(self, rng):
        img = Image(rng.standard_normal((10, 10)), dim=2)
        with pytest.raises(ValueError, match="dimension"):
            probe_convolution(img, bspln3, np.zeros((3, 3)))


class TestInside:
    def test_bounds_1d(self):
        img = Image(np.zeros(10), dim=1)
        # bspln3 support 2: floor index must be in [1, 7]
        assert probe_inside(img, 2, np.array([1.0]))
        assert probe_inside(img, 2, np.array([7.9]))
        assert not probe_inside(img, 2, np.array([0.9]))
        assert not probe_inside(img, 2, np.array([8.0]))

    def test_nan_is_outside(self):
        img = Image(np.zeros((10, 10)), dim=2)
        assert not probe_inside(img, 2, np.array([np.nan, 5.0]))
        assert not probe_inside(img, 2, np.array([np.inf, 5.0]))

    def test_batched(self):
        img = Image(np.zeros(10), dim=1)
        got = probe_inside(img, 1, np.array([[0.5], [-1.0], [8.5], [9.5]]))
        assert list(got) == [True, False, True, False]

    def test_world_space(self):
        orient = Orientation.axis_aligned(1, spacing=2.0, origin=[100.0])
        img = Image(np.zeros(10), dim=1, orientation=orient)
        assert probe_inside(img, 1, np.array([104.0]))
        assert not probe_inside(img, 1, np.array([4.0]))

    def test_dead_lane_probe_is_safe(self):
        """Probing garbage positions (predicated-off lanes) never faults."""
        img = Image(np.arange(10.0), dim=1)
        got = probe_convolution(
            img, bspln3, np.array([[np.nan], [np.inf], [-1e30], [5.0]])
        )
        assert np.isfinite(got[3])
        assert np.all(np.isfinite(got))  # clamped garbage, but finite
