"""The IR validator: unit signatures, corrupted-IR fixtures, pass naming.

The validator has to thread a needle: strict enough that every corrupted
fixture below is rejected, permissive enough that every program the
typechecker accepts still validates after every pass (the whole-pipeline
tests at the bottom).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import compile_to_source
from repro.core.ir.base import Body, Func, IfRegion, Instr, Phi, Value
from repro.core.ty.types import BOOL, INT, REAL, TensorTy
from repro.core.verify import check_enabled, verify_func
from repro.core.xform.to_high import ImageSlot
from repro.errors import CompileError
from repro.kernels import KERNELS

VEC2 = TensorTy((2,))

MINIMAL = """
    strand S (int i) {
        output real x = real(i);
        update { x += 1.0; stabilize; }
    }
    initially [ S(i) | i in 0 .. 3 ];
"""

FIELD_PROG = """
    image(2)[] img = load("p.nrrd");
    field#2(2)[] F = img ⊛ bspln3;
    strand S (int i) {
        output real x = 0.0;
        update {
            vec2 p = [real(i) + 8.0, 9.5];
            if (inside(p, F)) x = F(p) + |∇F(p)|;
            stabilize;
        }
    }
    initially [ S(i) | i in 0 .. 3 ];
"""


def _func(body: Body, results: list[Value], params: list[Value] | None = None,
          name: str = "f") -> Func:
    params = params or []
    return Func(name, params, [f"p{i}" for i in range(len(params))],
                body, results, [f"r{i}" for i in range(len(results))])


def _const(body: Body, value, ty) -> Value:
    return body.emit("const", [], ty, value=value)


class TestValidatorAccepts:
    def test_arithmetic_func(self):
        body = Body()
        a = _const(body, 1.5, REAL)
        b = _const(body, 2.0, REAL)
        c = body.emit("add", [a, b], REAL)
        d = body.emit("mul", [c, c], REAL)
        verify_func(_func(body, [d]), "high")

    def test_numpy_scalar_constants(self):
        # contraction stores raw fold results: NumPy scalars and arrays
        body = Body()
        a = _const(body, np.float64(1.5), REAL)
        b = _const(body, np.int64(2), INT)
        c = _const(body, np.bool_(True), BOOL)
        d = _const(body, np.array([1.0, 2.0]), VEC2)
        e = body.emit("select", [c, d, d], VEC2)
        f = body.emit("mul", [a, a], REAL)
        g = body.emit("mul", [b, b], INT)
        verify_func(_func(body, [e, f, g]), "high")

    def test_if_region_with_phi(self):
        body = Body()
        c = _const(body, True, BOOL)
        then_b, else_b = Body(), Body()
        t = _const(then_b, 1.0, REAL)
        e = _const(else_b, 2.0, REAL)
        r = Value(REAL)
        body.add(IfRegion(c, then_b, else_b, [Phi(r, t, e)]))
        verify_func(_func(body, [r]), "high")

    def test_all_levels_share_core_ops(self):
        for level in ("high", "mid", "low"):
            body = Body()
            a = _const(body, 3, INT)
            b = body.emit("int_to_real", [a], REAL)
            c = body.emit("sqrt", [b], REAL)
            verify_func(_func(body, [c]), level)


class TestCorruptedIR:
    """Hand-corrupted fixtures: each must be rejected with a clear message."""

    def test_use_before_def(self):
        body = Body()
        ghost = Value(REAL)  # never defined by any instruction
        r = body.emit("neg", [ghost], REAL)
        with pytest.raises(CompileError, match="undefined"):
            verify_func(_func(body, [r]), "high")

    def test_double_definition(self):
        body = Body()
        a = _const(body, 1.0, REAL)
        dup = Instr("const", [], {"value": 2.0}, [a])  # redefines %a
        body.add(dup)
        with pytest.raises(CompileError, match="defined twice"):
            verify_func(_func(body, [a]), "high")

    def test_shape_mismatch_add(self):
        body = Body()
        a = _const(body, np.zeros(2), VEC2)
        b = _const(body, np.zeros(3), TensorTy((3,)))
        r = body.emit("add", [a, b], VEC2)
        with pytest.raises(CompileError, match="add/subtract"):
            verify_func(_func(body, [r]), "high")

    def test_result_type_inconsistent(self):
        body = Body()
        a = _const(body, 1.0, REAL)
        r = body.emit("add", [a, a], INT)  # signature says real
        with pytest.raises(CompileError, match="does not match the"):
            verify_func(_func(body, [r]), "high")

    def test_tensor_index_out_of_bounds(self):
        body = Body()
        a = _const(body, np.zeros(2), VEC2)
        r = body.emit("tensor_index", [a], REAL, indices=(2,))
        with pytest.raises(CompileError, match="out of range"):
            verify_func(_func(body, [r]), "high")

    def test_phi_type_mismatch(self):
        body = Body()
        c = _const(body, True, BOOL)
        then_b, else_b = Body(), Body()
        t = _const(then_b, 1.0, REAL)
        e = _const(else_b, 2, INT)
        r = Value(REAL)
        body.add(IfRegion(c, then_b, else_b, [Phi(r, t, e)]))
        with pytest.raises(CompileError, match="phi"):
            verify_func(_func(body, [r]), "high")

    def test_if_condition_not_bool(self):
        body = Body()
        c = _const(body, 1, INT)
        body.add(IfRegion(c, Body(), Body(), []))
        with pytest.raises(CompileError, match="if-condition"):
            verify_func(_func(body, []), "high")

    def test_non_square_trace(self):
        body = Body()
        a = _const(body, np.zeros((2, 3)), TensorTy((2, 3)))
        r = body.emit("trace", [a], REAL)
        with pytest.raises(CompileError, match="square"):
            verify_func(_func(body, [r]), "high")

    def test_probe_below_highir_is_vocabulary_error(self):
        # a field op surviving normalization/probe synthesis is exactly an
        # op outside the lower level's vocabulary
        body = Body()
        p = _const(body, np.zeros(2), VEC2)
        r = body.emit("probe", [p], REAL, image="img",
                      kernel=KERNELS["bspln3"], deriv=0, out_shape=())
        fixture = _func(body, [r])
        verify_func(fixture, "high", images={
            "img": ImageSlot("img", 2, (), None)})
        for level in ("mid", "low"):
            with pytest.raises(CompileError, match="vocabulary"):
                verify_func(fixture, level)

    def test_weights_below_midir(self):
        body = Body()
        x = _const(body, 0.5, REAL)
        r = body.emit("weights", [x], ("weights", 4),
                      kernel=KERNELS["bspln3"], deriv=0, axis=0)
        with pytest.raises(CompileError, match="vocabulary"):
            verify_func(_func(body, [r]), "low")

    def test_probe_overdifferentiates_kernel(self):
        body = Body()
        p = _const(body, np.zeros(2), VEC2)
        kernel = KERNELS["tent"]  # C0: no derivatives available
        r = body.emit("probe", [p], VEC2, image="img", kernel=kernel,
                      deriv=1, out_shape=(2,))
        with pytest.raises(CompileError, match="C0 kernel"):
            verify_func(_func(body, [r]), "high")

    def test_probe_out_shape_mismatch(self):
        body = Body()
        p = _const(body, np.zeros(2), VEC2)
        r = body.emit("probe", [p], VEC2, image="img",
                      kernel=KERNELS["bspln3"], deriv=1, out_shape=(3,))
        with pytest.raises(CompileError, match="out_shape"):
            verify_func(_func(body, [r]), "high",
                        images={"img": ImageSlot("img", 2, (), None)})

    def test_return_of_undefined_value(self):
        body = Body()
        _const(body, 1.0, REAL)
        with pytest.raises(CompileError, match="return"):
            verify_func(_func(body, [Value(REAL)]), "high")


class TestPassNaming:
    """A corruption injected mid-pipeline is blamed on the right pass."""

    def test_value_numbering_blamed(self, monkeypatch):
        from repro.core import driver

        real_vn = driver.value_number

        def corrupting_vn(func):
            removed = real_vn(func)
            if func.name == "update":
                func.body.emit("neg", [Value(REAL)], REAL)  # undefined arg
            return removed

        monkeypatch.setattr(driver, "value_number", corrupting_vn)
        with pytest.raises(CompileError, match="after pass 'value-numbering'"):
            compile_to_source(MINIMAL, check=True)

    def test_midir_blamed_when_probe_survives(self, monkeypatch):
        from repro.core import driver

        monkeypatch.setattr(driver, "to_mid", lambda fn, images: None)
        with pytest.raises(CompileError) as err:
            compile_to_source(FIELD_PROG, check=True)
        assert "after pass 'midir'" in str(err.value)
        assert "vocabulary" in str(err.value)

    def test_contraction_blamed(self, monkeypatch):
        from repro.core import driver

        real_contract = driver.contract

        def corrupting_contract(func, vocab):
            real_contract(func, vocab)
            if func.name == "update":
                for instr in func.body.instructions():
                    if instr.op == "add":
                        instr.results[0].ty = INT  # now inconsistent
                        return

        monkeypatch.setattr(driver, "contract", corrupting_contract)
        with pytest.raises(CompileError, match="after pass 'contraction'"):
            compile_to_source(MINIMAL, check=True)

    def test_uncorrupted_pipeline_is_silent(self):
        compile_to_source(MINIMAL, check=True)
        compile_to_source(FIELD_PROG, check=True)


class TestDriverIntegration:
    def test_check_emits_spans(self):
        from repro.obs import Tracer

        tr = Tracer()
        compile_to_source(MINIMAL, tracer=tr, check=True)
        checks = [e for e in tr.events if e.cat == "check"]
        assert checks, "check=True must emit cat='check' spans"
        afters = {e.args["after"] for e in checks}
        assert {"highir", "midir", "lowir"} <= afters

    def test_check_off_emits_no_spans(self):
        from repro.obs import Tracer

        tr = Tracer()
        compile_to_source(MINIMAL, tracer=tr, check=False)
        assert not [e for e in tr.events if e.cat == "check"]

    def test_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert not check_enabled()
        for val in ("1", "true", "YES", "on"):
            monkeypatch.setenv("REPRO_CHECK", val)
            assert check_enabled()
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert not check_enabled()

    def test_runner_check_flag(self):
        from repro.core.driver import compile_program
        from repro.data import portrait_phantom

        prog = compile_program(FIELD_PROG, check=True)
        prog.bind_image("img", portrait_phantom(32))
        res = prog.cli(["--check"])
        assert res.num_strands == 4


@pytest.mark.parametrize(
    "module", ["isocontour", "vr_lite", "illust_vr", "lic2d", "ridge3d"]
)
def test_paper_programs_validate_every_pass(module):
    import importlib

    mod = importlib.import_module(f"repro.programs.{module}")
    compile_to_source(mod.SOURCE, check=True)
