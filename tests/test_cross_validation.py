"""Cross-validation against SciPy's independent B-spline implementation.

``scipy.ndimage.map_coordinates(order=3, prefilter=False)`` computes the
direct convolution of the samples with the cubic B-spline basis — exactly
our ``bspln3`` reconstruction — from a completely separate codebase.
Agreement here validates kernel coefficients, weight polynomials, the
separable contraction, and the index handling all at once.
"""

import numpy as np
import pytest

scipy_ndimage = pytest.importorskip("scipy.ndimage")

from repro.fields.probe import probe_convolution
from repro.image import Image
from repro.kernels import bspln3, tent


class TestAgainstScipy:
    def test_bspln3_matches_map_coordinates_2d(self, rng):
        data = rng.standard_normal((20, 22))
        img = Image(data, dim=2)
        pts = rng.uniform(4.0, 15.0, (50, 2))
        ours = probe_convolution(img, bspln3, pts)
        theirs = scipy_ndimage.map_coordinates(
            data, pts.T, order=3, prefilter=False
        )
        assert np.allclose(ours, theirs, atol=1e-12)

    def test_bspln3_matches_map_coordinates_3d(self, rng):
        data = rng.standard_normal((12, 13, 14))
        img = Image(data, dim=3)
        pts = rng.uniform(3.0, 9.0, (30, 3))
        ours = probe_convolution(img, bspln3, pts)
        theirs = scipy_ndimage.map_coordinates(
            data, pts.T, order=3, prefilter=False
        )
        assert np.allclose(ours, theirs, atol=1e-12)

    def test_tent_matches_linear_interpolation(self, rng):
        data = rng.standard_normal((16, 16))
        img = Image(data, dim=2)
        pts = rng.uniform(2.0, 13.0, (40, 2))
        ours = probe_convolution(img, tent, pts)
        theirs = scipy_ndimage.map_coordinates(
            data, pts.T, order=1, prefilter=False
        )
        assert np.allclose(ours, theirs, atol=1e-12)

    def test_prefiltered_spline_interpolates(self, rng):
        """Composing our bspln3 probe with scipy's spline prefilter must
        interpolate the original samples — the textbook relationship the
        paper's §3.1 'non-interpolating' remark alludes to."""
        data = rng.standard_normal((16, 16))
        coeffs = scipy_ndimage.spline_filter(data, order=3)
        img = Image(coeffs, dim=2)
        for i in range(4, 12):
            got = probe_convolution(img, bspln3, np.array([[float(i), float(i)]]))
            assert float(got[0]) == pytest.approx(data[i, i], abs=1e-8)

    def test_gradient_matches_scipy_derivative_of_spline(self, rng):
        """d/dx of our bspln3 field equals scipy's spline evaluated with a
        derivative along one axis (via finite differencing scipy, since
        map_coordinates has no derivative mode — tight tolerance because
        both sides are the same smooth polynomial)."""
        data = rng.standard_normal((18, 18))
        img = Image(data, dim=2)
        pts = rng.uniform(4.0, 13.0, (20, 2))
        ours = probe_convolution(img, bspln3, pts, deriv=1)
        eps = 1e-6
        for axis in range(2):
            d = np.zeros(2)
            d[axis] = eps
            hi = scipy_ndimage.map_coordinates(data, (pts + d).T, order=3, prefilter=False)
            lo = scipy_ndimage.map_coordinates(data, (pts - d).T, order=3, prefilter=False)
            fd = (hi - lo) / (2 * eps)
            assert np.allclose(ours[:, axis], fd, atol=1e-5)
