"""Native C backend: golden equivalence, error paths, graceful fallback.

The NumPy backend is the differential oracle: every example program run
through ``--backend c`` under every scheduler must agree with the
sequential NumPy run to 1e-12 (in practice the agreement is exact — the
emitted C mirrors NumPy's operation order and ``-ffp-contract=off`` keeps
FMA contraction from re-rounding).  The kernel is strand-batched
(``DD_VB`` SoA lanes per iteration), so equivalence is additionally
pinned at scheduler block sizes 1/64/4096 — full blocks, lane tails, and
single-lane degenerate batches all hit the same double-precision oracle —
and with the batch width forced to 1 (``REPRO_CGEN_BATCH=1``), the scalar
baseline benchmarks use.  Single precision (``precision="single"``) runs
natively too, checked against the float64 NumPy run at the relaxed
tolerance DESIGN.md documents (1e-5 relative).  Corrupted LowIR must
surface as a clean :class:`~repro.errors.CodegenError`, and a missing C
compiler must degrade to NumPy with a warning, never a crash.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.codegen import cbuild
from repro.core.codegen.cgen import generate_c_module
from repro.core.driver import compile_program
from repro.errors import CodegenError, InputError
from repro.programs import ALL

requires_cc = pytest.mark.skipif(
    not cbuild.compiler_available(),
    reason="native backend needs cffi plus a C compiler on PATH",
)

#: per-program kwargs keeping every example tiny enough for CI
PROGRAM_KW = {
    "vr-lite": dict(scale=0.1, volume_size=24),
    "illust-vr": dict(scale=0.1, volume_size=24),
    "ridge3d": dict(scale=0.4, volume_size=24),
    "lic2d": dict(scale=0.08),
    "isocontour": dict(scale=0.08),
}
MAX_STEPS = 40  # cap the renderers; equivalence holds step by step


def run_outputs(name, backend, scheduler="seq", workers=1, **kw):
    prog = ALL[name].make_program(**PROGRAM_KW[name])
    res = prog.run(max_steps=MAX_STEPS, backend=backend,
                   scheduler=scheduler, workers=workers, **kw)
    return res


def assert_outputs_equal(a, b):
    assert set(a.outputs) == set(b.outputs)
    for k in a.outputs:
        assert np.allclose(a.outputs[k], b.outputs[k],
                           rtol=1e-12, atol=1e-12, equal_nan=True), k
    assert a.steps == b.steps
    assert a.num_stable == b.num_stable
    assert a.num_died == b.num_died


@requires_cc
class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", list(ALL))
    def test_seq(self, name):
        a = run_outputs(name, "numpy")
        b = run_outputs(name, "c")
        assert_outputs_equal(a, b)

    @pytest.mark.parametrize("name", list(ALL))
    def test_thread(self, name):
        a = run_outputs(name, "numpy")
        b = run_outputs(name, "c", scheduler="thread", workers=2,
                        block_size=37)
        assert_outputs_equal(a, b)

    @pytest.mark.parametrize("name", list(ALL))
    def test_process(self, name):
        a = run_outputs(name, "numpy")
        b = run_outputs(name, "c", scheduler="process", workers=2,
                        block_size=37)
        assert_outputs_equal(a, b)

    # Block sizes that stress the batched kernel's lane handling: 1 is the
    # all-tail degenerate case (every batch is a partial lane group), 64 is
    # a mix of full batches and tails, 4096 exceeds every example's strand
    # count so one block covers the whole population.
    @pytest.mark.parametrize("block_size", [1, 64, 4096])
    @pytest.mark.parametrize("scheduler", ["seq", "thread", "process"])
    def test_batched_block_sizes(self, scheduler, block_size):
        a = run_outputs("ridge3d", "numpy")
        workers = 1 if scheduler == "seq" else 2
        b = run_outputs("ridge3d", "c", scheduler=scheduler,
                        workers=workers, block_size=block_size)
        assert_outputs_equal(a, b)

    def test_forced_scalar_batch_matches_default(self, monkeypatch):
        # REPRO_CGEN_BATCH=1 is the scalar-baseline kernel the benchmarks
        # ablate against; it must produce bit-identical results.
        a = run_outputs("ridge3d", "c")
        monkeypatch.setenv("REPRO_CGEN_BATCH", "1")
        b = run_outputs("ridge3d", "c")
        assert_outputs_equal(a, b)


@requires_cc
class TestSinglePrecision:
    """``--single`` runs natively: float32 kernels vs the float64 oracle."""

    def _single_vs_double(self, name, capsys):
        double = run_outputs(name, "numpy")
        prog = ALL[name].make_program(precision="single", **PROGRAM_KW[name])
        single = prog.run(max_steps=MAX_STEPS, backend="c")
        assert "falling back to NumPy" not in capsys.readouterr().err
        assert set(single.outputs) == set(double.outputs)
        for k in single.outputs:
            assert single.outputs[k].dtype == np.float32, k
            assert np.allclose(single.outputs[k], double.outputs[k],
                               rtol=1e-5, atol=1e-5, equal_nan=True), k

    def test_ridge3d_single_native(self, capsys):
        self._single_vs_double("ridge3d", capsys)

    def test_lic2d_single_native(self, capsys):
        self._single_vs_double("lic2d", capsys)

    def test_single_schedulers_agree(self):
        prog = ALL["ridge3d"].make_program(precision="single",
                                           **PROGRAM_KW["ridge3d"])
        a = prog.run(max_steps=MAX_STEPS, backend="c")
        for scheduler in ("thread", "process"):
            prog2 = ALL["ridge3d"].make_program(precision="single",
                                                **PROGRAM_KW["ridge3d"])
            b = prog2.run(max_steps=MAX_STEPS, backend="c",
                          scheduler=scheduler, workers=2, block_size=37)
            assert_outputs_equal(a, b)

    def test_single_fuzz_leg(self):
        from repro.core.verify.fuzz import fuzz

        report = fuzz(n=2, seed=3, schedulers=("seq",), shrink=False,
                      backend="c", precision="single")
        assert report.ok, report.failures[0].message


@requires_cc
class TestSemantics:
    def test_integer_division_by_zero(self):
        from repro.errors import RuntimeErrorD

        src = """
            strand S (int i) {
                output int x = 1;
                update { x = x / (i - 2); stabilize; }
            }
            initially [ S(i) | i in 0 .. 5 ];
        """
        prog = compile_program(src)
        with pytest.raises(RuntimeErrorD, match="division by zero"):
            prog.run(backend="c")

    def test_truncating_int_div_matches_numpy(self):
        src = """
            strand S (int i) {
                output int q = 0;
                output int r = 0;
                update { q = (i - 3) / 2; r = (i - 3) % 2; stabilize; }
            }
            initially [ S(i) | i in 0 .. 7 ];
        """
        a = compile_program(src).run(backend="numpy")
        b = compile_program(src).run(backend="c")
        assert np.array_equal(a.outputs["q"], b.outputs["q"])
        assert np.array_equal(a.outputs["r"], b.outputs["r"])

    def test_fuzz_leg(self):
        from repro.core.verify.fuzz import fuzz

        report = fuzz(n=4, seed=7, schedulers=("seq",), shrink=False,
                      backend="c")
        assert report.ok, report.failures[0].message

    def test_native_update_metric_recorded(self):
        from repro.obs import metrics as _mx

        prog = ALL["isocontour"].make_program(**PROGRAM_KW["isocontour"])
        with _mx.collect() as reg:
            prog.run(max_steps=5, backend="c")
        counters = reg.snapshot()["counters"]
        assert counters.get("op.native_update.calls", 0) > 0
        assert counters.get("op.native_update.seconds", 0) > 0

    def test_invalid_backend_rejected(self):
        prog = ALL["isocontour"].make_program(**PROGRAM_KW["isocontour"])
        with pytest.raises(InputError, match="backend"):
            prog.run(backend="fortran")


def _corrupt(high, mutate):
    """A structural copy of ``high`` with its update func mutated."""
    import copy

    func = copy.deepcopy(high.update_func)
    mutate(func)
    return SimpleNamespace(
        update_func=func,
        images=high.images,
        concrete_globals=high.concrete_globals,
        state_order=high.state_order,
        extra_state=high.extra_state,
    )


class TestCorruptedLowIR:
    """Broken LowIR raises CodegenError — never a C compile error or worse."""

    @pytest.fixture(scope="class")
    def high(self):
        src = """
            strand S (int i) {
                output real x = 0.0;
                update { x += real(i) * 0.5; stabilize; }
            }
            initially [ S(i) | i in 0 .. 3 ];
        """
        return compile_program(src).high

    def test_unknown_op(self, high):
        def mutate(func):
            for ins in func.body.instructions():
                if ins.op == "mul":
                    ins.op = "frobnicate"
        with pytest.raises(CodegenError, match="unsupported LowIR op"):
            generate_c_module(_corrupt(high, mutate))

    def test_bad_const_payload(self, high):
        def mutate(func):
            for ins in func.body.instructions():
                if ins.op == "const":
                    ins.attrs["value"] = object()
        with pytest.raises(CodegenError):
            generate_c_module(_corrupt(high, mutate))

    def test_unknown_image_reference(self, high):
        def mutate(func):
            for ins in func.body.instructions():
                if ins.op == "mul":
                    ins.attrs["image"] = "ghost"
        with pytest.raises(CodegenError, match="unknown image"):
            generate_c_module(_corrupt(high, mutate))

    def test_result_arity_mismatch(self, high):
        def mutate(func):
            func.results = func.results + func.results
        with pytest.raises(CodegenError, match="arity"):
            generate_c_module(_corrupt(high, mutate))


class TestFallback:
    def test_missing_compiler_warns_and_matches_numpy(self, monkeypatch, capsys):
        monkeypatch.setattr(cbuild, "find_compiler", lambda: None)
        a = run_outputs("isocontour", "numpy")
        b = run_outputs("isocontour", "c")
        err = capsys.readouterr().err
        assert "falling back to NumPy" in err
        assert_outputs_equal(a, b)

    def test_single_precision_missing_compiler_falls_back(self, monkeypatch,
                                                          capsys):
        monkeypatch.setattr(cbuild, "find_compiler", lambda: None)
        prog = ALL["isocontour"].make_program(precision="single",
                                              **PROGRAM_KW["isocontour"])
        res = prog.run(max_steps=5, backend="c")
        err = capsys.readouterr().err
        assert "falling back to NumPy" in err
        assert res.steps > 0

    def test_failed_build_is_cached_once(self, monkeypatch, capsys):
        monkeypatch.setattr(cbuild, "find_compiler", lambda: None)
        prog = ALL["isocontour"].make_program(**PROGRAM_KW["isocontour"])
        prog.run(max_steps=2, backend="c")
        assert "falling back" in capsys.readouterr().err
        prog.run(max_steps=2, backend="c")
        # second run reuses the cached failure without re-warning
        assert "falling back" not in capsys.readouterr().err


@requires_cc
class TestArtifactCache:
    def test_cache_reused_across_builds(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CGEN_CACHE", str(tmp_path))
        src = """
            strand S (int i) {
                output real x = 0.0;
                update { x += 1.0; stabilize; }
            }
            initially [ S(i) | i in 0 .. 3 ];
        """
        c_source, _ = generate_c_module(compile_program(src).high)
        cbuild.build(c_source)
        sos = list(tmp_path.glob("*.so"))
        assert len(sos) == 1
        inode = sos[0].stat().st_ino
        # hit: same artifact (same inode — never recompiled/republished;
        # its mtime IS refreshed, deliberately, as the LRU recency stamp),
        # and the compiler must not run again
        calls = []
        real_run = cbuild.subprocess.run
        monkeypatch.setattr(cbuild.subprocess, "run",
                            lambda *a, **kw: calls.append(a) or real_run(*a, **kw))
        cbuild.build(c_source)
        assert list(tmp_path.glob("*.so")) == sos
        assert sos[0].stat().st_ino == inode
        assert not calls

    def test_flag_change_forces_rebuild(self, tmp_path, monkeypatch):
        # Flags are part of the cache key: the same source built with a
        # different flag set must land in a new artifact, not reuse the old
        # .so (stale codegen options are a silent-miscompilation hazard).
        monkeypatch.setenv("REPRO_CGEN_CACHE", str(tmp_path))
        src = """
            strand S (int i) {
                output real x = 0.0;
                update { x += 2.0; stabilize; }
            }
            initially [ S(i) | i in 0 .. 3 ];
        """
        c_source, _ = generate_c_module(compile_program(src).high)
        cbuild.build(c_source, flags=cbuild.flags_for(False))
        assert len(list(tmp_path.glob("*.so"))) == 1
        flipped = ["-O2" if f == "-O3" else f
                   for f in cbuild.flags_for(False)]
        cbuild.build(c_source, flags=flipped)
        assert len(list(tmp_path.glob("*.so"))) == 2
        # and the single-precision flag set differs from the double one
        cbuild.build(c_source, flags=cbuild.flags_for(True))
        assert len(list(tmp_path.glob("*.so"))) == 3
