#!/usr/bin/env python
"""Particle-based ridge detection (paper §6.2's ridge3d benchmark).

Particles Newton-iterate toward vessel centerlines (1-D height ridges of
the CT intensity) using the Hessian eigensystem.  Because the synthetic
lung phantom has analytically known centerlines, this example also reports
how close the converged particles are to ground truth — something the
paper's real CT data cannot do.

Run:  python examples/ridge_particles.py [--grid 12] [--out ridges.nrrd]
"""

import argparse

import numpy as np

from repro.data.synth import lung_vessel_centerlines
from repro.image import Image
from repro.nrrd import write_nrrd
from repro.programs import ridge3d


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--grid", type=int, default=12, help="particles per axis")
    ap.add_argument("--volume", type=int, default=48)
    ap.add_argument("--out", default="ridges.nrrd")
    args = ap.parse_args()

    prog = ridge3d.make_program(volume_size=args.volume)
    prog.set_input("gridRes", args.grid)
    result = prog.run()
    pos = result.outputs["pos"]
    print(
        f"{result.num_strands} particles: {result.num_stable} converged to "
        f"ridges, {result.num_died} died ({result.steps} super-steps, "
        f"{result.wall_time:.2f}s)"
    )

    lines = lung_vessel_centerlines(args.volume).reshape(-1, 3)
    if pos.size:
        dists = np.array([np.min(np.linalg.norm(lines - p, axis=1)) for p in pos])
        print(
            f"distance to true centerlines: median {np.median(dists):.3f}, "
            f"90th pct {np.percentile(dists, 90):.3f} (world units; "
            f"voxel spacing ≈ {40.0 / (args.volume - 1):.2f})"
        )
        # positions as a 1-D list of 3-vectors, like Diderot's output files
        write_nrrd(args.out, Image(pos, dim=1, tensor_shape=(3,)),
                   content="ridge particle positions")
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
