#!/usr/bin/env python
"""Divergence and curl — the paper's §8.3 future work, implemented.

"We plan to extend our implementation to support [a] larger set of tensor
and field operations, such as divergence (∇•) and curl (∇×)."  This
reproduction implements both; the program below probes them over a 2-D
vector field with analytically known vorticity and divergence, so the
printed values double as a correctness check.

Run:  python examples/vector_field_ops.py
"""

import numpy as np

from repro import compile_program
from repro.data import vector_field_2d

SOURCE = """
// ∇•V and ∇×V as first-class field expressions (§8.3 extension)
field#1(2)[2] V = load("vectors.nrrd") ⊛ ctmr;
field#0(2)[] D = ∇•V;
field#0(2)[] C = ∇×V;

strand Probe (int i, int j) {
    vec2 pos = [real(i)*0.2 - 0.8, real(j)*0.2 - 0.8];
    output real div = 0.0;
    output real curl = 0.0;
    update {
        if (inside(pos, V)) {
            div = D(pos);
            curl = C(pos);
        }
        stabilize;
    }
}

initially [ Probe(i, j) | i in 0 .. 8, j in 0 .. 8 ];
"""


def main() -> None:
    vortex, saddle = 1.0, 0.35
    prog = compile_program(SOURCE)
    prog.bind_image("vectors", vector_field_2d(64, vortex=vortex, saddle=saddle))
    result = prog.run()
    div = result.outputs["div"]
    curl = result.outputs["curl"]

    # analytic: V = (-ωy + sx, ωx - sy) ⇒ ∇•V = 0, ∇×V = 2ω
    print(f"vector field: vortex ω = {vortex}, saddle s = {saddle}")
    print(f"measured divergence: mean {div.mean():+.6f} (analytic 0)")
    print(f"measured curl:       mean {curl.mean():+.6f} (analytic {2 * vortex})")
    interior = curl[1:-1, 1:-1]
    assert np.allclose(interior, 2 * vortex, atol=1e-6)
    assert np.allclose(div[1:-1, 1:-1], 0.0, atol=1e-6)
    print("matches closed form ✓")


if __name__ == "__main__":
    main()
