#!/usr/bin/env python
"""Generate the NRRD input files for the standalone .diderot programs.

The programs under ``examples/programs/`` reference image files by name
(``hand.nrrd``, ``lung.nrrd``, ``vectors.nrrd``, ``rand.nrrd``,
``ddro.nrrd``, ``xfer.nrrd``), exactly like the paper's; this script
materializes the synthetic stand-ins next to them so the command-line
driver can run the programs directly:

    python examples/make_data.py
    python -m repro examples/programs/vr_lite.diderot --out vr
"""

import os

from repro.data import (
    hand_phantom,
    lung_phantom,
    noise_texture,
    portrait_phantom,
    vector_field_2d,
)
from repro.nrrd import write_nrrd
from repro.programs.illust_vr import curvature_colormap

HERE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "programs")


def main() -> None:
    files = {
        "hand.nrrd": hand_phantom(48),
        "lung.nrrd": lung_phantom(48),
        "vectors.nrrd": vector_field_2d(64),
        "rand.nrrd": noise_texture(64),
        "ddro.nrrd": portrait_phantom(100),
        "xfer.nrrd": curvature_colormap(33),
    }
    for name, img in files.items():
        path = os.path.join(HERE, name)
        write_nrrd(path, img, encoding="gzip", content=name.split(".")[0])
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
