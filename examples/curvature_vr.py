#!/usr/bin/env python
"""Curvature-shaded volume rendering (paper §4.1, Figures 3-4).

The strand computes implicit-surface principal curvatures (κ₁, κ₂) from
the gradient and Hessian of the reconstructed field, then looks the
surface color up in a bivariate transfer function — the whiteboard math of
§4.1 compiled directly from Diderot notation.

Run:  python examples/curvature_vr.py [--res 120] [--out curvature_vr.ppm]
"""

import argparse

import numpy as np

from repro.data.ppm import save_ppm
from repro.programs import illust_vr


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--res", type=int, default=120)
    ap.add_argument("--volume", type=int, default=48)
    ap.add_argument("--out", default="curvature_vr.ppm")
    ap.add_argument("--cmap-out", default="curvature_cmap.ppm",
                    help="also save the (κ1, κ2) colormap (Figure 4 inset)")
    args = ap.parse_args()

    prog = illust_vr.make_program(scale=args.res / 100.0, volume_size=args.volume)
    result = prog.run()
    rgb = result.outputs["rgb"]
    print(
        f"{result.num_strands} rays, {result.steps} super-steps, "
        f"{result.wall_time:.2f}s"
    )
    save_ppm(args.out, np.clip(rgb, 0.0, 1.0), vmin=0.0, vmax=1.0)
    print(f"wrote {args.out}")

    cmap = illust_vr.curvature_colormap(65)
    save_ppm(args.cmap_out, cmap.data, vmin=0.0, vmax=1.0)
    print(f"wrote {args.cmap_out}")


if __name__ == "__main__":
    main()
