#!/usr/bin/env python
"""Quickstart: compile and run the paper's Figure 1 volume renderer.

This is the complete workflow: write a Diderot program, compile it, bind
the input volume (here a synthetic CT hand phantom), set inputs, run the
bulk-synchronous strand execution, and save the rendered image.

Run:  python examples/quickstart.py [--res 120] [--out vr_lite.pgm]
"""

import argparse

from repro.data.ppm import save_pgm
from repro.programs import vr_lite


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--res", type=int, default=120, help="image resolution")
    ap.add_argument("--volume", type=int, default=48, help="phantom size")
    ap.add_argument("--out", default="vr_lite.pgm")
    args = ap.parse_args()

    # vr_lite.SOURCE is the Diderot program of the paper's Figure 1;
    # make_program compiles it and binds the synthetic hand volume.
    prog = vr_lite.make_program(scale=args.res / 100.0, volume_size=args.volume)
    print("--- Diderot source (Figure 1) ---")
    print(vr_lite.SOURCE)

    result = prog.run()
    gray = result.outputs["gray"]
    print(
        f"rendered {result.num_strands} rays in {result.steps} super-steps "
        f"({result.wall_time:.2f}s); gray range "
        f"[{gray.min():.3f}, {gray.max():.3f}]"
    )
    save_pgm(args.out, gray, vmin=0.0, vmax=1.0)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
