#!/usr/bin/env python
"""Using the continuous-field substrate directly from Python.

The compiler's runtime semantics — convolution fields, field arithmetic,
differentiation with the Figure 10 normalization rules — are available as
a plain Python API (:mod:`repro.fields`), useful for prototyping before
writing a Diderot program, or as a NumPy-native library on its own.

Run:  python examples/fields_api.py
"""

import numpy as np

from repro import bspln3, convolve
from repro.data import hand_phantom
from repro.tensors import eigen_symmetric, trace

prog_doc = __doc__


def main() -> None:
    img = hand_phantom(48)
    F = convolve(img, bspln3)  # F = img ⊛ bspln3, a field#2(3)[]
    print(f"F: dim={F.dim}, shape={F.shape}, C{F.continuity}")

    grad = F.grad()        # ∇F  : field#1(3)[3]
    hess = grad.grad()     # ∇⊗∇F: field#0(3)[3,3]
    print(f"∇F: shape={grad.shape}, C{grad.continuity}")
    print(f"∇⊗∇F: shape={hess.shape}, C{hess.continuity}")

    # probe a batch of positions along a ray through the hand
    ts = np.linspace(-15, 15, 9)
    pts = np.stack([ts, np.zeros_like(ts), np.zeros_like(ts)], axis=-1)
    inside = F.inside(pts)
    vals = F.probe(pts)
    print("\n  x     inside  F(x)      |∇F(x)|   tr(H)     λ1(H)")
    for p, ok, v in zip(pts, inside, vals):
        if not ok:
            print(f"{p[0]:6.1f}  no")
            continue
        g = grad.probe(p)
        h = hess.probe(p)
        lam, _ = eigen_symmetric(h)
        print(
            f"{p[0]:6.1f}  yes   {v:9.2f} {np.linalg.norm(g):9.3f} "
            f"{trace(h):9.3f} {lam[0]:9.3f}"
        )

    # field arithmetic follows the same normalization rules as the DSL
    sharpened = 2.0 * F - convolve(img, bspln3)
    p = np.array([0.5, 0.5, 0.5])
    assert np.isclose(float(sharpened.probe(p)), float(F.probe(p)))
    print("\n2F - F probes identically to F ✓ (Figure 10 algebra)")


if __name__ == "__main__":
    main()
