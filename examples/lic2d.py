#!/usr/bin/env python
"""Line integral convolution (paper §4.2, Figures 5-6).

Each pixel strand integrates a streamline through the vector field with
the midpoint method and averages noise samples along it, visualizing the
flow; the output is modulated by the seed-point velocity magnitude.

Run:  python examples/lic2d.py [--res 250] [--out lic.pgm]
"""

import argparse

from repro.data.ppm import save_pgm
from repro.programs import lic2d


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--res", type=int, default=250)
    ap.add_argument("--steps", type=int, default=20, help="streamline steps")
    ap.add_argument("--field", type=int, default=64, help="vector field size")
    ap.add_argument("--out", default="lic.pgm")
    args = ap.parse_args()

    prog = lic2d.make_program(scale=args.res / 250.0, field_size=args.field)
    prog.set_input("stepNum", args.steps)
    result = prog.run()
    img = result.outputs["sum"]
    print(
        f"{result.num_strands} streamlines x {2 * args.steps + 1} samples, "
        f"{result.wall_time:.2f}s"
    )
    save_pgm(args.out, img)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
