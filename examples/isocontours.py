#!/usr/bin/env python
"""Particle-based isocontour sampling (paper §4.3, Figures 7-8).

A grid of strands Newton-iterates toward the nearest of three isovalues;
strands that leave the domain or fail to converge die, so the stable
collection samples the isocontours.  The output overlays the surviving
particles (white) on the source image, like the paper's Figure 8.

Run:  python examples/isocontours.py [--out isocontours.pgm]
"""

import argparse

import numpy as np

from repro.data import portrait_phantom
from repro.data.ppm import save_pgm
from repro.programs import isocontour


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--size", type=int, default=100, help="image size")
    ap.add_argument("--out", default="isocontours.pgm")
    args = ap.parse_args()

    prog = isocontour.make_program(image_size=args.size)
    result = prog.run()
    pos = result.outputs["pos"]
    print(
        f"{result.num_strands} strands: {result.num_stable} stabilized on "
        f"isocontours, {result.num_died} died ({result.steps} super-steps)"
    )

    # overlay: render the phantom at 4x, mark each particle
    scale = 4
    base = portrait_phantom(args.size).data
    canvas = np.repeat(np.repeat(base, scale, axis=0), scale, axis=1)
    canvas = canvas / canvas.max() * 0.6
    for x, y in pos:
        xi = int(round(x * scale))
        yi = int(round(y * scale))
        if 0 <= xi < canvas.shape[0] and 0 <= yi < canvas.shape[1]:
            canvas[xi, yi] = 1.0
    save_pgm(args.out, canvas, vmin=0.0, vmax=1.0)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
