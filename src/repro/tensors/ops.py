"""Small-tensor operations, vectorized over leading axes.

Conventions
-----------
A *tensor of shape* ``s`` (in the Diderot sense — paper §3.1) is stored as a
NumPy array whose **trailing** ``len(s)`` axes are the tensor axes; any
leading axes are batch ("strand") axes and every operation broadcasts over
them.  A scalar is a 0-order tensor: an array with no trailing tensor axes.

These functions implement the operator set of paper §3.2: dot product
(``u • v``), cross product (``u × v``), tensor product (``u ⊗ v``), norm
(``|u|``), plus ``trace``, ``normalize``, ``identity[n]``, transpose, and
determinant, which the examples in §4 rely on.
"""

from __future__ import annotations

import numpy as np


def dot(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Inner product ``u • v`` contracting the last axis of each operand.

    For two vectors this is the dot product; for matrices it contracts the
    last axis of ``u`` with the last axis of ``v`` is *not* what Diderot's
    ``•`` does — Diderot contracts adjacent indices, so for a matrix ``M``
    and vector ``v``, ``M • v`` is the usual matrix-vector product.  This
    helper handles the vector•vector, matrix•vector, and matrix•matrix cases.
    """
    u = np.asarray(u)
    v = np.asarray(v)
    if u.ndim == 1 and v.ndim == 1:
        return np.sum(u * v, axis=-1)
    if (
        u.ndim == v.ndim
        and u.shape == v.shape
        and (u.ndim == 1 or u.shape[-1] != u.shape[-2])
    ):
        # batched vectors: equal non-square shapes can only mean a lane
        # axis over same-length vectors.  (Batched code should prefer
        # repro.runtime.ops.dot_ord, which takes explicit tensor orders.)
        return np.sum(u * v, axis=-1)
    if u.ndim >= 2 and v.ndim >= 1 and u.shape[-1] == v.shape[-1] and v.ndim == u.ndim - 1:
        # matrix • vector: contract last axis of u with last axis of v
        return np.einsum("...ij,...j->...i", u, v)
    if u.ndim >= 2 and v.ndim >= 2:
        return np.matmul(u, v)
    return np.sum(u * v, axis=-1)


def cross(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Cross product ``u × v`` of 3-vectors (or the scalar 2-D analogue)."""
    u = np.asarray(u)
    v = np.asarray(v)
    if u.shape[-1] == 2:
        return u[..., 0] * v[..., 1] - u[..., 1] * v[..., 0]
    return np.cross(u, v)


def outer(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Tensor (outer) product ``u ⊗ v``.

    The result's trailing shape is the concatenation of the operands'
    trailing vector shapes.  Only the vector ⊗ vector case is needed by the
    language (e.g. ``n ⊗ n`` in the curvature example, Figure 3).
    """
    u = np.asarray(u)
    v = np.asarray(v)
    return u[..., :, None] * v[..., None, :]


def norm(t: np.ndarray, order: int = 1) -> np.ndarray:
    """Norm ``|t|``: absolute value, Euclidean norm, or Frobenius norm.

    ``order`` is the tensor order of ``t`` (the number of trailing tensor
    axes); the same formula — sqrt of the sum of squared components — covers
    all three cases.
    """
    t = np.asarray(t)
    if order == 0:
        return np.abs(t)
    axes = tuple(range(-order, 0))
    return np.sqrt(np.sum(t * t, axis=axes))


def frobenius(m: np.ndarray) -> np.ndarray:
    """Frobenius norm ``|G|`` of a matrix (used by the curvature example)."""
    return norm(m, order=2)


def normalize(u: np.ndarray) -> np.ndarray:
    """Unit vector in the direction of ``u``.

    A zero vector normalizes to zero rather than NaN: strand code routinely
    normalizes gradients that may vanish at critical points, and the paper's
    examples guard against the consequences downstream, not at the callsite.
    """
    u = np.asarray(u)
    # pre-scale by the largest component so the sum of squares cannot
    # underflow to denormals (or overflow) before the sqrt: normalizing
    # [4.8e-161]*3 must still give a unit vector
    m = np.max(np.abs(u), axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        s = u / m
        n = np.sqrt(np.sum(s * s, axis=-1, keepdims=True))
        out = s / n
    return np.where(m > 0, out, 0.0)


def trace(m: np.ndarray) -> np.ndarray:
    """Trace of a square matrix (sum of the diagonal)."""
    m = np.asarray(m)
    return np.trace(m, axis1=-2, axis2=-1)


def transpose(m: np.ndarray) -> np.ndarray:
    """Matrix transpose, swapping the two trailing axes."""
    m = np.asarray(m)
    return np.swapaxes(m, -1, -2)


def determinant(m: np.ndarray) -> np.ndarray:
    """Determinant of a 2x2 or 3x3 matrix, in closed form.

    Closed form (rather than ``np.linalg.det``) keeps the operation exact for
    float32 inputs and cheap for the small matrices Diderot manipulates.
    """
    m = np.asarray(m)
    n = m.shape[-1]
    if m.shape[-2] != n:
        raise ValueError(f"determinant requires a square matrix, got {m.shape[-2:]}")
    if n == 1:
        return m[..., 0, 0]
    if n == 2:
        return m[..., 0, 0] * m[..., 1, 1] - m[..., 0, 1] * m[..., 1, 0]
    if n == 3:
        return (
            m[..., 0, 0] * (m[..., 1, 1] * m[..., 2, 2] - m[..., 1, 2] * m[..., 2, 1])
            - m[..., 0, 1] * (m[..., 1, 0] * m[..., 2, 2] - m[..., 1, 2] * m[..., 2, 0])
            + m[..., 0, 2] * (m[..., 1, 0] * m[..., 2, 1] - m[..., 1, 1] * m[..., 2, 0])
        )
    raise ValueError(f"determinant supports 1x1..3x3 matrices, got {n}x{n}")


def identity(n: int, dtype=np.float64) -> np.ndarray:
    """The ``identity[n]`` literal: the n x n identity matrix."""
    return np.eye(n, dtype=dtype)


def lerp(a: np.ndarray, b: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Linear interpolation ``a + t*(b - a)``, broadcasting all operands."""
    a = np.asarray(a)
    b = np.asarray(b)
    t = np.asarray(t)
    return a + t * (b - a)


#: memoized ``np.einsum_path`` results keyed by ``(spec, *operand_shapes)``.
#: Probe contractions evaluate the same few einsum specs on the same block
#: shapes every super-step, so the path search is pure overhead after the
#: first call.  Plain-dict writes are benign under the GIL (idempotent:
#: two racers compute the same path).
_EINSUM_PATHS: dict = {}


def einsum_cached(spec: str, *operands: np.ndarray, out=None) -> np.ndarray:
    """``np.einsum`` with the contraction path precomputed and memoized.

    Operands must already be ndarrays (the key uses their ``.shape``).
    Without an explicit path NumPy either re-runs the path optimizer per
    call or — the default — contracts naively in one nested loop, which
    for the (d+1)-operand probe contractions is asymptotically worse than
    the pairwise path.
    """
    key = (spec,) + tuple(op.shape for op in operands)
    path = _EINSUM_PATHS.get(key)
    if path is None:
        path = np.einsum_path(spec, *operands, optimize="optimal")[0]
        _EINSUM_PATHS[key] = path
    if out is None:
        return np.einsum(spec, *operands, optimize=path)
    return np.einsum(spec, *operands, out=out, optimize=path)
