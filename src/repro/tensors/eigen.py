"""Closed-form eigensystems for symmetric 2x2 and 3x3 matrices.

Ridge detection (paper §6.2, ridge3d) needs the eigenvalues and eigenvectors
of the Hessian at every probe position, so the decomposition must be cheap
and vectorizable across strands.  We use the analytic solutions: the
quadratic formula in 2-D and the trigonometric (Cardano) solution of the
characteristic cubic in 3-D, with eigenvectors recovered from cross products
of rows of ``A - λI``.

Eigenvalues are returned in **descending** order (λ₁ ≥ λ₂ ≥ …), matching the
convention of the curvature formulas in paper §4.1, with eigenvectors ordered
to match.
"""

from __future__ import annotations

import numpy as np

# Relative threshold below which a candidate eigenvector cross-product is
# considered degenerate and another row pair is tried instead.
_DEGENERATE = 1e-24


def _sym2_eigenvalues(m: np.ndarray) -> np.ndarray:
    a = m[..., 0, 0]
    b = m[..., 0, 1]
    d = m[..., 1, 1]
    mean = 0.5 * (a + d)
    # radius of the eigenvalue pair around the mean
    rad = np.sqrt(np.maximum(0.25 * (a - d) ** 2 + b * b, 0.0))
    return np.stack([mean + rad, mean - rad], axis=-1)


def _sym3_eigenvalues(m: np.ndarray) -> np.ndarray:
    # Trigonometric solution of the characteristic polynomial of a symmetric
    # 3x3 matrix (Smith 1961).  Work on the deviatoric part B = (A - q I)/p
    # whose eigenvalues are 2 cos(theta + 2k pi/3).
    q = np.trace(m, axis1=-2, axis2=-1) / 3.0
    a01, a02, a12 = m[..., 0, 1], m[..., 0, 2], m[..., 1, 2]
    p2 = (
        (m[..., 0, 0] - q) ** 2
        + (m[..., 1, 1] - q) ** 2
        + (m[..., 2, 2] - q) ** 2
        + 2.0 * (a01 * a01 + a02 * a02 + a12 * a12)
    )
    p = np.sqrt(np.maximum(p2 / 6.0, 0.0))
    eye = np.eye(3, dtype=m.dtype)
    safe_p = np.where(p > 0, p, 1.0)
    b = (m - q[..., None, None] * eye) / safe_p[..., None, None]
    # det(B)/2, clamped into acos's domain against round-off
    half_det = 0.5 * _det3(b)
    half_det = np.clip(half_det, -1.0, 1.0)
    phi = np.arccos(half_det) / 3.0
    lam0 = q + 2.0 * p * np.cos(phi)
    lam2 = q + 2.0 * p * np.cos(phi + 2.0 * np.pi / 3.0)
    lam1 = 3.0 * q - lam0 - lam2
    out = np.stack([lam0, lam1, lam2], axis=-1)
    # p == 0 means A is already a multiple of the identity
    isotropic = (p == 0)[..., None]
    return np.where(isotropic, q[..., None] * np.ones_like(out), out)


def _det3(m: np.ndarray) -> np.ndarray:
    return (
        m[..., 0, 0] * (m[..., 1, 1] * m[..., 2, 2] - m[..., 1, 2] * m[..., 2, 1])
        - m[..., 0, 1] * (m[..., 1, 0] * m[..., 2, 2] - m[..., 1, 2] * m[..., 2, 0])
        + m[..., 0, 2] * (m[..., 1, 0] * m[..., 2, 1] - m[..., 1, 1] * m[..., 2, 0])
    )


def evals(m: np.ndarray) -> np.ndarray:
    """Eigenvalues of a symmetric 2x2 or 3x3 matrix, descending.

    ``m`` may have arbitrary leading batch axes.  The matrix is symmetrized
    (``(m + mᵀ)/2``) first, since Diderot's ``evals`` is only defined on
    symmetric arguments and probe round-off can introduce tiny asymmetry.
    """
    m = np.asarray(m, dtype=np.float64)
    m = 0.5 * (m + np.swapaxes(m, -1, -2))
    n = m.shape[-1]
    if m.shape[-2] != n or n not in (2, 3):
        raise ValueError(f"evals requires a 2x2 or 3x3 matrix, got {m.shape[-2:]}")
    if n == 2:
        return _sym2_eigenvalues(m)
    return _sym3_eigenvalues(m)


def _evec_raw(m: np.ndarray, lam: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """A unit eigenvector of symmetric 3x3 ``m`` for eigenvalue ``lam``,
    plus a relative confidence in [0, ~1].

    The eigenvector is orthogonal to every row of ``A - λI``, so it lies
    along the cross product of any two independent rows; we compute all
    three row-pair cross products and keep the longest.  Confidence is that
    length relative to the squared magnitude of ``A - λI``; it vanishes
    exactly when λ is (numerically) a repeated eigenvalue, where the rows
    are pairwise parallel and the eigenspace is a plane or all of space.
    """
    a = m - lam[..., None, None] * np.eye(3, dtype=m.dtype)
    r0, r1, r2 = a[..., 0, :], a[..., 1, :], a[..., 2, :]
    c01 = np.cross(r0, r1)
    c02 = np.cross(r0, r2)
    c12 = np.cross(r1, r2)
    cands = np.stack([c01, c02, c12], axis=-2)
    lens = np.sum(cands * cands, axis=-1)
    best = np.argmax(lens, axis=-1)
    vec = np.take_along_axis(cands, best[..., None, None], axis=-2)[..., 0, :]
    len2 = np.sum(vec * vec, axis=-1, keepdims=True)
    scale2 = np.sum(a * a, axis=(-2, -1))[..., None]  # ~ |A - λI|²
    conf = np.sqrt(len2) / np.maximum(scale2, _DEGENERATE)
    length = np.sqrt(len2)
    good = length > _DEGENERATE
    with np.errstate(invalid="ignore", divide="ignore"):
        unit = vec / length
    fallback = np.broadcast_to(np.array([1.0, 0.0, 0.0]), vec.shape)
    return np.where(good, unit, fallback), np.where(good, conf, 0.0)[..., 0]


def evecs(m: np.ndarray) -> np.ndarray:
    """Orthonormal eigenvectors of a symmetric 2x2 or 3x3 matrix.

    Returns an array whose trailing shape is ``(n, n)``; row ``i`` is the
    unit eigenvector paired with ``evals(m)[..., i]`` (descending order).
    """
    m = np.asarray(m, dtype=np.float64)
    m = 0.5 * (m + np.swapaxes(m, -1, -2))
    n = m.shape[-1]
    lam = evals(m)
    if n == 2:
        # Eigenvector of [[a,b],[b,d]] for λ: (b, λ-a), or (λ-d, b).
        a = m[..., 0, 0]
        b = m[..., 0, 1]
        d = m[..., 1, 1]
        vecs = []
        for i in range(2):
            li = lam[..., i]
            v1 = np.stack([b, li - a], axis=-1)
            v2 = np.stack([li - d, b], axis=-1)
            n1 = np.sum(v1 * v1, axis=-1, keepdims=True)
            n2 = np.sum(v2 * v2, axis=-1, keepdims=True)
            v = np.where(n1 >= n2, v1, v2)
            length = np.sqrt(np.maximum(np.sum(v * v, axis=-1, keepdims=True), 0.0))
            good = length > _DEGENERATE
            with np.errstate(invalid="ignore", divide="ignore"):
                unit = v / length
            axis = np.zeros_like(v)
            axis[..., i] = 1.0
            vecs.append(np.where(good, unit, axis))
        return np.stack(vecs, axis=-2)
    v0, c0 = _evec_raw(m, lam[..., 0])
    v2, c2 = _evec_raw(m, lam[..., 2])
    # Repeated eigenvalues leave one (or both) vectors undetermined — their
    # eigenspace is a plane (or everything).  Use whichever end is well
    # determined to span the other:
    weak = 1e-10
    w0 = (c0 <= weak)[..., None]
    w2 = (c2 <= weak)[..., None]
    ortho2 = _orthogonal_unit(v2)
    # if λ0 is repeated, its eigenspace is the plane ⊥ v2
    v0 = np.where(w0 & ~w2, ortho2, v0)
    # if both are undetermined (isotropic), any orthonormal frame works
    v0 = np.where(w0 & w2, np.broadcast_to(np.array([1.0, 0.0, 0.0]), v0.shape), v0)
    ortho0 = _orthogonal_unit(v0)
    v2 = np.where(w2, ortho0, v2)
    # Re-orthogonalize v2 against v0 (they can coincide under near-repeated
    # eigenvalues), then complete the right-handed frame.
    v2 = v2 - np.sum(v2 * v0, axis=-1, keepdims=True) * v0
    l2 = np.sqrt(np.sum(v2 * v2, axis=-1, keepdims=True))
    alt = _orthogonal_unit(v0)
    with np.errstate(invalid="ignore", divide="ignore"):
        v2n = v2 / l2
    v2 = np.where(l2 > _DEGENERATE, v2n, alt)
    v1 = np.cross(v2, v0)
    return np.stack([v0, v1, v2], axis=-2)


def _orthogonal_unit(v: np.ndarray) -> np.ndarray:
    """Some unit vector orthogonal to unit vector ``v`` (3-D)."""
    # Cross with whichever coordinate axis is least aligned with v.
    ax = np.argmin(np.abs(v), axis=-1)
    basis = np.eye(3, dtype=v.dtype)
    e = basis[ax]
    w = np.cross(v, e)
    length = np.sqrt(np.sum(w * w, axis=-1, keepdims=True))
    return w / np.where(length > 0, length, 1.0)


def eigen_symmetric(m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigenvalues and eigenvectors of a symmetric matrix, descending.

    Convenience wrapper returning ``(evals(m), evecs(m))`` with the vectors
    computed once.
    """
    return evals(m), evecs(m)
