"""Tensor math substrate: the concrete values of the Diderot language.

Diderot's concrete numeric values are tensors — scalars, vectors, and
matrices (paper §2).  This package provides the small-tensor operations the
language exposes (dot, cross, outer, norms, trace, determinant, normalize)
and closed-form eigensystems for symmetric 2x2 and 3x3 matrices, all
vectorized over arbitrary leading "strand" axes.
"""

from repro.tensors.ops import (
    cross,
    determinant,
    dot,
    frobenius,
    identity,
    lerp,
    norm,
    normalize,
    outer,
    trace,
    transpose,
)
from repro.tensors.eigen import eigen_symmetric, evals, evecs

__all__ = [
    "cross",
    "determinant",
    "dot",
    "eigen_symmetric",
    "evals",
    "evecs",
    "frobenius",
    "identity",
    "lerp",
    "norm",
    "normalize",
    "outer",
    "trace",
    "transpose",
]
