"""illust-vr: "fancy volume-renderer with cartoon shading" (Figure 3, §6.2).

The ray strands compute implicit-surface principal curvatures (κ₁, κ₂)
from the gradient and Hessian (§4.1) and look the surface color up in a
2-D RGB transfer-function field sampled with bilinear interpolation
(``tent``), exactly the structure of the paper's Figure 3.
"""

from __future__ import annotations

import numpy as np

from repro.data import hand_phantom
from repro.image import Image, Orientation

SOURCE = """\
input real stepSz = 0.5;
input vec3 eye = [0.0, 0.0, 90.0];
input vec3 orig = [-15.0, -15.0, 45.0];
input vec3 cVec = [0.3, 0.0, 0.0];
input vec3 rVec = [0.0, 0.3, 0.0];
input real opacMin = 350.0;
input real opacMax = 900.0;
input real tMax = 120.0;
input int imgResU = 100;
input int imgResV = 100;
image(3)[] img = load("hand.nrrd");
field#2(3)[] F = img ⊛ bspln3;
// RGB colormap of (kappa1, kappa2)
image(2)[3] xfer = load("xfer.nrrd");
field#0(2)[3] RGB = tent ⊛ xfer;

strand RayCast (int r, int c) {
    vec3 pos = orig + real(r)*rVec + real(c)*cVec;
    vec3 dir = normalize(pos - eye);
    real t = 0.0;
    real transp = 1.0;
    output vec3 rgb = [0.0, 0.0, 0.0];

    update {
        pos = pos + stepSz*dir;
        t = t + stepSz;
        if (inside(pos, F)) {
            real val = F(pos);
            if (val > opacMin) {
                real opac = 1.0 if (val > opacMax)
                            else (val - opacMin)/(opacMax - opacMin);
                vec3 grad = -∇F(pos);
                vec3 norm = normalize(grad);
                tensor[3,3] H = ∇⊗∇F(pos);
                tensor[3,3] P = identity[3] - norm⊗norm;
                tensor[3,3] G = -(P•H•P)/|grad|;
                real disc = sqrt(max(0.0, 2.0*|G|^2 - trace(G)^2));
                real k1 = (trace(G) + disc)/2.0;
                real k2 = (trace(G) - disc)/2.0;
                // find material RGBA
                vec3 matRGB = RGB([max(-1.0, min(0.99, 6.0*k1)),
                                   max(-1.0, min(0.99, 6.0*k2))]);
                real diff = max(0.0, -dir • norm);
                rgb += transp*opac*diff*matRGB;
                transp *= 1.0 - opac;
            }
        }
        if (t > tMax) stabilize;
    }
}

initially [ RayCast(vi, ui) | vi in 0 .. imgResV-1,
                              ui in 0 .. imgResU-1 ];
"""

PAPER_STRANDS = 307_200
NAME = "illust-vr"


def curvature_colormap(size: int = 33) -> Image:
    """The (κ₁, κ₂) → RGB transfer function image (Figure 4's colormap).

    Index space covers κ ∈ [-1, 1] on both axes; colors separate convex
    (κ>0, warm) from concave (κ<0, cool) and saddle regions, like the
    bivariate map of Kindlmann et al. the paper cites [17].
    """
    u = np.linspace(-1.0, 1.0, size)
    k1, k2 = np.meshgrid(u, u, indexing="ij")
    r = 0.5 + 0.5 * np.clip(k1, -1, 1)
    g = 0.5 + 0.5 * np.clip(k2, -1, 1)
    b = 1.0 - 0.25 * np.clip(k1 + k2, -2, 2)
    rgb = np.stack([r, g, b], axis=-1)
    # orientation maps index [0, size-1] to world [-1, 1]
    orient = Orientation(
        np.diag([2.0 / (size - 1)] * 2), np.array([-1.0, -1.0])
    )
    return Image(rgb, dim=2, tensor_shape=(3,), orientation=orient)


def make_program(precision: str = "double", scale: float = 1.0, volume_size: int = 48):
    from repro.core.driver import compile_program

    prog = compile_program(SOURCE, precision=precision)
    prog.bind_image("img", hand_phantom(volume_size))
    prog.bind_image("xfer", curvature_colormap())
    res = max(2, int(round(100 * scale)))
    prog.set_input("imgResU", res)
    prog.set_input("imgResV", res)
    prog.set_input("cVec", [30.0 / res, 0.0, 0.0])
    prog.set_input("rVec", [0.0, 30.0 / res, 0.0])
    return prog
