"""ridge3d: particle-based ridge detection (§6.2).

"An initial uniform distribution of points within a portion of CT scan of
a lung is moved iteratively towards the centers of blood vessels, using
Newton optimization to compute ridge lines.  This program computes the
eigenvalues and eigenvectors of the Hessian, and permits the implementation
to closely resemble the mathematical definition of a ridge line" (citing
Eberly's height-ridge definition [11]).

A point x is on a 1-D height ridge when the gradient is orthogonal to the
two most-negative Hessian eigenvectors; the Newton step projects the
gradient onto that cross-sectional eigenplane and divides by the
eigenvalues:

    Δ = -( (g•e₂)/λ₂ ) e₂ - ( (g•e₃)/λ₃ ) e₃

Strands die when they leave the domain, land in non-ridge-like territory
(λ₂ ≥ 0), or fail to converge; they stabilize when the step shrinks below
``epsilon``.
"""

from __future__ import annotations

from repro.data import lung_phantom

SOURCE = """\
input int gridRes = 12;       // initial particles per axis
input real gridExt = 12.0;    // particle grid half-extent (world)
input real epsilon = 0.001;   // convergence threshold on |step|
input real maxStep = 1.0;     // Newton step clamp
input int stepsMax = 30;      // iteration limit
input real strengthMin = 30.0; // minimum ridge strength (-lambda2)
image(3)[] img = load("lung.nrrd");
field#2(3)[] F = img ⊛ bspln3;

strand Ridge (int i, int j, int k) {
    output vec3 pos = [gridExt*(2.0*real(i)/real(gridRes-1) - 1.0),
                       gridExt*(2.0*real(j)/real(gridRes-1) - 1.0),
                       gridExt*(2.0*real(k)/real(gridRes-1) - 1.0)];
    int steps = 0;

    update {
        if (!inside(pos, F) || steps > stepsMax)
            die;
        vec3 grad = ∇F(pos);
        tensor[3,3] H = ∇⊗∇F(pos);
        vec3 lam = evals(H);
        tensor[3,3] E = evecs(H);
        if (lam[1] > -strengthMin)   // not vessel-like here
            die;
        vec3 e2 = E[1];
        vec3 e3 = E[2];
        vec3 delta = -((grad • e2)/lam[1])*e2 - ((grad • e3)/lam[2])*e3;
        if (|delta| > maxStep)
            delta = maxStep*normalize(delta);
        if (|delta| < epsilon)
            stabilize;
        pos += delta;
        steps += 1;
    }
}

initially { Ridge(i, j, k) | i in 0 .. gridRes-1,
                             j in 0 .. gridRes-1,
                             k in 0 .. gridRes-1 };
"""

PAPER_STRANDS = 1_728_000
NAME = "ridge3d"


def make_program(precision: str = "double", scale: float = 1.0, volume_size: int = 48):
    from repro.core.driver import compile_program

    prog = compile_program(SOURCE, precision=precision)
    prog.bind_image("img", lung_phantom(volume_size))
    res = max(2, int(round(12 * scale)))
    prog.set_input("gridRes", res)
    return prog
