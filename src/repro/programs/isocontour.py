"""isocontour: particle-based isocontour detection (Figure 7, §4.3).

A grid of strands picks the nearest of three isovalues to its starting
field value and runs Newton-Raphson along the normalized gradient to land
on that isocontour; strands that leave the domain or fail to converge die,
so the stable collection (``initially { ... }``) is a *subset* of the
initial strands — the green dots of Figure 8.
"""

from __future__ import annotations

from repro.data import portrait_phantom

SOURCE = """\
input int resU = 100;
input int resV = 100;
input int stepsMax = 20;
input real epsilon = 0.001;
field#1(2)[] f = ctmr ⊛ load("ddro.nrrd");

strand sample (int ui, int vi) {
    output vec2 pos = [real(ui), real(vi)];
    // set isovalue to closest of 50, 30, or 10
    real f0 = 50.0 if f([real(ui), real(vi)]) >= 40.0
              else 30.0 if f([real(ui), real(vi)]) >= 20.0
              else 10.0;
    int steps = 0;

    update {
        if (!inside(pos, f) || steps > stepsMax)
            die;
        vec2 grad = ∇f(pos);
        vec2 delta =  // the Newton-Raphson step
            normalize(grad) * (f(pos) - f0)/|grad|;
        if (|delta| < epsilon)
            stabilize;
        pos -= delta;
        steps += 1;
    }
}

initially { sample(ui, vi) | vi in 0 .. resV-1,
                             ui in 0 .. resU-1 };
"""

NAME = "isocontour"
PAPER_STRANDS = None  # demonstration program (Figures 7-8), not in Table 1


def make_program(precision: str = "double", scale: float = 1.0, image_size: int = 100):
    from repro.core.driver import compile_program

    prog = compile_program(SOURCE, precision=precision)
    prog.bind_image("ddro", portrait_phantom(image_size))
    res = max(2, int(round(image_size * scale)))
    prog.set_input("resU", res)
    prog.set_input("resV", res)
    return prog
