"""The paper's benchmark Diderot programs (§6.2, Table 1).

Each module holds the Diderot source of one benchmark —

* :mod:`repro.programs.vr_lite`    — simple volume renderer (Figure 1)
* :mod:`repro.programs.illust_vr`  — curvature-shaded volume renderer (Figure 3)
* :mod:`repro.programs.lic2d`      — line integral convolution (Figure 5)
* :mod:`repro.programs.ridge3d`    — particle-based ridge detection
* :mod:`repro.programs.isocontour` — isocontour sampling (Figure 7, §4.3)

— plus a ``make_program`` helper that compiles it and binds the synthetic
input data from :mod:`repro.data`.  Grid resolutions are scaled-down
versions of the paper's (see DESIGN.md's benchmark scaling note); every
helper takes a ``scale`` knob.
"""

from repro.programs import illust_vr, isocontour, lic2d, ridge3d, vr_lite

ALL = {
    "vr-lite": vr_lite,
    "illust-vr": illust_vr,
    "lic2d": lic2d,
    "ridge3d": ridge3d,
    "isocontour": isocontour,
}

__all__ = ["ALL", "illust_vr", "isocontour", "lic2d", "ridge3d", "vr_lite"]
