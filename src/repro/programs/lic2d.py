"""lic2d: line integral convolution (Figure 5, §4.2, §6.2).

Each pixel strand integrates a streamline forward and backward through the
vector field with the midpoint method (second-order Runge-Kutta), averaging
noise-texture samples along it; the result is modulated by the seed-point
velocity magnitude, exactly as in the paper's Figure 5.
"""

from __future__ import annotations

from repro.data import noise_texture, vector_field_2d

SOURCE = """\
input real h = 0.005;       // integration step size
input int stepNum = 20;     // streamline steps each direction
input int imgResU = 250;
input int imgResV = 250;
input real extent = 0.75;   // seed grid half-extent in world space
field#1(2)[2] V = load("vectors.nrrd") ⊛ ctmr;
field#0(2)[] R = load("rand.nrrd") ⊛ tent;

strand LIC (vec2 pos0) {
    vec2 forw = pos0;
    vec2 back = pos0;
    output real sum = R(pos0);
    int step = 0;

    update {
        forw += h*V(forw + 0.5*h*V(forw));
        back -= h*V(back - 0.5*h*V(back));
        sum += R(forw) + R(back);
        step += 1;
        if (step == stepNum) {
            sum *= |V(pos0)| / real(1 + 2*stepNum);
            stabilize;
        }
    }
}

initially [ LIC([extent*(2.0*real(ui)/real(imgResU-1) - 1.0),
                 extent*(2.0*real(vi)/real(imgResV-1) - 1.0)])
            | vi in 0 .. imgResV-1, ui in 0 .. imgResU-1 ];
"""

PAPER_STRANDS = 572_220
NAME = "lic2d"


def make_program(precision: str = "double", scale: float = 1.0, field_size: int = 64):
    from repro.core.driver import compile_program

    prog = compile_program(SOURCE, precision=precision)
    prog.bind_image("vectors", vector_field_2d(field_size))
    prog.bind_image("rand", noise_texture(field_size))
    res = max(2, int(round(250 * scale)))
    prog.set_input("imgResU", res)
    prog.set_input("imgResV", res)
    return prog
