"""vr-lite: "simple volume-renderer with Phong shading" (Figure 1, §6.2).

A grid of ray strands marches through the scalar field; where the field
value exceeds the opacity window the strand accumulates shaded gray-level
contribution, with the surface normal taken from the gradient field.
"""

from __future__ import annotations

from repro.data import hand_phantom

#: the Diderot program (Figure 1, with the camera as explicit inputs)
SOURCE = """\
input real stepSz = 0.5;             // size of steps
input vec3 eye = [0.0, 0.0, 90.0];   // eye location
input vec3 orig = [-15.0, -15.0, 45.0]; // pixel (0,0) location
input vec3 cVec = [0.3, 0.0, 0.0];   // vector between columns
input vec3 rVec = [0.0, 0.3, 0.0];   // vector between rows
input real opacMin = 350.0;          // value with opacity 0.0
input real opacMax = 900.0;          // value with opacity 1.0
input real tMax = 120.0;             // ray length limit
input int imgResU = 100;
input int imgResV = 100;
image(3)[] img = load("hand.nrrd");
field#2(3)[] F = img ⊛ bspln3;

strand RayCast (int r, int c) {
    vec3 pos = orig + real(r)*rVec + real(c)*cVec;
    vec3 dir = normalize(pos - eye);
    real t = 0.0;
    real transp = 1.0;
    output real gray = 0.0;

    update {
        pos = pos + stepSz*dir;
        t = t + stepSz;
        if (inside(pos, F)) {
            real val = F(pos);
            if (val > opacMin) {
                real opac = 1.0 if (val > opacMax)
                            else (val - opacMin)/(opacMax - opacMin);
                vec3 norm = -normalize(∇F(pos));
                gray += transp*opac*max(0.0, -dir • norm);
                transp *= 1.0 - opac;
            }
        }
        if (t > tMax) stabilize;
    }
}

initially [ RayCast(vi, ui) | vi in 0 .. imgResV-1,
                              ui in 0 .. imgResU-1 ];
"""

#: paper's strand count for this benchmark (Table 1)
PAPER_STRANDS = 165_600

#: update-method line span for Table 1's "core" LOC (computed dynamically)
NAME = "vr-lite"


def make_program(precision: str = "double", scale: float = 1.0, volume_size: int = 48):
    """Compile vr-lite and bind the synthetic hand volume.

    ``scale`` multiplies the image resolution per axis (strand count
    scales with ``scale²``); at scale 1.0 the grid is 100x100 = 10,000
    strands vs the paper's 165,600.
    """
    from repro.core.driver import compile_program

    prog = compile_program(SOURCE, precision=precision)
    prog.bind_image("img", hand_phantom(volume_size))
    res = max(2, int(round(100 * scale)))
    prog.set_input("imgResU", res)
    prog.set_input("imgResV", res)
    # keep the viewport covering the volume at any resolution
    prog.set_input("cVec", [30.0 / res, 0.0, 0.0])
    prog.set_input("rVec", [0.0, 30.0 / res, 0.0])
    return prog
