"""A Teem/`gage`-style probing library — the paper's comparison baseline.

The paper's §6 benchmarks compare Diderot against hand-written C programs
using the Teem library, whose `gage` module provides convolution-based
probing through a *context* API: "A Teem programmer would have to create a
probing context in which image data and kernels are set, specify the list of
all quantities that are to be computed for every probe, and then update the
probe context to allocate buffers to store probe results.  After calling the
probe function at a particular location pos, the programmer then copies the
value and gradient out of the probe buffer." (§7)

This package is a faithful Python port of that API *shape*: contexts,
per-derivative-level kernel slots, query items with dependency resolution,
an explicit ``update()`` step, per-point ``probe()``, and answer buffers the
caller copies results from.  The hand-written baseline benchmark programs in
:mod:`repro.baselines` are written against it, reproducing both the
line-count comparison of Table 1 and the per-probe-overhead performance
comparison of Table 2.
"""

from repro.gage.items import ITEMS, Item, item_names
from repro.gage.ctx import Context

__all__ = ["Context", "ITEMS", "Item", "item_names"]
