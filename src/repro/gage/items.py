"""Query items for the gage-style probing context.

Mirrors Teem's ``gageScl*`` / ``gageVec*`` item tables: each *item* names a
quantity derivable from an image at a probe position, declares which
convolution derivative level it needs and which other items it is computed
from.  ``Context.update`` resolves the dependency closure, exactly like
``gageUpdate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Item:
    """One probeable quantity.

    Attributes
    ----------
    name:
        Public item name (``"value"``, ``"gradient"``, ...).
    kind:
        ``"scalar"`` for scalar-image items, ``"vector"`` for vector-image
        items (Teem's gageKindScl / gageKindVec split).
    deriv:
        Convolution derivative level this item needs (0, 1, or 2); also
        selects the kernel slot (``00``, ``11``, ``22``) that must be set.
    shape:
        Tensor shape of the answer, with ``d`` standing for the image
        dimension (resolved at update time).
    deps:
        Items this one is derived from; empty for direct convolution items.
    """

    name: str
    kind: str
    deriv: int
    shape: tuple = ()
    deps: tuple = field(default=())


#: Scalar-kind items (subset of Teem's gageScl table used by the paper's
#: benchmarks, plus the eigensystem items ridge detection needs).
_SCALAR_ITEMS = [
    Item("value", "scalar", 0, ()),
    Item("gradient", "scalar", 1, ("d",)),
    Item("gradmag", "scalar", 1, (), deps=("gradient",)),
    Item("normal", "scalar", 1, ("d",), deps=("gradient", "gradmag")),
    Item("hessian", "scalar", 2, ("d", "d")),
    Item("laplacian", "scalar", 2, (), deps=("hessian",)),
    Item("hesseval", "scalar", 2, ("d",), deps=("hessian",)),
    Item("hessevec", "scalar", 2, ("d", "d"), deps=("hessian",)),
    Item("2ndDD", "scalar", 2, (), deps=("hessian", "normal")),
]

#: Vector-kind items (subset of gageVec).
_VECTOR_ITEMS = [
    Item("vector", "vector", 0, ("d",)),
    Item("vectorlen", "vector", 0, (), deps=("vector",)),
    Item("jacobian", "vector", 1, ("d", "d")),
    Item("divergence", "vector", 1, (), deps=("jacobian",)),
    Item("curl", "vector", 1, ("curl",), deps=("jacobian",)),
]

ITEMS: dict[str, Item] = {i.name: i for i in _SCALAR_ITEMS + _VECTOR_ITEMS}


def item_names(kind: str) -> list[str]:
    """All item names available for an image kind."""
    return [i.name for i in ITEMS.values() if i.kind == kind]


def resolve_shape(item: Item, dim: int) -> tuple[int, ...]:
    """Concrete answer shape for an item on a ``dim``-dimensional image."""
    out = []
    for s in item.shape:
        if s == "d":
            out.append(dim)
        elif s == "curl":
            # curl is a scalar in 2-D, a 3-vector in 3-D
            if dim == 3:
                out.append(3)
            # dim == 2: scalar, no axis
        else:
            out.append(int(s))
    return tuple(out)


def dependency_closure(names) -> list[str]:
    """Requested items plus everything they are derived from, topo-sorted
    so that dependencies precede dependents."""
    order: list[str] = []
    seen: set[str] = set()

    def visit(name: str) -> None:
        if name in seen:
            return
        seen.add(name)
        for dep in ITEMS[name].deps:
            visit(dep)
        order.append(name)

    for n in names:
        if n not in ITEMS:
            known = ", ".join(sorted(ITEMS))
            raise KeyError(f"unknown gage item {n!r}; known items: {known}")
        visit(n)
    return order
