"""The gage-style probing context.

Usage follows the Teem workflow the paper describes in §7 (and whose
verbosity Table 1 quantifies):

    ctx = Context(image)                      # attach volume, infer kind
    ctx.kernel_set(0, bspln3)                 # value-reconstruction kernel
    ctx.kernel_set(1, bspln3.derivative())    # first-derivative kernel
    ctx.query_on("value")
    ctx.query_on("gradient")
    ctx.update()                              # validate, allocate answers
    if ctx.probe(pos):                        # per-point probe
        val = ctx.answer("value").copy()
        grad = ctx.answer("gradient").copy()

``probe`` computes **every** queried item at the given position and fills
the answer buffers — the "list of all quantities that are to be computed for
every probe" cost structure the paper contrasts with Diderot's on-demand
probes.  Answer buffers are reused between probes; callers copy what they
keep, as in C Teem.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GageError
from repro.fields.probe import probe_convolution, probe_inside
from repro.gage.items import ITEMS, dependency_closure, resolve_shape
from repro.image import Image
from repro.kernels import Kernel
from repro.tensors import eigen_symmetric


def _same_kernel(a: Kernel, b: Kernel) -> bool:
    """True when two kernels have identical supports and piece polynomials."""
    if a.support != b.support:
        return False
    return all(
        len(p.coeffs) == len(q.coeffs)
        and all(abs(x - y) <= 1e-12 for x, y in zip(p.coeffs, q.coeffs))
        for p, q in zip(a.pieces, b.pieces)
    )


class Context:
    """A probing context bound to one image volume."""

    def __init__(self, image: Image, dtype=np.float64):
        if image.tensor_order == 0:
            self.kind = "scalar"
        elif image.tensor_order == 1 and image.tensor_shape == (image.dim,):
            self.kind = "vector"
        else:
            # any other tensor shape: value-only probing (like a custom
            # gageKind with a single item)
            self.kind = "generic"
        self.image = image
        self.dtype = dtype
        self._kernels: dict[int, Kernel] = {}
        self._query: set[str] = set()
        self._plan: list[str] = []
        self._answers: dict[str, np.ndarray] = {}
        self._updated = False

    # -- configuration (gageKernelSet / gageQueryItemOn) --------------------

    def kernel_set(self, level: int, kernel: Kernel) -> None:
        """Set the kernel for convolution derivative ``level`` (0, 1, or 2).

        Mirrors Teem's kernel00/kernel11/kernel22 slots.  The level-``r``
        slot holds the kernel whose plain evaluation reconstructs the r-th
        derivative factor; passing a base kernel here and letting the
        context differentiate it is *not* how Teem works, so neither do we.
        """
        if level not in (0, 1, 2):
            raise GageError(f"kernel level must be 0, 1, or 2, got {level}")
        self._kernels[level] = kernel
        self._updated = False

    def query_on(self, name: str) -> None:
        """Request that ``name`` be computed by every probe."""
        if self.kind == "generic":
            if name != "value":
                raise GageError(
                    f"generic tensor images support only the 'value' item, "
                    f"not {name!r}"
                )
        elif name not in ITEMS:
            known = ", ".join(sorted(ITEMS))
            raise GageError(f"unknown gage item {name!r}; known: {known}")
        elif ITEMS[name].kind != self.kind:
            raise GageError(
                f"item {name!r} is for {ITEMS[name].kind} images; this "
                f"context holds a {self.kind} image"
            )
        self._query.add(name)
        self._updated = False

    def query_off(self, name: str) -> None:
        self._query.discard(name)
        self._updated = False

    def update(self) -> None:
        """Validate configuration and allocate answer buffers (gageUpdate)."""
        if not self._query:
            raise GageError("no query items enabled")
        self._plan = dependency_closure(self._query)
        needed_levels = {ITEMS[n].deriv for n in self._plan if not ITEMS[n].deps}
        for level in sorted(needed_levels):
            if level not in self._kernels:
                raise GageError(
                    f"query needs derivative level {level} but no kernel is "
                    f"set in slot {level} (kernel_set({level}, ...))"
                )
        if 0 not in self._kernels:
            raise GageError("kernel slot 0 (value reconstruction) must be set")
        base = self._kernels[0]
        for level in sorted(needed_levels):
            if level and not _same_kernel(self._kernels[level], base.derivative(level)):
                raise GageError(
                    f"kernel slot {level} ({self._kernels[level].name}) is not "
                    f"the {level}-th derivative of slot 0 ({base.name}); mixed "
                    "kernel families are not supported"
                )
        self._base = base
        d = self.image.dim
        self._answers = {}
        for n in self._plan:
            if self.kind == "generic" and n == "value":
                shape = self.image.tensor_shape
            else:
                shape = resolve_shape(ITEMS[n], d)
            self._answers[n] = np.zeros(shape, dtype=self.dtype)
        self._updated = True

    # -- probing (gageProbe / gageAnswerPointer) ----------------------------

    def inside(self, pos) -> bool:
        """True if every needed convolution support fits around ``pos``."""
        if not self._updated:
            raise GageError("context not updated; call update() first")
        support = max(
            self._kernels[ITEMS[n].deriv].support
            for n in self._plan
            if not ITEMS[n].deps
        )
        return bool(probe_inside(self.image, support, np.asarray(pos, dtype=float)))

    def probe(self, pos) -> bool:
        """Probe at world position ``pos``; fill all answer buffers.

        Returns False (leaving the buffers untouched) when ``pos`` is
        outside the field domain, mirroring gageProbe's error return.
        """
        if not self._updated:
            raise GageError("context not updated; call update() first")
        if not self.inside(pos):
            return False
        pos = np.asarray(pos, dtype=self.dtype)
        for name in self._plan:
            self._compute(name, pos)
        return True

    def answer(self, name: str) -> np.ndarray:
        """The answer buffer for ``name`` — reused by the next probe."""
        try:
            return self._answers[name]
        except KeyError:
            raise GageError(
                f"item {name!r} was not part of the updated query"
            ) from None

    # -- item computation ----------------------------------------------------

    def _compute(self, name: str, pos: np.ndarray) -> None:
        item = ITEMS[name]
        ans = self._answers
        d = self.image.dim
        if not item.deps:
            out = probe_convolution(
                self.image, self._base, pos, item.deriv, dtype=self.dtype
            )
            np.copyto(ans[name], out)
            return
        if name == "gradmag":
            np.copyto(ans[name], np.sqrt(np.sum(ans["gradient"] ** 2)))
        elif name == "normal":
            g = ans["gradient"]
            m = ans["gradmag"]
            np.copyto(ans[name], g / m if m > 0 else 0.0)
        elif name == "laplacian":
            np.copyto(ans[name], np.trace(ans["hessian"]))
        elif name in ("hesseval", "hessevec"):
            lam, vec = eigen_symmetric(ans["hessian"])
            np.copyto(ans[name], lam if name == "hesseval" else vec)
        elif name == "2ndDD":
            n = ans["normal"]
            np.copyto(ans[name], n @ ans["hessian"] @ n)
        elif name == "vectorlen":
            np.copyto(ans[name], np.sqrt(np.sum(ans["vector"] ** 2)))
        elif name == "divergence":
            np.copyto(ans[name], np.trace(ans["jacobian"]))
        elif name == "curl":
            j = ans["jacobian"]
            if d == 2:
                np.copyto(ans[name], j[1, 0] - j[0, 1])
            else:
                np.copyto(
                    ans[name],
                    np.array(
                        [j[2, 1] - j[1, 2], j[0, 2] - j[2, 0], j[1, 0] - j[0, 1]]
                    ),
                )
        else:  # pragma: no cover - table and dispatch kept in sync by tests
            raise GageError(f"no computation rule for item {name!r}")
