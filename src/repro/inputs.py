"""Parsing of input-variable values given as command-line text.

The compiler "synthesizes glue code that allows command-line setting of
input variables" (paper §3.3.1).  Both of our command-line surfaces —
``python -m repro --input name=value`` and the synthesized
:meth:`Program.cli <repro.runtime.program.Program.cli>` — accept the same
textual forms, parsed here:

* ``true`` / ``false`` — booleans
* ``[a,b,c]`` — tensors (a list of reals)
* ``42`` — integers
* ``1.5``, ``1e-3`` — reals
"""

from __future__ import annotations

from repro.errors import InputError


def parse_value(text: str):
    """Parse one input value from its command-line spelling.

    Raises :class:`~repro.errors.InputError` on text that parses as none
    of the accepted forms.
    """
    text = text.strip()
    if text in ("true", "false"):
        return text == "true"
    if text.startswith("["):
        if not text.endswith("]"):
            raise InputError(f"unterminated vector literal {text!r}")
        body = text[1:-1].strip()
        if not body:
            raise InputError(f"empty vector literal {text!r}")
        try:
            return [float(part) for part in body.split(",")]
        except ValueError as exc:
            raise InputError(f"bad vector component in {text!r}: {exc}") from exc
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError as exc:
        raise InputError(
            f"cannot parse input value {text!r} (expected bool, int, "
            "real, or [a,b,...])"
        ) from exc
