"""NRRD reader.

Supports NRRD0001-0005 headers, attached and detached data, ``raw`` /
``gzip`` / ``ascii`` encodings, both endiannesses, and non-spatial axes
(identified by a ``none`` entry in ``space directions`` or a non-domain
``kinds`` entry), which become the tensor shape of the resulting
:class:`~repro.image.Image`.

NRRD orders axes fastest-first; our images index axes in the same order
(axis 0 of :attr:`Image.data` is NRRD axis 0) with tensor axes moved to the
end, per the :class:`~repro.image.Image` layout contract.
"""

from __future__ import annotations

import gzip
import os
import zlib

import numpy as np

from repro.errors import NrrdError
from repro.image import Image, Orientation

_MAGIC = "NRRD000"

#: NRRD type name → numpy dtype (without byte order).
_TYPES = {
    "signed char": "i1", "int8": "i1", "int8_t": "i1",
    "uchar": "u1", "unsigned char": "u1", "uint8": "u1", "uint8_t": "u1",
    "short": "i2", "short int": "i2", "signed short": "i2", "int16": "i2", "int16_t": "i2",
    "ushort": "u2", "unsigned short": "u2", "uint16": "u2", "uint16_t": "u2",
    "int": "i4", "signed int": "i4", "int32": "i4", "int32_t": "i4",
    "uint": "u4", "unsigned int": "u4", "uint32": "u4", "uint32_t": "u4",
    "longlong": "i8", "long long": "i8", "int64": "i8", "int64_t": "i8",
    "ulonglong": "u8", "unsigned long long": "u8", "uint64": "u8", "uint64_t": "u8",
    "float": "f4", "double": "f8",
}

#: ``kinds`` entries that denote a spatial (domain) axis.
_DOMAIN_KINDS = {"domain", "space", "time"}


def _parse_vector(text: str) -> list[float] | None:
    """Parse ``(a,b,c)`` into floats, or None for the literal ``none``."""
    text = text.strip()
    if text == "none":
        return None
    if not (text.startswith("(") and text.endswith(")")):
        raise NrrdError(f"malformed NRRD vector: {text!r}")
    return [float(p) for p in text[1:-1].split(",")]


def read_nrrd_header(path: str) -> tuple[dict, int]:
    """Read just the header of a NRRD file.

    Returns the field dictionary (lower-cased field names) and the byte
    offset at which attached data begins (meaningless for detached headers).
    """
    fields: dict[str, str] = {}
    with open(path, "rb") as fp:
        magic = fp.readline().decode("ascii", errors="replace").rstrip("\r\n")
        if not magic.startswith(_MAGIC):
            raise NrrdError(f"{path}: not a NRRD file (magic {magic!r})")
        while True:
            raw = fp.readline()
            if raw == b"":
                raise NrrdError(f"{path}: unexpected EOF in NRRD header")
            line = raw.decode("ascii", errors="replace").rstrip("\r\n")
            if line == "":
                break  # blank line separates header from attached data
            if line.startswith("#"):
                continue
            if ":=" in line:  # key/value pair (metadata) — keep but ignore
                key, _, value = line.partition(":=")
                fields.setdefault("kv:" + key.strip().lower(), value.strip())
                continue
            if ":" not in line:
                raise NrrdError(f"{path}: malformed NRRD header line {line!r}")
            key, _, value = line.partition(":")
            fields[key.strip().lower()] = value.strip()
        offset = fp.tell()
    return fields, offset


def _decode(buf: bytes, encoding: str, dtype: np.dtype, count: int,
            path: str = "<data>") -> np.ndarray:
    if encoding in ("raw",):
        usable = (len(buf) // dtype.itemsize) * dtype.itemsize
        return np.frombuffer(buf[:usable], dtype=dtype)
    if encoding in ("gzip", "gz"):
        try:
            raw = gzip.decompress(buf)
        except (OSError, zlib.error) as exc:
            raise NrrdError(f"{path}: bad gzip data in NRRD: {exc}") from exc
        usable = (len(raw) // dtype.itemsize) * dtype.itemsize
        return np.frombuffer(raw[:usable], dtype=dtype)
    if encoding in ("ascii", "txt", "text"):
        return np.array(buf.decode("ascii").split(), dtype=dtype)[:count]
    raise NrrdError(f"{path}: unsupported NRRD encoding {encoding!r}")


def read_nrrd(path: str, dtype=np.float64) -> Image:
    """Read a NRRD file into an :class:`~repro.image.Image`.

    Samples are converted to ``dtype`` (the Diderot compiler "generates code
    that maps image values to reals", §3.3.1).
    """
    fields, offset = read_nrrd_header(path)

    try:
        ndim = int(fields["dimension"])
        sizes = [int(s) for s in fields["sizes"].split()]
        type_name = fields["type"].lower()
        encoding = fields.get("encoding", "raw").lower()
    except KeyError as exc:
        raise NrrdError(f"{path}: missing required NRRD field {exc}") from exc
    if len(sizes) != ndim:
        raise NrrdError(f"{path}: sizes {sizes} do not match dimension {ndim}")
    if any(s <= 0 for s in sizes):
        raise NrrdError(f"{path}: non-positive axis size in {sizes}")
    if type_name not in _TYPES:
        raise NrrdError(f"{path}: unsupported NRRD type {type_name!r}")

    base = _TYPES[type_name]
    endian = fields.get("endian", "little").lower()
    order = {"little": "<", "big": ">"}.get(endian)
    if order is None:
        raise NrrdError(f"{path}: unsupported endian {endian!r}")
    file_dtype = np.dtype(base if base.endswith("1") else order + base)

    count = 1
    for s in sizes:
        count *= s

    datafile = fields.get("data file") or fields.get("datafile")
    data_path = path
    if datafile:
        data_path = os.path.join(os.path.dirname(os.path.abspath(path)), datafile)
        with open(data_path, "rb") as fp:
            buf = fp.read()
    else:
        with open(path, "rb") as fp:
            fp.seek(offset)
            buf = fp.read()
        skip = int(fields.get("line skip", 0) or 0)
        for _ in range(skip):
            nl = buf.find(b"\n")
            buf = buf[nl + 1:] if nl >= 0 else b""
        bskip = int(fields.get("byte skip", 0) or 0)
        if bskip:
            buf = buf[bskip:]

    flat = _decode(buf, encoding, file_dtype, count, path=data_path)
    if flat.size < count:
        raise NrrdError(
            f"{path}: expected {count} samples, found {flat.size}"
        )
    flat = flat[:count]

    # NRRD lists axes fastest-first; the flat buffer is laid out with axis 0
    # fastest, so reshape with reversed sizes and transpose into NRRD order.
    data = flat.reshape(tuple(reversed(sizes))).transpose(tuple(range(ndim - 1, -1, -1)))

    # Classify axes: spatial (domain) vs. tensor ("none" direction / kind).
    directions_field = fields.get("space directions")
    kinds_field = fields.get("kinds")
    spatial = [True] * ndim
    directions: list[list[float] | None] = [None] * ndim
    if directions_field is not None:
        parts = directions_field.split()
        if len(parts) != ndim:
            raise NrrdError(f"{path}: space directions count != dimension")
        for i, p in enumerate(parts):
            vec = _parse_vector(p)
            directions[i] = vec
            spatial[i] = vec is not None
    elif kinds_field is not None:
        kinds = kinds_field.split()
        if len(kinds) != ndim:
            raise NrrdError(f"{path}: kinds count != dimension")
        spatial = [k.lower() in _DOMAIN_KINDS for k in kinds]

    spatial_axes = [i for i, s in enumerate(spatial) if s]
    tensor_axes = [i for i, s in enumerate(spatial) if not s]
    dim = len(spatial_axes)
    if dim not in (1, 2, 3):
        raise NrrdError(f"{path}: {dim} spatial axes; Diderot supports 1-3")

    # Move tensor axes to the end, preserving relative order on both sides.
    data = data.transpose(spatial_axes + tensor_axes)
    tensor_shape = tuple(sizes[i] for i in tensor_axes)

    # Orientation from space directions / spacings / space origin.
    space_dim = dim
    if "space dimension" in fields:
        space_dim = int(fields["space dimension"])
    if space_dim != dim:
        raise NrrdError(
            f"{path}: space dimension {space_dim} != {dim} spatial axes "
            "(projected orientations are not supported)"
        )
    dir_rows = np.eye(dim)
    if directions_field is not None:
        rows = [directions[i] for i in spatial_axes]
        if any(r is None or len(r) != dim for r in rows):
            raise NrrdError(f"{path}: malformed space directions")
        dir_rows = np.array(rows, dtype=np.float64)
    elif "spacings" in fields:
        sp = fields["spacings"].split()
        if len(sp) != ndim:
            raise NrrdError(f"{path}: spacings count != dimension")
        vals = []
        for i in spatial_axes:
            s = sp[i].lower()
            vals.append(1.0 if s in ("nan", "none") else float(sp[i]))
        dir_rows = np.diag(vals)

    origin = np.zeros(dim)
    if "space origin" in fields:
        vec = _parse_vector(fields["space origin"])
        if vec is None or len(vec) != dim:
            raise NrrdError(f"{path}: malformed space origin")
        origin = np.array(vec, dtype=np.float64)

    if dtype is None and data.dtype.byteorder not in ("=", "|"):
        # keep the stored sample type but never leak a foreign byte order
        data = data.astype(data.dtype.newbyteorder("="))
    return Image(
        np.ascontiguousarray(data),
        dim=dim,
        tensor_shape=tensor_shape,
        orientation=Orientation(dir_rows, origin),
        dtype=dtype,
    )
