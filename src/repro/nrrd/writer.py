"""NRRD writer.

Writes :class:`~repro.image.Image` values (and bare arrays) as NRRD files
with attached headers, in ``raw``, ``gzip``, or ``ascii`` encoding.  Tensor
axes are written first (fastest), marked non-spatial with a ``none`` space
direction, matching how Teem stores vector- and matrix-valued volumes.
"""

from __future__ import annotations

import gzip
import warnings

import numpy as np

from repro.errors import NrrdError
from repro.image import Image

#: numpy kind+itemsize → NRRD type name.
_NAMES = {
    ("i", 1): "int8", ("u", 1): "uint8",
    ("i", 2): "int16", ("u", 2): "uint16",
    ("i", 4): "int32", ("u", 4): "uint32",
    ("i", 8): "int64", ("u", 8): "uint64",
    ("f", 4): "float", ("f", 8): "double",
}


def _type_name(dtype: np.dtype) -> str:
    key = (dtype.kind, dtype.itemsize)
    if key not in _NAMES:
        raise NrrdError(f"cannot write dtype {dtype} as NRRD")
    return _NAMES[key]


def _fmt_vec(v) -> str:
    return "(" + ",".join(repr(float(x)) for x in v) + ")"


def _checked_cast(data: np.ndarray, dtype) -> np.ndarray:
    """``astype`` that refuses lossy conversions.

    A plain ``astype`` silently wraps out-of-range values when narrowing
    to integer types and silently turns NaN into INT_MIN; both would write
    a structurally valid NRRD holding corrupted samples.  Raise
    :class:`NrrdError` instead when the cast would lose values: non-finite
    data into an integer type, out-of-range integers, or float narrowing
    that overflows to inf.
    """
    target = np.dtype(dtype)
    if target == data.dtype or data.size == 0:
        return data.astype(target)
    if target.kind in "iu":
        if data.dtype.kind == "f" and not np.all(np.isfinite(data)):
            raise NrrdError(
                f"cannot cast non-finite values to {target.name} for NRRD "
                "output"
            )
        info = np.iinfo(target)
        lo, hi = data.min(), data.max()
        if lo < info.min or hi > info.max:
            raise NrrdError(
                f"values [{lo}, {hi}] do not fit in {target.name}; "
                "rescale before writing"
            )
        if data.dtype.kind == "f" and not np.all(data == np.trunc(data)):
            raise NrrdError(
                f"non-integral values would be truncated by a cast to "
                f"{target.name}; round explicitly before writing"
            )
    elif target.kind == "f" and data.dtype.kind == "f":
        with warnings.catch_warnings():
            # the overflow this cast may warn about is exactly what the
            # check below turns into a hard NrrdError
            warnings.simplefilter("ignore", RuntimeWarning)
            cast = data.astype(target)
        if not np.all(np.isfinite(cast) | ~np.isfinite(data)):
            raise NrrdError(
                f"values overflow {target.name}; narrow the range before "
                "writing"
            )
        return cast
    return data.astype(target)


def write_nrrd(path: str, image, encoding: str = "raw", dtype=None,
               content: str | None = None, endian: str = "little") -> None:
    """Write ``image`` (an :class:`Image` or a bare array) to ``path``.

    Bare arrays are treated as scalar images with identity orientation when
    they have 1-3 axes; higher-rank arrays must be wrapped in :class:`Image`
    so the spatial/tensor split is explicit.

    ``dtype`` conversions are checked (:func:`_checked_cast`): a cast that
    would wrap, truncate, or drop NaN raises :class:`NrrdError` rather than
    silently corrupting samples.  ``endian`` selects the byte order of
    multi-byte ``raw``/``gzip`` payloads.
    """
    if endian not in ("little", "big"):
        raise NrrdError(f"endian must be 'little' or 'big', got {endian!r}")
    if not isinstance(image, Image):
        arr = np.asarray(image)
        if arr.ndim not in (1, 2, 3):
            raise NrrdError(
                "bare arrays with >3 axes are ambiguous; wrap in Image to "
                "mark which axes are spatial"
            )
        image = Image(arr, dim=arr.ndim, tensor_shape=())
    data = image.data
    if dtype is not None:
        data = _checked_cast(data, dtype)
    dtype_np = np.dtype(data.dtype)
    if dtype_np.kind not in "iuf":
        raise NrrdError(f"cannot write dtype {dtype_np} as NRRD")

    dim = image.dim
    t_order = image.tensor_order
    # NRRD axis order: tensor axes first (fastest), then spatial axes.
    nrrd_sizes = list(image.tensor_shape) + list(image.sizes)
    # numpy layout for "first NRRD axis fastest" = reversed NRRD order,
    # C-contiguous.  Our data is (spatial..., tensor...), so reversed NRRD
    # order is (spatial reversed..., tensor reversed...).
    perm = tuple(range(dim - 1, -1, -1)) + tuple(
        range(dim + t_order - 1, dim - 1, -1)
    )
    flat = np.ascontiguousarray(data.transpose(perm)).reshape(-1)

    lines = ["NRRD0005"]
    if content:
        lines.append(f"content: {content}")
    lines.append(f"type: {_type_name(dtype_np)}")
    lines.append(f"dimension: {len(nrrd_sizes)}")
    lines.append("sizes: " + " ".join(str(s) for s in nrrd_sizes))
    if dtype_np.itemsize > 1 and encoding in ("raw", "gzip"):
        lines.append(f"endian: {endian}")
        flat = flat.astype(dtype_np.newbyteorder("<" if endian == "little" else ">"))
    lines.append(f"encoding: {encoding}")
    lines.append(f"space dimension: {dim}")
    dirs = ["none"] * t_order + [
        _fmt_vec(image.orientation.directions[i]) for i in range(dim)
    ]
    lines.append("space directions: " + " ".join(dirs))
    lines.append("space origin: " + _fmt_vec(image.orientation.origin))
    kinds = ["none"] * t_order + ["domain"] * dim
    lines.append("kinds: " + " ".join(kinds))
    header = "\n".join(lines) + "\n\n"

    if encoding == "raw":
        payload = flat.tobytes()
    elif encoding == "gzip":
        payload = gzip.compress(flat.tobytes())
    elif encoding == "ascii":
        payload = (" ".join(repr(v) for v in flat.tolist()) + "\n").encode("ascii")
    else:
        raise NrrdError(f"unsupported NRRD encoding {encoding!r}")

    with open(path, "wb") as fp:
        fp.write(header.encode("ascii"))
        fp.write(payload)
