"""NRRD ("nearly raw raster data") file format support (paper §5.5).

The Diderot runtime reads image inputs from NRRD files and writes program
output to NRRD files; the format carries the orientation metadata
(``space directions`` / ``space origin``) that probe synthesis needs.  This
is a from-scratch implementation of the subset of NRRD used by the paper's
workloads: attached and detached headers, raw / gzip / ascii encodings, the
standard scalar sample types, and non-spatial (tensor) axes.
"""

from repro.nrrd.reader import read_nrrd, read_nrrd_header
from repro.nrrd.writer import write_nrrd

__all__ = ["read_nrrd", "read_nrrd_header", "write_nrrd"]
