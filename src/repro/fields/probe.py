"""Vectorized separable-convolution probing (paper §5.3, Figure 11).

Probing a field ``F = V ⊛ h`` at world position ``x`` is

    ``F(x) = Σ_i V[n + i] · Π_a h(f_a - i_a)``     with ``n = ⌊M⁻¹x⌋``,
    ``f = M⁻¹x - n``

and derivatives replace per-axis kernel factors with kernel derivatives
(``∂F/∂y`` uses ``h(x)h'(y)h(z)``, §2).  The functions here are the runtime
counterpart of the compiler's probe synthesis: every compiled probe lowers to
one :func:`gather_neighborhood` plus per-axis weight evaluations and an
einsum contraction.  Everything is vectorized across an arbitrary batch of
positions — one lane per strand in a block.

Safety contract: positions may be garbage in predicated-off lanes (DESIGN.md
deviation 3), so index math sanitizes non-finite values and clamps gathers
into the valid sample range.  The ``inside`` test is what gives *live* lanes
their real domain guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.image import Image
from repro.kernels import Kernel
from repro.tensors.ops import einsum_cached

# Bound on sanitized floor indices; far beyond any realistic image size but
# safely inside int64.
_INDEX_BOUND = 1 << 40


def split_position(pos_index: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split index-space positions into integer part ``n`` and fraction ``f``.

    ``pos_index`` has shape ``(..., d)``.  Non-finite coordinates are mapped
    to 0 so that predicated-off lanes cannot poison the gather (their results
    are discarded by the caller's mask).
    """
    pos_index = np.asarray(pos_index)
    clean = np.where(np.isfinite(pos_index), pos_index, 0.0)
    clean = np.clip(clean, -_INDEX_BOUND, _INDEX_BOUND)
    n = np.floor(clean)
    f = clean - n
    return n.astype(np.int64), f.astype(pos_index.dtype, copy=False)


def gather_neighborhood(data: np.ndarray, n: np.ndarray, support: int, dim: int) -> np.ndarray:
    """Gather the ``(2s)^d`` sample neighborhood around floor indices ``n``.

    Parameters
    ----------
    data:
        Image sample array of shape ``sizes + tensor_shape``.
    n:
        Integer floor indices, shape ``(N, d)``.
    support:
        Kernel support radius ``s``; offsets ``1-s .. s`` are gathered.
    dim:
        Spatial dimension ``d`` (``data`` has ``d`` leading spatial axes).

    Returns an array of shape ``(N, 2s, ..., 2s, *tensor_shape)`` with one
    offset axis per spatial axis, in image-axis order.  Out-of-range indices
    are clamped to the nearest valid sample (see module docstring).
    """
    offsets = np.arange(1 - support, support + 1)
    index_lists = []
    for a in range(dim):
        idx = n[:, a, None] + offsets  # (N, 2s)
        idx = np.clip(idx, 0, data.shape[a] - 1)
        # Broadcast shape: (N, 1, ..., 2s, ..., 1) with 2s in slot a+1.
        shape = [idx.shape[0]] + [1] * dim
        shape[a + 1] = 2 * support
        index_lists.append(idx.reshape(shape))
    return data[tuple(index_lists)]


def axis_weights(kernel: Kernel, f: np.ndarray, deriv: int) -> np.ndarray:
    """Per-axis convolution weights ``h⁽ᵈᵉʳⁱᵛ⁾(f - i)`` for all offsets.

    ``f`` has shape ``(N,)``; the result is ``(N, 2s)`` in offset order
    ``1-s .. s``, evaluated with Horner's rule from the kernel's weight
    polynomials.
    """
    return kernel.derivative(deriv).weights(f).astype(f.dtype, copy=False)


_AXIS_LETTERS = "ijk"


def _contract(vals: np.ndarray, weights: list[np.ndarray]) -> np.ndarray:
    """Contract a gathered neighborhood with per-axis weight vectors.

    ``vals`` is ``(N, 2s, ..., 2s, *tensor_shape)``; each entry of
    ``weights`` is ``(N, 2s)``.  Returns ``(N, *tensor_shape)``.
    """
    d = len(weights)
    letters = _AXIS_LETTERS[:d]
    spec = "n" + letters + "...," + ",".join("n" + c for c in letters) + "->n..."
    return einsum_cached(spec, vals, *weights)


def probe_convolution(
    image: Image,
    kernel: Kernel,
    pos_world: np.ndarray,
    deriv: int = 0,
    dtype=None,
) -> np.ndarray:
    """Probe ``V ⊛ ∇ᵈᵉʳⁱᵛ h`` at a batch of world positions.

    Parameters
    ----------
    image, kernel:
        The convolution defining the field.
    pos_world:
        World positions, shape ``(N, d)`` (a single position ``(d,)`` is
        also accepted and returns an unbatched result).
    deriv:
        Differentiation level ``r``.  The result appends ``r`` axes of
        length ``d`` to the image's tensor shape and is transformed to world
        space with ``M⁻ᵀ`` per derivative axis (paper §5.3).
    dtype:
        Computation dtype; defaults to the position dtype.

    Returns an array of shape ``(N, *tensor_shape, d, ..., d)``.
    """
    pos_world = np.asarray(pos_world)
    single = pos_world.ndim == 1
    if single:
        pos_world = pos_world[None, :]
    d = image.dim
    if pos_world.shape[-1] != d:
        raise ValueError(
            f"positions have dimension {pos_world.shape[-1]}, image is {d}-D"
        )
    if dtype is None:
        dtype = pos_world.dtype if pos_world.dtype.kind == "f" else np.float64
    pos_world = pos_world.astype(dtype, copy=False)

    orient = image.orientation
    pos_index = orient.to_index(pos_world).astype(dtype, copy=False)
    n, f = split_position(pos_index)
    data = image.data
    if data.dtype != dtype:
        data = data.astype(dtype)
    vals = gather_neighborhood(data, n, kernel.support, d)
    # Move tensor axes in vals to the end is already the layout; contraction
    # keeps them via the einsum ellipsis.

    # Base (order 0..deriv) weight tables per axis, computed once per axis
    # and derivative order actually used.
    weight_cache: dict[tuple[int, int], np.ndarray] = {}

    def w(axis: int, order: int) -> np.ndarray:
        key = (axis, order)
        if key not in weight_cache:
            weight_cache[key] = axis_weights(kernel, f[:, axis], order)
        return weight_cache[key]

    if deriv == 0:
        out = _contract(vals, [w(a, 0) for a in range(d)])
        return out[0] if single else out

    # One contraction per derivative multi-index (a_1, ..., a_r); axis a's
    # kernel factor is differentiated once per occurrence of a.
    n_batch = pos_world.shape[0]
    tshape = image.tensor_shape
    out = np.zeros((n_batch,) + tshape + (d,) * deriv, dtype=dtype)
    for flat in range(d**deriv):
        combo = []
        rest = flat
        for _ in range(deriv):
            combo.append(rest % d)
            rest //= d
        combo.reverse()
        mult = [combo.count(a) for a in range(d)]
        weights = [w(a, mult[a]) for a in range(d)]
        idx = (slice(None),) + (slice(None),) * len(tshape) + tuple(combo)
        out[idx] = _contract(vals, weights)

    # World-space pushback: contract every derivative axis with M^{-T}.
    g = orient.gradient_transform_as(dtype)
    for pos in range(deriv):
        axis = 1 + len(tshape) + pos
        out = np.moveaxis(np.tensordot(out, g, axes=([axis], [1])), -1, axis)
    return out[0] if single else out


def probe_inside(image: Image, support: int, pos_world: np.ndarray) -> np.ndarray:
    """The ``inside(x, F)`` test for a convolution field (paper §3.2).

    True where the full kernel support around ``x`` lies within the sample
    grid, i.e. the probe needs no clamped samples.  Non-finite positions are
    outside by definition.
    """
    pos_world = np.asarray(pos_world)
    single = pos_world.ndim == 1
    if single:
        pos_world = pos_world[None, :]
    pos_index = image.orientation.to_index(pos_world)
    finite = np.all(np.isfinite(pos_index), axis=-1)
    n, _ = split_position(pos_index)
    lo, hi = image.index_bounds(support)
    ok = np.all((n >= lo) & (n <= hi), axis=-1) & finite
    return bool(ok[0]) if single else ok
