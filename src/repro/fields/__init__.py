"""Continuous tensor fields (paper §2, §3.2, §5.2-5.3).

A Diderot field ``field#k(d)[s]`` is a function from d-dimensional world
space to tensors of shape ``s``, constructed by convolving an image with a
kernel (``V ⊛ h``) or by higher-order operations (addition, scaling,
differentiation).  This package provides

* :mod:`repro.fields.probe` — the vectorized separable-convolution engine
  that the compiled code and the baseline library both call into, and
* :mod:`repro.fields.field` — first-class runtime field objects implementing
  the same semantics symbolically (probe, inside, ∇, ∇⊗, ∇•, ∇×), which
  serve as the reference implementation for compiler output.
"""

from repro.fields.field import ConvField, Field, SumField, ScaledField, convolve
from repro.fields.probe import gather_neighborhood, probe_convolution, probe_inside

__all__ = [
    "ConvField",
    "Field",
    "ScaledField",
    "SumField",
    "convolve",
    "gather_neighborhood",
    "probe_convolution",
    "probe_inside",
]
