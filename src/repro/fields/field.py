"""First-class continuous tensor fields — the runtime reference semantics.

These objects mirror the field expressions of the surface language
(paper §3.2, Figure 9a): convolution ``V ⊛ h``, addition, scaling, negation,
and differentiation.  ``grad`` implements both ``∇`` (scalar fields) and
``∇⊗`` (higher-order fields): it appends one derivative axis of length ``d``
to the range shape and decrements continuity, exactly as Figure 2's typing
rules say.

Differentiation here applies the *same* normalization rules the compiler
uses (Figure 10): ``∇(f₁+f₂) = ∇f₁+∇f₂``, ``∇(e·f) = e·∇f``, and
``∇(V ⊛ ∇ⁱh) = V ⊛ ∇ⁱ⁺¹h``, so a field expression is always held in the
normalized form of Figure 9b.  That makes this module the executable
specification against which compiled code is differentially tested, and the
substrate for the `gage` baseline library.

The divergence (``∇•``) and curl (``∇×``) operations from the paper's §8.3
future-work list are provided as contractions of ``grad`` probes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DiderotError
from repro.fields.probe import probe_convolution, probe_inside
from repro.image import Image
from repro.kernels import Kernel


class Field:
    """Abstract continuous tensor field ``field#k(d)[s]``.

    Attributes
    ----------
    dim:
        Dimension ``d`` of the domain.
    shape:
        Tensor shape ``s`` of the range.
    continuity:
        Number of continuous derivatives ``k``.
    """

    dim: int
    shape: tuple[int, ...]
    continuity: int

    def probe(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the field at world position(s) ``x``."""
        raise NotImplementedError

    def inside(self, x: np.ndarray):
        """The ``inside(x, F)`` domain test."""
        raise NotImplementedError

    def grad(self) -> "Field":
        """``∇F`` / ``∇⊗F``: differentiate, appending one axis of length d."""
        raise NotImplementedError

    # -- operator sugar mirroring the surface language ----------------------

    def __add__(self, other: "Field") -> "Field":
        return SumField(self, other)

    def __sub__(self, other: "Field") -> "Field":
        return SumField(self, other.scaled(-1.0))

    def __neg__(self) -> "Field":
        return self.scaled(-1.0)

    def __mul__(self, scalar) -> "Field":
        return self.scaled(scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar) -> "Field":
        return self.scaled(1.0 / scalar)

    def scaled(self, scalar) -> "Field":
        return ScaledField(float(scalar), self)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.probe(x)

    def _require_differentiable(self) -> None:
        if self.continuity <= 0:
            raise DiderotError(
                f"cannot differentiate a C{self.continuity} field; "
                "use a smoother kernel"
            )

    def divergence(self, x: np.ndarray) -> np.ndarray:
        """``(∇•F)(x)`` for a vector field: trace of the Jacobian probe."""
        if self.shape != (self.dim,):
            raise DiderotError("divergence requires a d-vector field")
        jac = self.grad().probe(x)
        return np.trace(jac, axis1=-2, axis2=-1)

    def curl(self, x: np.ndarray) -> np.ndarray:
        """``(∇×F)(x)``: 3-vector curl in 3-D, scalar curl in 2-D."""
        if self.shape != (self.dim,) or self.dim not in (2, 3):
            raise DiderotError("curl requires a 2-D or 3-D vector field")
        jac = self.grad().probe(x)  # (..., i, j) = dF_i/dx_j
        if self.dim == 2:
            return jac[..., 1, 0] - jac[..., 0, 1]
        return np.stack(
            [
                jac[..., 2, 1] - jac[..., 1, 2],
                jac[..., 0, 2] - jac[..., 2, 0],
                jac[..., 1, 0] - jac[..., 0, 1],
            ],
            axis=-1,
        )


class ConvField(Field):
    """The normalized convolution field ``V ⊛ ∇ⁱh`` (Figure 9b)."""

    def __init__(self, image: Image, kernel: Kernel, deriv: int = 0, dtype=None):
        if deriv < 0:
            raise ValueError("derivative level must be >= 0")
        self.image = image
        self.kernel = kernel
        self.deriv = deriv
        self.dim = image.dim
        self.shape = image.tensor_shape + (image.dim,) * deriv
        self.continuity = kernel.continuity - deriv
        self.dtype = dtype

    def probe(self, x: np.ndarray) -> np.ndarray:
        return probe_convolution(self.image, self.kernel, x, self.deriv, dtype=self.dtype)

    def inside(self, x: np.ndarray):
        return probe_inside(self.image, self.kernel.support, x)

    def grad(self) -> "ConvField":
        self._require_differentiable()
        # Normalization rule: ∇(V ⊛ ∇ⁱh) = V ⊛ ∇ⁱ⁺¹h (Figure 10).
        return ConvField(self.image, self.kernel, self.deriv + 1, dtype=self.dtype)

    def __repr__(self) -> str:
        nabla = "∇" * self.deriv
        return (
            f"ConvField({self.image!r} ⊛ {nabla}{self.kernel.name}, "
            f"C{self.continuity})"
        )


class SumField(Field):
    """``f₁ + f₂``: domains and shapes must agree."""

    def __init__(self, left: Field, right: Field):
        if (left.dim, left.shape) != (right.dim, right.shape):
            raise DiderotError(
                f"cannot add field#_({left.dim})[{left.shape}] and "
                f"field#_({right.dim})[{right.shape}]"
            )
        self.left = left
        self.right = right
        self.dim = left.dim
        self.shape = left.shape
        self.continuity = min(left.continuity, right.continuity)

    def probe(self, x: np.ndarray) -> np.ndarray:
        # (f₁ + f₂)(x) = f₁(x) + f₂(x)  (Figure 10)
        return self.left.probe(x) + self.right.probe(x)

    def inside(self, x: np.ndarray):
        return np.logical_and(self.left.inside(x), self.right.inside(x))

    def grad(self) -> "Field":
        self._require_differentiable()
        # ∇(f₁ + f₂) = ∇f₁ + ∇f₂  (Figure 10)
        return SumField(self.left.grad(), self.right.grad())

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


class ScaledField(Field):
    """``e * f`` for a (constant) scalar ``e``."""

    def __init__(self, scalar: float, inner: Field):
        self.scalar = float(scalar)
        self.inner = inner
        self.dim = inner.dim
        self.shape = inner.shape
        self.continuity = inner.continuity

    def probe(self, x: np.ndarray) -> np.ndarray:
        # (e * f)(x) = e * f(x)  (Figure 10)
        return self.scalar * self.inner.probe(x)

    def inside(self, x: np.ndarray):
        return self.inner.inside(x)

    def grad(self) -> "Field":
        self._require_differentiable()
        # ∇(e * f) = e * ∇f  (Figure 10)
        return ScaledField(self.scalar, self.inner.grad())

    def scaled(self, scalar) -> "Field":
        # Collapse nested scalings so repeated arithmetic stays flat.
        return ScaledField(self.scalar * float(scalar), self.inner)

    def __repr__(self) -> str:
        return f"({self.scalar} * {self.inner!r})"


def convolve(image: Image, kernel: Kernel, dtype=None) -> ConvField:
    """Construct the field ``image ⊛ kernel`` (the surface-language ``⊛``)."""
    return ConvField(image, kernel, 0, dtype=dtype)
