"""Minimal PGM/PPM writers for example outputs.

The paper's figures are rendered images; these helpers let the examples
regenerate them as portable graymap/pixmap files without any plotting
dependency.  Arrays are normalized to [0, 255] unless a range is given.
"""

from __future__ import annotations

import numpy as np


def _quantize(arr: np.ndarray, vmin, vmax) -> np.ndarray:
    arr = np.asarray(arr, dtype=np.float64)
    if vmin is None:
        vmin = float(np.nanmin(arr))
    if vmax is None:
        vmax = float(np.nanmax(arr))
    if vmax <= vmin:
        vmax = vmin + 1.0
    scaled = (arr - vmin) / (vmax - vmin)
    return (np.clip(np.nan_to_num(scaled), 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)


def save_pgm(path: str, gray: np.ndarray, vmin=None, vmax=None) -> None:
    """Write a 2-D array as a binary PGM (P5) grayscale image."""
    gray = np.asarray(gray)
    if gray.ndim != 2:
        raise ValueError(f"PGM needs a 2-D array, got shape {gray.shape}")
    q = _quantize(gray, vmin, vmax)
    with open(path, "wb") as fp:
        fp.write(f"P5\n{q.shape[1]} {q.shape[0]}\n255\n".encode("ascii"))
        fp.write(q.tobytes())


def save_ppm(path: str, rgb: np.ndarray, vmin=None, vmax=None) -> None:
    """Write an (H, W, 3) array as a binary PPM (P6) color image."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[-1] != 3:
        raise ValueError(f"PPM needs an (H, W, 3) array, got shape {rgb.shape}")
    q = _quantize(rgb, vmin, vmax)
    with open(path, "wb") as fp:
        fp.write(f"P6\n{q.shape[1]} {q.shape[0]}\n255\n".encode("ascii"))
        fp.write(q.tobytes())


def read_pgm(path: str) -> np.ndarray:
    """Read back a binary PGM written by :func:`save_pgm` (for tests)."""
    with open(path, "rb") as fp:
        magic = fp.readline().strip()
        if magic != b"P5":
            raise ValueError(f"not a binary PGM: {magic!r}")
        dims = fp.readline().split()
        w, h = int(dims[0]), int(dims[1])
        fp.readline()  # maxval
        data = np.frombuffer(fp.read(w * h), dtype=np.uint8)
    return data.reshape(h, w)
