"""Synthetic datasets standing in for the paper's image inputs.

The paper's benchmarks run on a CT scan of a hand (vr-lite, illust-vr), a
synthetic 2-D vector field and noise texture (lic2d), a CT lung scan
(ridge3d), and a grayscale portrait (isocontour sampling).  We cannot ship
the CT data, so :mod:`repro.data.synth` generates phantoms that exercise the
same code paths — see DESIGN.md's substitution table for the rationale
behind each one.
"""

from repro.data.synth import (
    hand_phantom,
    lung_phantom,
    noise_texture,
    portrait_phantom,
    vector_field_2d,
)

__all__ = [
    "hand_phantom",
    "lung_phantom",
    "noise_texture",
    "portrait_phantom",
    "vector_field_2d",
]
