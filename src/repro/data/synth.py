"""Phantom generators (see DESIGN.md substitution table).

Each generator returns an oriented :class:`~repro.image.Image`.  Phantoms
are smooth (sums of Gaussian profiles) so that convolution reconstruction
and its derivatives behave like they do on real CT data, and are built from
analytically known geometry so tests can check extracted features (e.g.
ridge centerlines) against ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.image import Image, Orientation


def _grid(sizes: tuple[int, ...]) -> list[np.ndarray]:
    """Open mesh of index coordinates for a grid of the given sizes."""
    axes = [np.arange(n, dtype=np.float64) for n in sizes]
    return list(np.meshgrid(*axes, indexing="ij"))


def _centered_orientation(sizes: tuple[int, ...], extent: float) -> Orientation:
    """Isotropic orientation spanning ``[-extent/2, extent/2]`` per axis."""
    dim = len(sizes)
    spacing = [extent / (n - 1) for n in sizes]
    origin = [-extent / 2.0] * dim
    return Orientation(np.diag(spacing), np.array(origin))


def _capsule_density(x, y, z, a, b, radius):
    """Gaussian tube density around the line segment from ``a`` to ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    ab = b - a
    denom = float(ab @ ab)
    px, py, pz = x - a[0], y - a[1], z - a[2]
    t = (px * ab[0] + py * ab[1] + pz * ab[2]) / denom
    t = np.clip(t, 0.0, 1.0)
    dx = px - t * ab[0]
    dy = py - t * ab[1]
    dz = pz - t * ab[2]
    d2 = dx * dx + dy * dy + dz * dz
    return np.exp(-d2 / (radius * radius))


def hand_phantom(size: int = 48) -> Image:
    """A CT-hand stand-in: palm blob + five finger capsules, two tissues.

    Densities are CT-flavored: "skin" (the smooth envelope of the whole
    shape) reads around 300-600 and "bone" (the capsule cores) reads above
    1000, so volume-rendering programs can pick either tissue with an
    opacity window exactly as the paper does with ``hand.nrrd``
    (§3.3.2: "by changing the opacity range, we can pick out different
    features of the image (e.g., skin or bone)").
    """
    sizes = (size, size, size)
    x, y, z = _grid(sizes)
    c = (size - 1) / 2.0
    u = size / 48.0  # geometry scales with resolution

    # Palm: anisotropic Gaussian blob below center.
    px, py, pz = c, c - 8 * u, c
    palm = np.exp(
        -(
            ((x - px) / (10 * u)) ** 2
            + ((y - py) / (7 * u)) ** 2
            + ((z - pz) / (4 * u)) ** 2
        )
    )

    bone = np.zeros(sizes)
    fingers = [
        # (base offset from palm top, tip offset, radius)
        ((-8, 0, 0), (-12, 14, 1), 1.6),
        ((-4, 2, 0), (-5, 18, 1), 1.7),
        ((0, 3, 0), (0, 20, 0), 1.8),
        ((4, 2, 0), (5, 17, -1), 1.7),
        ((8, -2, 0), (14, 6, -1), 1.5),  # thumb
    ]
    base_y = py + 5 * u
    for (bx, by, bz), (tx, ty, tz), r in fingers:
        a = (px + bx * u, base_y + by * u, pz + bz * u)
        b = (px + tx * u, base_y + ty * u, pz + tz * u)
        bone += _capsule_density(x, y, z, a, b, r * 2.2 * u)

    soft = np.clip(palm + 0.55 * bone, 0.0, 1.0)
    vol = 600.0 * soft + 900.0 * np.clip(bone, 0.0, 1.0)
    return Image(vol, dim=3, orientation=_centered_orientation(sizes, 40.0))


def lung_phantom(size: int = 48, n_vessels: int = 6, seed: int = 7) -> Image:
    """A lung-CT stand-in: gently curved bright tubes ("vessels") on a dim,
    noisy background.

    Tubes run roughly along the z axis with sinusoidal (x, y) centerlines
    and Gaussian cross-sections, so every tube is a 3-D height ridge whose
    centerline is known in closed form — see
    :func:`lung_vessel_centerlines`.
    """
    rng = np.random.default_rng(seed)
    sizes = (size, size, size)
    x, y, z = _grid(sizes)
    params = _vessel_params(size, n_vessels, rng)

    vol = np.zeros(sizes)
    for x0, y0, ax, ay, wx, wy, phx, phy, r in params:
        cx = x0 + ax * np.sin(wx * z + phx)
        cy = y0 + ay * np.cos(wy * z + phy)
        d2 = (x - cx) ** 2 + (y - cy) ** 2
        vol += np.exp(-d2 / (r * r))
    vol = 800.0 * np.clip(vol, 0.0, 1.0)
    vol += 20.0 * rng.standard_normal(sizes)  # parenchyma noise
    return Image(vol, dim=3, orientation=_centered_orientation(sizes, 40.0))


def _vessel_params(size: int, n_vessels: int, rng) -> list[tuple]:
    u = size / 48.0
    params = []
    for _ in range(n_vessels):
        x0 = rng.uniform(0.25, 0.75) * (size - 1)
        y0 = rng.uniform(0.25, 0.75) * (size - 1)
        ax, ay = rng.uniform(1.0, 3.0, 2) * u
        wx, wy = rng.uniform(0.05, 0.12, 2) / u
        phx, phy = rng.uniform(0, 2 * np.pi, 2)
        r = rng.uniform(1.6, 2.6) * u
        params.append((x0, y0, ax, ay, wx, wy, phx, phy, r))
    return params


def lung_vessel_centerlines(size: int = 48, n_vessels: int = 6, seed: int = 7, samples: int = 200) -> np.ndarray:
    """Ground-truth vessel centerline points, in **world** coordinates.

    Must be called with the same parameters as :func:`lung_phantom`.
    Returns an array of shape ``(n_vessels, samples, 3)``.
    """
    rng = np.random.default_rng(seed)
    params = _vessel_params(size, n_vessels, rng)
    orient = _centered_orientation((size, size, size), 40.0)
    zs = np.linspace(0, size - 1, samples)
    out = []
    for x0, y0, ax, ay, wx, wy, phx, phy, _r in params:
        cx = x0 + ax * np.sin(wx * zs + phx)
        cy = y0 + ay * np.cos(wy * zs + phy)
        out.append(orient.to_world(np.stack([cx, cy, zs], axis=-1)))
    return np.array(out)


def vector_field_2d(size: int = 64, vortex: float = 1.0, saddle: float = 0.35) -> Image:
    """A smooth synthetic 2-D vector field: a vortex plus a saddle component.

    This is the ``vectors.nrrd`` stand-in for the LIC benchmark; streamlines
    circulate around the grid center with hyperbolic distortion, giving the
    swirling patterns visible in the paper's Figure 6.
    """
    sizes = (size, size)
    x, y = _grid(sizes)
    c = (size - 1) / 2.0
    dx = (x - c) / c
    dy = (y - c) / c
    vx = -vortex * dy + saddle * dx
    vy = vortex * dx - saddle * dy
    data = np.stack([vx, vy], axis=-1)
    return Image(data, dim=2, tensor_shape=(2,),
                 orientation=_centered_orientation(sizes, 2.0))


def noise_texture(size: int = 64, seed: int = 11) -> Image:
    """White-noise scalar texture (the ``rand.nrrd`` stand-in for LIC)."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, (size, size))
    return Image(data, dim=2, orientation=_centered_orientation((size, size), 2.0))


def portrait_phantom(size: int = 100) -> Image:
    """A grayscale stand-in for the Diderot portrait (isocontour demo).

    Smooth sums of Gaussian bumps with gray values spanning 0-60, so the
    10/30/50 isovalues of Figure 7 all produce closed, smooth contours.
    """
    sizes = (size, size)
    x, y = _grid(sizes)
    s = size / 100.0
    bumps = [
        # (cx, cy, sx, sy, amplitude)
        (50, 48, 26, 30, 42.0),   # head
        (50, 40, 14, 16, 16.0),   # face highlight
        (36, 64, 7, 9, 9.0),      # shoulder
        (66, 62, 8, 8, 8.0),      # shoulder
        (44, 34, 3.5, 3.0, 6.0),  # eye
        (57, 34, 3.5, 3.0, 6.0),  # eye
    ]
    img = np.zeros(sizes)
    for cx, cy, sx, sy, amp in bumps:
        img += amp * np.exp(
            -(((x - cx * s) / (sx * s)) ** 2 + ((y - cy * s) / (sy * s)) ** 2)
        )
    return Image(img, dim=2, orientation=Orientation.axis_aligned(2))
