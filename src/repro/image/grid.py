"""Grid orientation: the affine index-space ↔ world-space map.

An image dataset "comes with orientation information that can be represented
as a transform M mapping from position in the image's index space to position
in world space" (paper §5.3).  Positions are contravariant (mapped by ``M``),
gradients are covariant (mapped by ``M⁻ᵀ``); this module owns both maps.
"""

from __future__ import annotations

import numpy as np


class Orientation:
    """The affine map ``world = M @ index + origin`` for a ``d``-D grid.

    Parameters
    ----------
    directions:
        ``(d, d)`` array whose **row i** is the world-space step between
        samples that are adjacent along image axis ``i`` (the NRRD
        ``space directions`` convention).  So ``M`` — the Jacobian of the
        index→world map with the usual column convention — is
        ``directions.T``.
    origin:
        world-space position of index ``(0, ..., 0)``.
    """

    def __init__(self, directions: np.ndarray, origin: np.ndarray):
        directions = np.asarray(directions, dtype=np.float64)
        origin = np.asarray(origin, dtype=np.float64)
        if directions.ndim != 2 or directions.shape[0] != directions.shape[1]:
            raise ValueError(f"directions must be (d, d), got {directions.shape}")
        d = directions.shape[0]
        if origin.shape != (d,):
            raise ValueError(f"origin must have shape ({d},), got {origin.shape}")
        if abs(np.linalg.det(directions)) < 1e-300:
            raise ValueError("orientation directions are singular")
        self.dim = d
        self.directions = directions
        self.origin = origin
        # M maps index (column vector) to world displacement.
        self._m = directions.T
        self._m_inv = np.linalg.inv(self._m)
        # Covariant (gradient) transform: M^{-T}.
        self._m_inv_t = self._m_inv.T
        # per-dtype casts of M^{-T}, built on demand (grad_xform runs once
        # per probe per block per super-step; the cast is pure overhead)
        self._m_inv_t_cast: dict = {}

    @staticmethod
    def axis_aligned(dim: int, spacing=1.0, origin=None) -> "Orientation":
        """Axis-aligned orientation with per-axis ``spacing`` (scalar or seq)."""
        spacing = np.broadcast_to(np.asarray(spacing, dtype=np.float64), (dim,))
        if origin is None:
            origin = np.zeros(dim)
        return Orientation(np.diag(spacing), np.asarray(origin, dtype=np.float64))

    @property
    def world_jacobian(self) -> np.ndarray:
        """``M``: the index→world Jacobian (column convention)."""
        return self._m

    @property
    def index_jacobian(self) -> np.ndarray:
        """``M⁻¹``: the world→index Jacobian."""
        return self._m_inv

    @property
    def gradient_transform(self) -> np.ndarray:
        """``M⁻ᵀ``: maps index-space gradients to world space (paper §5.3)."""
        return self._m_inv_t

    def gradient_transform_as(self, dtype) -> np.ndarray:
        """``M⁻ᵀ`` cast to ``dtype``, memoized per dtype (read-only)."""
        key = np.dtype(dtype).str
        g = self._m_inv_t_cast.get(key)
        if g is None:
            g = self._m_inv_t.astype(dtype)
            g.setflags(write=False)
            self._m_inv_t_cast[key] = g
        return g

    def to_world(self, index: np.ndarray) -> np.ndarray:
        """Map index-space positions (last axis = coordinates) to world space."""
        index = np.asarray(index, dtype=np.float64)
        return index @ self._m.T + self.origin

    def to_index(self, world: np.ndarray) -> np.ndarray:
        """Map world-space positions (last axis = coordinates) to index space.

        Non-finite positions are legal inputs (the probe safety contract
        sanitizes them downstream), so the matmul's invalid-value warning
        is suppressed.
        """
        world = np.asarray(world, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            return (world - self.origin) @ self._m_inv.T

    def is_axis_aligned(self, tol: float = 0.0) -> bool:
        off = self.directions - np.diag(np.diag(self.directions))
        return bool(np.all(np.abs(off) <= tol))

    def __repr__(self) -> str:
        return f"Orientation(dim={self.dim}, origin={self.origin.tolist()})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Orientation)
            and np.array_equal(self.directions, other.directions)
            and np.array_equal(self.origin, other.origin)
        )
