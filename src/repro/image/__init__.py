"""Oriented multi-dimensional images (paper §3.1's ``image(d)[s]`` values).

An image is a regular grid of tensor samples plus *orientation* metadata: the
affine map ``M`` from index space to world space that NRRD headers carry
(paper §5.3).  Probes happen in world space; gradients measured in index
space are covariant and map back to world space with ``M⁻ᵀ``.
"""

from repro.image.grid import Orientation
from repro.image.image import Image

__all__ = ["Image", "Orientation"]
