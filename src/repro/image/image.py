"""The ``image(d)[s]`` value: a grid of tensor samples plus orientation.

The Diderot ``load`` builtin produces one of these from a NRRD file; field
construction (``img ⊛ h``) and probing consume it.  "We do not specify the
representation of the image values on disk ... the compiler generates code
that maps image values to reals" (paper §3.3.1): samples are converted to
floating point on construction.
"""

from __future__ import annotations

import numpy as np

from repro.image.grid import Orientation


class Image:
    """An oriented, tensor-valued sample grid.

    Parameters
    ----------
    data:
        Array of shape ``sizes + tensor_shape``: the first ``dim`` axes index
        the grid (axis ``i`` of the array is image axis ``i``), the trailing
        axes are the per-sample tensor.  Converted to ``dtype`` on ingest.
    dim:
        Spatial dimension ``d`` of the grid (1, 2, or 3).
    tensor_shape:
        The shape ``s`` of each sample: ``()`` for scalar images, ``(3,)``
        for 3-vector images, etc.
    orientation:
        Index→world map; defaults to the identity (unit spacing, origin 0).
    """

    def __init__(
        self,
        data: np.ndarray,
        dim: int | None = None,
        tensor_shape: tuple[int, ...] | None = None,
        orientation: Orientation | None = None,
        dtype=np.float64,
    ):
        data = np.asarray(data)
        if dim is None and tensor_shape is None:
            dim = data.ndim
            tensor_shape = ()
        elif dim is None:
            dim = data.ndim - len(tensor_shape)
        elif tensor_shape is None:
            tensor_shape = tuple(data.shape[dim:])
        tensor_shape = tuple(int(n) for n in tensor_shape)
        if dim not in (1, 2, 3):
            raise ValueError(f"image dimension must be 1, 2, or 3, got {dim}")
        if data.ndim != dim + len(tensor_shape):
            raise ValueError(
                f"data has {data.ndim} axes but dim={dim} and tensor shape "
                f"{tensor_shape} require {dim + len(tensor_shape)}"
            )
        if tuple(data.shape[dim:]) != tensor_shape:
            raise ValueError(
                f"trailing axes {data.shape[dim:]} do not match tensor shape {tensor_shape}"
            )
        if orientation is None:
            orientation = Orientation.axis_aligned(dim)
        if orientation.dim != dim:
            raise ValueError(
                f"orientation dimension {orientation.dim} does not match image dim {dim}"
            )
        self.data = np.ascontiguousarray(data, dtype=dtype)
        self.dim = dim
        self.tensor_shape = tensor_shape
        self.orientation = orientation
        self._bounds_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def sizes(self) -> tuple[int, ...]:
        """Samples along each image axis."""
        return tuple(self.data.shape[: self.dim])

    @property
    def tensor_order(self) -> int:
        return len(self.tensor_shape)

    def astype(self, dtype) -> "Image":
        """A copy of this image with samples stored at ``dtype``."""
        return Image(
            self.data, self.dim, self.tensor_shape, self.orientation, dtype=dtype
        )

    def patch(self, data, region=None) -> list[tuple[np.ndarray, np.ndarray]]:
        """Overwrite samples in place; returns the changed index regions.

        Parameters
        ----------
        data:
            Either a full-size replacement array (``region is None`` diffs it
            against the current samples and patches the changed bounding box)
            or the sub-array for an explicit ``region``.
        region:
            ``None``, one region, or a list of regions.  A region is a
            sequence of ``dim`` inclusive ``(lo, hi)`` index pairs.  With a
            list of regions, ``data`` must be the full-size array the
            sub-blocks are sliced from.

        Returns the list of patched regions as ``(lo, hi)`` int arrays
        (inclusive on both ends), empty if nothing changed.
        """
        data = np.asarray(data)
        sizes = self.sizes
        if region is None:
            if data.shape != self.data.shape:
                raise ValueError(
                    f"patch without region needs full shape {self.data.shape}, "
                    f"got {data.shape}"
                )
            new = data.astype(self.data.dtype, copy=False)
            diff = new != self.data
            if self.tensor_order:
                diff = diff.any(axis=tuple(range(self.dim, diff.ndim)))
            if not diff.any():
                return []
            idx = np.nonzero(diff)
            lo = np.array([int(ax.min()) for ax in idx])
            hi = np.array([int(ax.max()) for ax in idx])
            sl = tuple(slice(a, b + 1) for a, b in zip(lo, hi))
            self.data[sl] = new[sl]
            self._bounds_cache.clear()
            return [(lo, hi)]
        regions = region
        if regions and np.isscalar(regions[0][0]):
            regions = [regions]
        full = data.shape == self.data.shape
        out = []
        for reg in regions:
            if len(reg) != self.dim:
                raise ValueError(
                    f"region needs {self.dim} (lo, hi) pairs, got {len(reg)}"
                )
            lo = np.array([int(p[0]) for p in reg])
            hi = np.array([int(p[1]) for p in reg])
            if (lo < 0).any() or (hi >= np.asarray(sizes)).any() or (hi < lo).any():
                raise ValueError(f"region {reg} outside image sizes {sizes}")
            sl = tuple(slice(a, b + 1) for a, b in zip(lo, hi))
            block = data[sl] if full else data
            want = tuple(hi - lo + 1) + self.tensor_shape
            if block.shape != want:
                raise ValueError(
                    f"patch data shape {block.shape} does not match region "
                    f"shape {want}"
                )
            self.data[sl] = block.astype(self.data.dtype, copy=False)
            out.append((lo, hi))
        if out:
            self._bounds_cache.clear()
        return out

    def index_bounds(self, support: int) -> tuple[np.ndarray, np.ndarray]:
        """Valid floor-index range ``[lo, hi]`` for a kernel of given support.

        A probe at index-space position with integer part ``n`` reads samples
        ``n + i`` for ``i = 1-s .. s``; ``n`` must satisfy
        ``s-1 <= n <= size-1-s`` on every axis.  Used to implement the
        ``inside(x, F)`` test.

        Memoized per support (``index_inside`` runs it once per block per
        super-step); the cached arrays are read-only.
        """
        got = self._bounds_cache.get(support)
        if got is None:
            sizes = np.asarray(self.sizes)
            lo = np.full(self.dim, support - 1)
            hi = sizes - 1 - support
            lo.setflags(write=False)
            hi.setflags(write=False)
            got = self._bounds_cache[support] = (lo, hi)
        return got

    def __repr__(self) -> str:
        return (
            f"Image(dim={self.dim}, sizes={self.sizes}, "
            f"tensor_shape={self.tensor_shape}, dtype={self.data.dtype})"
        )
