"""The serving layer: compile-once, run-many (ROADMAP "millions of users").

Diderot's execution model is compile-once/run-many — a program is
compiled to a kernel once, then executed over millions of strands.  This
package extends that economy across *processes* and *requests*:

* :mod:`repro.serve.cache` — a persistent compile cache keyed on the
  normalized HighIR fingerprint, so a repeat ``compile_program`` skips
  the optimizer/lowering/codegen pipeline entirely (the cffi artifact
  cache in :mod:`repro.core.codegen.cbuild` sits beneath it for the
  native backend's ``cc`` invocation).
* :mod:`repro.serve.registry` — named warm :class:`Program` objects with
  pooled schedulers, so serving a request never pays compile, image
  load, or thread-pool startup cost.
* :mod:`repro.serve.batch` + :mod:`repro.serve.server` — an asyncio
  front door (``python -m repro.serve``) that coalesces concurrent probe
  requests into strand batches with bounded queues and backpressure.
"""

from repro.serve.cache import CompileCacheEntry, cache_dir, fingerprint
from repro.serve.registry import ProbeSpec, ProgramEntry, ProgramRegistry

__all__ = [
    "CompileCacheEntry",
    "cache_dir",
    "fingerprint",
    "ProbeSpec",
    "ProgramEntry",
    "ProgramRegistry",
]
