"""``python -m repro.serve`` — run the compile-once serving front door.

Quick start (serves the bundled probe demo)::

    python -m repro.serve --register demo=examples/programs/probe_serve.diderot \\
        --probe demo=pts:N --workers 2 --scheduler thread

then::

    curl -s localhost:8077/healthz
    curl -s -X POST localhost:8077/probe/demo \\
        -d '{"points": [[15.0, 15.0, 30.0]]}'

``--smoke`` runs a self-contained end-to-end check (used by CI): start
the server on an ephemeral port, register the demo program, fire
overlapping probe requests, and assert (a) responses are bit-identical
to a direct in-process run, (b) requests were coalesced into shared
batches, and (c) a tiny queue bound sheds load with 429.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from repro.serve.registry import ProbeSpec, ProgramRegistry
from repro.serve.server import ServeApp


def _parse_register(specs, probes):
    """``name=path`` pairs plus ``name=image:count[:pad]`` probe specs."""
    probe_by_name = {}
    for spec in probes or ():
        name, _, rest = spec.partition("=")
        parts = rest.split(":")
        if len(parts) < 2:
            raise SystemExit(
                f"--probe {spec!r}: expected NAME=IMAGE:COUNT_INPUT[:PAD]"
            )
        probe_by_name[name] = ProbeSpec(
            points_image=parts[0], count_input=parts[1],
            pad=int(parts[2]) if len(parts) > 2 else 1,
        )
    out = []
    for spec in specs or ():
        name, sep, path = spec.partition("=")
        if not sep or not path:
            raise SystemExit(f"--register {spec!r}: expected NAME=PATH")
        out.append((name, path, probe_by_name.get(name)))
    return out


async def _serve(args) -> int:
    app = ServeApp(
        ProgramRegistry(capacity=args.capacity),
        window=args.window, max_batch=args.max_batch,
        max_queue=args.max_queue, compile_cache=not args.no_compile_cache,
    )
    for name, path, probe in _parse_register(args.register, args.probe):
        entry = await asyncio.to_thread(
            app.registry.register, name, path=path, probe=probe,
            precision=args.precision, scheduler=args.scheduler,
            workers=args.workers, backend=args.backend,
            cache=not args.no_compile_cache,
        )
        print(f"registered {name!r}: {entry.info()}", file=sys.stderr)
    await app.start(args.host, args.port)
    print(f"serving on http://{args.host}:{app.port}", file=sys.stderr)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    await stop.wait()
    await app.close()
    if args.metrics_out:
        from repro.obs import metrics as _mx

        _mx.write_metrics_json(_mx.GLOBAL, args.metrics_out)
    return 0


async def _request(port: int, method: str, path: str, doc=None) -> tuple[int, dict]:
    """Minimal HTTP client (stdlib-only, usable inside the event loop)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(doc).encode() if doc is not None else b""
    writer.write(
        (f"{method} {path} HTTP/1.1\r\nHost: x\r\n"
         f"Content-Length: {len(body)}\r\n\r\n").encode() + body
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        k, _, v = line.decode().partition(":")
        if k.strip().lower() == "content-length":
            length = int(v.strip())
    payload = json.loads(await reader.readexactly(length)) if length else {}
    writer.close()
    return status, payload


async def _smoke(args) -> int:
    import numpy as np

    from repro.obs import metrics as _mx

    path = args.register[0].split("=", 1)[1] if args.register else \
        "examples/programs/probe_serve.diderot"
    app = ServeApp(ProgramRegistry(), window=0.02, max_queue=args.max_queue)
    await app.start("127.0.0.1", 0)
    port = app.port
    status, _ = await _request(port, "GET", "/healthz")
    assert status == 200, f"healthz: {status}"
    status, doc = await _request(port, "POST", "/programs/demo", {
        "path": path, "workers": args.workers,
        "scheduler": args.scheduler or "thread",
        "probe": {"points_image": "pts", "count_input": "N"},
    })
    assert status == 200, f"register: {status} {doc}"

    rng = np.random.default_rng(7)
    points = (rng.random((12, 3)) * 30).tolist()
    # overlapping singleton requests: the 20ms window coalesces them
    results = await asyncio.gather(*[
        _request(port, "POST", "/probe/demo", {"points": [p]})
        for p in points
    ])
    assert all(s == 200 for s, _ in results), [s for s, _ in results]

    # oracle: direct Program.run over the same points, one batch
    entry = app.registry.get("demo")
    direct = entry.run_batch(np.asarray(points))
    for (_, doc), want in zip(results, direct["out"]):
        got = np.asarray(doc["outputs"]["out"][0])
        assert np.array_equal(got, want), (got, want)

    snap = _mx.GLOBAL.snapshot()["counters"]
    coalesced = snap.get("serve.batch.coalesced", 0)
    batches = snap.get("serve.batch.batches", 0)
    assert coalesced >= 2, f"no coalescing observed: {snap}"
    assert batches < len(points), f"every request ran alone: {snap}"

    # shedding: a tiny queue bound must yield at least one 429
    shed_app = ServeApp(ProgramRegistry(), window=0.05, max_queue=1)
    await shed_app.start("127.0.0.1", 0)
    status, _ = await _request(shed_app.port, "POST", "/programs/demo", {
        "path": path, "probe": {"points_image": "pts", "count_input": "N"},
    })
    assert status == 200
    flood = await asyncio.gather(*[
        _request(shed_app.port, "POST", "/probe/demo", {"points": [p]})
        for p in points
    ])
    codes = sorted({s for s, _ in flood})
    assert 429 in codes, f"no 429 under max_queue=1: {codes}"
    shed = _mx.GLOBAL.snapshot()["counters"].get("serve.shed", 0)
    assert shed >= 1, "serve.shed counter did not record the 429s"

    await app.close()
    await shed_app.close()
    print(f"serve smoke OK: {len(points)} requests in {batches} batches "
          f"({coalesced} coalesced), shed codes {codes}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Async front door over the warm-program registry",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    parser.add_argument("--register", action="append", metavar="NAME=PATH",
                        help="compile and register a program at startup "
                             "(repeatable)")
    parser.add_argument("--probe", action="append",
                        metavar="NAME=IMAGE:COUNT[:PAD]",
                        help="probe spec for a registered name: the points "
                             "image global, the strand-count input, and "
                             "optional guard-row pad (default 1)")
    parser.add_argument("--precision", choices=["single", "double"],
                        default="double")
    parser.add_argument("--scheduler", choices=["seq", "thread", "process"],
                        default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--backend", choices=["numpy", "c"], default=None)
    parser.add_argument("--capacity", type=int, default=None,
                        help="registry LRU capacity (default unbounded)")
    parser.add_argument("--window", type=float, default=0.002,
                        help="batching window in seconds (default 2ms)")
    parser.add_argument("--max-batch", type=int, default=65536,
                        help="max strand rows per coalesced batch")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="max queued requests per program before "
                             "shedding with 429")
    parser.add_argument("--no-compile-cache", action="store_true",
                        help="bypass the persistent compile cache")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the serve metrics document on shutdown")
    parser.add_argument("--smoke", action="store_true",
                        help="run the self-contained end-to-end smoke "
                             "check and exit (used by CI)")
    args = parser.parse_args(argv)
    return asyncio.run(_smoke(args) if args.smoke else _serve(args))


if __name__ == "__main__":
    sys.exit(main())
