"""``python -m repro.serve`` — run the compile-once serving front door.

Quick start (serves the bundled probe demo)::

    python -m repro.serve --register demo=examples/programs/probe_serve.diderot \\
        --probe demo=pts:N --workers 2 --scheduler thread

then::

    curl -s localhost:8077/healthz
    curl -s -X POST localhost:8077/probe/demo \\
        -d '{"points": [[15.0, 15.0, 30.0]]}'

``--smoke`` runs a self-contained end-to-end check (used by CI): start
the server on an ephemeral port, register the demo program, fire
overlapping probe requests, and assert (a) responses are bit-identical
to a direct in-process run, (b) requests were coalesced into shared
batches, and (c) a tiny queue bound sheds load with 429.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from repro.serve.registry import ProbeSpec, ProgramRegistry, warm_manifest
from repro.serve.server import ServeApp


def _parse_register(specs, probes):
    """``name=path`` pairs plus ``name=image:count[:pad]`` probe specs."""
    probe_by_name = {}
    for spec in probes or ():
        name, _, rest = spec.partition("=")
        parts = rest.split(":")
        if len(parts) < 2:
            raise SystemExit(
                f"--probe {spec!r}: expected NAME=IMAGE:COUNT_INPUT[:PAD]"
            )
        probe_by_name[name] = ProbeSpec(
            points_image=parts[0], count_input=parts[1],
            pad=int(parts[2]) if len(parts) > 2 else 1,
        )
    out = []
    for spec in specs or ():
        name, sep, path = spec.partition("=")
        if not sep or not path:
            raise SystemExit(f"--register {spec!r}: expected NAME=PATH")
        out.append((name, path, probe_by_name.get(name)))
    return out


async def _serve(args) -> int:
    app = ServeApp(
        ProgramRegistry(capacity=args.capacity),
        window=args.window, max_batch=args.max_batch,
        max_queue=args.max_queue, compile_cache=not args.no_compile_cache,
    )
    if args.warm:
        warmed = await asyncio.to_thread(
            warm_manifest, app.registry, args.warm,
            cache=not args.no_compile_cache,
        )
        for entry in warmed:
            print(f"warmed {entry.name!r}: {entry.info()}", file=sys.stderr)
    for name, path, probe in _parse_register(args.register, args.probe):
        entry = await asyncio.to_thread(
            app.registry.register, name, path=path, probe=probe,
            precision=args.precision, scheduler=args.scheduler,
            workers=args.workers, backend=args.backend,
            cache=not args.no_compile_cache,
        )
        print(f"registered {name!r}: {entry.info()}", file=sys.stderr)
    await app.start(args.host, args.port)
    print(f"serving on http://{args.host}:{app.port}", file=sys.stderr)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    await stop.wait()
    await app.close()
    if args.metrics_out:
        from repro.obs import metrics as _mx

        _mx.write_metrics_json(_mx.GLOBAL, args.metrics_out)
    return 0


async def _request(port: int, method: str, path: str, doc=None) -> tuple[int, dict]:
    """Minimal HTTP client (stdlib-only, usable inside the event loop)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(doc).encode() if doc is not None else b""
    writer.write(
        (f"{method} {path} HTTP/1.1\r\nHost: x\r\n"
         f"Content-Length: {len(body)}\r\n\r\n").encode() + body
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        k, _, v = line.decode().partition(":")
        if k.strip().lower() == "content-length":
            length = int(v.strip())
    payload = json.loads(await reader.readexactly(length)) if length else {}
    writer.close()
    return status, payload


async def _request_stream(port: int, path: str, doc) -> tuple[int, list]:
    """POST and decode a chunked NDJSON response into a list of events."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(doc).encode()
    writer.write(
        (f"POST {path} HTTP/1.1\r\nHost: x\r\n"
         f"Content-Length: {len(body)}\r\n\r\n").encode() + body
    )
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    chunked = False
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        k, _, v = line.decode().partition(":")
        if k.strip().lower() == "transfer-encoding":
            chunked = "chunked" in v.lower()
    assert chunked, f"expected chunked response, got status {status}"
    raw = b""
    while True:
        size = int((await reader.readline()).strip(), 16)
        if size == 0:
            break
        raw += await reader.readexactly(size)
        await reader.readexactly(2)  # trailing \r\n
    writer.close()
    events = [json.loads(line) for line in raw.splitlines() if line]
    return status, events


async def _smoke(args) -> int:
    import numpy as np

    from repro.obs import metrics as _mx

    path = args.register[0].split("=", 1)[1] if args.register else \
        "examples/programs/probe_serve.diderot"
    app = ServeApp(ProgramRegistry(), window=0.02, max_queue=args.max_queue)
    await app.start("127.0.0.1", 0)
    port = app.port
    status, _ = await _request(port, "GET", "/healthz")
    assert status == 200, f"healthz: {status}"
    status, doc = await _request(port, "POST", "/programs/demo", {
        "path": path, "workers": args.workers,
        "scheduler": args.scheduler or "thread",
        "probe": {"points_image": "pts", "count_input": "N"},
    })
    assert status == 200, f"register: {status} {doc}"

    rng = np.random.default_rng(7)
    points = (rng.random((12, 3)) * 30).tolist()
    # overlapping singleton requests: the 20ms window coalesces them
    results = await asyncio.gather(*[
        _request(port, "POST", "/probe/demo", {"points": [p]})
        for p in points
    ])
    assert all(s == 200 for s, _ in results), [s for s, _ in results]

    # oracle: direct Program.run over the same points, one batch
    entry = app.registry.get("demo")
    direct = entry.run_batch(np.asarray(points))
    for (_, doc), want in zip(results, direct["out"]):
        got = np.asarray(doc["outputs"]["out"][0])
        assert np.array_equal(got, want), (got, want)

    snap = _mx.GLOBAL.snapshot()["counters"]
    coalesced = snap.get("serve.batch.coalesced", 0)
    batches = snap.get("serve.batch.batches", 0)
    assert coalesced >= 2, f"no coalescing observed: {snap}"
    assert batches < len(points), f"every request ran alone: {snap}"

    # shedding: a tiny queue bound must yield at least one 429
    shed_app = ServeApp(ProgramRegistry(), window=0.05, max_queue=1)
    await shed_app.start("127.0.0.1", 0)
    status, _ = await _request(shed_app.port, "POST", "/programs/demo", {
        "path": path, "probe": {"points_image": "pts", "count_input": "N"},
    })
    assert status == 200
    flood = await asyncio.gather(*[
        _request(shed_app.port, "POST", "/probe/demo", {"points": [p]})
        for p in points
    ])
    codes = sorted({s for s, _ in flood})
    assert 429 in codes, f"no 429 under max_queue=1: {codes}"
    shed = _mx.GLOBAL.snapshot()["counters"].get("serve.shed", 0)
    assert shed >= 1, "serve.shed counter did not record the 429s"

    await app.close()
    await shed_app.close()

    inc = await _smoke_incremental()
    print(f"serve smoke OK: {len(points)} requests in {batches} batches "
          f"({coalesced} coalesced), shed codes {codes}; incremental "
          f"update re-ran {inc['dirty']}/{inc['total']} strands over "
          f"{inc['chunks']} stream chunks")
    return 0


_INC_SOURCE = """\
input int N = 20;
image(2)[] img = load("p.nrrd");
field#2(2)[] F = img ⊛ bspln3;
strand S (int i, int j) {
   output real x = 0.0;
   int n = 0;
   update {
      vec2 p = [real(i) + 2.5, real(j) + 2.5];
      if (inside(p, F)) { x = F(p) + 0.25 * (∇F(p))[0]; }
      n += 1;
      if (n >= 2) stabilize;
   }
}
initially [ S(i, j) | i in 0 .. N-1, j in 0 .. N-1 ];
"""


async def _smoke_incremental() -> dict:
    """Streaming /run + dirty-region /update, checked against cold runs."""
    import tempfile

    import numpy as np

    from repro.nrrd.writer import write_nrrd
    from repro.obs import metrics as _mx

    with tempfile.TemporaryDirectory(prefix="serve-inc-") as tmp:
        rng = np.random.default_rng(0)
        base = rng.random((26, 26))
        patched = base.copy()
        patched[3:6, 3:6] += 1.0
        write_nrrd(f"{tmp}/p.nrrd", base)

        app = ServeApp(ProgramRegistry())
        await app.start("127.0.0.1", 0)
        port = app.port
        status, doc = await _request(port, "POST", "/programs/inc", {
            "source": _INC_SOURCE, "search_path": tmp,
        })
        assert status == 200, f"register inc: {status} {doc}"

        status, full = await _request(port, "POST", "/run/inc", {})
        assert status == 200, f"cold run: {status} {full}"

        # chunked streaming run: per-step events + a final done summary
        status, events = await _request_stream(port, "/run/inc",
                                               {"stream": True})
        assert status == 200 and events[-1].get("done"), events[-1]
        assert events[-1]["outputs"] == full["outputs"], \
            "streamed final outputs differ from the plain run"
        stabilized = sum(e.get("stabilized", 0) for e in events[:-1])
        assert stabilized == full["strands"], (stabilized, full["strands"])

        # dirty-region update: ship only the patched 3x3 block
        status, upd = await _request(port, "POST", "/update/inc", {
            "image": "img", "data": patched[3:6, 3:6].tolist(),
            "region": [[3, 5], [3, 5]],
        })
        assert status == 200, f"update: {status} {upd}"
        assert upd["incremental"] and upd["partial"], upd
        assert 0 < upd["dirty_strands"] < upd["strands"], upd

        # oracle: a cold run over the patched image must match the
        # stitched (full run + updated rows) result bit-exactly
        write_nrrd(f"{tmp}/p.nrrd", patched)
        status, _ = await _request(port, "POST", "/programs/inc2", {
            "source": _INC_SOURCE, "search_path": tmp,
        })
        assert status == 200
        status, oracle = await _request(port, "POST", "/run/inc2", {})
        assert status == 200
        merged = np.asarray(full["outputs"]["x"], dtype=np.float64)
        flat = merged.reshape(upd["strands"])
        flat[np.asarray(upd["updated_indices"], dtype=np.int64)] = \
            np.asarray(upd["outputs"]["x"], dtype=np.float64)
        want = np.asarray(oracle["outputs"]["x"], dtype=np.float64)
        assert np.array_equal(merged, want), "update not bit-identical"

        snap = _mx.GLOBAL.snapshot()["counters"]
        assert snap.get("serve.incremental.updates", 0) >= 1, snap
        chunks = snap.get("serve.stream.chunks", 0)
        assert chunks >= 2, snap
        await app.close()
        return {"dirty": upd["dirty_strands"], "total": upd["strands"],
                "chunks": chunks}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Async front door over the warm-program registry",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    parser.add_argument("--register", action="append", metavar="NAME=PATH",
                        help="compile and register a program at startup "
                             "(repeatable)")
    parser.add_argument("--warm", metavar="MANIFEST",
                        help="JSON manifest of programs to compile and "
                             "register before binding the port")
    parser.add_argument("--probe", action="append",
                        metavar="NAME=IMAGE:COUNT[:PAD]",
                        help="probe spec for a registered name: the points "
                             "image global, the strand-count input, and "
                             "optional guard-row pad (default 1)")
    parser.add_argument("--precision", choices=["single", "double"],
                        default="double")
    parser.add_argument("--scheduler", choices=["seq", "thread", "process"],
                        default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--backend", choices=["numpy", "c"], default=None)
    parser.add_argument("--capacity", type=int, default=None,
                        help="registry LRU capacity (default unbounded)")
    parser.add_argument("--window", type=float, default=0.002,
                        help="batching window in seconds (default 2ms)")
    parser.add_argument("--max-batch", type=int, default=65536,
                        help="max strand rows per coalesced batch")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="max queued requests per program before "
                             "shedding with 429")
    parser.add_argument("--no-compile-cache", action="store_true",
                        help="bypass the persistent compile cache")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the serve metrics document on shutdown")
    parser.add_argument("--smoke", action="store_true",
                        help="run the self-contained end-to-end smoke "
                             "check and exit (used by CI)")
    args = parser.parse_args(argv)
    return asyncio.run(_smoke(args) if args.smoke else _serve(args))


if __name__ == "__main__":
    sys.exit(main())
