"""Persistent compile cache: normalized HighIR → compiled artifacts.

The compiler front end (parse → typecheck → HighIR construction, which
includes field normalization) is cheap and deterministic; everything
after it — contraction, value numbering, probe fusion, lowering, codegen
— dominates compile time and is a pure function of the normalized HighIR
plus the optimization options.  So the cache key is a **fingerprint of
the normalized HighIR** (not of the source text): two sources that
differ only in formatting, comments, or variable names that normalize
away hit the same entry.

Keying on HighIR rather than source also makes the key *semantically
honest*: anything that could change the generated code (kernel
coefficients, image dims/shapes/paths, optimization toggles, precision)
is structurally folded into the hash, and nothing else is.

Entries are pickles of :class:`CompileCacheEntry` — the generated Python
source, the (lowered) :class:`HighProgram`, and the
:class:`CompileStats` from the original compile — written atomically
(temp file + ``os.replace``) so concurrent writers are safe, and read
defensively (a corrupt or version-skewed entry is deleted and treated as
a miss).  The on-disk format is versioned via ``FORMAT``, which is mixed
into the key, so format bumps invalidate old entries instead of
mis-reading them.

Environment knobs:

* ``REPRO_COMPILE_CACHE`` — enable for plain ``compile_program`` calls
  (the serving layer passes ``cache=True`` explicitly).
* ``REPRO_COMPILE_CACHE_DIR`` — cache directory (default
  ``~/.cache/repro-compile``).
* ``REPRO_COMPILE_CACHE_MAX`` — max number of entries; least-recently
  used (by mtime, refreshed on hit) are evicted on store.  Default
  unbounded.

Metrics: ``compile_cache.hits`` / ``compile_cache.misses`` /
``compile_cache.evicted`` counters on the active registry, plus one
``cat="cache"`` tracer span per lookup.
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
import tempfile
from dataclasses import dataclass, fields as _dc_fields
from pathlib import Path

import numpy as np

from repro.obs import metrics as _mx

__all__ = [
    "CompileCacheEntry",
    "FORMAT",
    "cache_dir",
    "clear",
    "fingerprint",
    "load",
    "store",
]

#: on-disk format version; bump when CompileCacheEntry or the pickled IR
#: classes change shape (mixed into the fingerprint, so old entries are
#: simply never looked up again)
FORMAT = 1


@dataclass
class CompileCacheEntry:
    """One cached compile: everything ``compile_to_source`` returns."""

    key: str
    gen_source: str
    high: object  # HighProgram, post-lowering (funcs are LowIR)
    stats: object  # CompileStats


def cache_dir() -> Path:
    env = os.environ.get("REPRO_COMPILE_CACHE_DIR")
    d = Path(env) if env else Path.home() / ".cache" / "repro-compile"
    d.mkdir(parents=True, exist_ok=True)
    return d


# --------------------------------------------------------------------------
# fingerprinting


def _stable(v) -> object:
    """A canonical, process-independent view of an attribute value.

    Mirrors value_numbering's ``_attr_key`` (ndarrays and kernels by
    structure, scalars by type+value) but never embeds object identity:
    NaN maps to a constant tag (same-text programs should hit), and the
    fallback is ``repr`` — safe for the frozen type dataclasses that
    appear as ``Value.ty``.
    """
    from repro.kernels import Kernel

    if isinstance(v, np.ndarray):
        return ("A", v.shape, str(v.dtype), v.tobytes().hex())
    if isinstance(v, Kernel):
        return ("K", v.support, tuple(_stable(p.coeffs) for p in v.pieces))
    if isinstance(v, (list, tuple)):
        return ("T",) + tuple(_stable(x) for x in v)
    if isinstance(v, dict):
        return ("D",) + tuple(
            (str(k), _stable(x)) for k, x in sorted(v.items(), key=lambda kv: str(kv[0]))
        )
    if isinstance(v, float) and math.isnan(v):
        return ("nan",)
    if isinstance(v, (bool, int, float, str, bytes)) or v is None:
        return (type(v).__name__, v)
    return ("R", type(v).__name__, repr(v))


def _func_sig(func, number: dict[int, int]) -> list:
    """Serialize one SSA function with *locally renumbered* values.

    ``Value.id`` comes from a process-global counter, so raw ids differ
    between otherwise identical compiles; renumbering in definition
    order (params first, then depth-first over the structured body)
    produces identical signatures for identical programs.
    """
    from repro.core.ir.base import Instr

    def num(v) -> int:
        n = number.get(v.id)
        if n is None:
            n = number[v.id] = len(number)
        return n

    sig: list = ["func", func.name]
    for p, name in zip(func.params, func.param_names):
        sig.append(("param", name, num(p), _stable(p.ty)))

    def walk(body) -> None:
        for item in body.items:
            if isinstance(item, Instr):
                sig.append((
                    item.op,
                    tuple(num(a) for a in item.args),
                    tuple(sorted((k, _stable(v)) for k, v in item.attrs.items())),
                    tuple((num(r), _stable(r.ty)) for r in item.results),
                ))
            else:
                sig.append(("if", num(item.cond)))
                walk(item.then_body)
                sig.append(("else",))
                walk(item.else_body)
                for phi in item.phis:
                    sig.append(("phi", num(phi.then_val), num(phi.else_val),
                                num(phi.result)))
                sig.append(("endif",))

    walk(func.body)
    sig.append(("ret",) + tuple(
        (name, num(v)) for name, v in zip(func.result_names, func.results)
    ))
    return sig


def fingerprint(hp, opts, extra: tuple = ()) -> str:
    """Hash (normalized HighIR, OptOptions, extra tags) → 32-hex key.

    ``extra`` carries the non-IR parts of the compile configuration —
    ``compile_program`` passes ``("precision", ...)``; the native
    backend's separate artifacts are keyed by
    :mod:`repro.core.codegen.cbuild` beneath this layer.
    """
    from repro.core.xform.to_high import HighBuilder

    doc: list = ["repro-compile-cache", FORMAT, tuple(extra)]
    doc.append(tuple(
        (f.name, getattr(opts, f.name)) for f in _dc_fields(opts)
    ))
    doc.append(tuple(
        ("image", name, s.dim, tuple(s.shape), s.path)
        for name, s in sorted(hp.images.items())
    ))
    doc.append((
        tuple(hp.defaulted_inputs), tuple(hp.concrete_globals),
        tuple(hp.input_names), tuple(hp.iter_names), bool(hp.grid),
        tuple(hp.state_order), tuple(hp.extra_state), tuple(hp.outputs),
    ))
    number: dict[int, int] = {}
    for fn in HighBuilder.all_funcs(hp):
        doc.append(_func_sig(fn, number))
    blob = repr(doc).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:32]


# --------------------------------------------------------------------------
# load / store / evict


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{key}.pkl"


def load(key: str, tracer=None):
    """Look up a compile by key; returns a CompileCacheEntry or None.

    A hit refreshes the entry's mtime (LRU recency) and increments
    ``compile_cache.hits``; a miss (including a corrupt entry, which is
    deleted) increments ``compile_cache.misses``.
    """
    path = _entry_path(key)
    entry = None
    try:
        with open(path, "rb") as fp:
            obj = pickle.load(fp)
        if isinstance(obj, CompileCacheEntry) and obj.key == key:
            entry = obj
        else:
            # a renamed/foreign entry must never satisfy another key
            os.unlink(path)
    except FileNotFoundError:
        pass
    except Exception:
        # corrupt / truncated / version-skewed pickle: purge and recompile
        try:
            os.unlink(path)
        except OSError:
            pass
    if entry is not None:
        _mx.ACTIVE.inc("compile_cache.hits")
        try:
            os.utime(path)
        except OSError:
            pass
        if tracer is not None:
            tracer.instant("compile-cache-hit", cat="cache", key=key)
    else:
        _mx.ACTIVE.inc("compile_cache.misses")
        if tracer is not None:
            tracer.instant("compile-cache-miss", cat="cache", key=key)
    return entry


def store(key: str, gen_source: str, high, stats, tracer=None) -> None:
    """Persist a compile atomically; best-effort (I/O errors are not
    compile errors — a read-only cache dir just means no caching)."""
    d = cache_dir()
    entry = CompileCacheEntry(key=key, gen_source=gen_source, high=high,
                              stats=stats)
    try:
        fd, tmp = tempfile.mkstemp(dir=d, prefix=f"{key}.", suffix=".pkl.tmp")
        try:
            with os.fdopen(fd, "wb") as fp:
                pickle.dump(entry, fp, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, _entry_path(key))
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    except (OSError, pickle.PicklingError):
        return
    if tracer is not None:
        tracer.instant("compile-cache-store", cat="cache", key=key)
    _evict_lru(d, keep_key=key)


def _max_entries() -> int | None:
    raw = os.environ.get("REPRO_COMPILE_CACHE_MAX", "").strip()
    if not raw:
        return None
    try:
        n = int(raw)
    except ValueError:
        return None
    return n if n > 0 else None


def _evict_lru(d: Path, keep_key: str | None = None) -> None:
    limit = _max_entries()
    if limit is None:
        return
    entries = []
    for p in d.glob("*.pkl"):
        try:
            entries.append((p.stat().st_mtime, p))
        except OSError:
            continue
    if len(entries) <= limit:
        return
    entries.sort()
    excess = len(entries) - limit
    for _, p in entries:
        if excess <= 0:
            break
        if keep_key is not None and p.stem == keep_key:
            continue
        try:
            os.unlink(p)
            _mx.ACTIVE.inc("compile_cache.evicted")
            excess -= 1
        except OSError:
            pass


def clear() -> int:
    """Delete every entry; returns the number removed (CLI hook)."""
    n = 0
    for p in cache_dir().glob("*.pkl"):
        try:
            os.unlink(p)
            n += 1
        except OSError:
            pass
    return n
