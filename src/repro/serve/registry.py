"""Warm-program registry: named compiled programs + pooled schedulers.

A :class:`ProgramRegistry` holds :class:`ProgramEntry` objects — a
compiled :class:`~repro.runtime.program.Program` plus the scheduler pool
it runs on — under user-chosen names.  Registration compiles through the
persistent compile cache (:mod:`repro.serve.cache`), so re-registering a
program another worker already compiled skips the optimizer pipeline;
requests then run on the entry's *pooled* scheduler (a warm
``ThreadScheduler`` or re-armable ``ProcessScheduler``), so steady-state
serving pays neither compile, image-load, nor pool-startup cost.

Batching contract: a probe-style program declares (via
:class:`ProbeSpec`) which image global carries the batch's points and
which ``int`` input carries the strand count.  ``run_batch`` binds the
points (plus ``pad`` replicated guard rows, so edge points stay inside
the kernel support of the *loaded* image) and runs the program over
exactly ``len(points)`` strands.  Strand updates are independent, so a
coalesced batch's per-row outputs are bit-identical to running each
request alone — asserted by ``tests/test_serve.py``.

The registry is LRU-bounded (``capacity``): registering past capacity
evicts the least-recently *used* entry (``get`` refreshes recency) and
closes its scheduler pool.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import InputError
from repro.image import Image
from repro.obs import metrics as _mx

__all__ = ["ProbeSpec", "ProgramEntry", "ProgramRegistry", "warm_manifest"]


@dataclass
class ProbeSpec:
    """How to feed a batch of probe positions into a program.

    ``points_image`` — the 1-D image global whose rows are the batch's
    probe positions; ``count_input`` — the ``int`` input holding the
    strand count; ``pad`` — replicated guard rows appended after the
    batch (a support-1 kernel like ``tent`` reads one row past the last
    integer position, so ``pad=1`` keeps every strand's probe inbounds).
    """

    points_image: str
    count_input: str
    pad: int = 1


class ProgramEntry:
    """One registered program: compiled code + its warm scheduler pool.

    ``lock`` serializes runs — a :class:`Program` binds inputs/images on
    itself, so one entry serves one batch at a time (the front door's
    batcher coalesces concurrency *into* those batches instead).
    """

    def __init__(self, name: str, program, *, probe: ProbeSpec | None = None,
                 scheduler: str | None = None, workers: int = 1,
                 backend: str | None = None):
        self.name = name
        self.program = program
        self.probe = probe
        self.scheduler = scheduler
        self.workers = workers
        self.backend = backend
        self.lock = threading.Lock()
        self.requests = 0
        self.batches = 0
        self._pool = None  # lazily-built pooled scheduler instance
        self._closed = False

    # -- scheduler pooling -------------------------------------------------

    def _pooled_scheduler(self):
        """The entry's warm scheduler instance (built on first use).

        Thread and process pools are kept alive across runs —
        ``Program.run`` never closes a scheduler *instance*, and a live
        ``ProcessScheduler`` re-arms its forked workers per run instead
        of re-forking.  ``seq``/default runs stay instance-free.
        """
        if self.scheduler not in ("thread", "process") or self.workers < 2:
            return None
        if self._pool is None:
            if self.scheduler == "thread":
                from repro.runtime.scheduler import ThreadScheduler

                self._pool = ThreadScheduler(self.workers)
            else:
                from repro.runtime.mpsched import ProcessScheduler

                self._pool = ProcessScheduler(self.workers)
        return self._pool

    def close(self) -> None:
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    # -- execution ---------------------------------------------------------

    def run(self, *, inputs: dict | None = None, tracer=None, metrics=None,
            on_step=None):
        """One full program run on the pooled scheduler (serialized).

        ``on_step`` (a per-super-step callback receiving
        :class:`repro.runtime.incremental.StepEvent`) feeds the front
        door's chunked streaming responses.
        """
        with self.lock:
            if self._closed:
                raise InputError(f"program {self.name!r} has been evicted")
            self.requests += 1
            for k, v in (inputs or {}).items():
                self.program.set_input(k, v)
            pool = self._pooled_scheduler()
            return self.program.run(
                workers=self.workers,
                scheduler=pool if pool is not None else self.scheduler,
                tracer=tracer, metrics=metrics, backend=self.backend,
                on_step=on_step,
            )

    def update(self, image: str, data, region=None, *, tracer=None,
               metrics=None, on_step=None):
        """Dirty-region image update: patch + incremental re-run.

        Primes a checkpoint (one cold run over the entry's current
        inputs) on first use, then patches the named image global and
        re-executes only the strands whose footprints intersect the
        changed regions.  Returns ``(update_info, RunResult)`` — see
        :meth:`repro.runtime.program.Program.update_input` /
        :meth:`~repro.runtime.program.Program.run_update`.
        """
        with self.lock:
            if self._closed:
                raise InputError(f"program {self.name!r} has been evicted")
            self.requests += 1
            pool = self._pooled_scheduler()
            sched = pool if pool is not None else self.scheduler
            if not self.program.has_checkpoint:
                _mx.ACTIVE.inc("serve.incremental.cold_checkpoints")
                self.program.run(
                    workers=self.workers, scheduler=sched, tracer=tracer,
                    metrics=metrics, backend=self.backend, checkpoint=True,
                )
            info = self.program.update_input(image, data, region=region,
                                             tracer=tracer)
            result = self.program.run_update(
                workers=self.workers, scheduler=sched, tracer=tracer,
                metrics=metrics, on_step=on_step,
            )
            _mx.ACTIVE.inc("serve.incremental.updates")
            _mx.ACTIVE.observe(
                "serve.incremental.dirty_fraction",
                info["dirty_strands"] / max(info["total_strands"], 1),
            )
        return info, result

    def run_batch(self, points: np.ndarray, *, tracer=None, metrics=None):
        """Run one coalesced probe batch; returns ``{output: rows}``.

        ``points`` has shape ``(n, *point_shape)``; each output comes
        back with leading dimension ``n`` (guard rows stripped).
        """
        if self.probe is None:
            raise InputError(
                f"program {self.name!r} was registered without a probe "
                "spec; only whole-program /run requests are supported"
            )
        spec = self.probe
        points = np.ascontiguousarray(points, dtype=self.program.dtype)
        if points.ndim < 1 or points.shape[0] < 1:
            raise InputError("probe batch must contain at least one point")
        n = points.shape[0]
        slot = self.program.high.images.get(spec.points_image)
        if slot is None:
            raise InputError(
                f"{spec.points_image!r} is not an image global of "
                f"{self.name!r}"
            )
        if spec.pad:
            guard = np.repeat(points[-1:], spec.pad, axis=0)
            data = np.concatenate([points, guard], axis=0)
        else:
            data = points
        img = Image(data, dim=1, tensor_shape=tuple(slot.shape))
        with self.lock:
            if self._closed:
                raise InputError(f"program {self.name!r} has been evicted")
            self.requests += 1
            self.batches += 1
            self.program.bind_image(spec.points_image, img)
            self.program.set_input(spec.count_input, n)
            pool = self._pooled_scheduler()
            result = self.program.run(
                workers=self.workers,
                scheduler=pool if pool is not None else self.scheduler,
                tracer=tracer, metrics=metrics, backend=self.backend,
            )
        return {name: arr[:n] for name, arr in result.outputs.items()}

    def info(self) -> dict:
        return {
            "name": self.name,
            "inputs": self.program.input_names,
            "outputs": self.program.output_names,
            "scheduler": self.scheduler or "seq",
            "workers": self.workers,
            "backend": self.backend or "numpy",
            "probe": None if self.probe is None else {
                "points_image": self.probe.points_image,
                "count_input": self.probe.count_input,
                "pad": self.probe.pad,
            },
            "requests": self.requests,
            "batches": self.batches,
        }


class ProgramRegistry:
    """Named warm programs with LRU capacity (thread-safe)."""

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise InputError("registry capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, ProgramEntry] = OrderedDict()
        self._lock = threading.RLock()

    def register(self, name: str, source: str | None = None,
                 path: str | None = None, *, precision: str = "double",
                 optimize=None, search_path: str | None = None,
                 probe: ProbeSpec | None = None,
                 scheduler: str | None = None, workers: int = 1,
                 backend: str | None = None, cache: bool = True,
                 tracer=None) -> ProgramEntry:
        """Compile (through the persistent compile cache) and register.

        Exactly one of ``source`` / ``path`` must be given.  Registering
        an existing name replaces (and closes) the old entry; exceeding
        ``capacity`` evicts the least-recently-used entry.
        """
        from repro.core.driver import compile_file, compile_program

        if (source is None) == (path is None):
            raise InputError("register() needs exactly one of source=/path=")
        if path is not None:
            program = compile_file(path, precision=precision,
                                   optimize=optimize, tracer=tracer,
                                   cache=cache)
        else:
            program = compile_program(source, precision=precision,
                                      optimize=optimize,
                                      search_path=search_path or ".",
                                      tracer=tracer, cache=cache)
        entry = ProgramEntry(name, program, probe=probe, scheduler=scheduler,
                             workers=workers, backend=backend)
        with self._lock:
            old = self._entries.pop(name, None)
            self._entries[name] = entry
            _mx.ACTIVE.inc("serve.registry.registered")
            evicted = []
            while self.capacity is not None and len(self._entries) > self.capacity:
                _, lru = self._entries.popitem(last=False)
                evicted.append(lru)
                _mx.ACTIVE.inc("serve.registry.evicted")
        if old is not None:
            old.close()
        for lru in evicted:
            lru.close()
        return entry

    def get(self, name: str) -> ProgramEntry:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(name)
            self._entries.move_to_end(name)  # LRU recency
            return entry

    def list(self) -> list[dict]:
        with self._lock:
            return [e.info() for e in self._entries.values()]

    def evict(self, name: str) -> bool:
        with self._lock:
            entry = self._entries.pop(name, None)
            if entry is not None:
                _mx.ACTIVE.inc("serve.registry.evicted")
        if entry is None:
            return False
        entry.close()
        return True

    def clear(self) -> None:
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for e in entries:
            e.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries


def warm_manifest(registry: ProgramRegistry, manifest_path: str, *,
                  cache: bool = True, tracer=None) -> list[ProgramEntry]:
    """Pre-compile and register every program listed in a JSON manifest.

    The manifest is either ``{"programs": [...]}`` or a bare list; each
    item needs ``name`` plus ``path`` or ``source`` and may carry
    ``precision``, ``scheduler``, ``workers``, ``backend``,
    ``search_path``, and a ``probe`` object (``points_image``,
    ``count_input``, optional ``pad``).  Relative ``path`` values are
    resolved against the manifest file's directory.  Each registration
    goes through the persistent compile cache and increments the
    ``serve.registry.warmed`` counter.
    """
    with open(manifest_path, encoding="utf-8") as fp:
        doc = json.load(fp)
    items = doc.get("programs") if isinstance(doc, dict) else doc
    if not isinstance(items, list):
        raise InputError(
            "warm manifest must be a JSON list or {'programs': [...]}"
        )
    base = os.path.dirname(os.path.abspath(manifest_path))
    entries = []
    for item in items:
        if not isinstance(item, dict) or "name" not in item:
            raise InputError(f"manifest entry needs a 'name': {item!r}")
        probe = None
        if item.get("probe"):
            p = item["probe"]
            probe = ProbeSpec(points_image=p["points_image"],
                              count_input=p["count_input"],
                              pad=int(p.get("pad", 1)))
        kwargs = dict(
            precision=item.get("precision", "double"), probe=probe,
            scheduler=item.get("scheduler"),
            workers=int(item.get("workers", 1)),
            backend=item.get("backend"), cache=cache, tracer=tracer,
        )
        if "source" in item:
            kwargs["source"] = item["source"]
            kwargs["search_path"] = item.get("search_path")
        elif "path" in item:
            path = item["path"]
            if not os.path.isabs(path):
                path = os.path.join(base, path)
            kwargs["path"] = path
        else:
            raise InputError(
                f"manifest entry {item['name']!r} needs 'path' or 'source'"
            )
        entries.append(registry.register(item["name"], **kwargs))
        _mx.ACTIVE.inc("serve.registry.warmed")
    return entries
