"""The asyncio front door: stdlib HTTP over the program registry.

One ``ServeApp`` owns a :class:`~repro.serve.registry.ProgramRegistry`
and one :class:`~repro.serve.batch.ProbeBatcher` per registered program.
The HTTP layer is deliberately tiny (asyncio ``start_server`` + hand
parsing, no framework, no dependencies) — requests and responses are
JSON, one request per connection.

Routes::

    GET    /healthz            liveness
    GET    /metrics            process-wide metrics document (obs layer)
    GET    /programs           registered programs + per-entry stats
    POST   /programs/<name>    compile (through the compile cache) + register
    DELETE /programs/<name>    evict
    POST   /probe/<name>       {"points": [...]} → coalesced batch run
    POST   /run/<name>         {"inputs": {...}} → one full program run
    POST   /update/<name>      {"image", "data", "region"?} → dirty-region
                               incremental re-run (see DESIGN.md
                               "Incremental execution")

``POST /run`` and ``POST /update`` accept ``"stream": true``: the
response becomes ``Transfer-Encoding: chunked`` NDJSON, one line per
super-step (newly-stabilized strand ids + their output rows) and a
final ``{"done": true, ...}`` line carrying the run summary.

Status mapping: unknown program → 404, bad request/compile error → 400,
queue full (:class:`~repro.serve.batch.Overloaded`) → 429 with
``Retry-After``, oversized body → 413, anything unexpected → 500.

Every request increments ``serve.requests`` and the per-status
``serve.http.<code>`` counter and lands one ``serve.request_seconds``
observation; per-batch coalescing metrics come from the batcher.  JSON
float serialization uses Python's shortest-round-trip repr, so float64
outputs survive the HTTP hop bit-exactly (asserted in tests).
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from repro.errors import DiderotError
from repro.obs import metrics as _mx
from repro.serve.batch import Overloaded, ProbeBatcher
from repro.serve.registry import ProbeSpec, ProgramRegistry

__all__ = ["ServeApp"]

#: refuse request bodies larger than this (64 MiB)
MAX_BODY = 64 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _Stream:
    """Marker payload: the response is a chunked NDJSON event stream."""

    def __init__(self, gen):
        self.gen = gen  # async generator of JSON-serializable chunks


class ServeApp:
    """The serving application: registry + per-program batchers + HTTP."""

    def __init__(self, registry: ProgramRegistry | None = None, *,
                 window: float = 0.002, max_batch: int = 65536,
                 max_queue: int = 64, compile_cache: bool = True):
        self.registry = registry if registry is not None else ProgramRegistry()
        self.window = window
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.compile_cache = compile_cache
        self._batchers: dict[str, tuple[object, ProbeBatcher]] = {}
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 8077):
        """Bind and start serving; returns the asyncio server object."""
        self._server = await asyncio.start_server(self._handle_client,
                                                  host, port)
        return self._server

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for _, batcher in list(self._batchers.values()):
            await batcher.close()
        self._batchers.clear()
        self.registry.clear()

    def _batcher(self, entry) -> ProbeBatcher:
        """The entry's batcher (rebuilt if the entry was re-registered)."""
        held = self._batchers.get(entry.name)
        if held is not None and held[0] is entry:
            return held[1]
        batcher = ProbeBatcher(entry, window=self.window,
                               max_batch=self.max_batch,
                               max_queue=self.max_queue)
        old, self._batchers[entry.name] = held, (entry, batcher)
        if old is not None:
            asyncio.get_running_loop().create_task(old[1].close())
        return batcher

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        t0 = time.perf_counter()
        status, payload = 500, {"error": "internal error"}
        method = path = ""
        try:
            method, path, body = await self._read_request(reader)
            status, payload = await self._dispatch(method, path, body)
        except _HttpError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except Overloaded as exc:
            status, payload = 429, {"error": str(exc)}
        except KeyError as exc:
            status, payload = 404, {"error": f"unknown program {exc.args[0]!r}"}
        except (DiderotError, ValueError) as exc:
            status, payload = 400, {"error": str(exc)}
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        reg = _mx.GLOBAL
        reg.inc("serve.requests")
        reg.inc(f"serve.http.{status}")
        reg.observe("serve.request_seconds", time.perf_counter() - t0)
        if isinstance(payload, _Stream):
            await self._respond_stream(writer, status, payload.gen)
        else:
            await self._respond(writer, status, payload)

    async def _read_request(self, reader):
        line = await reader.readline()
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HttpError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY:
            raise _HttpError(413, f"body exceeds {MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _respond(self, writer, status: int, payload) -> None:
        try:
            data = json.dumps(payload, default=float).encode("utf-8")
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
                + ("Retry-After: 1\r\n" if status == 429 else "")
                + "Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + data)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _respond_stream(self, writer, status: int, gen) -> None:
        reg = _mx.GLOBAL
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head)
            await writer.drain()
            async for chunk in gen:
                data = (json.dumps(chunk, default=float) + "\n").encode("utf-8")
                writer.write(f"{len(data):x}\r\n".encode("latin-1")
                             + data + b"\r\n")
                reg.inc("serve.stream.chunks")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes):
        seg = [s for s in path.split("?")[0].split("/") if s]
        if seg == ["healthz"] and method == "GET":
            return 200, {"ok": True, "programs": len(self.registry)}
        if seg == ["metrics"] and method == "GET":
            return 200, _mx.metrics_doc(_mx.GLOBAL)
        if seg == ["programs"] and method == "GET":
            return 200, {"programs": self.registry.list()}
        if len(seg) == 2 and seg[0] == "programs":
            if method == "POST":
                return await self._register(seg[1], self._json(body))
            if method == "DELETE":
                found = self.registry.evict(seg[1])
                await self._drop_batcher(seg[1])
                if not found:
                    raise KeyError(seg[1])
                return 200, {"evicted": seg[1]}
            raise _HttpError(405, f"{method} not allowed on {path}")
        if len(seg) == 2 and seg[0] == "probe" and method == "POST":
            return await self._probe(seg[1], self._json(body))
        if len(seg) == 2 and seg[0] == "run" and method == "POST":
            return await self._run(seg[1], self._json(body))
        if len(seg) == 2 and seg[0] == "update" and method == "POST":
            return await self._update(seg[1], self._json(body))
        raise _HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _json(body: bytes) -> dict:
        if not body:
            return {}
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"bad JSON body: {exc}") from None
        if not isinstance(doc, dict):
            raise _HttpError(400, "JSON body must be an object")
        return doc

    async def _drop_batcher(self, name: str) -> None:
        held = self._batchers.pop(name, None)
        if held is not None:
            await held[1].close()

    # -- handlers ----------------------------------------------------------

    async def _register(self, name: str, doc: dict):
        probe = None
        if doc.get("probe"):
            p = doc["probe"]
            probe = ProbeSpec(points_image=p["points_image"],
                              count_input=p["count_input"],
                              pad=int(p.get("pad", 1)))
        kwargs = dict(
            precision=doc.get("precision", "double"),
            probe=probe,
            scheduler=doc.get("scheduler"),
            workers=int(doc.get("workers", 1)),
            backend=doc.get("backend"),
            cache=self.compile_cache,
        )
        if "source" in doc:
            kwargs["source"] = doc["source"]
            kwargs["search_path"] = doc.get("search_path")
        elif "path" in doc:
            kwargs["path"] = doc["path"]
        else:
            raise _HttpError(400, "register needs 'source' or 'path'")
        # compile off the event loop: a cold compile takes real time
        entry = await asyncio.to_thread(self.registry.register, name, **kwargs)
        await self._drop_batcher(name)  # stale batcher from a replaced entry
        return 200, {"registered": entry.info()}

    async def _probe(self, name: str, doc: dict):
        entry = self.registry.get(name)
        if "points" not in doc:
            raise _HttpError(400, "probe needs 'points'")
        points = np.asarray(doc["points"], dtype=entry.program.dtype)
        if points.ndim < 1 or points.shape[0] < 1:
            raise _HttpError(400, "'points' must be a non-empty array")
        outputs = await self._batcher(entry).submit(points)
        return 200, {"outputs": {k: v.tolist() for k, v in outputs.items()}}

    async def _run(self, name: str, doc: dict):
        entry = self.registry.get(name)
        inputs = doc.get("inputs", {})
        if not isinstance(inputs, dict):
            raise _HttpError(400, "'inputs' must be an object")
        if doc.get("stream"):
            def call(on_step):
                result = entry.run(inputs=inputs, on_step=on_step)
                return self._run_payload(result) | {"done": True}
            return 200, _Stream(self._stream_events(call))
        result = await asyncio.to_thread(entry.run, inputs=inputs)
        return 200, self._run_payload(result)

    @staticmethod
    def _run_payload(result) -> dict:
        return {
            "outputs": {k: v.tolist() for k, v in result.outputs.items()},
            "steps": result.steps,
            "strands": result.num_strands,
            "wall_seconds": result.wall_time,
        }

    async def _update(self, name: str, doc: dict):
        entry = self.registry.get(name)
        if "image" not in doc or "data" not in doc:
            raise _HttpError(400, "update needs 'image' and 'data'")
        image = doc["image"]
        data = np.asarray(doc["data"], dtype=entry.program.dtype)
        region = doc.get("region")
        if doc.get("stream"):
            def call(on_step):
                info, result = entry.update(image, data, region,
                                            on_step=on_step)
                return self._update_payload(info, result) | {"done": True}
            return 200, _Stream(self._stream_events(call))
        info, result = await asyncio.to_thread(entry.update, image, data,
                                               region)
        return 200, self._update_payload(info, result)

    @staticmethod
    def _update_payload(info: dict, result) -> dict:
        payload = {
            "update": info,
            "steps": result.steps,
            "strands": result.num_strands,
            "dirty_strands": result.dirty_strands,
            "dirty_fraction": result.dirty_fraction,
            "incremental": result.incremental,
            "wall_seconds": result.wall_time,
        }
        idx = result.updated_indices
        if result.incremental and result.grid and idx is not None:
            # ship only the rows that could have changed: flatten grid
            # outputs to (total, ...) and select the re-run strands
            payload["updated_indices"] = np.asarray(idx).tolist()
            rows = {}
            for k, arr in result.outputs.items():
                flat = arr.reshape((result.num_strands,)
                                   + arr.shape[result.grid_dims:])
                rows[k] = flat[np.asarray(idx)].tolist()
            payload["outputs"] = rows
            payload["partial"] = True
        else:
            payload["outputs"] = {k: v.tolist()
                                  for k, v in result.outputs.items()}
            payload["partial"] = False
        return payload

    async def _stream_events(self, call):
        """Run blocking ``call(on_step)`` in a thread; yield step chunks.

        The worker thread's per-super-step callback is bridged onto the
        event loop via ``call_soon_threadsafe`` into a queue; the final
        chunk is whatever ``call`` returns (a dict with ``done: true``).
        """
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def on_step(ev):
            mask = ev.status == 1  # strands that stabilized this step
            item = {
                "step": int(ev.step),
                "active": int(ev.active.size),
                "stabilized": int(mask.sum()),
            }
            if item["stabilized"]:
                item["ids"] = ev.active[mask].tolist()
                item["outputs"] = {k: np.asarray(v)[mask].tolist()
                                   for k, v in ev.outputs.items()}
            loop.call_soon_threadsafe(queue.put_nowait, ("step", item))

        task = asyncio.ensure_future(asyncio.to_thread(call, on_step))
        # the done-callback runs on the loop after every pending
        # call_soon_threadsafe step item, so ordering is preserved;
        # consuming .exception() here also silences "never retrieved"
        # when the client disconnects mid-stream
        task.add_done_callback(
            lambda t: queue.put_nowait(("done", t.exception(), t)))
        while True:
            msg = await queue.get()
            if msg[0] == "step":
                yield msg[1]
                continue
            _, exc, done = msg
            if exc is not None:
                status = getattr(exc, "status", None)
                yield {"error": f"{type(exc).__name__}: {exc}",
                       **({"status": status} if status else {})}
                return
            yield done.result()
            return
