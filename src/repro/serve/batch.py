"""Request coalescing: many concurrent probe requests → one strand batch.

Diderot's runtime amortizes per-run overhead over strand *blocks*; the
front door amortizes it over *requests* the same way.  Each registered
program gets one :class:`ProbeBatcher`: concurrent ``submit()`` calls
park their points on a bounded queue, a single drain task gathers
everything that arrives within ``window`` seconds (up to ``max_batch``
rows), concatenates the points into one strand population, runs it once
on the entry's pooled scheduler, and splits the output rows back to the
waiting futures.

Because strand updates are independent (each strand reads only its own
probe position), the coalesced run's per-row results are bit-identical
to running each request alone — the batcher changes latency and
throughput, never values.

Backpressure: the queue is bounded (``max_queue`` waiting requests);
when it is full, ``submit`` raises :class:`Overloaded` immediately (the
HTTP layer maps this to 429) instead of buffering without limit.

Metrics: ``serve.batch.requests`` / ``serve.batch.batches`` /
``serve.batch.coalesced`` (requests that shared a run with others),
``serve.batch.size`` histogram, ``serve.shed`` for rejected requests.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.obs import metrics as _mx

__all__ = ["Overloaded", "ProbeBatcher"]


class Overloaded(Exception):
    """The batch queue is full; shed this request (HTTP 429)."""


class ProbeBatcher:
    """Coalesces concurrent probe submissions for one registry entry."""

    def __init__(self, entry, *, window: float = 0.002,
                 max_batch: int = 65536, max_queue: int = 64):
        self.entry = entry
        self.window = window
        self.max_batch = max_batch
        self.max_queue = max_queue
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_queue)
        self._task: asyncio.Task | None = None
        self._closed = False

    # -- client side -------------------------------------------------------

    async def submit(self, points: np.ndarray) -> dict:
        """Queue one request's points; resolves to ``{output: rows}``."""
        if self._closed:
            raise Overloaded(f"batcher for {self.entry.name!r} is closed")
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._drain())
        fut = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((points, fut))
        except asyncio.QueueFull:
            _mx.ACTIVE.inc("serve.shed")
            raise Overloaded(
                f"{self.entry.name!r}: {self.max_queue} requests already "
                "queued"
            ) from None
        _mx.ACTIVE.inc("serve.batch.requests")
        return await fut

    async def close(self) -> None:
        """Stop the drain task; pending requests fail with Overloaded."""
        self._closed = True
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        while not self._queue.empty():
            _, fut = self._queue.get_nowait()
            if not fut.done():
                fut.set_exception(Overloaded("server shutting down"))

    # -- drain loop --------------------------------------------------------

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._closed:
            first = await self._queue.get()
            batch = [first]
            rows = first[0].shape[0]
            # collect whatever else lands within the batching window;
            # already-queued requests are absorbed even after the window
            # closes — they cost no extra wait
            deadline = loop.time() + self.window
            while rows < self.max_batch:
                if not self._queue.empty():
                    item = self._queue.get_nowait()
                else:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(self._queue.get(),
                                                      timeout)
                    except (asyncio.TimeoutError, TimeoutError):
                        break
                batch.append(item)
                rows += item[0].shape[0]
            await self._run_batch(batch)

    async def _run_batch(self, batch: list) -> None:
        reg = _mx.ACTIVE
        reg.inc("serve.batch.batches")
        reg.observe("serve.batch.size", len(batch), bounds=_mx.SIZE_BUCKETS)
        if len(batch) > 1:
            reg.inc("serve.batch.coalesced", len(batch))
        points = np.concatenate([p for p, _ in batch], axis=0)
        try:
            outputs = await asyncio.to_thread(self.entry.run_batch, points)
        except BaseException as exc:
            for _, fut in batch:
                if not fut.done():
                    fut.set_exception(exc)
            return
        off = 0
        for p, fut in batch:
            n = p.shape[0]
            if not fut.done():
                fut.set_result({k: v[off:off + n] for k, v in outputs.items()})
            off += n
