"""Exception hierarchy for the Diderot reproduction.

Every error raised by the compiler, runtime, or substrate libraries derives
from :class:`DiderotError`, so callers can catch one type.  Compiler errors
carry a source :class:`~repro.core.syntax.source.Span` when one is known.
"""

from __future__ import annotations


class DiderotError(Exception):
    """Base class for all errors raised by this package."""


class SyntaxErrorD(DiderotError):
    """A lexical or syntactic error in a Diderot program.

    The trailing ``D`` avoids shadowing the builtin :class:`SyntaxError`.
    """

    def __init__(self, message: str, span=None):
        self.span = span
        if span is not None:
            message = f"{span}: {message}"
        super().__init__(message)


class TypeErrorD(DiderotError):
    """A type error in a Diderot program."""

    def __init__(self, message: str, span=None):
        self.span = span
        if span is not None:
            message = f"{span}: {message}"
        super().__init__(message)


class CompileError(DiderotError):
    """An internal error in a later compiler stage (simplify, IR, codegen)."""


class CodegenError(CompileError):
    """An error while emitting or building the native C backend.

    Raised by :mod:`repro.core.codegen.cgen` when the LowIR cannot be
    translated (unknown op, unsupported type, malformed attributes) and by
    :mod:`repro.core.codegen.cbuild` when no C compiler/cffi is available
    or the compilation itself fails.  ``Program.run(backend="c")`` catches
    it and falls back to the NumPy backend with a warning; direct callers
    of the codegen see it raised.
    """


class RuntimeErrorD(DiderotError):
    """An error raised while executing a compiled Diderot program."""


class InputError(RuntimeErrorD):
    """An input variable was missing or set to an ill-typed value."""


class NrrdError(DiderotError):
    """A malformed NRRD file or an unsupported NRRD feature."""


class GageError(DiderotError):
    """Misuse of the gage (Teem-like) probing API."""
