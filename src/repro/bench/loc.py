"""Line-of-code counting for the Table 1 reproduction.

The paper reports "lines of code of both the Teem version (written in C)
and the Diderot version ... the lines-of-code numbers do not include
comments, blank lines, or timing code", with a separate count for the
computational core (the Diderot ``update`` method vs. the baseline's
per-strand loop body).

Diderot core lines are the body of the ``update`` method; baseline core
lines sit between ``# BEGIN CORE`` / ``# END CORE`` markers.
"""

from __future__ import annotations

import inspect
import io
import tokenize


def _is_code_line(line: str) -> bool:
    stripped = line.strip()
    return bool(stripped) and not stripped.startswith("//")


def count_diderot(source: str) -> tuple[int, int]:
    """(total, core) code lines of a Diderot program."""
    lines = source.splitlines()
    total = sum(1 for ln in lines if _is_code_line(_strip_comment(ln)))
    core = 0
    in_update = False
    depth = 0
    for ln in lines:
        code = _strip_comment(ln)
        stripped = code.strip()
        if not in_update:
            if stripped.startswith("update") and stripped.endswith("{"):
                in_update = True
                depth = 1
            continue
        depth += stripped.count("{") - stripped.count("}")
        if depth <= 0:
            in_update = False
            continue
        if _is_code_line(code):
            core += 1
    return total, core


def _strip_comment(line: str) -> str:
    idx = line.find("//")
    return line[:idx] if idx >= 0 else line


def count_python(source: str) -> tuple[int, int]:
    """(total, core) code lines of a baseline Python module.

    Total excludes blank lines, comments, and docstrings; core counts the
    lines between ``# BEGIN CORE`` and ``# END CORE`` markers (still
    excluding blanks/comments).
    """
    doc_lines = _docstring_lines(source)
    lines = source.splitlines()
    total = 0
    core = 0
    in_core = False
    for i, ln in enumerate(lines, start=1):
        stripped = ln.strip()
        if "# BEGIN CORE" in ln:
            in_core = True
            continue
        if "# END CORE" in ln:
            in_core = False
            continue
        if not stripped or stripped.startswith("#") or i in doc_lines:
            continue
        total += 1
        if in_core:
            core += 1
    return total, core


def _docstring_lines(source: str) -> set[int]:
    """Line numbers occupied by docstrings (module/def-leading strings)."""
    out: set[int] = set()
    try:
        toks = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenError:
        return out
    prev_significant = None
    for tok in toks:
        if tok.type == tokenize.STRING:
            # a string statement (not part of an expression) is a docstring
            if prev_significant in (None, "NEWLINE", "INDENT", "DEDENT"):
                out.update(range(tok.start[0], tok.end[0] + 1))
        if tok.type in (tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
            prev_significant = tokenize.tok_name[tok.type]
        elif tok.type not in (tokenize.NL, tokenize.COMMENT):
            prev_significant = tokenize.tok_name[tok.type]
    return out


def count_module(module) -> tuple[int, int]:
    """(total, core) lines of an imported baseline module."""
    return count_python(inspect.getsource(module))


def table1_rows() -> list[dict]:
    """Recompute Table 1: LOC (total:core) for baseline vs Diderot, plus
    strand counts (ours and the paper's)."""
    from repro import baselines, programs

    paper = {
        "vr-lite": ((223, 44), (68, 26)),
        "illust-vr": ((324, 61), (83, 39)),
        "lic2d": ((260, 66), (53, 32)),
        "ridge3d": ((360, 55), (44, 24)),
    }
    rows = []
    for name in ("vr-lite", "illust-vr", "lic2d", "ridge3d"):
        pmod = programs.ALL[name]
        bmod = baselines.ALL[name]
        d_total, d_core = count_diderot(pmod.SOURCE)
        b_total, b_core = count_module(bmod)
        rows.append(
            {
                "program": name,
                "baseline_loc": (b_total, b_core),
                "diderot_loc": (d_total, d_core),
                "paper_teem_loc": paper[name][0],
                "paper_diderot_loc": paper[name][1],
                "paper_strands": pmod.PAPER_STRANDS,
            }
        )
    return rows
