"""Benchmark support utilities (line counting, harness helpers)."""
