"""Command-line Diderot compiler and runner.

The paper's compiler "synthesizes glue code that allows command-line
setting of input variables" (§3.3.1) and its runtime writes program output
"to either a text or Nrrd file" (§5.5).  This entry point provides both:

    python -m repro PROGRAM.diderot [--input name=value ...]
                                    [--precision single|double]
                                    [--workers N] [--block-size N]
                                    [--out PREFIX] [--text]
                                    [--emit-python] [--stats]

Each output variable is written to ``PREFIX-<name>.nrrd`` (or ``.txt``
with ``--text``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.driver import compile_file
from repro.errors import DiderotError


def _parse_value(text: str):
    text = text.strip()
    if text in ("true", "false"):
        return text == "true"
    if text.startswith("["):
        return [float(x) for x in text.strip("[]").split(",")]
    try:
        return int(text)
    except ValueError:
        return float(text)


def _write_text(prefix: str, name: str, arr: np.ndarray) -> str:
    path = f"{prefix}-{name}.txt"
    flat = arr.reshape(-1, arr.shape[-1]) if arr.ndim > 1 else arr
    np.savetxt(path, flat)
    return path


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro", description="Compile and run a Diderot program"
    )
    ap.add_argument("program", help="path to a .diderot source file")
    ap.add_argument("--input", action="append", default=[], metavar="NAME=VALUE",
                    help="set an input global (repeatable)")
    ap.add_argument("--precision", choices=("single", "double"), default="double")
    ap.add_argument("--workers", type=int, default=1)
    ap.add_argument("--block-size", type=int, default=4096)
    ap.add_argument("--max-steps", type=int, default=None)
    ap.add_argument("--out", default="out", help="output file prefix")
    ap.add_argument("--text", action="store_true", help="write text, not NRRD")
    ap.add_argument("--emit-python", action="store_true",
                    help="print the generated NumPy code and exit")
    ap.add_argument("--stats", action="store_true",
                    help="print compiler statistics")
    args = ap.parse_args(argv)

    try:
        prog = compile_file(args.program, precision=args.precision)
    except (DiderotError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.emit_python:
        print(prog.generated_source)
        return 0
    if args.stats:
        st = prog.stats
        print("instruction counts (HighIR → MidIR → LowIR), per function:")
        for fn in st.low_instrs:
            print(
                f"  {fn:<10} {st.high_instrs[fn]:>5} → {st.mid_instrs[fn]:>5} "
                f"→ {st.low_instrs[fn]:>5}   (VN removed {st.vn_removed.get(fn, 0)})"
            )

    for setting in args.input:
        if "=" not in setting:
            print(f"error: --input expects NAME=VALUE, got {setting!r}",
                  file=sys.stderr)
            return 1
        name, _, value = setting.partition("=")
        try:
            prog.set_input(name.strip(), _parse_value(value))
        except DiderotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    try:
        result = prog.run(
            workers=args.workers,
            block_size=args.block_size,
            max_steps=args.max_steps,
        )
    except DiderotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(
        f"{result.num_strands} strands, {result.steps} super-steps, "
        f"{result.num_stable} stable, {result.num_died} died, "
        f"{result.wall_time:.2f}s"
    )
    if args.text:
        paths = [
            _write_text(args.out, name, arr)
            for name, arr in result.outputs.items()
        ]
    else:
        paths = result.save(args.out)
    for path, arr in zip(paths, result.outputs.values()):
        print(f"wrote {path}  shape={tuple(arr.shape)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
