"""Command-line Diderot compiler and runner.

The paper's compiler "synthesizes glue code that allows command-line
setting of input variables" (§3.3.1) and its runtime writes program output
"to either a text or Nrrd file" (§5.5).  This entry point provides both:

    python -m repro PROGRAM.diderot [--input name=value ...]
                                    [--precision single|double]
                                    [--scheduler seq|thread|process|auto]
                                    [--backend numpy|c]
                                    [--workers N|auto] [--block-size N]
                                    [--out PREFIX] [--text]
                                    [--emit-python] [--stats] [--check]
                                    [--trace FILE.json] [--profile]
                                    [--no-metrics] [--metrics-out FILE.json]
                                    [--compile-cache]

Each output variable is written to ``PREFIX-<name>.nrrd`` (or ``.txt``
with ``--text``).  ``--trace`` writes a Chrome trace-event JSON file
(loadable in Perfetto / ``chrome://tracing``) covering both the compiler
passes and the runtime's super-steps/blocks; ``--profile`` prints the
same data as a summary table.  Setting ``REPRO_TRACE=FILE.json`` in the
environment is equivalent to ``--trace FILE.json``.

Metrics are on by default (the registry described in DESIGN.md "Metrics
& profiling"): ``--metrics-out FILE`` saves the invocation's metrics
JSON document (compile-pass timings, the op-profiler counters, scheduler
health) for ``python -m repro.obs report`` / ``diff``; ``--no-metrics``
selects the zero-overhead disabled path.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.core.driver import OptOptions, compile_file
from repro.errors import DiderotError
from repro.inputs import parse_value
from repro.obs import Tracer, format_summary, write_chrome_trace
from repro.obs import metrics as _mx
from repro.runtime.native import BACKEND_NAMES
from repro.runtime.scheduler import SCHEDULER_CHOICES, resolve_workers


def _write_text(prefix: str, name: str, arr: np.ndarray) -> str:
    path = f"{prefix}-{name}.txt"
    flat = arr.reshape(-1, arr.shape[-1]) if arr.ndim > 1 else arr
    np.savetxt(path, flat)
    return path


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro", description="Compile and run a Diderot program"
    )
    ap.add_argument("program", help="path to a .diderot source file")
    ap.add_argument("--input", action="append", default=[], metavar="NAME=VALUE",
                    help="set an input global (repeatable)")
    ap.add_argument("--precision", choices=("single", "double"), default="double")
    ap.add_argument("--workers", type=str, default=None, metavar="N|auto",
                    help="worker count, or 'auto' for the CPU count "
                         "(default: 1, or 'auto' with --scheduler auto)")
    ap.add_argument("--scheduler", choices=SCHEDULER_CHOICES, default=None,
                    help="seq, thread, process, or auto (default: seq for 1 "
                         "worker, thread otherwise); auto picks seq on a "
                         "single-CPU machine, for 1 worker, or when the "
                         "program fits in one strand block, else thread for "
                         "--backend c and process for numpy")
    ap.add_argument("--backend", choices=BACKEND_NAMES, default="numpy",
                    help="strand-update backend: numpy (reference) or c "
                         "(compiled native kernel via cffi; needs a C "
                         "compiler, falls back to numpy with a warning)")
    ap.add_argument("--block-size", type=int, default=4096)
    ap.add_argument("--max-steps", type=int, default=None)
    ap.add_argument("--out", default="out", help="output file prefix")
    ap.add_argument("--text", action="store_true", help="write text, not NRRD")
    ap.add_argument("--emit-python", action="store_true",
                    help="print the generated NumPy code and exit")
    ap.add_argument("--stats", action="store_true",
                    help="print compiler statistics")
    ap.add_argument("--trace", metavar="FILE",
                    default=os.environ.get("REPRO_TRACE") or None,
                    help="write a Chrome trace-event JSON file covering "
                         "compile and run (also via REPRO_TRACE=FILE)")
    ap.add_argument("--profile", action="store_true",
                    help="print a compiler-pass / super-step profile summary")
    ap.add_argument("--check", action="store_true",
                    help="run the IR validator after every compiler pass "
                         "(also via REPRO_CHECK=1)")
    ap.add_argument("--no-fuse", action="store_true",
                    help="disable probe fusion (A/B against the fused "
                         "pipeline)")
    ap.add_argument("--compile-cache", action=argparse.BooleanOptionalAction,
                    default=None,
                    help="use the persistent compile cache (default: the "
                         "REPRO_COMPILE_CACHE environment variable); a hit "
                         "skips the optimizer/lowering/codegen passes "
                         "entirely")
    ap.add_argument("--metrics", action=argparse.BooleanOptionalAction,
                    default=True,
                    help="collect runtime metrics (on by default; "
                         "--no-metrics selects the zero-overhead path)")
    ap.add_argument("--metrics-out", metavar="FILE", default=None,
                    help="write the run's metrics JSON document "
                         "(compile passes + op profiler + scheduler "
                         "health; see python -m repro.obs report)")
    args = ap.parse_args(argv)

    raw_workers = args.workers
    if raw_workers is None:
        raw_workers = "auto" if args.scheduler == "auto" else "1"
    try:
        workers = resolve_workers(raw_workers)
    except DiderotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.metrics_out and not args.metrics:
        print("error: --metrics-out requires metrics "
              "(drop --no-metrics)", file=sys.stderr)
        return 1

    tracer = Tracer() if (args.trace or args.profile) else None
    # one ambient registry for the whole invocation: the compile's pass
    # timings and the run's metrics land in a single document
    if args.metrics:
        with _mx.collect() as session:
            return _compile_and_run(args, workers, tracer, session)
    return _compile_and_run(args, workers, tracer, None)


def _compile_and_run(args, workers, tracer, session) -> int:
    try:
        prog = compile_file(args.program, precision=args.precision, tracer=tracer,
                            check=True if args.check else None,
                            optimize=OptOptions(probe_fusion=not args.no_fuse),
                            cache=args.compile_cache)
    except (DiderotError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.emit_python:
        print(prog.generated_source)
        return 0
    if args.stats:
        st = prog.stats
        print("instruction counts (HighIR → MidIR → LowIR), per function:")
        for fn in st.low_instrs:
            print(
                f"  {fn:<10} {st.high_instrs[fn]:>5} → {st.mid_instrs[fn]:>5} "
                f"→ {st.low_instrs[fn]:>5}   (VN removed {st.vn_removed.get(fn, 0)})"
            )

    for setting in args.input:
        if "=" not in setting:
            print(f"error: --input expects NAME=VALUE, got {setting!r}",
                  file=sys.stderr)
            return 1
        name, _, value = setting.partition("=")
        try:
            prog.set_input(name.strip(), parse_value(value))
        except DiderotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    try:
        result = prog.run(
            workers=workers,
            block_size=args.block_size,
            max_steps=args.max_steps,
            tracer=tracer,
            scheduler=args.scheduler,
            backend=args.backend,
            metrics=None if session is not None else False,
        )
    except DiderotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(
        f"{result.num_strands} strands, {result.steps} super-steps, "
        f"{result.num_stable} stable, {result.num_died} died, "
        f"{result.wall_time:.2f}s"
    )
    status = 0
    if args.trace:
        try:
            write_chrome_trace(tracer, args.trace)
            print(f"wrote trace {args.trace}")
        except OSError as exc:
            print(f"error: cannot write trace {args.trace}: {exc}",
                  file=sys.stderr)
            status = 1
    if args.profile:
        print(format_summary(tracer, metrics=session))
    if args.metrics_out:
        try:
            _mx.write_metrics_json(
                session, args.metrics_out,
                meta={"program": args.program, "workers": workers,
                      "scheduler": args.scheduler or
                      ("seq" if workers == 1 else "thread"),
                      "block_size": args.block_size,
                      "precision": args.precision,
                      "wall_seconds": result.wall_time},
            )
            print(f"wrote metrics {args.metrics_out}")
        except OSError as exc:
            print(f"error: cannot write metrics {args.metrics_out}: {exc}",
                  file=sys.stderr)
            status = 1
    if args.text:
        paths = [
            _write_text(args.out, name, arr)
            for name, arr in result.outputs.items()
        ]
    else:
        paths = result.save(args.out)
    for path, arr in zip(paths, result.outputs.values()):
        print(f"wrote {path}  shape={tuple(arr.shape)}")
    return status


if __name__ == "__main__":
    sys.exit(main())
