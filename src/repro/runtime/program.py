"""The compiled-program object: inputs, images, execution, outputs.

Implements the execution model of paper §3.3/§5.5: strands are created by
the ``initially`` comprehension, then updated in bulk-synchronous
super-steps until every strand has stabilized or died.  Grid programs
(``initially [...]``) preserve the comprehension's grid structure in the
output; collection programs (``initially {...}``) output the stable
strands as a one-dimensional array.

The compiler "synthesizes glue code that allows command-line setting of
input variables" (§3.3.1) — see :meth:`Program.cli`.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro.core.xform.to_high import HighProgram
from repro.errors import CodegenError, InputError, RuntimeErrorD
from repro.image import Image
from repro.nrrd import read_nrrd
from repro.obs import NULL_TRACER, tracer_from_env, write_chrome_trace
from repro.obs import metrics as _mx
from repro.runtime import incremental as _increc
from repro.runtime import ops as _ops
from repro.runtime.native import BACKEND_NAMES, NativeUpdate
from repro.runtime.scheduler import (
    SCHEDULER_CHOICES,
    SequentialScheduler,
    ThreadScheduler,
    make_blocks,
    resolve_auto,
    resolve_workers,
)

#: status codes returned by compiled update functions
RUNNING, STABILIZE, DIE = 0, 1, 2

#: the paper's strand-block size ("currently 4096 strands per block", §5.5)
DEFAULT_BLOCK_SIZE = 4096


@dataclass
class RunResult:
    """Outputs and execution statistics for one program run."""

    outputs: dict[str, np.ndarray]
    steps: int
    num_strands: int
    num_stable: int
    num_died: int
    wall_time: float
    #: True when the program used a grid comprehension (outputs keep the
    #: grid's shape); False for collections
    grid: bool = True
    #: number of grid axes (comprehension iterators); 1 for collections
    grid_dims: int = 1
    #: the run's :class:`repro.obs.metrics.MetricsRegistry` (op counters,
    #: scheduler health, per-step series); a ``NullRegistry`` when the
    #: run was executed with ``metrics=False``
    metrics: object = None
    #: True when this result came from an incremental update run
    #: (:meth:`Program.run_update`) rather than a cold run
    incremental: bool = False
    #: strands re-executed by an update run (== num_strands on cold runs)
    dirty_strands: int = 0
    #: dirty_strands / num_strands for update runs, 1.0 for cold runs
    dirty_fraction: float = 1.0
    #: global strand indices re-executed by an update run, or None
    updated_indices: object = None

    def save(self, prefix: str) -> list[str]:
        """Write every output to ``<prefix>-<name>.nrrd`` (paper §5.5).

        Grid outputs keep their grid axes as spatial axes (up to NRRD's
        3-D spatial limit); collection outputs are 1-D lists of tensors.
        Returns the written paths.
        """
        from repro.image import Image as _Image
        from repro.nrrd import write_nrrd as _write

        dim = min(self.grid_dims, 3) if self.grid else 1
        paths = []
        for name, arr in self.outputs.items():
            img = _Image(arr, dim=dim, tensor_shape=tuple(arr.shape[dim:]))
            path = f"{prefix}-{name}.nrrd"
            _write(path, img, content=f"diderot output {name!r}")
            paths.append(path)
        return paths


class _Ctx:
    """The context object generated functions receive."""

    def __init__(self, images: dict[str, Image], dtype):
        self.images = images
        self.dtype = dtype


def _adopt_results(out: tuple, state: list, status: np.ndarray):
    """Adopt a full-block update's results as the new state/status arrays.

    The in-place fast path hands the state arrays to ``update`` directly
    and the returned arrays *become* the state — no gather/scatter
    copies.  Results may be unbatched (constant-folded: one value for all
    strands), non-writeable (broadcasts), or may alias each other or an
    input array (two results sharing one SSA value, or a pass-through
    state variable); each such array is materialized so every state
    variable keeps private writeable storage — later scatters (stabilize,
    partial blocks) write into these arrays in place.
    """
    *new_state, block_status = out
    # update returns one result per declared state variable, in state
    # order; hidden immutable extras (method-referenced strand params)
    # ride at the tail of ``state`` and keep their arrays
    kept = state[len(new_state):]
    adopted: list[np.ndarray] = list(kept)

    def materialize(arr, like):
        # match the scatter path exactly: ``like[idx] = arr`` would cast
        # to the state array's dtype and broadcast unbatched values
        arr = np.asarray(arr)
        if arr.dtype != like.dtype:
            arr = arr.astype(like.dtype)
        if arr.ndim == like.ndim - 1:  # unbatched: one value, every strand
            arr = np.broadcast_to(arr, like.shape)
        if not arr.flags.writeable or any(
            np.may_share_memory(arr, prev) for prev in adopted
        ):
            arr = np.array(arr)
        adopted.append(arr)
        return arr

    new_arrs = [materialize(new, s_old) for s_old, new in zip(state, new_state)]
    return new_arrs + kept, materialize(block_status, status)


# worker id → (".busy_seconds" key, ".blocks" key), interned once so the
# per-step hot path never builds label strings
_WORKER_KEYS: dict = {}


def _worker_keys(w) -> tuple[str, str]:
    keys = _WORKER_KEYS.get(w)
    if keys is None:
        label = w if isinstance(w, str) else f"worker-{w}"
        keys = (f"sched.worker.{label}.busy_seconds",
                f"sched.worker.{label}.blocks")
        _WORKER_KEYS[w] = keys
    return keys


def _record_step_metrics(reg, step, n_blocks, active, stable, died,
                         step_dt, times, block_workers, workers):
    """Record one super-step's scheduler-health telemetry.

    Per-worker busy seconds and block counts come from the scheduler's
    block attribution; the load-imbalance index is ``max(busy) /
    mean(busy over the configured worker count)`` — 1.0 when every
    worker did equal work, ``workers`` when one worker did everything.
    """
    deltas = {
        "sched.supersteps": 1,
        "strands.updated": active,
        "strands.stabilized": stable,
        "strands.died": died,
    }
    reg.observe("sched.step_seconds", step_dt)
    busy: dict = {}
    for w, dt in zip(block_workers, times):
        keys = _worker_keys(w)
        entry = busy.get(keys)
        if entry is None:
            busy[keys] = [dt, 1]
        else:
            entry[0] += dt
            entry[1] += 1
        reg.observe("sched.block_seconds", dt)
    for (busy_key, blocks_key), (b, nb) in busy.items():
        deltas[busy_key] = b
        deltas[blocks_key] = nb
    reg.inc_many(deltas)
    if workers > 1:
        total = sum(e[0] for e in busy.values())
        if total > 0:
            imbalance = max(e[0] for e in busy.values()) * workers / total
            reg.observe("sched.imbalance", imbalance,
                        bounds=_mx.IMBALANCE_BUCKETS)
    reg.row("steps", step=step, blocks=n_blocks, active=active,
            stable=stable, died=died, seconds=step_dt)


class _IncState:
    """Everything the incremental-update machinery keeps between runs."""

    def __init__(self):
        self.snapshot: _increc.Snapshot | None = None
        self.recorder: _increc.FootprintRecorder | None = None
        self.footprints: _increc.Footprints | None = None
        #: strand ids whose checkpointed state is invalidated by pending
        #: ``update_input`` calls (consumed by the next ``run_update``)
        self.pending_ids = np.empty(0, dtype=np.int64)
        #: a pending change couldn't be localized: next update is a full run
        self.pending_full = False
        #: rows whose footprints are stale (re-run without recording);
        #: refreshed by a subset shadow run before the next intersect
        self.stale_ids = np.empty(0, dtype=np.int64)


class Program:
    """A compiled Diderot program, ready to accept inputs and run."""

    def __init__(self, high: HighProgram, namespace: dict, generated_source: str,
                 dtype, search_path: str, stats):
        self.high = high
        self.namespace = namespace
        self.generated_source = generated_source
        self.dtype = dtype
        self.search_path = search_path
        self.stats = stats
        self._inputs: dict[str, object] = {}
        self._bound_images: dict[str, Image] = {}
        self._ctx: _Ctx | None = None
        #: cached native-backend artifacts: None = not tried yet,
        #: "failed" = tried and unavailable, else (c_source, plan, lib, ffi)
        self._native_art = None
        self._native_error: str | None = None
        #: checkpoint + footprints for incremental re-execution, or None
        self._inc: _IncState | None = None

    # -- configuration ---------------------------------------------------------

    @property
    def input_names(self) -> list[str]:
        return list(self.high.input_names)

    @property
    def output_names(self) -> list[str]:
        return list(self.high.outputs)

    def set_input(self, name: str, value, _invalidate: bool = True) -> None:
        """Set an ``input`` global (overriding any default)."""
        if name not in self.high.input_names:
            raise InputError(
                f"{name!r} is not an input of this program; inputs are "
                f"{self.high.input_names}"
            )
        info = self.high.typed.globals[name]
        from repro.core.ty.types import BOOL, INT, TensorTy

        ty = info.ty
        if ty == INT:
            value = int(value)
        elif ty == BOOL:
            value = bool(value)
        elif isinstance(ty, TensorTy):
            value = np.asarray(value, dtype=self.dtype)
            if value.shape != ty.shape:
                raise InputError(
                    f"input {name!r} expects shape {ty.shape}, got {value.shape}"
                )
            if ty.shape == ():
                value = self.dtype(value)
        # inputs are re-resolved on every run; the context caches only
        # image data, so it survives input changes (the serving layer
        # re-points inputs per batch and must not re-read images)
        if _invalidate and self._inc is not None and name in self._inputs:
            if not np.array_equal(self._inputs[name], value):
                self._inc = None
        elif _invalidate and self._inc is not None:
            self._inc = None
        self._inputs[name] = value

    def bind_image(self, name: str, image: Image) -> None:
        """Bind an image global directly, bypassing its load(...) path."""
        if name not in self.high.images:
            raise InputError(
                f"{name!r} is not an image global; images are "
                f"{sorted(self.high.images)}"
            )
        slot = self.high.images[name]
        if image.dim != slot.dim or image.tensor_shape != tuple(slot.shape):
            raise InputError(
                f"image {name!r} expects image({slot.dim}){list(slot.shape)}, "
                f"got a {image.dim}-D image with tensor shape {image.tensor_shape}"
            )
        if self._inc is not None and self._bound_images.get(name) is not image:
            self._inc = None  # a rebind invalidates the checkpoint
        self._bound_images[name] = image
        if self._ctx is not None:
            # swap the one image in place instead of dropping the whole
            # context — other images keep their loaded/converted arrays
            self._ctx.images[name] = image.astype(self.dtype)

    # -- setup ------------------------------------------------------------------

    def _context(self) -> _Ctx:
        if self._ctx is not None:
            return self._ctx
        images: dict[str, Image] = {}
        for name, slot in self.high.images.items():
            if name in self._bound_images:
                img = self._bound_images[name]
            else:
                path = os.path.join(self.search_path, slot.path)
                if not os.path.exists(path):
                    raise InputError(
                        f"image global {name!r} loads {slot.path!r}, which "
                        f"does not exist under {self.search_path!r}; call "
                        "bind_image() or fix search_path"
                    )
                img = read_nrrd(path)
                if img.dim != slot.dim or img.tensor_shape != tuple(slot.shape):
                    raise InputError(
                        f"{slot.path!r} is a {img.dim}-D image with tensor "
                        f"shape {img.tensor_shape}; {name!r} is declared "
                        f"image({slot.dim}){list(slot.shape)}"
                    )
            images[name] = img.astype(self.dtype)
        self._ctx = _Ctx(images, self.dtype)
        return self._ctx

    def _resolve_inputs(self, ctx: _Ctx) -> dict[str, object]:
        values = dict(self._inputs)
        missing = [n for n in self.high.input_names if n not in values]
        if missing:
            defaults = self.namespace["defaults"](ctx)
            by_name = dict(zip(self.high.defaulted_inputs, defaults))
            still_missing = []
            for name in missing:
                if name in by_name:
                    values[name] = by_name[name]
                else:
                    still_missing.append(name)
            if still_missing:
                raise InputError(
                    f"inputs {still_missing} have no default and were not set"
                )
        return values

    def _globals_tuple(self, ctx: _Ctx) -> list:
        inputs = self._resolve_inputs(ctx)
        derived = self.namespace["globals"](
            ctx, *[inputs[n] for n in self.high.input_names]
        )
        derived_names = self.high.globals_func.result_names
        env = dict(inputs)
        env.update(zip(derived_names, derived))
        return [env[n] for n in self.high.concrete_globals]

    def _state_tensor_order(self, name: str) -> int:
        from repro.core.ty.types import TensorTy

        table = self.high.typed.state if name in self.high.typed.state else self.high.typed.params
        ty = table[name].ty
        return len(ty.shape) if isinstance(ty, TensorTy) else 0

    # -- native backend ----------------------------------------------------------

    def _native_artifacts(self):
        """``(c_source, plan, lib, ffi)`` for this program, or ``None``.

        The LowIR→C emission and the compile both happen once per
        Program (memoized, including failures); an unavailable native
        backend warns on stderr exactly once and the caller falls back
        to NumPy.  The failure reason is kept in ``self._native_error``.
        """
        art = self._native_art
        if art is not None:
            return None if art == "failed" else art
        try:
            if np.dtype(self.dtype) == np.float64:
                single = False
            elif np.dtype(self.dtype) == np.float32:
                single = True
            else:
                raise CodegenError(
                    f"native backend: unsupported program dtype {np.dtype(self.dtype)}"
                )
            from repro.core.codegen import cbuild
            from repro.core.codegen.cgen import generate_c_module

            # REPRO_CGEN_BATCH overrides the lane-batch width (1 = the
            # scalar baseline kernel; used by bench_native's ablation leg)
            batch_env = os.environ.get("REPRO_CGEN_BATCH")
            batch = int(batch_env) if batch_env else None
            flags = cbuild.flags_for(single)
            c_source, plan = generate_c_module(self.high, single=single, batch=batch)
            lib, ffi = cbuild.build(c_source, flags=flags)
        except CodegenError as exc:
            self._native_art = "failed"
            self._native_error = str(exc)
            print(
                f"warning: native backend unavailable, falling back to "
                f"NumPy: {exc}",
                file=sys.stderr,
            )
            return None
        self._native_art = (c_source, plan, lib, ffi)
        return self._native_art

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        workers: int | str = 1,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_steps: int | None = None,
        tracer=None,
        scheduler: str | None = None,
        metrics=None,
        backend: str | None = None,
        checkpoint: bool = False,
        on_step=None,
    ) -> RunResult:
        """Execute the program to completion.

        ``scheduler`` selects the parallel backend (DESIGN.md "Parallel
        backends"): ``"seq"`` is the sequential loop nest, ``"thread"``
        the persistent thread pool with a shared lock-protected work-list
        of strand blocks (paper §5.5), and ``"process"`` the
        shared-memory process pool (:mod:`repro.runtime.mpsched`) — true
        multicore execution on CPython.  When omitted, ``workers == 1``
        runs sequentially and ``workers > 1`` uses threads.  ``workers``
        accepts ``"auto"`` for the machine's CPU count; counts below 1
        raise :class:`~repro.errors.InputError`.

        ``scheduler`` may also be a scheduler *instance* — a
        :class:`~repro.runtime.scheduler.SequentialScheduler`,
        :class:`~repro.runtime.scheduler.ThreadScheduler`, or
        :class:`~repro.runtime.mpsched.ProcessScheduler` object.  The run
        uses it but does not close it, so callers (the serving layer's
        program registry) can keep warm worker pools across runs; a
        reused process pool re-arms its live workers with the new run's
        shared state instead of forking.

        ``tracer`` is an optional :class:`repro.obs.Tracer`: each
        super-step becomes a span carrying active/stable/died strand
        counts, with per-block child spans attributed to the worker
        (thread or process) that ran them; its ``on_superstep`` callback
        fires as each step completes.  When no tracer is passed and the
        ``REPRO_TRACE`` environment variable names a path, a tracer is
        created and a Chrome trace-event file is written there after the
        run.  With tracing off the hot path allocates no span objects.

        ``metrics`` controls the always-on metrics registry (DESIGN.md
        "Metrics & profiling"):

        * ``None`` (default) — record into a fresh per-run registry,
          returned as ``result.metrics``; its counters also fold into the
          process-wide session registry (``repro.obs.metrics.GLOBAL``)
          and any ambient ``metrics.collect()`` scope.
        * ``False`` — disable metrics entirely (the zero-overhead
          :class:`~repro.obs.metrics.NullRegistry` path).
        * ``True`` — same as ``None`` (explicit opt-in).
        * a :class:`~repro.obs.metrics.MetricsRegistry` — record into the
          caller's registry directly (no fold).

        ``backend`` selects the strand-update implementation:
        ``"numpy"`` (default) runs the generated NumPy module;
        ``"c"`` compiles the LowIR to native code via
        :mod:`repro.core.codegen.cgen` (results agree to 1e-12 — the
        NumPy backend stays the differential oracle).  When no C
        compiler or cffi is available, or the program uses a construct
        the emitter does not support, ``"c"`` degrades to NumPy with a
        stderr warning, never a crash.

        ``checkpoint=True`` snapshots the converged strand state (and,
        under the sequential NumPy configuration, records per-strand
        input-image footprints inline) so later
        :meth:`update_input`/:meth:`run_update` calls can re-execute
        only the strands a dirty image region invalidates — see
        DESIGN.md "Incremental execution".

        ``on_step`` is an optional callable fired after every
        super-step with a :class:`repro.runtime.incremental.StepEvent`
        carrying the strand ids that ran, their status codes, and
        private copies of their output rows — the streaming hook the
        serving layer's chunked ``/run`` responses are built on.
        """
        return self._metered(metrics, workers, block_size, max_steps,
                             tracer, scheduler, backend,
                             checkpoint=checkpoint, on_step=on_step)

    def _metered(self, metrics, workers, block_size, max_steps, tracer,
                 scheduler, backend, **kwargs) -> RunResult:
        """Run ``_run`` under a resolved metrics registry (fold on exit)."""
        reg, fold = _mx.resolve(metrics)
        prev = _mx.set_active(reg)
        try:
            result = self._run(workers, block_size, max_steps, tracer,
                               scheduler, reg, backend, **kwargs)
        finally:
            _mx.set_active(prev)
            if reg.enabled and fold:
                snap = reg.snapshot()
                for target in fold:
                    # the session-wide registry keeps cumulative counters
                    # only; per-step series stay per-run to bound memory
                    target.merge(snap,
                                 include_series=target is not _mx.GLOBAL)
        return result

    def _run(self, workers, block_size, max_steps, tracer, scheduler,
             reg, backend=None, checkpoint=False, on_step=None,
             _restore=None, _record=None) -> RunResult:
        env_trace_path = None
        if tracer is None:
            tracer, env_trace_path = tracer_from_env()
        tr = tracer if tracer is not None else NULL_TRACER

        # a scheduler *instance* (anything with run_step) is used as-is
        # and never closed — the serving layer pools warm schedulers
        # across requests and owns their lifecycle
        ext_sched = None
        if scheduler is not None and not isinstance(scheduler, str):
            if not hasattr(scheduler, "run_step"):
                raise InputError(
                    f"scheduler must be a name from {SCHEDULER_CHOICES} or an "
                    f"object with run_step(); got {type(scheduler).__name__}"
                )
            ext_sched = scheduler
            if hasattr(ext_sched, "setup"):  # a (reusable) process pool
                scheduler = "process"
            elif isinstance(ext_sched, SequentialScheduler):
                scheduler = "seq"
            else:
                scheduler = "thread"
            workers = getattr(ext_sched, "workers", workers)

        workers = resolve_workers(workers)
        if scheduler is None:
            scheduler = "seq" if workers == 1 else "thread"
        if scheduler not in SCHEDULER_CHOICES:
            raise InputError(
                f"unknown scheduler {scheduler!r}; choose from {SCHEDULER_CHOICES}"
            )
        if backend is None:
            backend = "numpy"
        if backend not in BACKEND_NAMES:
            raise InputError(
                f"unknown backend {backend!r}; choose from {BACKEND_NAMES}"
            )

        native_art = None
        if backend == "c":
            native_art = self._native_artifacts()
            if native_art is None:
                backend = "numpy"  # warned in _native_artifacts

        # footprint recording piggybacks on the run itself when the
        # configuration allows it (sequential NumPy: gathers happen
        # in-process, one block at a time); otherwise footprints are
        # built later by a dedicated shadow run (build_footprints)
        rec = _record
        if rec is None and checkpoint and scheduler == "seq" \
                and backend == "numpy":
            if _restore is not None:
                inc = self._inc
                rec = inc.recorder if inc is not None else None
            else:
                rec = _increc.FootprintRecorder({})

        ctx = self._context()
        if rec is not None:
            rec._names.update({id(img): nm for nm, img in ctx.images.items()})
            rec.lane_map = None  # global gathers until strands exist
            _ops.set_footprint_recorder(rec)
        g = self._globals_tuple(ctx)
        ns = self.namespace

        t0 = time.perf_counter()
        # comprehension grid
        bounds = ns["bounds"](ctx, *g)
        sizes = []
        los = []
        for i in range(len(self.high.iter_names)):
            lo, hi = int(bounds[2 * i]), int(bounds[2 * i + 1])
            if hi < lo:
                raise RuntimeErrorD(
                    f"empty comprehension range {lo}..{hi} for iterator "
                    f"{self.high.iter_names[i]!r}"
                )
            los.append(lo)
            sizes.append(hi - lo + 1)
        total = 1
        for s in sizes:
            total *= s
        if scheduler == "auto":
            scheduler = resolve_auto(workers, total, block_size, backend)
        if rec is not None:
            rec.resize(total)
        state_names = self.high.init_func.result_names
        restore_dirty = None
        if _restore is None:
            idx = np.arange(total, dtype=np.int64)
            iter_vals = []
            rem = idx
            for k in range(len(sizes) - 1, -1, -1):
                iter_vals.insert(0, rem % sizes[k] + los[k])
                rem = rem // sizes[k]

            if rec is not None:
                rec.lane_map = idx
            params = ns["seed"](ctx, *g, *iter_vals)
            state = list(ns["init"](ctx, *g, *params))
            if rec is not None:
                rec.lane_map = None
            # Initializers that fold to constants come back unbatched; give
            # every state variable its (strands, *tensor_shape) storage.  Two
            # state variables initialized from the same SSA value come back as
            # the same array object — each needs its own storage, since state
            # is updated in place per block.
            seen: set[int] = set()
            for i, (name, arr) in enumerate(zip(state_names, state)):
                arr = np.asarray(arr)
                order = self._state_tensor_order(name)
                if arr.ndim == order:
                    arr = np.broadcast_to(arr, (total,) + arr.shape)
                arr = np.ascontiguousarray(arr)
                if not arr.flags.writeable or id(arr) in seen:
                    arr = arr.copy()
                seen.add(id(arr))
                state[i] = arr

            status = np.zeros(total, dtype=np.int64)  # RUNNING
        else:
            # incremental restore: clean strands come back from the
            # checkpoint; dirty strands are re-seeded and re-initialized
            # exactly as a cold run would (init may probe the image, so
            # restoring a stale init is not an option)
            snap = _restore["snapshot"]
            if snap.total != total:
                raise RuntimeErrorD(
                    f"checkpoint has {snap.total} strands but the current "
                    f"globals produce {total}; run a fresh checkpoint"
                )
            restore_t0 = time.perf_counter()
            state, status = snap.copies()
            restore_dirty = np.asarray(_restore["dirty"], dtype=np.int64)
            if rec is not None:
                rec.reset_rows(restore_dirty)
            if restore_dirty.size:
                iter_vals = []
                rem = restore_dirty
                for k in range(len(sizes) - 1, -1, -1):
                    iter_vals.insert(0, rem % sizes[k] + los[k])
                    rem = rem // sizes[k]
                if rec is not None:
                    rec.lane_map = restore_dirty
                params = ns["seed"](ctx, *g, *iter_vals)
                new_state = ns["init"](ctx, *g, *params)
                if rec is not None:
                    rec.lane_map = None
                for s_arr, new in zip(state, new_state):
                    new = np.asarray(new)
                    if new.dtype != s_arr.dtype:
                        new = new.astype(s_arr.dtype)
                    # unbatched (constant-folded) results broadcast over
                    # the dirty rows, matching the cold materialization
                    s_arr[restore_dirty] = new
                status[restore_dirty] = RUNNING
            restore_dt = time.perf_counter() - restore_t0
            if tr.enabled:
                tr.complete("snapshot-restore", "incremental", restore_t0,
                            restore_dt, dirty=int(restore_dirty.size),
                            total=total)
            if reg.enabled:
                reg.observe("runtime.restore_seconds", restore_dt)
        update = ns["update"]
        stabilize_fn = ns.get("stabilize")

        pool = None
        sched = None
        native = None
        if scheduler == "process":
            if ext_sched is not None:
                pool = ext_sched
            else:
                from repro.runtime.mpsched import ProcessScheduler

                pool = ProcessScheduler(workers)
            # the master's state arrays become views over the pool's
            # shared-memory blocks: worker writes land in place.  With the
            # C backend, workers rebuild the native kernel from the cached
            # artifact (the master's build above warmed the cache) and run
            # it directly over their shared views.
            native_setup = None
            if backend == "c" and native_art is not None:
                from repro.core.codegen import cbuild

                native_setup = {
                    "c_source": native_art[0],
                    "plan": native_art[1],
                    "flags": cbuild.flags_for(
                        native_art[1].get("real_dtype") == "float32"
                    ),
                }
            state, status = pool.setup(
                self.generated_source, ctx.images, self.dtype, g, state,
                status, metrics=reg.enabled, native=native_setup
            )
        else:
            if ext_sched is not None:
                sched = ext_sched
            elif scheduler == "thread":
                sched = ThreadScheduler(workers)
            else:
                sched = SequentialScheduler()
            if backend == "c" and native_art is not None:
                _, plan, lib, ffi = native_art
                try:
                    # binds the *materialized* state arrays: the native
                    # kernel updates them in place, so the per-step result
                    # adoption/scatter below is skipped entirely
                    native = NativeUpdate(lib, ffi, plan, ctx.images, g,
                                          state, status)
                except CodegenError as exc:
                    print(
                        f"warning: native backend unavailable, falling "
                        f"back to NumPy: {exc}",
                        file=sys.stderr,
                    )

        setup_dt = time.perf_counter() - t0
        if tr.enabled:
            tr.complete("setup", "run", t0, setup_dt,
                        strands=total, scheduler=scheduler)
        if reg.enabled:
            reg.inc("run.setup_seconds", setup_dt)
            reg.gauge("run.workers", workers)
            reg.gauge("run.block_size", block_size)

        steps = 0
        if restore_dirty is not None:
            active_idx = restore_dirty
        else:
            active_idx = np.arange(total, dtype=np.int64)
        obs_on = tr.enabled or reg.enabled
        try:
            while active_idx.size:
                if max_steps is not None and steps >= max_steps:
                    break
                step_t0 = time.perf_counter() if obs_on else 0.0
                active_before = int(active_idx.size)
                if pool is not None:
                    n_blocks, _times = pool.run_step(
                        active_idx, block_size, tracer=tr, step=steps,
                        metrics=reg
                    )
                elif native is not None:
                    blocks = make_blocks(active_idx, block_size)
                    n_blocks = len(blocks)

                    def run_native_block(block_idx: np.ndarray):
                        # the native kernel reads and writes the bound
                        # state/status arrays in place (disjoint lanes per
                        # block, so concurrent thread workers are safe) and
                        # releases the GIL for the whole call
                        native.run_range(block_idx)
                        return None

                    _results, _times = sched.run_step(
                        blocks, run_native_block, tracer=tr, step=steps
                    )
                else:
                    blocks = make_blocks(active_idx, block_size)
                    n_blocks = len(blocks)
                    # in-place block update: when one block covers every
                    # strand (active == identity), hand the state arrays
                    # to update directly instead of fancy-index gathering
                    # a copy of each one
                    full_block = n_blocks == 1 and blocks[0].size == total

                    def run_block(block_idx: np.ndarray) -> tuple[np.ndarray, tuple]:
                        if rec is not None:
                            rec.lane_map = block_idx
                        if full_block:
                            block_state = state
                        else:
                            block_state = [s[block_idx] for s in state]
                        out = update(ctx, *g, *block_state)
                        return block_idx, out

                    results, _times = sched.run_step(
                        blocks, run_block, tracer=tr, step=steps
                    )
                    if full_block:
                        state, status = _adopt_results(
                            results[0][1], state, status
                        )
                    else:
                        for block_idx, out in results:
                            *new_state, block_status = out
                            for s_arr, new in zip(state, new_state):
                                s_arr[block_idx] = new
                            status[block_idx] = block_status
                # one status gather serves the stabilize scatter, the
                # observability tallies, AND the active-strand filter
                # (stabilize_fn mutates state only, never status)
                active_status = status[active_idx]
                if stabilize_fn is not None:
                    stable_mask = active_status == STABILIZE
                    if np.any(stable_mask):
                        stable_idx = active_idx[stable_mask]
                        if rec is not None:
                            rec.lane_map = stable_idx
                        block_state = [s[stable_idx] for s in state]
                        new_state = stabilize_fn(ctx, *g, *block_state)
                        if rec is not None:
                            rec.lane_map = None
                        for s_arr, new in zip(state, new_state):
                            s_arr[stable_idx] = new
                running_mask = active_status == RUNNING
                next_active = active_idx[running_mask]
                if on_step is not None:
                    nm = dict(zip(state_names, state))
                    on_step(_increc.StepEvent(
                        step=steps,
                        active=active_idx.copy(),
                        status=active_status.copy(),
                        # fancy indexing already yields private copies
                        outputs={o: nm[o][active_idx]
                                 for o in self.high.outputs},
                    ))
                if obs_on:
                    step_dt = time.perf_counter() - step_t0
                    # classify only the strands that left this step — on
                    # quiet steps (nobody stabilized or died, the common
                    # case mid-convergence) the tallies cost nothing
                    departed = active_before - int(next_active.size)
                    if departed:
                        leavers = active_status[~running_mask]
                        step_stable = int(np.sum(leavers == STABILIZE))
                        step_died = departed - step_stable
                    else:
                        step_stable = step_died = 0
                    if tr.enabled:
                        tr.complete(
                            "superstep", "superstep", step_t0, step_dt,
                            step=steps, blocks=n_blocks,
                            active=active_before,
                            stable=step_stable, died=step_died,
                        )
                    if reg.enabled:
                        sched_obj = pool if pool is not None else sched
                        _record_step_metrics(
                            reg, steps, n_blocks, active_before,
                            step_stable, step_died, step_dt, _times,
                            sched_obj.last_block_workers, workers,
                        )
                active_idx = next_active
                if tr.enabled:
                    tr.gauge("active-strands", int(active_idx.size))
                if reg.enabled:
                    reg.gauge("strands.active", int(active_idx.size))
                steps += 1
            if pool is not None:
                # outputs must outlive the shared blocks: detach before
                # the pool (and its shared memory) is torn down
                state = [np.array(s) for s in state]
                status = np.array(status)
        finally:
            if rec is not None:
                _ops.set_footprint_recorder(None)
                rec.lane_map = None
            if ext_sched is None:
                if pool is not None:
                    pool.close()
                elif sched is not None:
                    sched.close()

        wall = time.perf_counter() - t0
        n_stable = int(np.sum(status == STABILIZE))
        n_died = int(np.sum(status == DIE))

        if checkpoint:
            snap = _increc.Snapshot(
                state=[np.array(s) for s in state],
                status=status.copy(),
                sizes=np.asarray(sizes, dtype=np.int64),
                los=np.asarray(los, dtype=np.int64),
                total=total,
                steps=steps,
                max_steps=max_steps,
                backend=backend,
                grid=self.high.grid,
                grid_dims=len(self.high.iter_names),
            )
            if _restore is not None and self._inc is not None:
                inc = self._inc
                inc.snapshot = snap
                if rec is None and inc.recorder is not None \
                        and restore_dirty is not None:
                    # re-ran without recording: these rows' footprints no
                    # longer match their (new) trajectories
                    inc.stale_ids = np.union1d(inc.stale_ids, restore_dirty)
            else:
                inc = _IncState()
                inc.snapshot = snap
                inc.recorder = rec
                self._inc = inc
            if reg.enabled:
                reg.inc("runtime.incremental.checkpoints")

        if restore_dirty is not None and reg.enabled:
            frac = restore_dirty.size / max(total, 1)
            reg.observe("runtime.dirty_fraction", frac)
            reg.inc_many({
                "runtime.incremental.updates": 1,
                "runtime.incremental.rerun_strands": int(restore_dirty.size),
            })

        outputs: dict[str, np.ndarray] = {}
        name_to_arr = dict(zip(state_names, state))
        if self.high.grid:
            for out in self.high.outputs:
                arr = name_to_arr[out]
                outputs[out] = arr.reshape(tuple(sizes) + arr.shape[1:])
        else:
            keep = status == STABILIZE
            for out in self.high.outputs:
                outputs[out] = name_to_arr[out][keep]
        if tr.enabled:
            tr.complete("run", "run", t0, wall, workers=workers,
                        block_size=block_size, steps=steps, strands=total,
                        stable=n_stable, died=n_died)
        if reg.enabled:
            reg.inc_many({
                "run.count": 1,
                "run.steps": steps,
                "run.strands": total,
                "run.wall_seconds": wall,
            })
        if env_trace_path is not None:
            try:
                write_chrome_trace(tr, env_trace_path)
            except OSError as exc:
                # a bad REPRO_TRACE path must not destroy a finished run
                print(f"warning: cannot write trace {env_trace_path}: {exc}",
                      file=sys.stderr)
        return RunResult(
            outputs=outputs,
            steps=steps,
            num_strands=total,
            num_stable=n_stable,
            num_died=n_died,
            wall_time=wall,
            grid=self.high.grid,
            grid_dims=len(self.high.iter_names),
            metrics=reg,
            incremental=restore_dirty is not None,
            dirty_strands=(int(restore_dirty.size)
                           if restore_dirty is not None else total),
            dirty_fraction=(restore_dirty.size / max(total, 1)
                            if restore_dirty is not None else 1.0),
            updated_indices=restore_dirty,
        )

    # -- incremental re-execution (DESIGN.md "Incremental execution") --------------

    @property
    def has_checkpoint(self) -> bool:
        """True when a converged snapshot is available for updates."""
        return self._inc is not None and self._inc.snapshot is not None

    def invalidate_checkpoint(self) -> None:
        """Drop the snapshot and footprints (next run starts cold)."""
        self._inc = None

    def build_footprints(self, ids=None, tracer=None) -> None:
        """Build (or refresh, when ``ids`` is given) strand footprints.

        Runs a sequential NumPy *shadow* re-execution with the gather
        recorder installed: bit-identical to the checkpointed run, so
        the recorded per-strand image AABBs describe exactly the
        trajectories the snapshot holds.  Called lazily by
        :meth:`update_input` when the checkpoint was produced by a
        configuration that cannot record inline (thread/process
        schedulers, the native backend) — callers never need to invoke
        it directly.
        """
        inc = self._inc
        if inc is None or inc.snapshot is None:
            raise InputError(
                "no checkpoint: run(checkpoint=True) before building "
                "footprints"
            )
        snap = inc.snapshot
        t0 = time.perf_counter()
        full = inc.recorder is None or ids is None
        rec = inc.recorder if not full else _increc.FootprintRecorder({})
        if full:
            self._metered(False, 1, DEFAULT_BLOCK_SIZE, snap.max_steps,
                          tracer, "seq", "numpy", _record=rec)
        else:
            ids = np.unique(np.asarray(ids, dtype=np.int64))
            if ids.size == 0:
                return
            self._metered(False, 1, DEFAULT_BLOCK_SIZE, snap.max_steps,
                          tracer, "seq", "numpy", _record=rec,
                          _restore={"snapshot": snap, "dirty": ids})
        inc.recorder = rec
        if inc.footprints is not None and inc.footprints.recorder is not rec:
            inc.footprints = None  # a full rebuild replaced the recorder
        dt = time.perf_counter() - t0
        _mx.GLOBAL.inc("runtime.footprint.builds" if full
                       else "runtime.footprint.refreshes")
        _mx.GLOBAL.inc("runtime.footprint.build_seconds", dt)
        if tracer is not None and getattr(tracer, "enabled", False):
            tracer.complete("footprint-build", "incremental", t0, dt,
                            full=full)

    def update_input(self, name: str, data, region=None,
                     tracer=None) -> dict:
        """Patch an input in place and queue the invalidated strands.

        For image globals, ``data``/``region`` go to
        :meth:`repro.image.Image.patch` on the program's working image;
        the changed regions are intersected against the per-strand
        footprints and only the hit strands are queued for the next
        :meth:`run_update`.  ``region`` is ``None`` (diff the full
        replacement array), one region (``dim`` inclusive ``(lo, hi)``
        index pairs), or a list of regions.

        For non-image inputs the change cannot be localized, so the
        next update degenerates to a full (re-checkpointing) run.

        Returns ``{"input", "regions", "dirty_strands",
        "total_strands", "full"}``.
        """
        inc = self._inc
        if inc is None or inc.snapshot is None:
            raise InputError(
                "no checkpoint to update: call run(checkpoint=True) first"
            )
        total = inc.snapshot.total
        if name not in self.high.images:
            if name not in self.high.input_names:
                raise InputError(
                    f"{name!r} is neither an image global nor an input; "
                    f"images are {sorted(self.high.images)}, inputs are "
                    f"{self.high.input_names}"
                )
            self.set_input(name, data, _invalidate=False)
            inc.pending_full = True
            _mx.GLOBAL.inc("runtime.incremental.nonlocal_updates")
            return {"input": name, "regions": [], "dirty_strands": total,
                    "total_strands": total, "full": True}
        ctx = self._context()
        img = ctx.images[name]
        # footprints must describe the *pre-patch* trajectories: build
        # them (and refresh any stale rows) before touching the samples
        if inc.recorder is None:
            self.build_footprints(tracer=tracer)
        elif inc.stale_ids.size:
            self.build_footprints(inc.stale_ids, tracer=tracer)
            inc.stale_ids = np.empty(0, dtype=np.int64)
        if inc.footprints is None:
            inc.footprints = _increc.Footprints(
                inc.recorder,
                {nm: im.sizes for nm, im in ctx.images.items()},
            )
        regions = img.patch(data, region=region)
        if not regions:
            return {"input": name, "regions": [], "dirty_strands": 0,
                    "total_strands": total, "full": False}
        t0 = time.perf_counter()
        dirty = inc.footprints.dirty_strands(name, regions)
        dt = time.perf_counter() - t0
        _mx.GLOBAL.inc("runtime.footprint.intersect_seconds", dt)
        if tracer is not None and getattr(tracer, "enabled", False):
            tracer.complete("dirty-intersect", "incremental", t0, dt,
                            regions=len(regions))
        if dirty is None:
            # an untracked (global-box) read overlaps the patch
            inc.pending_full = True
            n_dirty = total
        else:
            inc.pending_ids = np.union1d(inc.pending_ids, dirty)
            n_dirty = int(dirty.size)
        return {
            "input": name,
            "regions": [[lo.tolist(), hi.tolist()] for lo, hi in regions],
            "dirty_strands": n_dirty,
            "total_strands": total,
            "full": dirty is None,
        }

    def run_update(
        self,
        workers: int | str = 1,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_steps: int | None = None,
        tracer=None,
        scheduler=None,
        metrics=None,
        backend: str | None = None,
        on_step=None,
    ) -> RunResult:
        """Re-execute only the strands invalidated since the checkpoint.

        Consumes the dirty set queued by :meth:`update_input`: clean
        strands are restored from the snapshot, dirty strands are
        re-seeded, re-initialized, and run to convergence, and the
        snapshot is replaced with the new converged state.  The result
        is bit-identical to a cold :meth:`run` over the patched inputs
        (golden-gated across all schedulers and both backends).

        ``backend`` defaults to the checkpoint's backend; passing a
        different one raises (mixed backends would break the
        bit-identity contract).  ``max_steps`` likewise defaults to the
        checkpointed run's value.  When a pending change could not be
        localized (non-image input, untracked read) or every strand is
        dirty, this degenerates to a full checkpointing re-run
        (``result.incremental`` is False in that case).
        """
        inc = self._inc
        if inc is None or inc.snapshot is None:
            raise InputError(
                "no checkpoint: call run(checkpoint=True) first"
            )
        snap = inc.snapshot
        if backend is None:
            backend = snap.backend
        elif backend != snap.backend:
            raise InputError(
                f"checkpoint was taken with backend {snap.backend!r}; "
                f"updating with backend {backend!r} would break the "
                "bit-identity contract — take a fresh checkpoint instead"
            )
        if max_steps is None:
            max_steps = snap.max_steps
        dirty = inc.pending_ids
        full = inc.pending_full or int(dirty.size) >= snap.total
        inc.pending_ids = np.empty(0, dtype=np.int64)
        inc.pending_full = False
        if full:
            _mx.GLOBAL.inc("runtime.incremental.full_reruns")
            return self.run(workers=workers, block_size=block_size,
                            max_steps=max_steps, tracer=tracer,
                            scheduler=scheduler, metrics=metrics,
                            backend=backend, checkpoint=True,
                            on_step=on_step)
        if dirty.size == 0:
            # nothing changed: serve the checkpoint without running
            state = [s.copy() for s in snap.state]
            nm = dict(zip(self.high.init_func.result_names, state))
            outputs: dict[str, np.ndarray] = {}
            if snap.grid:
                for out in self.high.outputs:
                    arr = nm[out]
                    outputs[out] = arr.reshape(
                        tuple(snap.sizes) + arr.shape[1:]
                    )
            else:
                keep = snap.status == STABILIZE
                for out in self.high.outputs:
                    outputs[out] = nm[out][keep]
            return RunResult(
                outputs=outputs, steps=0, num_strands=snap.total,
                num_stable=int(np.sum(snap.status == STABILIZE)),
                num_died=int(np.sum(snap.status == DIE)),
                wall_time=0.0, grid=snap.grid, grid_dims=snap.grid_dims,
                metrics=_mx.resolve(metrics)[0], incremental=True,
                dirty_strands=0, dirty_fraction=0.0,
                updated_indices=np.empty(0, dtype=np.int64),
            )
        return self._metered(metrics, workers, block_size, max_steps,
                             tracer, scheduler, backend,
                             checkpoint=True, on_step=on_step,
                             _restore={"snapshot": snap, "dirty": dirty})

    # -- synthesized CLI glue (paper §3.3.1) ---------------------------------------

    def cli(self, argv: list[str] | None = None) -> RunResult:
        """Parse ``--name value`` arguments for each input, then run.

        This is the "glue code that allows command-line setting of input
        variables" the compiler synthesizes in the paper.  Values use the
        shared textual forms of :func:`repro.inputs.parse_value`;
        ``--trace FILE`` and ``--profile`` expose the runtime's tracing,
        ``--metrics-out FILE`` / ``--no-metrics`` the metrics registry.
        """
        import argparse

        from repro.inputs import parse_value
        from repro.obs import Tracer, format_summary

        parser = argparse.ArgumentParser(description="Diderot program")
        for name in self.high.input_names:
            parser.add_argument(f"--{name}", type=str, default=None)
        parser.add_argument("--workers", type=str, default=None,
                            help="worker count, or 'auto' for the CPU count "
                                 "(default: 1, or 'auto' with --scheduler "
                                 "auto)")
        parser.add_argument("--scheduler", choices=SCHEDULER_CHOICES,
                            default=None,
                            help="seq, thread, process, or auto (default: "
                                 "seq for 1 worker, thread otherwise). "
                                 "'auto' picks seq when only one worker or "
                                 "CPU is available or the program fits in "
                                 "one strand block, else thread for the C "
                                 "backend and process for NumPy")
        parser.add_argument("--backend", choices=BACKEND_NAMES,
                            default="numpy",
                            help="strand-update implementation: 'numpy' "
                                 "(generated NumPy module) or 'c' (native "
                                 "code compiled via cffi; needs a C "
                                 "compiler, falls back to numpy with a "
                                 "warning if unavailable)")
        parser.add_argument("--block-size", type=int, default=DEFAULT_BLOCK_SIZE)
        parser.add_argument("--trace", metavar="FILE",
                            default=os.environ.get("REPRO_TRACE") or None,
                            help="write a Chrome trace-event JSON file")
        parser.add_argument("--profile", action="store_true",
                            help="print a super-step/worker profile summary")
        parser.add_argument("--check", action="store_true",
                            help="validate the compiled (lowered) IR before "
                                 "running")
        parser.add_argument("--metrics", action=argparse.BooleanOptionalAction,
                            default=True,
                            help="collect runtime metrics (on by default)")
        parser.add_argument("--metrics-out", metavar="FILE", default=None,
                            help="write the run's metrics JSON document")
        args = parser.parse_args(argv)
        if args.check:
            from repro.core.verify import verify_func
            from repro.core.xform.to_high import HighBuilder

            for fn in HighBuilder.all_funcs(self.high):
                verify_func(fn, "low", images=self.high.images)
        for name in self.high.input_names:
            raw = getattr(args, name)
            if raw is not None:
                self.set_input(name, parse_value(raw))
        tracer = Tracer() if (args.trace or args.profile) else None
        workers = args.workers
        if workers is None:
            workers = "auto" if args.scheduler == "auto" else "1"
        result = self.run(workers=workers, block_size=args.block_size,
                          tracer=tracer, scheduler=args.scheduler,
                          metrics=None if args.metrics else False,
                          backend=args.backend)
        if args.trace:
            write_chrome_trace(tracer, args.trace)
        if args.profile:
            print(format_summary(tracer, metrics=result.metrics
                                 if args.metrics else None))
        if args.metrics_out and args.metrics:
            _mx.write_metrics_json(
                result.metrics, args.metrics_out,
                meta={"workers": workers,
                      "block_size": args.block_size,
                      "wall_seconds": result.wall_time},
            )
        return result
