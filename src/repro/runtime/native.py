"""Runtime binder for the native C backend.

:class:`NativeUpdate` takes the ``(lib, ffi)`` pair from
:mod:`repro.core.codegen.cbuild` plus the emitter's buffer *plan*
(:mod:`repro.core.codegen.cgen`) and binds the live run arrays — strand
state, status, image voxel blocks, global values — into the fixed
``dd_update`` ABI.  The cffi pointer tables are built once; per block only
the active-index pointer and the ``[start, end)`` range change, so the
per-call Python overhead is a handful of casts.  When the index window is a
contiguous ascending run, ``run_range`` passes a NULL index pointer and the
batched kernel maps lanes directly (``lane == k``) — the common dense case
skips the per-lane gather entirely.

The cffi call releases the GIL for its whole duration.  Disjoint lane
ranges touch disjoint state elements, so concurrent ``run_range`` calls
from the thread scheduler's workers are safe — this is what turns the
persistent thread pool into real multicore scaling.

Binding validates the contract the generated code assumes: state arrays
must be C-contiguous with the exact dtypes and must not alias one another
(the native kernel updates them in place).  Real-valued buffers follow the
plan's ``real_dtype`` — float64 for default-precision kernels, float32 for
``--single`` ones; the SC table stays float64 either way (the kernel casts
once at entry).  Violations raise :class:`~repro.errors.CodegenError`,
which ``Program`` treats as "fall back to NumPy".
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import CodegenError, RuntimeErrorD
from repro.obs import metrics as _mx

__all__ = ["BACKEND_NAMES", "NativeUpdate"]

#: Valid values for ``Program.run(backend=...)`` / ``--backend``.
BACKEND_NAMES = ("numpy", "c")


def _check_state_array(arr: np.ndarray, want_dtype, what: str) -> np.ndarray:
    if not isinstance(arr, np.ndarray):
        raise CodegenError(f"native backend: {what} is not an ndarray")
    if arr.dtype != np.dtype(want_dtype):
        raise CodegenError(
            f"native backend: {what} has dtype {arr.dtype}, expected {np.dtype(want_dtype)}"
        )
    if not arr.flags["C_CONTIGUOUS"]:
        raise CodegenError(f"native backend: {what} is not C-contiguous")
    if not arr.flags["WRITEABLE"]:
        raise CodegenError(f"native backend: {what} is not writeable")
    return arr


class NativeUpdate:
    """One bound native update kernel over a fixed set of run arrays."""

    def __init__(self, lib, ffi, plan, images, global_values, state, status):
        self._lib = lib
        self._ffi = ffi
        self._plan = plan
        #: objects that must outlive the pointer tables (cffi buffers,
        #: flattened global copies, contiguous image casts)
        self._keep: list = []

        real_dtype = np.dtype(plan.get("real_dtype", "float64"))
        real_ctype = "float[]" if real_dtype == np.float32 else "double[]"

        writable = []  # (name, array) pairs that the kernel mutates
        # slots >= n_ret are immutable extras: read-only, never written
        # back, so a private contiguous copy is always a safe binding
        n_ret = plan.get("n_ret", plan["n_state"])

        def readonly_state(arr, want_dtype, si):
            arr = np.asarray(arr)
            if arr.dtype != np.dtype(want_dtype):
                raise CodegenError(
                    f"native backend: state slot {si} has dtype {arr.dtype}, "
                    f"expected {np.dtype(want_dtype)}"
                )
            arr = np.ascontiguousarray(arr)
            if any(np.may_share_memory(arr, state[j]) for j in range(n_ret)):
                arr = np.array(arr)  # aliasing a written slot: private copy
            self._keep.append(arr)
            return arr

        def image_array(name):
            img = images.get(name)
            if img is None:
                raise CodegenError(f"native backend: image {name!r} is not bound")
            data = np.asarray(img.data)
            if data.dtype != real_dtype:
                raise CodegenError(
                    f"native backend: image {name!r} has dtype {data.dtype}, "
                    f"expected {real_dtype}"
                )
            data = np.ascontiguousarray(data)
            self._keep.append(data)
            return data

        rp_bufs = []
        for entry in plan["real_ptrs"]:
            kind = entry[0]
            if kind == "image":
                arr = image_array(entry[1])
            elif kind == "global":
                arr = np.ascontiguousarray(
                    np.asarray(global_values[entry[1]], dtype=real_dtype)
                ).reshape(-1)
                self._keep.append(arr)
            elif entry[1] >= n_ret:  # ("state", si) read-only extra
                arr = readonly_state(state[entry[1]], real_dtype, entry[1])
            else:  # ("state", si)
                arr = _check_state_array(
                    state[entry[1]], real_dtype, f"state slot {entry[1]}"
                )
                writable.append((f"state{entry[1]}", arr))
            rp_bufs.append(
                self._buf(real_ctype, arr,
                          writable=kind == "state" and entry[1] < n_ret)
            )

        ip_bufs = []
        for entry in plan["int_ptrs"]:
            if entry[0] == "status":
                arr = _check_state_array(status, np.int64, "status")
                writable.append(("status", arr))
                wr = True
            elif entry[1] >= n_ret:
                arr = readonly_state(state[entry[1]], np.int64, entry[1])
                wr = False
            else:
                arr = _check_state_array(
                    state[entry[1]], np.int64, f"state slot {entry[1]}"
                )
                writable.append((f"state{entry[1]}", arr))
                wr = True
            ip_bufs.append(self._buf("int64_t[]", arr, writable=wr))

        bp_bufs = []
        for entry in plan["bool_ptrs"]:
            if entry[1] >= n_ret:
                arr = readonly_state(state[entry[1]], np.bool_, entry[1])
                wr = False
            else:
                arr = _check_state_array(
                    state[entry[1]], np.bool_, f"state slot {entry[1]}"
                )
                writable.append((f"state{entry[1]}", arr))
                wr = True
            bp_bufs.append(self._buf("unsigned char[]", arr, writable=wr))

        # The kernel writes every state array in place; aliased arrays would
        # double-apply updates, so refuse them (Program then uses NumPy).
        for i in range(len(writable)):
            for j in range(i + 1, len(writable)):
                if np.may_share_memory(writable[i][1], writable[j][1]):
                    raise CodegenError(
                        f"native backend: arrays {writable[i][0]} and "
                        f"{writable[j][0]} share memory"
                    )

        sc = np.zeros(max(len(plan["sc"]), 1), dtype=np.float64)
        entries = plan["sc"]
        i = 0
        while i < len(entries):
            entry = entries[i]
            if entry[0] == "global":
                sc[i] = float(global_values[entry[1]])
                i += 1
                continue
            kind, name = entry
            orient = images[name].orientation
            if kind == "origin":
                vals = np.asarray(orient.origin, dtype=np.float64).reshape(-1)
            elif kind == "minv":
                vals = np.asarray(orient._m_inv, dtype=np.float64).reshape(-1)
            elif kind == "gxf":
                vals = np.asarray(orient._m_inv_t, dtype=np.float64).reshape(-1)
            else:
                raise CodegenError(f"native backend: unknown sc entry {entry!r}")
            sc[i : i + vals.size] = vals
            i += vals.size

        ic = np.zeros(max(len(plan["ic"]), 1), dtype=np.int64)
        entries = plan["ic"]
        i = 0
        while i < len(entries):
            entry = entries[i]
            if entry[0] == "global":
                ic[i] = int(global_values[entry[1]])
                i += 1
                continue
            kind, name = entry
            if kind != "sizes":
                raise CodegenError(f"native backend: unknown ic entry {entry!r}")
            dim = plan["image_meta"][name]["dim"]
            sizes = np.asarray(images[name].data.shape[:dim], dtype=np.int64)
            ic[i : i + dim] = sizes
            i += dim

        self._keep.extend((sc, ic))
        ffi = self._ffi
        self._rp = (
            ffi.new("void *[]", [ffi.cast("void *", b) for b in rp_bufs])
            if rp_bufs
            else ffi.NULL
        )
        self._ip = ffi.new("int64_t *[]", ip_bufs) if ip_bufs else ffi.NULL
        self._bp = ffi.new("unsigned char *[]", bp_bufs) if bp_bufs else ffi.NULL
        self._keep.extend((rp_bufs, ip_bufs, bp_bufs))
        self._sc = self._buf("double[]", sc)
        self._ic = self._buf("int64_t[]", ic)

    def _buf(self, ctype, arr, writable=False):
        buf = self._ffi.from_buffer(ctype, arr, require_writable=writable)
        self._keep.append(buf)
        return buf

    def run_range(self, idx: np.ndarray, start: int = 0, end: int | None = None) -> None:
        """Run the native update over lanes ``idx[start:end]``.

        ``idx`` holds strand indices into the flat state buffers.  Raises
        :class:`RuntimeErrorD` on an integer division by zero, mirroring
        the NumPy backend's live-lane contract.
        """
        idx = np.ascontiguousarray(idx, dtype=np.int64)
        if end is None:
            end = idx.shape[0]
        n = int(end) - int(start)
        if n <= 0:
            return
        # Dense fast path: a contiguous ascending index run maps lanes
        # directly (lane == k), so pass NULL and let the kernel skip the
        # per-lane gather.  The span check is O(1); the full stride-1
        # confirmation only runs when the span already matches.
        seg = idx[int(start) : int(end)]
        first = int(seg[0])
        if int(seg[-1]) - first == n - 1 and (
            n <= 2 or bool(np.all(np.diff(seg) == 1))
        ):
            idx_buf = self._ffi.NULL
            start, end = first, first + n
        else:
            idx_buf = self._ffi.from_buffer("int64_t[]", idx)
        m = _mx.ACTIVE
        if m.enabled:
            t0 = time.perf_counter()
            rc = self._lib.dd_update(
                self._rp, self._ip, self._bp, self._sc, self._ic,
                idx_buf, int(start), int(end),
            )
            m.op("native_update", n, time.perf_counter() - t0)
        else:
            rc = self._lib.dd_update(
                self._rp, self._ip, self._bp, self._sc, self._ic,
                idx_buf, int(start), int(end),
            )
        if rc == 1:
            raise RuntimeErrorD("integer division by zero")
        if rc != 0:
            raise RuntimeErrorD(f"native update failed with code {rc}")
