"""True multicore execution: a process pool over shared-memory strand state.

CPython's GIL serializes the bytecode between NumPy calls, so the
thread-pool scheduler (:mod:`repro.runtime.scheduler`) cannot reach the
paper's near-linear scaling on real hardware.  This module reproduces the
paper's parallel runtime (§5.5) with *processes* instead:

* **Shared-memory layout** — every strand-state array, the status array,
  the active-strand index list, and every image payload live in
  :mod:`multiprocessing.shared_memory` blocks.  The master's arrays *are*
  views over those blocks, so worker writes are immediately visible
  without any result pickling.
* **Persistent pool** — workers are forked once per pool (not per
  super-step, and — for pooled schedulers held by the serving layer —
  not even per run: ``setup()`` on a live pool re-arms the existing
  workers with the new run's shared state).  Each worker receives a
  setup message carrying the generated module source, the image
  metadata + shared-memory names, the resolved global values, and the
  state/status/active array specs; it ``exec``\\ s the source and
  rebuilds its context locally.
* **Work-list + barrier** — each super-step the master writes the active
  strand indices into the shared index buffer and enqueues
  ``(block_start, block_end)`` ranges on a shared task queue; workers
  pull ranges until the list is empty, gathering/scattering strand state
  through their shared-memory views.  The master collecting one ack per
  block is the paper's end-of-super-step barrier.

Strand blocks index disjoint strand sets, so concurrent in-place writes
never overlap and the results are bit-identical to the sequential
schedule (asserted by ``tests/test_schedulers.py``).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as _queue
import time
import traceback

import numpy as np
from multiprocessing import shared_memory

from repro.errors import RuntimeErrorD
from repro.obs import NULL_TRACER
from repro.obs import metrics as _mx
from repro.obs.metrics import NULL_METRICS, MetricsRegistry

#: seconds between liveness checks while waiting on worker messages
_POLL_INTERVAL = 5.0


def _context():
    """Prefer fork (cheap, inherits sys.path); fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class _SharedArray:
    """A NumPy array whose storage is a named SharedMemory block."""

    def __init__(self, arr: np.ndarray):
        arr = np.ascontiguousarray(arr)
        self.shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        self.view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self.shm.buf)
        self.view[...] = arr

    def spec(self) -> tuple:
        return (self.shm.name, self.view.shape, str(self.view.dtype))

    def destroy(self) -> None:
        self.view = None
        try:
            self.shm.close()
            self.shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def _attach(spec):
    """Open a named block in a worker; returns ``(shm, ndarray_view)``.

    The master owns the block's lifetime (it unlinks on close), so the
    worker's attach must not register with its resource tracker — that
    would produce spurious leak warnings / double unlinks at exit.
    """
    name, shape, dtype = spec
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # before 3.13 there is no ``track`` kwarg — but attaching does not
        # register with the resource tracker there either, so plain attach
        # is already untracked
        shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


class _WorkerCtx:
    """The context object generated functions receive (worker-side)."""

    def __init__(self, images: dict, dtype):
        self.images = images
        self.dtype = dtype


class _WorkerEnv:
    """One run's worker-side state: shared views + compiled functions."""

    __slots__ = ("shms", "state", "status", "active", "update", "ctx", "g",
                 "reg", "native", "total")

    def close(self) -> None:
        for shm in self.shms:
            try:
                shm.close()
            except Exception:
                pass


def _apply_setup(wid: int, setup_bytes: bytes) -> _WorkerEnv:
    """Attach one setup message's shared blocks and build the run env.

    Used both for the initial (fork-time) setup and for *re-arming* a
    live pool with a new run's state (see :meth:`ProcessScheduler.setup`).
    """
    from repro.image import Image

    env = _WorkerEnv()
    env.shms = shms = []
    setup = pickle.loads(setup_bytes)
    env.state = state = []
    for spec in setup["state"]:
        shm, view = _attach(spec)
        shms.append(shm)
        state.append(view)
    shm, env.status = _attach(setup["status"])
    shms.append(shm)
    shm, env.active = _attach(setup["active"])
    shms.append(shm)
    images = {}
    for name, (spec, dim, tshape, orient) in setup["images"].items():
        shm, data = _attach(spec)
        shms.append(shm)
        # same dtype + contiguous ⇒ Image keeps the shared view, no copy
        images[name] = Image(data, dim=dim, tensor_shape=tshape,
                             orientation=orient, dtype=data.dtype)
    ns: dict = {}
    exec(compile(setup["source"], "<diderot-generated>", "exec"), ns)
    env.update = ns["update"]
    env.ctx = _WorkerCtx(images, setup["dtype"])
    env.g = setup["globals"]
    # a fresh local registry (the forked copy of the master's would
    # double-count): op metrics accumulate here and each block's
    # ``done`` ack ships the drained delta back for the master to
    # merge at the super-step barrier
    env.reg = MetricsRegistry() if setup.get("metrics") else NULL_METRICS
    _mx.set_active(env.reg)
    # native C backend: rebuild the kernel from the artifact cache
    # (warmed by the master's build) and bind it to the shared views;
    # any failure degrades this worker to the NumPy path
    env.native = None
    if setup.get("native") is not None:
        import sys as _sys

        from repro.errors import CodegenError
        from repro.runtime.native import NativeUpdate

        try:
            from repro.core.codegen import cbuild

            lib, ffi = cbuild.build(setup["native"]["c_source"],
                                    flags=setup["native"].get("flags"))
            env.native = NativeUpdate(lib, ffi, setup["native"]["plan"],
                                      images, env.g, state, env.status)
        except CodegenError as exc:
            print(
                f"warning: process worker {wid}: native backend "
                f"unavailable, falling back to NumPy: {exc}",
                file=_sys.stderr,
            )
            env.native = None
    env.total = env.status.shape[0]
    return env


def _worker_main(wid: int, setup_bytes: bytes, task_q, result_q,
                 barrier=None) -> None:
    """Worker process: one-time setup, then the per-step task loop.

    Besides block-range tasks and the ``None`` shutdown sentinel, the
    task queue can carry ``("setup", setup_bytes)`` messages that re-arm
    the worker with a new run's shared state.  The queue is shared, so
    ``barrier`` (parties = workers + master) guarantees every worker
    consumed exactly one setup message before the master enqueues
    anything else.
    """
    try:
        env = _apply_setup(wid, setup_bytes)
        result_q.put(("ready", wid))
    except BaseException:
        result_q.put(("fatal", wid, traceback.format_exc()))
        return
    state, status, active = env.state, env.status, env.active
    update, ctx, g, reg, native = env.update, env.ctx, env.g, env.reg, env.native
    total = env.total
    while True:
        idle0 = time.perf_counter()
        task = task_q.get()
        if task is None:
            break
        if task[0] == "setup":
            old, env = env, None
            try:
                env = _apply_setup(wid, task[1])
                result_q.put(("ready", wid))
            except BaseException:
                result_q.put(("fatal", wid, traceback.format_exc()))
            finally:
                # reach the barrier even on failure, or the master (and
                # the sibling workers) would hang in wait()
                if barrier is not None:
                    try:
                        barrier.wait(timeout=60)
                    except Exception:
                        pass
            if env is None:
                old.close()
                return
            old.close()
            state, status, active = env.state, env.status, env.active
            update, ctx, g = env.update, env.ctx, env.g
            reg, native, total = env.reg, env.native, env.total
            continue
        step, bindex, start, end = task
        t0 = time.perf_counter()
        wait = t0 - idle0
        try:
            if native is not None:
                # state/status writes happen in place through the shared
                # views for both full and partial blocks
                native.run_range(active, start, end)
            elif end - start == total:
                # one block covers every strand: active[0:total] is the
                # identity, so update shared state in place, copy-free
                out = update(ctx, *g, *state)
                *new_state, block_status = out
                for s, new in zip(state, new_state):
                    s[...] = new
                status[...] = block_status
            else:
                block_idx = active[start:end]
                block_state = [s[block_idx] for s in state]
                out = update(ctx, *g, *block_state)
                *new_state, block_status = out
                for s, new in zip(state, new_state):
                    s[block_idx] = new
                status[block_idx] = block_status
        except BaseException:
            result_q.put(("error", wid, bindex, traceback.format_exc()))
            continue
        delta = reg.drain() if reg.enabled else None
        result_q.put(("done", wid, bindex, t0,
                      time.perf_counter() - t0, end - start, wait, delta))
    env.close()


class ProcessScheduler:
    """Persistent process pool with shared-memory strand state.

    Unlike the in-process schedulers (which are handed opaque per-block
    closures), this scheduler owns the strand state: ``setup()`` moves
    the state/status arrays and image payloads into shared memory, forks
    the pool, and returns shared views that **replace** the master's
    arrays; each ``run_step()`` then only ships ``(start, end)`` block
    ranges — workers write results in place through their own views.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.last_block_workers: list[int] = []
        self._arrays: list[_SharedArray] = []
        #: image payload blocks persist across re-arms: a pooled scheduler
        #: serving many runs of one program re-uses the blocks (refreshing
        #: the samples in place) instead of re-allocating shared memory
        self._image_arrays: dict[str, _SharedArray] = {}
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._barrier = None
        self._active = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def setup(self, source: str, images: dict, dtype, global_values,
              state: list[np.ndarray], status: np.ndarray,
              metrics: bool = True, native=None):
        """Move state into shared memory and fork the pool.

        ``metrics`` tells workers whether to run their local metrics
        registry (drained into every block ack); pass False for the
        zero-overhead path.

        ``native`` — optional ``{"c_source": ..., "plan": ..., "flags": ...}``
        dict from the master's :mod:`~repro.core.codegen.cgen` build; workers
        rebuild the kernel from the warm artifact cache (same flag set, so
        the same cache key) and run blocks natively, falling back per-worker
        to NumPy if their build fails.

        Returns ``(state_views, status_view)`` — the shared arrays the
        master must use for the rest of the run (stabilize scatters and
        output extraction read worker writes through them).

        Calling ``setup()`` again on a live pool **re-arms** it: the new
        run's state moves into fresh shared blocks and the existing
        worker processes swap over to them (a ``("setup", ...)`` message
        per worker, with a barrier so each consumes exactly one), so a
        pooled scheduler serves many runs without re-forking.
        """
        if self._closed:
            raise RuntimeErrorD("process pool is closed")
        ctx = _context()
        old_arrays = self._arrays
        state_sa = [_SharedArray(s) for s in state]
        status_sa = _SharedArray(status)
        active_sa = _SharedArray(np.arange(status.shape[0], dtype=np.int64))
        arrays = [*state_sa, status_sa, active_sa]

        image_specs = {}
        stale_images: list[_SharedArray] = []
        for name, img in images.items():
            sa = self._image_arrays.get(name)
            if (sa is not None and sa.view.shape == img.data.shape
                    and sa.view.dtype == img.data.dtype):
                # reuse the existing block, refreshing the payload in
                # place (dirty-region patches mutate the master's data)
                np.copyto(sa.view, img.data)
                _mx.GLOBAL.inc("sched.shm.image_reuse")
            else:
                if sa is not None:
                    stale_images.append(sa)
                sa = self._image_arrays[name] = _SharedArray(img.data)
            image_specs[name] = (sa.spec(), img.dim, img.tensor_shape,
                                 img.orientation)
        for name in list(self._image_arrays):
            if name not in images:
                stale_images.append(self._image_arrays.pop(name))

        setup_bytes = pickle.dumps(
            {
                "source": source,
                "images": image_specs,
                "dtype": dtype,
                "globals": list(global_values),
                "state": [sa.spec() for sa in state_sa],
                "status": status_sa.spec(),
                "active": active_sa.spec(),
                "metrics": bool(metrics),
                "native": native,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._arrays = arrays
        self._active = active_sa.view
        if self._procs:
            self._rearm(setup_bytes, old_arrays + stale_images)
            return [sa.view for sa in state_sa], status_sa.view
        for sa in stale_images:  # pragma: no cover - no pool yet
            sa.destroy()
        self._task_q = ctx.SimpleQueue()
        self._result_q = ctx.Queue()
        self._barrier = ctx.Barrier(self.workers + 1)
        self._procs = [
            ctx.Process(target=_worker_main,
                        args=(i, setup_bytes, self._task_q, self._result_q,
                              self._barrier),
                        name=f"diderot-worker-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for p in self._procs:
            p.start()
        # setup barrier: every worker reports ready (or a setup failure)
        for _ in self._procs:
            msg = self._get_result()
            if msg[0] == "fatal":
                raise RuntimeErrorD(
                    f"process worker {msg[1]} failed during setup:\n{msg[2]}"
                )
        return [sa.view for sa in state_sa], status_sa.view

    def _rearm(self, setup_bytes: bytes, old_arrays) -> None:
        """Swap a live pool's workers over to a new run's shared state.

        One setup message per worker; the barrier (workers + master)
        guarantees each worker consumed exactly one before this returns,
        so subsequent task messages can never be mistaken for a setup.
        Old shared blocks are destroyed only after every worker has
        detached from them.
        """
        for _ in self._procs:
            self._task_q.put(("setup", setup_bytes))
        fatal = None
        for _ in self._procs:
            msg = self._get_result()
            if msg[0] == "fatal":
                fatal = msg
        try:
            self._barrier.wait(timeout=60)
        except Exception as exc:  # BrokenBarrierError
            if fatal is None:
                raise RuntimeErrorD(
                    f"process pool re-arm barrier failed: {exc!r}"
                ) from exc
        for sa in old_arrays:
            sa.destroy()
        if fatal is not None:
            raise RuntimeErrorD(
                f"process worker {fatal[1]} failed during re-arm:\n{fatal[2]}"
            )

    def close(self) -> None:
        """Retire the pool and release every shared block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._task_q is not None:
            for _ in self._procs:
                try:
                    self._task_q.put(None)
                except (OSError, ValueError):
                    break
        for p in self._procs:
            p.join(timeout=2.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        for q in (self._task_q, self._result_q):
            if q is not None:
                try:
                    q.close()
                except Exception:
                    pass
        for sa in self._arrays:
            sa.destroy()
        for sa in self._image_arrays.values():
            sa.destroy()
        self._arrays = []
        self._image_arrays = {}
        self._procs = []

    # -- execution ---------------------------------------------------------

    def _get_result(self):
        while True:
            try:
                return self._result_q.get(timeout=_POLL_INTERVAL)
            except _queue.Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    raise RuntimeErrorD(
                        f"process workers died unexpectedly: {dead}"
                    ) from None

    def run_step(self, active_idx: np.ndarray, block_size: int,
                 tracer=NULL_TRACER, step: int = 0, metrics=NULL_METRICS):
        """Execute one super-step over ``active_idx``.

        Returns ``(n_blocks, per_block_times)``; state/status mutations
        happen in place in the shared arrays.  ``metrics`` receives the
        worker-drained metric deltas (merged here, at the barrier) plus
        per-block queue-wait observations.
        """
        n_active = int(active_idx.size)
        self._active[:n_active] = active_idx
        ranges = [
            (start, min(start + block_size, n_active))
            for start in range(0, n_active, block_size)
        ]
        for i, (start, end) in enumerate(ranges):
            self._task_q.put((step, i, start, end))
        times = [0.0] * len(ranges)
        block_workers = [-1] * len(ranges)
        errors = []
        for _ in ranges:  # the barrier: one ack per block
            msg = self._get_result()
            kind = msg[0]
            if kind == "done":
                _, wid, bindex, t0, dt, strands, wait, delta = msg
                times[bindex] = dt
                block_workers[bindex] = wid
                if metrics.enabled:
                    if delta is not None:
                        metrics.merge(delta)
                    metrics.observe("sched.queue_wait_seconds", wait)
                if tracer.enabled:
                    tracer.complete("block", "block", t0, dt,
                                    tid=f"worker-{wid}", step=step,
                                    block=bindex, strands=int(strands))
            elif kind == "error":
                errors.append((msg[2], msg[3]))
            else:  # pragma: no cover - fatal after setup barrier
                raise RuntimeErrorD(
                    f"process worker {msg[1]} failed:\n{msg[2]}"
                )
        self.last_block_workers = block_workers
        if errors:
            bindex, tb = errors[0]
            raise RuntimeErrorD(
                f"strand update failed in block {bindex} "
                f"(process scheduler):\n{tb}"
            )
        return len(ranges), times
