"""True multicore execution: a process pool over shared-memory strand state.

CPython's GIL serializes the bytecode between NumPy calls, so the
thread-pool scheduler (:mod:`repro.runtime.scheduler`) cannot reach the
paper's near-linear scaling on real hardware.  This module reproduces the
paper's parallel runtime (§5.5) with *processes* instead:

* **Shared-memory layout** — every strand-state array, the status array,
  the active-strand index list, and every image payload live in
  :mod:`multiprocessing.shared_memory` blocks.  The master's arrays *are*
  views over those blocks, so worker writes are immediately visible
  without any result pickling.
* **Persistent pool** — workers are forked once per ``run()`` (not per
  super-step).  Each worker receives a one-time setup message carrying
  the generated module source, the image metadata + shared-memory names,
  the resolved global values, and the state/status/active array specs; it
  ``exec``\\ s the source and rebuilds its context locally.
* **Work-list + barrier** — each super-step the master writes the active
  strand indices into the shared index buffer and enqueues
  ``(block_start, block_end)`` ranges on a shared task queue; workers
  pull ranges until the list is empty, gathering/scattering strand state
  through their shared-memory views.  The master collecting one ack per
  block is the paper's end-of-super-step barrier.

Strand blocks index disjoint strand sets, so concurrent in-place writes
never overlap and the results are bit-identical to the sequential
schedule (asserted by ``tests/test_schedulers.py``).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as _queue
import time
import traceback

import numpy as np
from multiprocessing import shared_memory

from repro.errors import RuntimeErrorD
from repro.obs import NULL_TRACER
from repro.obs import metrics as _mx
from repro.obs.metrics import NULL_METRICS, MetricsRegistry

#: seconds between liveness checks while waiting on worker messages
_POLL_INTERVAL = 5.0


def _context():
    """Prefer fork (cheap, inherits sys.path); fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class _SharedArray:
    """A NumPy array whose storage is a named SharedMemory block."""

    def __init__(self, arr: np.ndarray):
        arr = np.ascontiguousarray(arr)
        self.shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        self.view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self.shm.buf)
        self.view[...] = arr

    def spec(self) -> tuple:
        return (self.shm.name, self.view.shape, str(self.view.dtype))

    def destroy(self) -> None:
        self.view = None
        try:
            self.shm.close()
            self.shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def _attach(spec):
    """Open a named block in a worker; returns ``(shm, ndarray_view)``.

    The master owns the block's lifetime (it unlinks on close), so the
    worker's attach must not register with its resource tracker — that
    would produce spurious leak warnings / double unlinks at exit.
    """
    name, shape, dtype = spec
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # before 3.13 there is no ``track`` kwarg — but attaching does not
        # register with the resource tracker there either, so plain attach
        # is already untracked
        shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


class _WorkerCtx:
    """The context object generated functions receive (worker-side)."""

    def __init__(self, images: dict, dtype):
        self.images = images
        self.dtype = dtype


def _worker_main(wid: int, setup_bytes: bytes, task_q, result_q) -> None:
    """Worker process: one-time setup, then the per-step task loop."""
    shms = []
    try:
        from repro.image import Image

        setup = pickle.loads(setup_bytes)
        state = []
        for spec in setup["state"]:
            shm, view = _attach(spec)
            shms.append(shm)
            state.append(view)
        shm, status = _attach(setup["status"])
        shms.append(shm)
        shm, active = _attach(setup["active"])
        shms.append(shm)
        images = {}
        for name, (spec, dim, tshape, orient) in setup["images"].items():
            shm, data = _attach(spec)
            shms.append(shm)
            # same dtype + contiguous ⇒ Image keeps the shared view, no copy
            images[name] = Image(data, dim=dim, tensor_shape=tshape,
                                 orientation=orient, dtype=data.dtype)
        ns: dict = {}
        exec(compile(setup["source"], "<diderot-generated>", "exec"), ns)
        update = ns["update"]
        ctx = _WorkerCtx(images, setup["dtype"])
        g = setup["globals"]
        # a fresh local registry (the forked copy of the master's would
        # double-count): op metrics accumulate here and each block's
        # ``done`` ack ships the drained delta back for the master to
        # merge at the super-step barrier
        reg = MetricsRegistry() if setup.get("metrics") else NULL_METRICS
        _mx.set_active(reg)
        # native C backend: rebuild the kernel from the artifact cache
        # (warmed by the master's build) and bind it to the shared views;
        # any failure degrades this worker to the NumPy path
        native = None
        if setup.get("native") is not None:
            import sys as _sys

            from repro.errors import CodegenError
            from repro.runtime.native import NativeUpdate

            try:
                from repro.core.codegen import cbuild

                lib, ffi = cbuild.build(setup["native"]["c_source"],
                                        flags=setup["native"].get("flags"))
                native = NativeUpdate(lib, ffi, setup["native"]["plan"],
                                      images, g, state, status)
            except CodegenError as exc:
                print(
                    f"warning: process worker {wid}: native backend "
                    f"unavailable, falling back to NumPy: {exc}",
                    file=_sys.stderr,
                )
                native = None
        result_q.put(("ready", wid))
    except BaseException:
        result_q.put(("fatal", wid, traceback.format_exc()))
        return
    total = status.shape[0]
    while True:
        idle0 = time.perf_counter()
        task = task_q.get()
        if task is None:
            break
        step, bindex, start, end = task
        t0 = time.perf_counter()
        wait = t0 - idle0
        try:
            if native is not None:
                # state/status writes happen in place through the shared
                # views for both full and partial blocks
                native.run_range(active, start, end)
            elif end - start == total:
                # one block covers every strand: active[0:total] is the
                # identity, so update shared state in place, copy-free
                out = update(ctx, *g, *state)
                *new_state, block_status = out
                for s, new in zip(state, new_state):
                    s[...] = new
                status[...] = block_status
            else:
                block_idx = active[start:end]
                block_state = [s[block_idx] for s in state]
                out = update(ctx, *g, *block_state)
                *new_state, block_status = out
                for s, new in zip(state, new_state):
                    s[block_idx] = new
                status[block_idx] = block_status
        except BaseException:
            result_q.put(("error", wid, bindex, traceback.format_exc()))
            continue
        delta = reg.drain() if reg.enabled else None
        result_q.put(("done", wid, bindex, t0,
                      time.perf_counter() - t0, end - start, wait, delta))
    for shm in shms:
        try:
            shm.close()
        except Exception:
            pass


class ProcessScheduler:
    """Persistent process pool with shared-memory strand state.

    Unlike the in-process schedulers (which are handed opaque per-block
    closures), this scheduler owns the strand state: ``setup()`` moves
    the state/status arrays and image payloads into shared memory, forks
    the pool, and returns shared views that **replace** the master's
    arrays; each ``run_step()`` then only ships ``(start, end)`` block
    ranges — workers write results in place through their own views.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.last_block_workers: list[int] = []
        self._arrays: list[_SharedArray] = []
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._active = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def setup(self, source: str, images: dict, dtype, global_values,
              state: list[np.ndarray], status: np.ndarray,
              metrics: bool = True, native=None):
        """Move state into shared memory and fork the pool.

        ``metrics`` tells workers whether to run their local metrics
        registry (drained into every block ack); pass False for the
        zero-overhead path.

        ``native`` — optional ``{"c_source": ..., "plan": ..., "flags": ...}``
        dict from the master's :mod:`~repro.core.codegen.cgen` build; workers
        rebuild the kernel from the warm artifact cache (same flag set, so
        the same cache key) and run blocks natively, falling back per-worker
        to NumPy if their build fails.

        Returns ``(state_views, status_view)`` — the shared arrays the
        master must use for the rest of the run (stabilize scatters and
        output extraction read worker writes through them).
        """
        ctx = _context()
        state_sa = [_SharedArray(s) for s in state]
        status_sa = _SharedArray(status)
        active_sa = _SharedArray(np.arange(status.shape[0], dtype=np.int64))
        self._arrays = [*state_sa, status_sa, active_sa]
        self._active = active_sa.view

        image_specs = {}
        for name, img in images.items():
            sa = _SharedArray(img.data)
            self._arrays.append(sa)
            image_specs[name] = (sa.spec(), img.dim, img.tensor_shape,
                                 img.orientation)

        setup_bytes = pickle.dumps(
            {
                "source": source,
                "images": image_specs,
                "dtype": dtype,
                "globals": list(global_values),
                "state": [sa.spec() for sa in state_sa],
                "status": status_sa.spec(),
                "active": active_sa.spec(),
                "metrics": bool(metrics),
                "native": native,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._task_q = ctx.SimpleQueue()
        self._result_q = ctx.Queue()
        self._procs = [
            ctx.Process(target=_worker_main,
                        args=(i, setup_bytes, self._task_q, self._result_q),
                        name=f"diderot-worker-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for p in self._procs:
            p.start()
        # setup barrier: every worker reports ready (or a setup failure)
        for _ in self._procs:
            msg = self._get_result()
            if msg[0] == "fatal":
                raise RuntimeErrorD(
                    f"process worker {msg[1]} failed during setup:\n{msg[2]}"
                )
        return [sa.view for sa in state_sa], status_sa.view

    def close(self) -> None:
        """Retire the pool and release every shared block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._task_q is not None:
            for _ in self._procs:
                try:
                    self._task_q.put(None)
                except (OSError, ValueError):
                    break
        for p in self._procs:
            p.join(timeout=2.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        for q in (self._task_q, self._result_q):
            if q is not None:
                try:
                    q.close()
                except Exception:
                    pass
        for sa in self._arrays:
            sa.destroy()
        self._arrays = []
        self._procs = []

    # -- execution ---------------------------------------------------------

    def _get_result(self):
        while True:
            try:
                return self._result_q.get(timeout=_POLL_INTERVAL)
            except _queue.Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    raise RuntimeErrorD(
                        f"process workers died unexpectedly: {dead}"
                    ) from None

    def run_step(self, active_idx: np.ndarray, block_size: int,
                 tracer=NULL_TRACER, step: int = 0, metrics=NULL_METRICS):
        """Execute one super-step over ``active_idx``.

        Returns ``(n_blocks, per_block_times)``; state/status mutations
        happen in place in the shared arrays.  ``metrics`` receives the
        worker-drained metric deltas (merged here, at the barrier) plus
        per-block queue-wait observations.
        """
        n_active = int(active_idx.size)
        self._active[:n_active] = active_idx
        ranges = [
            (start, min(start + block_size, n_active))
            for start in range(0, n_active, block_size)
        ]
        for i, (start, end) in enumerate(ranges):
            self._task_q.put((step, i, start, end))
        times = [0.0] * len(ranges)
        block_workers = [-1] * len(ranges)
        errors = []
        for _ in ranges:  # the barrier: one ack per block
            msg = self._get_result()
            kind = msg[0]
            if kind == "done":
                _, wid, bindex, t0, dt, strands, wait, delta = msg
                times[bindex] = dt
                block_workers[bindex] = wid
                if metrics.enabled:
                    if delta is not None:
                        metrics.merge(delta)
                    metrics.observe("sched.queue_wait_seconds", wait)
                if tracer.enabled:
                    tracer.complete("block", "block", t0, dt,
                                    tid=f"worker-{wid}", step=step,
                                    block=bindex, strands=int(strands))
            elif kind == "error":
                errors.append((msg[2], msg[3]))
            else:  # pragma: no cover - fatal after setup barrier
                raise RuntimeErrorD(
                    f"process worker {msg[1]} failed:\n{msg[2]}"
                )
        self.last_block_workers = block_workers
        if errors:
            bindex, tb = errors[0]
            raise RuntimeErrorD(
                f"strand update failed in block {bindex} "
                f"(process scheduler):\n{tb}"
            )
        return len(ranges), times
