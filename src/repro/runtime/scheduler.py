"""Bulk-synchronous strand scheduling (paper §5.5).

"Execution is divided into super steps; during a super-step each strand's
update method is evaluated once ... For the sequential target, the runtime
implements this model as a loop nest ... The parallel version creates a
collection of worker threads and manages a work-list of strands.  To keep
synchronization overhead low, the strands in the work-list are organized
into blocks of strands (currently 4096 strands per block).  During a
super-step, each worker grabs and updates strands until the work-list is
empty.  Barrier synchronization is used to coordinate the threads at the
end of a super step."

Both schedulers execute one *super-step* when called: they are handed the
list of strand blocks and a function that updates one block, and they
return the per-block results plus per-block wall-clock times (the raw
material for the simulated-multicore analysis in
:mod:`repro.runtime.simsched`).
"""

from __future__ import annotations

import threading
import time

import numpy as np


def make_blocks(active_idx: np.ndarray, block_size: int) -> list[np.ndarray]:
    """Split the active strand indices into work-list blocks."""
    if block_size <= 0:
        raise ValueError("block size must be positive")
    return [
        active_idx[i : i + block_size]
        for i in range(0, active_idx.size, block_size)
    ]


class SequentialScheduler:
    """The sequential loop nest: one block after another."""

    def run_step(self, blocks, run_block):
        results = []
        times = []
        for block in blocks:
            t0 = time.perf_counter()
            results.append(run_block(block))
            times.append(time.perf_counter() - t0)
        return results, times


class ThreadScheduler:
    """Worker threads pulling blocks from a lock-protected work-list.

    This is a direct port of the paper's runtime structure.  (CPython's
    GIL limits the speedup NumPy-bound workers can realize; the simulated
    scheduler in :mod:`repro.runtime.simsched` reproduces the paper's
    scaling results from measured block costs — see DESIGN.md.)
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers

    def run_step(self, blocks, run_block):
        work = list(enumerate(blocks))
        lock = threading.Lock()
        results: list = [None] * len(blocks)
        times: list = [0.0] * len(blocks)
        errors: list = []

        def worker() -> None:
            while True:
                with lock:  # the work-list lock the paper discusses (§6.4)
                    if not work:
                        return
                    i, block = work.pop(0)
                try:
                    t0 = time.perf_counter()
                    results[i] = run_block(block)
                    times[i] = time.perf_counter() - t0
                except BaseException as exc:  # propagate after the barrier
                    with lock:
                        errors.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, name=f"diderot-worker-{i}")
            for i in range(min(self.workers, max(1, len(blocks))))
        ]
        for t in threads:
            t.start()
        for t in threads:  # barrier at the end of the super-step
            t.join()
        if errors:
            raise errors[0]
        return results, times
