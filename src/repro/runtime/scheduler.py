"""Bulk-synchronous strand scheduling (paper §5.5).

"Execution is divided into super steps; during a super-step each strand's
update method is evaluated once ... For the sequential target, the runtime
implements this model as a loop nest ... The parallel version creates a
collection of worker threads and manages a work-list of strands.  To keep
synchronization overhead low, the strands in the work-list are organized
into blocks of strands (currently 4096 strands per block).  During a
super-step, each worker grabs and updates strands until the work-list is
empty.  Barrier synchronization is used to coordinate the threads at the
end of a super step."

Both schedulers execute one *super-step* when called: they are handed the
list of strand blocks and a function that updates one block, and they
return the per-block results plus per-block wall-clock times.  When a
:class:`repro.obs.Tracer` is passed, each block is additionally recorded
as a ``cat="block"`` span attributed to the worker that ran it (the raw
material for the simulated-multicore analysis in
:mod:`repro.runtime.simsched` and the per-worker utilization table);
``last_block_workers`` records which worker ran each block.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.obs import NULL_TRACER


def make_blocks(active_idx: np.ndarray, block_size: int) -> list[np.ndarray]:
    """Split the active strand indices into work-list blocks."""
    if block_size <= 0:
        raise ValueError("block size must be positive")
    return [
        active_idx[i : i + block_size]
        for i in range(0, active_idx.size, block_size)
    ]


class SequentialScheduler:
    """The sequential loop nest: one block after another."""

    def __init__(self):
        self.last_block_workers: list[int] = []

    def run_step(self, blocks, run_block, tracer=NULL_TRACER, step=0):
        results = []
        times = []
        for i, block in enumerate(blocks):
            t0 = time.perf_counter()
            results.append(run_block(block))
            dt = time.perf_counter() - t0
            times.append(dt)
            if tracer.enabled:
                tracer.complete("block", "block", t0, dt, tid="worker-0",
                                step=step, block=i, strands=int(len(block)))
        self.last_block_workers = [0] * len(blocks)
        return results, times


class ThreadScheduler:
    """Worker threads pulling blocks from a lock-protected work-list.

    This is a direct port of the paper's runtime structure.  The shared
    work-list is a plain index into the block list, advanced under the
    lock — an O(1) grab, keeping the critical section as cheap as the
    paper assumes (§5.5/§6.4).  (CPython's GIL limits the speedup
    NumPy-bound workers can realize; the simulated scheduler in
    :mod:`repro.runtime.simsched` reproduces the paper's scaling results
    from measured block costs — see DESIGN.md.)
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.last_block_workers: list[int] = []

    def run_step(self, blocks, run_block, tracer=NULL_TRACER, step=0):
        n = len(blocks)
        lock = threading.Lock()
        next_block = [0]  # the work-list cursor, guarded by `lock`
        results: list = [None] * n
        times: list = [0.0] * n
        block_workers: list = [-1] * n
        errors: list = []

        def worker(wid: int) -> None:
            label = f"worker-{wid}"
            while True:
                with lock:  # the work-list lock the paper discusses (§6.4)
                    i = next_block[0]
                    if i >= n:
                        return
                    next_block[0] = i + 1
                try:
                    t0 = time.perf_counter()
                    results[i] = run_block(blocks[i])
                    dt = time.perf_counter() - t0
                    times[i] = dt
                    block_workers[i] = wid
                    if tracer.enabled:
                        tracer.complete("block", "block", t0, dt, tid=label,
                                        step=step, block=i,
                                        strands=int(len(blocks[i])))
                except BaseException as exc:  # propagate after the barrier
                    with lock:
                        errors.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"diderot-worker-{i}")
            for i in range(min(self.workers, max(1, n)))
        ]
        for t in threads:
            t.start()
        for t in threads:  # barrier at the end of the super-step
            t.join()
        self.last_block_workers = block_workers
        if errors:
            raise errors[0]
        return results, times
