"""Bulk-synchronous strand scheduling (paper §5.5).

"Execution is divided into super steps; during a super-step each strand's
update method is evaluated once ... For the sequential target, the runtime
implements this model as a loop nest ... The parallel version creates a
collection of worker threads and manages a work-list of strands.  To keep
synchronization overhead low, the strands in the work-list are organized
into blocks of strands (currently 4096 strands per block).  During a
super-step, each worker grabs and updates strands until the work-list is
empty.  Barrier synchronization is used to coordinate the threads at the
end of a super step."

The in-process schedulers here execute one *super-step* when called: they
are handed the list of strand blocks and a function that updates one
block, and they return the per-block results plus per-block wall-clock
times.  The process-pool scheduler — true multicore execution over
shared-memory strand state — lives in :mod:`repro.runtime.mpsched`; see
DESIGN.md "Parallel backends" for when each backend wins.

When a :class:`repro.obs.Tracer` is passed, each block is additionally
recorded as a ``cat="block"`` span attributed to the worker that ran it
(the raw material for the simulated-multicore analysis in
:mod:`repro.runtime.simsched` and the per-worker utilization table);
``last_block_workers`` records which worker ran each block.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.errors import InputError
from repro.obs import NULL_TRACER
from repro.obs import metrics as _mx

#: the concrete scheduler names (``Program.run`` also accepts ``"auto"``)
SCHEDULER_NAMES = ("seq", "thread", "process")

#: every value accepted by ``Program.run(scheduler=...)`` / ``--scheduler``
SCHEDULER_CHOICES = SCHEDULER_NAMES + ("auto",)


def resolve_auto(workers: int, total: int, block_size: int,
                 backend: str = "numpy") -> str:
    """Pick a concrete scheduler for ``scheduler="auto"``.

    The heuristic (documented in the CLI help): sequential when only one
    worker is configured, when the machine has a single CPU (parallel
    overhead buys nothing), or when the program is tiny (fits in one
    strand block — fan-out costs more than the work).  Otherwise threads
    for the native C backend (the cffi call releases the GIL, so threads
    scale and share state for free) and processes for the NumPy backend
    (which is GIL-bound on threads).
    """
    if workers == 1 or (os.cpu_count() or 1) == 1 or total <= block_size:
        return "seq"
    return "thread" if backend == "c" else "process"


def resolve_workers(workers) -> int:
    """Resolve a worker-count setting to a positive integer.

    ``"auto"`` resolves to the machine's CPU count; anything else must be
    an integer ≥ 1.  Zero and negative counts are rejected with a clean
    :class:`~repro.errors.InputError` rather than silently falling back
    to sequential execution.
    """
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            workers = int(text)
        except ValueError:
            raise InputError(
                f"--workers expects a positive integer or 'auto', got {workers!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise InputError(f"--workers must be >= 1, got {workers}")
    return workers


def make_blocks(active_idx: np.ndarray, block_size: int) -> list[np.ndarray]:
    """Split the active strand indices into work-list blocks."""
    if block_size <= 0:
        raise ValueError("block size must be positive")
    return [
        active_idx[i : i + block_size]
        for i in range(0, active_idx.size, block_size)
    ]


class SequentialScheduler:
    """The sequential loop nest: one block after another."""

    def __init__(self):
        self.last_block_workers: list[int] = []

    def run_step(self, blocks, run_block, tracer=NULL_TRACER, step=0):
        results = []
        times = []
        for i, block in enumerate(blocks):
            t0 = time.perf_counter()
            results.append(run_block(block))
            dt = time.perf_counter() - t0
            times.append(dt)
            if tracer.enabled:
                tracer.complete("block", "block", t0, dt, tid="worker-0",
                                step=step, block=i, strands=int(len(block)))
        self.last_block_workers = [0] * len(blocks)
        return results, times

    def close(self) -> None:
        """Nothing to shut down; present for scheduler-interface symmetry."""


class ThreadScheduler:
    """Persistent worker threads pulling blocks from a shared work-list.

    This is a direct port of the paper's runtime structure: the workers
    are created **once** (the paper forks its thread pool at startup, not
    per super-step) and reused across super-steps.  Each ``run_step``
    publishes the step's block list under a condition variable and wakes
    the pool; workers grab blocks by advancing a shared cursor — an O(1)
    grab, keeping the critical section as cheap as the paper assumes
    (§5.5/§6.4) — and the caller waits on the same condition until the
    last block completes: the paper's end-of-super-step barrier.

    Call :meth:`close` (or rely on the daemon flag) to retire the pool.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.last_block_workers: list[int] = []
        self._cv = threading.Condition()
        # per-step work-list state, all guarded by the condition variable
        self._blocks: list = []
        self._run_block = None
        self._tracer = NULL_TRACER
        self._step = 0
        self._next = 0        # the work-list cursor (§6.4's lock)
        self._pending = 0     # blocks not yet completed this step
        self._results: list = []
        self._times: list = []
        self._block_workers: list = []
        self._errors: list = []
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker, args=(i,),
                             name=f"diderot-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    def _worker(self, wid: int) -> None:
        label = f"worker-{wid}"
        while True:
            idle0 = time.perf_counter()
            with self._cv:
                while not self._closed and self._next >= len(self._blocks):
                    self._cv.wait()
                if self._closed:
                    return
                i = self._next
                self._next += 1
                blocks = self._blocks
                run_block = self._run_block
                tracer = self._tracer
                step = self._step
            reg = _mx.ACTIVE
            if reg.enabled:
                # queue wait: how long this worker sat idle before it
                # could grab a block (scheduler-health telemetry)
                reg.observe("sched.queue_wait_seconds",
                            time.perf_counter() - idle0)
            try:
                t0 = time.perf_counter()
                out = run_block(blocks[i])
                dt = time.perf_counter() - t0
            except BaseException as exc:  # propagate after the barrier
                with self._cv:
                    self._errors.append(exc)
                    # cancel this step's unclaimed blocks so the barrier
                    # opens and run_step can raise
                    skipped = len(self._blocks) - self._next
                    self._next = len(self._blocks)
                    self._pending -= skipped + 1
                    if self._pending <= 0:
                        self._cv.notify_all()
                continue
            if tracer.enabled:
                tracer.complete("block", "block", t0, dt, tid=label,
                                step=step, block=i,
                                strands=int(len(blocks[i])))
            with self._cv:
                self._results[i] = out
                self._times[i] = dt
                self._block_workers[i] = wid
                self._pending -= 1
                if self._pending <= 0:
                    self._cv.notify_all()

    def run_step(self, blocks, run_block, tracer=NULL_TRACER, step=0):
        n = len(blocks)
        with self._cv:
            if self._closed:
                raise RuntimeError("ThreadScheduler is closed")
            self._blocks = blocks
            self._run_block = run_block
            self._tracer = tracer
            self._step = step
            self._results = [None] * n
            self._times = [0.0] * n
            self._block_workers = [-1] * n
            self._errors = []
            self._pending = n
            self._next = 0
            self._cv.notify_all()
            while self._pending > 0:  # barrier at the end of the super-step
                self._cv.wait()
            # quiesce the work-list so woken workers go back to waiting
            self._blocks = []
            self._next = 0
            self._run_block = None
            results = self._results
            times = self._times
            self.last_block_workers = list(self._block_workers)
            errors = list(self._errors)
        if errors:
            raise errors[0]
        return results, times

    def close(self) -> None:
        """Retire the worker pool (idempotent)."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        for t in self._threads:
            t.join(timeout=2.0)
