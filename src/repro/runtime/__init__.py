"""The Diderot runtime (paper §5.5).

"The Diderot runtime is comprised of common code for loading image data
from Nrrd files and writing the program's output ... In addition to the
common code, there is target-specific code for managing strands."

* :mod:`repro.runtime.ops` — the primitive operations that generated code
  calls (one function per LowIR op), vectorized across strand lanes;
* :mod:`repro.runtime.program` — the compiled-program object: inputs,
  image binding, execution, outputs;
* :mod:`repro.runtime.scheduler` — bulk-synchronous strand scheduling:
  sequential, thread-pool, and simulated-multicore (DESIGN.md) variants.
"""

from repro.runtime.program import Program

__all__ = ["Program"]
