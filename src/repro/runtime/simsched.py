"""Simulated multicore scheduling (the DESIGN.md hardware substitution).

The paper's parallel results (Table 2's 1P/2P/8P columns, Figure 12) were
measured on an 8-core Xeon; this reproduction runs in a 1-core container.
We therefore *measure* the real cost of every strand block in a sequential
run (``Program.run(..., tracer=Tracer())`` — the scheduler records one
``cat="block"`` span per block) and replay the per-super-step block trace
through a discrete simulation of the paper's scheduler: N workers pulling
blocks from a central work-list whose lock costs ``lock_overhead`` seconds
per acquisition, with a barrier at the end of each super-step.

Every entry point accepts either a :class:`repro.obs.Tracer` (the block
spans are extracted via ``Tracer.block_step_times()``) or a raw
``list[list[float]]`` of per-step block durations.

The simulation can only redistribute measured work, never shrink it, so
speedups are bounded by the real block-level parallelism — which is
exactly the quantity Figure 12 plots (e.g. vr-lite tails off at 8 threads
because it has too few blocks; small blocks hurt because of lock traffic —
both §6.4 observations).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

#: Default cost of one work-list lock acquisition (seconds).  Measured
#: uncontended pthread mutex costs are tens of nanoseconds; we default to
#: a conservative 2 µs which also stands in for cache traffic on the list.
DEFAULT_LOCK_OVERHEAD = 2e-6


@dataclass
class SimResult:
    """Simulated execution times for one block trace."""

    total_time: float
    per_step: list[float]
    workers: int


def as_block_trace(trace) -> list[list[float]]:
    """Normalize a trace argument: a Tracer, or per-step duration lists."""
    method = getattr(trace, "block_step_times", None)
    return method() if callable(method) else trace


def simulate_step(block_times: list[float], workers: int, lock_overhead: float) -> float:
    """Makespan of one super-step under greedy work-list scheduling.

    Workers repeatedly grab the next block off the shared list (paying the
    lock each grab, serialized through the lock) and execute it; the step
    ends when the slowest worker finishes (the barrier).
    """
    if not block_times:
        return 0.0
    heap = [0.0] * max(1, workers)  # worker available-times
    heapq.heapify(heap)
    lock_free_at = 0.0  # the work-list lock is itself serial
    for bt in block_times:
        worker_free = heapq.heappop(heap)
        grab_start = max(worker_free, lock_free_at)
        lock_free_at = grab_start + lock_overhead
        heapq.heappush(heap, lock_free_at + bt)
    return max(heap)


def simulate_run(
    block_trace,
    workers: int,
    lock_overhead: float = DEFAULT_LOCK_OVERHEAD,
) -> SimResult:
    """Simulate a whole run (a barrier separates the super-steps)."""
    trace = as_block_trace(block_trace)
    per_step = [simulate_step(step, workers, lock_overhead) for step in trace]
    return SimResult(sum(per_step), per_step, workers)


def speedup_curve(
    block_trace,
    worker_counts: list[int],
    lock_overhead: float = DEFAULT_LOCK_OVERHEAD,
) -> dict[int, float]:
    """Speedup vs the 1-worker simulation, for Figure 12.

    The baseline is the 1-worker *simulated* time (identical to the summed
    block costs plus lock overhead), matching the paper's use of the
    sequential time as the reference.
    """
    trace = as_block_trace(block_trace)
    base = simulate_run(trace, 1, lock_overhead).total_time
    return {
        w: base / simulate_run(trace, w, lock_overhead).total_time
        for w in worker_counts
    }
