"""Incremental re-execution: footprints, snapshots, dirty-region queries.

The Diderot strand model recomputes every strand on every run even when
only a sliver of an input image changed.  Strands are independent (no
inter-strand communication), so a strand whose *input-image footprint* —
the set of sample indices its probes can read across all super-steps —
does not intersect a patched region must converge to bit-identical
state.  This module supplies the machinery ``Program.update_input`` /
``Program.run_update`` build on:

``FootprintRecorder``
    Installed on :mod:`repro.runtime.ops` around a (sequential) run, it
    observes every ``gather`` and accumulates, per strand and per image,
    the axis-aligned bounding box of sample indices read.  The scheduler
    tells the recorder which strand rows the current lanes belong to via
    the ``lane_map`` attribute.

``Footprints``
    The queryable product: dilated per-strand AABBs plus a lazy spatial
    index over index-space blocks (``_BlockIndex``) so a dirty region
    maps to candidate strands in roughly O(region) instead of
    O(strands).  Boxes are dilated by one extra sample per axis so the
    native backend's 1e-12 contract (and single precision's 1e-5) can't
    flip a floor-boundary read across the dirty test.

``Snapshot``
    A checkpoint of converged strand state: private copies of the state
    arrays and status vector, plus the grid metadata needed to restore.

``StepEvent``
    The payload handed to the per-super-step streaming callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FootprintRecorder",
    "Footprints",
    "Snapshot",
    "StepEvent",
]

# sentinel half-range for unrecorded boxes; also the clip bound applied to
# incoming gather indices (predicated-off lanes may carry garbage like
# trunc(inf) that would overflow the int64 min/max accumulation)
_BIG = np.int64(1) << 40

#: below this many strands a vectorized full scan beats the block index
INDEX_MIN_STRANDS = 16384


class FootprintRecorder:
    """Accumulates per-strand, per-image gather AABBs during a run.

    Not thread-safe by design: recording runs use the sequential
    scheduler (the shadow run is cheap relative to what it saves).
    """

    def __init__(self, image_names: dict[int, str], total: int = 0):
        # id(ctx image object) -> input name; gather only sees the Image
        self._names = image_names
        self.total = int(total)
        # name -> (lo, hi) int64 arrays of shape (total, dim)
        self.boxes: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        # name -> (lo, hi) global fallback box for gathers outside lane
        # tracking (constant-position probes, unmapped lanes)
        self.global_boxes: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        #: strand rows the currently-running lanes map to (set by the
        #: runtime around seed/init, per block, and around stabilize)
        self.lane_map: np.ndarray | None = None
        #: rows whose boxes changed since the last ``drain_touched``
        self._touched: set[int] | None = None
        self.generation = 0

    # -- wiring ------------------------------------------------------------

    def resize(self, total: int) -> None:
        """Late-size the per-strand tables (grid dims resolve mid-run)."""
        if total == self.total:
            return
        self.total = int(total)
        for name, (lo, _hi) in list(self.boxes.items()):
            self.boxes[name] = self._fresh(lo.shape[1])

    def _fresh(self, dim: int) -> tuple[np.ndarray, np.ndarray]:
        lo = np.full((self.total, dim), _BIG, dtype=np.int64)
        hi = np.full((self.total, dim), -_BIG, dtype=np.int64)
        return lo, hi

    def reset_rows(self, ids: np.ndarray) -> None:
        """Forget the boxes for ``ids`` (about to be re-traced)."""
        for lo, hi in self.boxes.values():
            lo[ids] = _BIG
            hi[ids] = -_BIG
        self.generation += 1
        if self._touched is not None:
            self._touched.update(int(i) for i in np.asarray(ids).ravel())

    def track_touched(self) -> None:
        self._touched = set()

    def drain_touched(self) -> np.ndarray:
        out = np.fromiter(self._touched or (), dtype=np.int64)
        self._touched = set()
        return out

    # -- the ops.gather hook ----------------------------------------------

    def on_gather(self, image, n: np.ndarray, support: int) -> None:
        name = self._names.get(id(image))
        if name is None:
            return
        n = np.clip(np.asarray(n, dtype=np.int64), -_BIG, _BIG)
        # a gather at integer part n reads samples n+(1-s) .. n+s per
        # axis, with out-of-range indices clamped to the nearest valid
        # sample (fields.probe.gather_neighborhood) — the recorded box
        # must describe the samples actually read
        sizes = np.asarray(image.sizes, dtype=np.int64)
        lo = np.clip(n + (1 - support), 0, sizes - 1)
        hi = np.clip(n + support, 0, sizes - 1)
        lanes = self.lane_map
        if (
            lanes is not None
            and n.ndim == 2
            and n.shape[0] == lanes.shape[0]
            and self.total
        ):
            dim = n.shape[1]
            got = self.boxes.get(name)
            if got is None or got[0].shape[1] != dim:
                got = self.boxes[name] = self._fresh(dim)
            blo, bhi = got
            # rows are unique within a block, so fancy-index min/max is safe
            blo[lanes] = np.minimum(blo[lanes], lo)
            bhi[lanes] = np.maximum(bhi[lanes], hi)
            if self._touched is not None:
                self._touched.update(int(i) for i in lanes.ravel())
            return
        if n.ndim == 1:
            lo = lo[None, :]
            hi = hi[None, :]
        glo = lo.min(axis=0)
        ghi = hi.max(axis=0)
        got = self.global_boxes.get(name)
        if got is None:
            self.global_boxes[name] = (glo, ghi)
        else:
            self.global_boxes[name] = (
                np.minimum(got[0], glo), np.maximum(got[1], ghi)
            )


class _BlockIndex:
    """CSR spatial index: index-space blocks -> strand rows overlapping.

    Built once over a snapshot of boxes; rows whose boxes changed since
    are kept in an ``overlay`` mask and scanned exactly on every query,
    so the index never returns stale hits (a delta-overlay pattern: the
    index narrows, the exact AABB test decides).
    """

    BLOCK = 8

    def __init__(self, lo: np.ndarray, hi: np.ndarray, sizes: np.ndarray):
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self.nblocks = (self.sizes + self.BLOCK - 1) // self.BLOCK
        valid = (hi >= lo).all(axis=1)
        rows = np.nonzero(valid)[0]
        blo = np.clip(lo[rows] // self.BLOCK, 0, self.nblocks - 1)
        bhi = np.clip(hi[rows] // self.BLOCK, 0, self.nblocks - 1)
        spans = bhi - blo + 1
        counts = spans.prod(axis=1)
        total_cells = int(counts.sum())
        cell_ids = np.empty(total_cells, dtype=np.int64)
        cell_rows = np.repeat(rows, counts)
        # vectorized mixed-radix expansion of each row's block range
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        local = np.arange(total_cells, dtype=np.int64) - np.repeat(
            offsets, counts
        )
        dim = lo.shape[1]
        rep_blo = np.repeat(blo, counts, axis=0)
        rep_spans = np.repeat(spans, counts, axis=0)
        coord = np.empty((total_cells, dim), dtype=np.int64)
        rem = local
        for k in range(dim - 1, -1, -1):
            coord[:, k] = rem % rep_spans[:, k] + rep_blo[:, k]
            rem = rem // rep_spans[:, k]
        # flatten block coords to scalar cell ids (row-major)
        cell_ids = coord[:, 0]
        for k in range(1, dim):
            cell_ids = cell_ids * self.nblocks[k] + coord[:, k]
        order = np.argsort(cell_ids, kind="stable")
        self._cells = cell_ids[order]
        self._rows = cell_rows[order]

    def candidates(self, rlo: np.ndarray, rhi: np.ndarray) -> np.ndarray:
        """Strand rows whose boxes may intersect region ``[rlo, rhi]``."""
        blo = np.clip(np.asarray(rlo) // self.BLOCK, 0, self.nblocks - 1)
        bhi = np.clip(np.asarray(rhi) // self.BLOCK, 0, self.nblocks - 1)
        spans = (bhi - blo + 1).astype(np.int64)
        ncell = int(spans.prod())
        dim = len(self.nblocks)
        ids = np.zeros(ncell, dtype=np.int64)
        rem = np.arange(ncell, dtype=np.int64)
        coords = []
        for k in range(dim - 1, -1, -1):
            coords.insert(0, rem % spans[k] + blo[k])
            rem = rem // spans[k]
        ids = coords[0]
        for k in range(1, dim):
            ids = ids * self.nblocks[k] + coords[k]
        starts = np.searchsorted(self._cells, ids, side="left")
        ends = np.searchsorted(self._cells, ids, side="right")
        picks = [self._rows[a:b] for a, b in zip(starts, ends) if b > a]
        if not picks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(picks))


class Footprints:
    """Queryable dilated footprints over one recorder's boxes.

    The block index is a snapshot; rows re-traced after it was built go
    into a per-image ``overlay`` mask and are always tested exactly
    against the recorder's *live* boxes, so queries never see stale
    geometry.  When the overlay outgrows a quarter of the strands the
    index is rebuilt on the next query.
    """

    def __init__(self, recorder: FootprintRecorder, sizes_by_image: dict,
                 dilate: int = 1):
        self.recorder = recorder
        self.sizes_by_image = {
            k: np.asarray(v, dtype=np.int64) for k, v in sizes_by_image.items()
        }
        self.dilate = int(dilate)
        # name -> [index, overlay_mask, stale]
        self._index: dict[str, list] = {}
        recorder.track_touched()

    def note_refreshed(self) -> None:
        """Fold rows re-traced since the last query into the overlays."""
        touched = self.recorder.drain_touched()
        if touched.size == 0:
            return
        for entry in self._index.values():
            entry[1][touched] = True
            if int(entry[1].sum()) * 4 > max(self.recorder.total, 1):
                entry[2] = True

    def _candidates(self, name, lo, hi, rlo, rhi):
        """Index-narrowed candidate rows, or ``None`` for a full scan."""
        total = self.recorder.total
        if total < INDEX_MIN_STRANDS:
            return None
        entry = self._index.get(name)
        if entry is None or entry[2] or entry[1].shape[0] != total:
            index = _BlockIndex(lo - self.dilate, hi + self.dilate,
                                self.sizes_by_image[name])
            entry = self._index[name] = [
                index, np.zeros(total, dtype=bool), False
            ]
        cand = entry[0].candidates(rlo, rhi)
        overlay_rows = np.nonzero(entry[1])[0]
        if overlay_rows.size:
            cand = np.union1d(cand, overlay_rows)
        return cand

    def dirty_strands(self, name: str, regions) -> np.ndarray | None:
        """Strand rows whose footprint on ``name`` hits any region.

        Returns ``None`` when the hit can't be attributed to specific
        strands (an untracked global box — e.g. a constant-position
        probe — intersects a region): the caller must treat every
        strand as dirty.
        """
        self.note_refreshed()
        d = self.dilate
        glob = self.recorder.global_boxes.get(name)
        if glob is not None:
            for rlo, rhi in regions:
                rlo = np.asarray(rlo, dtype=np.int64)
                rhi = np.asarray(rhi, dtype=np.int64)
                if ((glob[0] - d <= rhi) & (glob[1] + d >= rlo)).all():
                    return None
        got = self.recorder.boxes.get(name)
        if got is None:
            return np.empty(0, dtype=np.int64)
        lo, hi = got
        hits = []
        for rlo, rhi in regions:
            rlo = np.asarray(rlo, dtype=np.int64)
            rhi = np.asarray(rhi, dtype=np.int64)
            cand = self._candidates(name, lo, hi, rlo, rhi)
            if cand is None:
                hit = np.nonzero(
                    ((lo - d <= rhi) & (hi + d >= rlo)).all(axis=1)
                )[0]
            else:
                ok = ((lo[cand] - d <= rhi) & (hi[cand] + d >= rlo)).all(axis=1)
                hit = cand[ok]
            hits.append(hit)
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))


@dataclass
class Snapshot:
    """Converged strand state checkpointed for incremental restarts."""

    state: list[np.ndarray]
    status: np.ndarray
    sizes: np.ndarray
    los: np.ndarray
    total: int
    steps: int
    max_steps: int | None
    backend: str
    grid: bool
    grid_dims: tuple[int, ...] | None

    def copies(self) -> tuple[list[np.ndarray], np.ndarray]:
        return [s.copy() for s in self.state], self.status.copy()


@dataclass
class StepEvent:
    """One super-step's changes, handed to the streaming callback."""

    step: int
    #: global strand ids that ran this step
    active: np.ndarray
    #: their post-step status codes (aligned with ``active``)
    status: np.ndarray
    #: output name -> rows aligned with ``active`` (private copies)
    outputs: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def stabilized(self) -> np.ndarray:
        """Global ids of strands that stabilized during this step."""
        return self.active[self.status == 1]
