"""The trace collector: spans, counters, and gauges.

The collector is deliberately small: a :class:`Tracer` accumulates
:class:`SpanEvent` records (append-only, behind a lock, so compiler code
and scheduler worker threads can share one tracer), and everything else —
Chrome JSON, summary tables, ``CompileStats``, the simulated scheduler's
block traces — is a *view* over that event list.

Disabled mode is :data:`NULL_TRACER`, whose ``span()`` returns one shared
no-op context manager: no span objects are allocated on the hot path, and
instrumented code can additionally guard per-block work with
``if tracer.enabled:`` so a disabled run does no extra work at all.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field


@dataclass(slots=True)
class SpanEvent:
    """One recorded event.

    ``ts`` and ``dur`` are seconds relative to the tracer's epoch; ``ph``
    follows the Chrome trace-event phase letters: ``"X"`` for a complete
    span, ``"i"`` for an instant, ``"C"`` for a counter sample.
    """

    name: str
    cat: str
    ts: float
    dur: float
    tid: str
    ph: str = "X"
    args: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur


class _Span:
    """An open span; records itself into the tracer on ``__exit__``.

    ``set(key, value)`` attaches metadata that is only known once the
    spanned work has run (instruction counts, strand tallies, ...).
    """

    __slots__ = ("_tracer", "name", "cat", "tid", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: str | None, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args
        self._t0 = 0.0

    def set(self, key: str, value) -> None:
        self.args[key] = value

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        self._tracer.complete(
            self.name, self.cat, self._t0, t1 - self._t0, tid=self.tid, **self.args
        )
        return False


class _NullSpan:
    """The shared no-op span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe span/counter/gauge collector.

    Parameters
    ----------
    on_pass:
        Called with the :class:`SpanEvent` each time a compiler-pass span
        (``cat == "pass"``) completes.
    on_superstep:
        Called with the :class:`SpanEvent` each time a runtime super-step
        span (``cat == "superstep"``) completes.
    """

    enabled = True

    def __init__(self, on_pass=None, on_superstep=None):
        self._lock = threading.Lock()
        self.epoch = time.perf_counter()
        self.events: list[SpanEvent] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.on_pass = on_pass
        self.on_superstep = on_superstep

    # -- recording ---------------------------------------------------------

    def _tid(self) -> str:
        return threading.current_thread().name

    def _append(self, ev: SpanEvent) -> None:
        with self._lock:
            self.events.append(ev)
        if ev.cat == "pass" and self.on_pass is not None:
            self.on_pass(ev)
        elif ev.cat == "superstep" and self.on_superstep is not None:
            self.on_superstep(ev)

    def span(self, name: str, cat: str = "", tid: str | None = None, **args) -> _Span:
        """Open a span as a context manager; recorded when it closes."""
        return _Span(self, name, cat, tid, args)

    def complete(self, name: str, cat: str, start: float, dur: float,
                 tid: str | None = None, **args) -> None:
        """Record an already-measured interval.

        ``start`` is an absolute ``time.perf_counter()`` value; callers
        that time work themselves (the schedulers) use this instead of
        :meth:`span` so tracing reuses their existing measurements.
        """
        self._append(SpanEvent(name, cat, start - self.epoch, dur,
                               tid or self._tid(), "X", args))

    def instant(self, name: str, cat: str = "", **args) -> None:
        """Record a zero-duration marker (e.g. an instruction count)."""
        self._append(SpanEvent(name, cat, time.perf_counter() - self.epoch,
                               0.0, self._tid(), "i", args))

    def counter(self, name: str, delta: float = 1.0) -> float:
        """Accumulate ``delta`` into a named counter; returns the total."""
        with self._lock:
            total = self.counters.get(name, 0.0) + delta
            self.counters[name] = total
        self._append(SpanEvent(name, "counter", time.perf_counter() - self.epoch,
                               0.0, self._tid(), "C", {"value": total}))
        return total

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge to its latest value."""
        with self._lock:
            self.gauges[name] = value
        self._append(SpanEvent(name, "gauge", time.perf_counter() - self.epoch,
                               0.0, self._tid(), "C", {"value": value}))

    # -- views -------------------------------------------------------------

    def spans(self, cat: str | None = None) -> list[SpanEvent]:
        """The complete ("X") events, optionally filtered by category."""
        return [ev for ev in self.events
                if ev.ph == "X" and (cat is None or ev.cat == cat)]

    def block_step_times(self) -> list[list[float]]:
        """Per-super-step lists of per-block durations (seconds).

        This is the input the simulated multicore scheduler
        (:mod:`repro.runtime.simsched`) replays; blocks are ordered by
        their work-list index within each step, regardless of the order
        worker threads finished them in.
        """
        steps: dict[int, list[tuple[int, float]]] = {}
        for ev in self.events:
            if ev.cat == "block" and ev.ph == "X":
                steps.setdefault(ev.args["step"], []).append(
                    (ev.args.get("block", 0), ev.dur)
                )
        return [[dur for _, dur in sorted(steps[s])] for s in sorted(steps)]

    def block_workers(self) -> list[list[str]]:
        """Per-super-step lists of the worker label that ran each block."""
        steps: dict[int, list[tuple[int, str]]] = {}
        for ev in self.events:
            if ev.cat == "block" and ev.ph == "X":
                steps.setdefault(ev.args["step"], []).append(
                    (ev.args.get("block", 0), ev.tid)
                )
        return [[tid for _, tid in sorted(steps[s])] for s in sorted(steps)]


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``span()`` returns one shared context manager, so the instrumented
    hot paths allocate nothing when tracing is off.
    """

    enabled = False
    events: tuple = ()
    counters: dict = {}
    gauges: dict = {}

    def span(self, name: str, cat: str = "", tid: str | None = None, **args) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, name: str, cat: str, start: float, dur: float,
                 tid: str | None = None, **args) -> None:
        pass

    def instant(self, name: str, cat: str = "", **args) -> None:
        pass

    def counter(self, name: str, delta: float = 1.0) -> float:
        return 0.0

    def gauge(self, name: str, value: float) -> None:
        pass

    def spans(self, cat: str | None = None) -> list:
        return []

    def block_step_times(self) -> list:
        return []

    def block_workers(self) -> list:
        return []


#: the shared disabled tracer — use this instead of ``None`` checks
NULL_TRACER = NullTracer()


def tracer_from_env(env: str = "REPRO_TRACE") -> tuple[Tracer | None, str | None]:
    """Build a tracer if the activation env var names a trace-output path.

    Returns ``(tracer, path)`` — both ``None`` when the variable is unset
    or empty.
    """
    path = os.environ.get(env)
    if not path:
        return None, None
    return Tracer(), path
