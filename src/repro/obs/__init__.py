"""Observability: tracing, metrics, and profiling (`repro.obs`).

A unified layer over the measurements the paper's evaluation (§6) relies
on: per-compiler-pass timing and instruction counts, and per-super-step /
per-block runtime timing with worker attribution.

* :mod:`repro.obs.tracer` — the thread-safe collector: spans, counters,
  and gauges, with a zero-allocation disabled mode (:data:`NULL_TRACER`);
* :mod:`repro.obs.export` — exporters: Chrome trace-event JSON (loadable
  in Perfetto / ``chrome://tracing``) and a human-readable summary table.

Activation surfaces:

* ``python -m repro PROG --trace out.json`` / ``--profile``
* ``Program.run(..., tracer=Tracer(...))`` with optional ``on_pass`` /
  ``on_superstep`` callbacks
* the ``REPRO_TRACE=out.json`` environment variable
"""

from repro.obs.export import chrome_trace, format_summary, write_chrome_trace
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanEvent, Tracer, tracer_from_env

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanEvent",
    "Tracer",
    "chrome_trace",
    "format_summary",
    "tracer_from_env",
    "write_chrome_trace",
]
