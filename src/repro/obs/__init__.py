"""Observability: tracing, metrics, and profiling (`repro.obs`).

A unified layer over the measurements the paper's evaluation (§6) relies
on: per-compiler-pass timing and instruction counts, and per-super-step /
per-block runtime timing with worker attribution.

* :mod:`repro.obs.tracer` — the thread-safe event collector: spans,
  counters, and gauges, with a zero-allocation disabled mode
  (:data:`NULL_TRACER`);
* :mod:`repro.obs.metrics` — the always-on aggregate registry: op
  counters, scheduler-health histograms, the per-step convergence
  series, and the ``repro-metrics-v1`` JSON document;
* :mod:`repro.obs.export` — exporters: Chrome trace-event JSON (loadable
  in Perfetto / ``chrome://tracing``), the summary table, and the
  metrics run report;
* ``python -m repro.obs`` — ``report`` renders a saved metrics file,
  ``diff`` compares two with noise-tolerant thresholds (the CI perf
  gate's engine).

Activation surfaces:

* metrics are **on by default**: every ``Program.run`` returns its
  registry as ``result.metrics`` and folds into the session-wide
  ``metrics.GLOBAL``; pass ``metrics=False`` (or ``--no-metrics``) for
  the zero-overhead path, ``--metrics-out FILE`` to save the document
* ``python -m repro PROG --trace out.json`` / ``--profile``
* ``Program.run(..., tracer=Tracer(...))`` with optional ``on_pass`` /
  ``on_superstep`` callbacks
* the ``REPRO_TRACE=out.json`` environment variable
"""

from repro.obs.export import (
    chrome_trace,
    format_metrics,
    format_report,
    format_summary,
    write_chrome_trace,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    metrics_doc,
    read_metrics_json,
    write_metrics_json,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanEvent, Tracer, tracer_from_env

__all__ = [
    "NULL_METRICS",
    "NULL_TRACER",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "SpanEvent",
    "Tracer",
    "chrome_trace",
    "format_metrics",
    "format_report",
    "format_summary",
    "metrics_doc",
    "read_metrics_json",
    "tracer_from_env",
    "write_chrome_trace",
    "write_metrics_json",
]
