"""The always-on metrics registry: counters, gauges, histograms, series.

Where :mod:`repro.obs.tracer` records *events* (a timeline you replay or
render), this module records *aggregates* — cheap enough that they stay
on by default.  Three kinds of instruments, all thread-safe behind one
lock:

* **counters** — monotonically accumulated floats/ints (op invocation
  counts, element throughput, guard skips, busy seconds);
* **gauges** — last-value-wins samples (active strand count);
* **histograms** — fixed-bucket distributions with percentile readout
  (super-step seconds, queue wait, load imbalance);
* **series** — append-only lists of dict rows (the per-step convergence
  curve the run report plots).

Deterministic vs. timing metrics
--------------------------------
Counter names under ``op.*`` ending in ``.calls``, ``.lanes`` or
``.memo_*``, and the ``guard.*`` counters, count *work*, not time: for a
fixed program and block size they are bit-identical across the
sequential, thread, and process schedulers (asserted by
``tests/test_metrics.py``).  Names ending in ``.seconds`` and every
histogram are wall-clock measurements and are compared only with
noise-tolerant thresholds (``python -m repro.obs diff``).

Cache and serving metrics
-------------------------
The compile-once layers report through the same registry:
``compile_cache.{hits,misses,evicted}`` from the persistent compile
cache (:mod:`repro.serve.cache`), ``cgen.cache.{hits,misses,evicted,
lock_waits}`` from the native artifact cache
(:mod:`repro.core.codegen.cbuild`), and the front door's
``serve.requests`` / ``serve.http.<status>`` / ``serve.shed`` counters,
``serve.batch.{requests,batches,coalesced}`` coalescing counters, and
``serve.batch.size`` / ``serve.request_seconds`` histograms
(:mod:`repro.serve.server`).  Cache counters increment on :data:`ACTIVE`
outside any run, i.e. on :data:`GLOBAL` unless a run is in flight.

Cross-process protocol
----------------------
Forked :class:`~repro.runtime.mpsched.ProcessScheduler` workers install
a fresh local registry, and :func:`MetricsRegistry.drain` its contents
into each block's ``done`` ack; the master merges the deltas at the
super-step barrier, so process runs report the same op counters as
sequential runs instead of silently dropping worker-side counts.

The active registry
-------------------
Instrumented runtime code writes to :data:`ACTIVE` (module attribute,
swapped by ``Program.run`` for the duration of a run and restored
after).  :data:`GLOBAL` is the process-wide cumulative registry: it is
the default ``ACTIVE``, and every run's registry is folded into it when
the run ends, so session-level tools (``rt.guard_stats()``) keep
working across runs without per-run state leaking into
``RunResult.metrics``.  Disabled mode is :data:`NULL_METRICS`
(:class:`NullRegistry`): ``enabled`` is False and instrumented code
guards all work behind it, so a metrics-off run does no extra work.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager

#: histogram bucket upper bounds for wall-clock seconds: a 1-2-5 log grid
#: from 1us to 100s (observations above the last edge land in the
#: overflow bucket)
TIME_BUCKETS = tuple(
    m * (10.0 ** e) for e in range(-6, 3) for m in (1.0, 2.0, 5.0)
)

#: bucket bounds for the per-step load-imbalance index (max/mean worker
#: busy time; 1.0 = perfectly balanced)
IMBALANCE_BUCKETS = (1.0, 1.05, 1.1, 1.2, 1.35, 1.5, 2.0, 3.0, 5.0, 10.0)

#: power-of-two bucket bounds for size-like observations (coalesced
#: requests per serving batch, strands per request)
SIZE_BUCKETS = tuple(float(1 << k) for k in range(0, 17))


class Histogram:
    """A fixed-bucket histogram with percentile readout.

    ``bounds`` are increasing upper bucket edges; ``counts`` has
    ``len(bounds) + 1`` entries, the last being the overflow bucket.
    Exact ``sum``/``count``/``min``/``max`` ride along so means and the
    0th/100th percentiles are exact regardless of bucketing.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds=TIME_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bucket whose upper edge >= value
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0-100) by linear
        interpolation inside the containing bucket, clamped to the exact
        observed ``[min, max]`` range."""
        if self.count == 0:
            return 0.0
        if p <= 0:
            return self.min
        if p >= 100:
            return self.max
        target = p / 100.0 * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= target:
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (target - cum) / c
                est = lo + (hi - lo) * frac
                return min(max(est, self.min), self.max)
            cum += c
        return self.max  # pragma: no cover - unreachable (cum == count)

    def merge(self, other: "dict | Histogram") -> None:
        """Fold another histogram (or its dict form) into this one."""
        if isinstance(other, Histogram):
            other = other.to_dict()
        if tuple(other["bounds"]) != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other["counts"]):
            self.counts[i] += c
        self.sum += other["sum"]
        self.count += other["count"]
        self.min = min(self.min, other["min"])
        self.max = max(self.max, other["max"])

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Histogram":
        h = cls(d["bounds"])
        h.merge(d)
        return h


# op name → ("op.X.calls", "op.X.lanes", "op.X.seconds"), interned once so
# the op-profiler hot path never builds key strings
_OP_KEYS: dict = {}


class MetricsRegistry:
    """Thread-safe counter/gauge/histogram/series store.

    All mutation goes through one lock; readers take snapshots.  The
    per-call cost is a dict update under an uncontended lock — the
    instrumented runtime records at *block* granularity (one update per
    kernel call over thousands of strands), which is what keeps the
    always-on overhead within the ≤3 % budget (EXPERIMENTS.md).
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.series: dict[str, list] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, delta: float = 1) -> None:
        """Accumulate ``delta`` into the named counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def inc_many(self, deltas: dict) -> None:
        """Accumulate several counters under one lock acquisition."""
        with self._lock:
            c = self.counters
            for name, delta in deltas.items():
                c[name] = c.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value."""
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float, bounds=TIME_BUCKETS) -> None:
        """Record one observation into the named histogram (created with
        ``bounds`` on first use)."""
        with self._lock:
            h = self.histograms.get(name)
            if h is None:
                h = self.histograms[name] = Histogram(bounds)
            h.observe(value)

    def op(self, name: str, lanes: int, seconds: float) -> None:
        """Record one runtime-kernel invocation: the op-profiler hot path.

        ``name`` is the IR op name the generated code calls (the
        ``rt.<name>`` emitted by :mod:`repro.core.codegen.pygen`), so the
        hot-op table attributes runtime cost directly to LowIR/MidIR
        vocabulary.  One lock acquisition updates calls, element (lane)
        throughput, and accumulated wall seconds.
        """
        keys = _OP_KEYS.get(name)
        if keys is None:
            keys = _OP_KEYS[name] = (
                f"op.{name}.calls", f"op.{name}.lanes", f"op.{name}.seconds"
            )
        k_calls, k_lanes, k_seconds = keys
        with self._lock:
            c = self.counters
            c[k_calls] = c.get(k_calls, 0) + 1
            c[k_lanes] = c.get(k_lanes, 0) + lanes
            c[k_seconds] = c.get(k_seconds, 0.0) + seconds

    def guard(self, skipped: bool) -> None:
        """Count one uniform-branch guard evaluation (see ``rt.any_lane``)."""
        with self._lock:
            c = self.counters
            c["guard.checked"] = c.get("guard.checked", 0) + 1
            if skipped:
                c["guard.skipped"] = c.get("guard.skipped", 0) + 1

    def row(self, name: str, **fields) -> None:
        """Append one dict row to the named series (e.g. per-step stats)."""
        with self._lock:
            self.series.setdefault(name, []).append(fields)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-able copy of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    k: h.to_dict() for k, h in self.histograms.items()
                },
                "series": {k: list(v) for k, v in self.series.items()},
            }

    def drain(self) -> dict:
        """Snapshot and reset: the per-block delta a forked worker ships
        back in its ``done`` ack (merged by the master at the barrier)."""
        with self._lock:
            out = {
                "counters": self.counters,
                "gauges": self.gauges,
                "histograms": {
                    k: h.to_dict() for k, h in self.histograms.items()
                },
                "series": self.series,
            }
            self.counters = {}
            self.gauges = {}
            self.histograms = {}
            self.series = {}
        return out

    def merge(self, snap: dict, include_series: bool = True) -> None:
        """Fold a snapshot/drain dict (or another registry) into this one."""
        if isinstance(snap, MetricsRegistry):
            snap = snap.snapshot()
        with self._lock:
            c = self.counters
            for name, v in snap.get("counters", {}).items():
                c[name] = c.get(name, 0) + v
            self.gauges.update(snap.get("gauges", {}))
            for name, hd in snap.get("histograms", {}).items():
                h = self.histograms.get(name)
                if h is None:
                    self.histograms[name] = Histogram.from_dict(hd)
                else:
                    h.merge(hd)
            if include_series:
                for name, rows in snap.get("series", {}).items():
                    self.series.setdefault(name, []).extend(rows)

    def reset(self) -> None:
        """Zero every instrument (counters, gauges, histograms, series)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.series.clear()


class NullRegistry:
    """The disabled registry: every operation is a no-op.

    Instrumented hot paths check ``enabled`` first, so a metrics-off run
    takes no locks, reads no clocks, and allocates nothing
    (``tests/test_metrics.py::TestNullRegistry``).
    """

    enabled = False
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    series: dict = {}

    def inc(self, name: str, delta: float = 1) -> None:
        pass

    def inc_many(self, deltas: dict) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float, bounds=TIME_BUCKETS) -> None:
        pass

    def op(self, name: str, lanes: int, seconds: float) -> None:
        pass

    def guard(self, skipped: bool) -> None:
        pass

    def row(self, name: str, **fields) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}, "series": {}}

    def drain(self) -> dict:
        return self.snapshot()

    def merge(self, snap: dict, include_series: bool = True) -> None:
        pass

    def reset(self) -> None:
        pass


#: the shared disabled registry — use this instead of ``None`` checks
NULL_METRICS = NullRegistry()

#: the process-wide cumulative registry (default :data:`ACTIVE`; every
#: finished run folds its per-run registry into it)
GLOBAL = MetricsRegistry()

#: the registry instrumented runtime code writes to *right now*; swapped
#: by ``Program.run`` / forked workers, restored when the run ends
ACTIVE: MetricsRegistry | NullRegistry = GLOBAL

_AMBIENT_LOCK = threading.Lock()
_AMBIENT: MetricsRegistry | None = None


def set_active(reg) -> object:
    """Install ``reg`` as the active registry; returns the previous one."""
    global ACTIVE
    prev = ACTIVE
    ACTIVE = reg
    return prev


def ambient() -> MetricsRegistry | None:
    """The registry a :func:`collect` scope asked runs to share, if any."""
    return _AMBIENT


@contextmanager
def collect(reg: MetricsRegistry | None = None):
    """Scope under which ``Program.run(metrics=None)`` joins one registry.

    The CLIs use this to aggregate a whole session (e.g. every program a
    fuzz sweep runs) into a single metrics document::

        with metrics.collect() as reg:
            prog.run(); other.run()
        write_metrics_json(reg, "metrics.json")
    """
    global _AMBIENT
    if reg is None:
        reg = MetricsRegistry()
    with _AMBIENT_LOCK:
        prev = _AMBIENT
        _AMBIENT = reg
    try:
        yield reg
    finally:
        with _AMBIENT_LOCK:
            _AMBIENT = prev


def resolve(metrics) -> tuple:
    """Map a ``Program.run(metrics=...)`` argument to ``(registry, fold)``.

    ``registry`` is what the run records into (always fresh per run in
    the default modes, so nothing leaks across runs); ``fold`` is the
    tuple of registries the run's snapshot is merged into when it ends —
    the ambient :func:`collect` registry (series included) and the
    session-wide :data:`GLOBAL` (series excluded, to bound its memory).

    * ``None`` (the default): metrics on — fresh registry, folded into
      the ambient collect scope (if any) and :data:`GLOBAL`;
    * ``False``: off — :data:`NULL_METRICS`, nothing folded;
    * ``True``: fresh registry folded into :data:`GLOBAL` only (opts out
      of an enclosing collect scope);
    * a registry instance: used as-is, nothing folded (the caller owns
      aggregation).
    """
    if metrics is None:
        amb = ambient()
        targets = (amb, GLOBAL) if amb is not None else (GLOBAL,)
        return MetricsRegistry(), targets
    if metrics is False:
        return NULL_METRICS, ()
    if metrics is True:
        return MetricsRegistry(), (GLOBAL,)
    return metrics, ()


def fold_pass_spans(tracer, reg=None) -> None:
    """Fold a compile trace's ``cat="pass"`` spans into pass counters.

    The driver's internal tracer always records one span per compiler
    pass; this turns them into ``pass.<name>.seconds`` /
    ``pass.<name>.calls`` counters so compile cost shows up in the same
    metrics document as runtime cost.  With no explicit ``reg`` the
    counters fold into the ambient :func:`collect` scope (if any) and
    :data:`GLOBAL`.
    """
    if tracer is None or not getattr(tracer, "enabled", False):
        return
    deltas: dict[str, float] = {}
    for ev in tracer.spans("pass"):
        key = f"pass.{ev.name}"
        deltas[f"{key}.seconds"] = deltas.get(f"{key}.seconds", 0.0) + ev.dur
        deltas[f"{key}.calls"] = deltas.get(f"{key}.calls", 0) + 1
    if not deltas:
        return
    if reg is not None:
        targets = (reg,)
    else:
        amb = ambient()
        targets = (amb, GLOBAL) if amb is not None else (GLOBAL,)
    for target in targets:
        target.inc_many(deltas)


# -- the metrics JSON document ------------------------------------------------

#: schema tag written into every metrics JSON file
SCHEMA = "repro-metrics-v1"


def metrics_doc(reg, meta: dict | None = None) -> dict:
    """Render a registry (or snapshot dict) as a metrics JSON document."""
    snap = reg.snapshot() if hasattr(reg, "snapshot") else reg
    return {"schema": SCHEMA, "meta": dict(meta or {}), **snap}


def write_metrics_json(reg, path: str, meta: dict | None = None) -> str:
    """Write the metrics JSON document to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(metrics_doc(reg, meta), fp, indent=2, default=float)
        fp.write("\n")
    return path


def read_metrics_json(path: str) -> dict:
    """Load a metrics document; adapts Chrome trace JSON on the fly.

    A ``--trace`` file (Chrome trace-event JSON) is converted into the
    metrics schema by totalling span durations per ``cat.name`` into
    ``.seconds``/``.calls`` counters, so ``python -m repro.obs diff`` can
    compare traces and metrics files interchangeably.
    """
    with open(path, encoding="utf-8") as fp:
        doc = json.load(fp)
    if "traceEvents" in doc:  # a Chrome trace: adapt
        counters: dict[str, float] = {}
        for ev in doc["traceEvents"]:
            if ev.get("ph") != "X":
                continue
            key = f"{ev.get('cat', 'span')}.{ev['name']}"
            counters[f"{key}.seconds"] = (
                counters.get(f"{key}.seconds", 0.0) + ev.get("dur", 0.0) / 1e6
            )
            counters[f"{key}.calls"] = counters.get(f"{key}.calls", 0) + 1
        return {"schema": SCHEMA, "meta": {"adapted_from": "chrome-trace"},
                "counters": counters, "gauges": {}, "histograms": {},
                "series": {}}
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a {SCHEMA} document (schema="
            f"{doc.get('schema')!r}) and not a Chrome trace"
        )
    return doc
