"""``python -m repro.obs`` — metrics reporting and perf-regression diff.

Two subcommands over saved metrics JSON documents (written by
``--metrics-out`` on the CLIs, ``write_metrics_json``, or the benchmark
suite); ``report`` also accepts Chrome trace files (``--trace`` output),
which are adapted into pass/superstep counters on the fly.

``report FILE``
    Render the run report: metadata, compiler-pass table, hot-op
    profiler table, scheduler-health distributions, per-worker load
    shares, per-step convergence curve.

``diff OLD NEW``
    Noise-tolerant comparison of two metrics documents.  Wall-clock
    metrics (``*.seconds`` counters, histogram p95s) regress only when
    they exceed **both** a relative threshold (``--threshold``, default
    8 %) and an absolute floor (``--abs-floor``, default 5 ms) — small
    timing jitter never fails a build, a real ≥10 % slowdown always
    does.  Deterministic work counters (``op.*.calls`` / ``.lanes`` /
    ``.memo_*``, ``guard.*``) regress on any increase beyond
    ``--count-threshold`` (default 2 %); decreases are reported as
    improvements and never fail.  Exit status: 0 when clean, 1 on any
    regression — the CI perf gate (``benchmarks/regress.py``) builds on
    this.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.export import _fmt_time, format_report
from repro.obs.metrics import Histogram, read_metrics_json

#: counter suffixes that count *work* (scheduler-deterministic) rather
#: than time — compared with the strict count threshold
_COUNT_SUFFIXES = (".calls", ".lanes", ".memo_hits", ".memo_misses")


def _is_timing(name: str) -> bool:
    return name.endswith(".seconds") or name.endswith("_seconds")


def _is_count(name: str) -> bool:
    return (name.endswith(_COUNT_SUFFIXES)
            or name.startswith("guard.")
            or name in ("sched.supersteps", "run.count", "run.steps",
                        "run.strands", "strands.updated",
                        "strands.stabilized", "strands.died"))


def cmd_report(ns: argparse.Namespace) -> int:
    doc = read_metrics_json(ns.file)
    print(format_report(doc))
    return 0


def _diff_rows(old: dict, new: dict, ns: argparse.Namespace):
    """Yield ``(kind, name, old, new, ratio)`` rows; kind is
    ``regression`` / ``improvement`` / ``new`` / ``gone``."""
    rel = ns.threshold
    floor = ns.abs_floor
    crel = ns.count_threshold

    oc = old.get("counters", {})
    nc = new.get("counters", {})
    for name in sorted(set(oc) | set(nc)):
        if name not in oc:
            yield ("new", name, None, nc[name], None)
            continue
        if name not in nc:
            yield ("gone", name, oc[name], None, None)
            continue
        o, n = float(oc[name]), float(nc[name])
        ratio = n / o if o else (float("inf") if n else 1.0)
        if _is_timing(name):
            if n > o * (1 + rel) and n - o > floor:
                yield ("regression", name, o, n, ratio)
            elif o > n * (1 + rel) and o - n > floor:
                yield ("improvement", name, o, n, ratio)
        elif _is_count(name):
            if n > o * (1 + crel):
                yield ("regression", name, o, n, ratio)
            elif n < o:
                yield ("improvement", name, o, n, ratio)

    oh = old.get("histograms", {})
    nh = new.get("histograms", {})
    for name in sorted(set(oh) & set(nh)):
        o = Histogram.from_dict(oh[name]).percentile(95)
        n = Histogram.from_dict(nh[name]).percentile(95)
        if o <= 0 and n <= 0:
            continue
        ratio = n / o if o else float("inf")
        if n > o * (1 + rel) and n - o > floor:
            yield ("regression", f"{name} (p95)", o, n, ratio)
        elif o > n * (1 + rel) and o - n > floor:
            yield ("improvement", f"{name} (p95)", o, n, ratio)


def _fmt_val(name: str, v) -> str:
    if v is None:
        return "-"
    if _is_timing(name) or "(p95)" in name:
        return _fmt_time(v)
    return f"{v:g}"


def cmd_diff(ns: argparse.Namespace) -> int:
    old = read_metrics_json(ns.old)
    new = read_metrics_json(ns.new)
    rows = list(_diff_rows(old, new, ns))
    regressions = [r for r in rows if r[0] == "regression"]
    improvements = [r for r in rows if r[0] == "improvement"]

    def show(title, items):
        print(f"{title}:")
        print(f"  {'metric':<40}{'old':>12}{'new':>12}{'ratio':>8}")
        for _, name, o, n, ratio in items:
            rtxt = f"{ratio:.2f}x" if ratio is not None else "-"
            print(f"  {name:<40}{_fmt_val(name, o):>12}"
                  f"{_fmt_val(name, n):>12}{rtxt:>8}")

    if regressions:
        show("REGRESSIONS", regressions)
    if improvements:
        if regressions:
            print()
        show("improvements", improvements)
    if ns.verbose:
        added = [r for r in rows if r[0] == "new"]
        gone = [r for r in rows if r[0] == "gone"]
        if added:
            print()
            show("new metrics", added)
        if gone:
            print()
            show("dropped metrics", gone)
    if not regressions and not improvements:
        print("no significant differences "
              f"(threshold {ns.threshold:.0%}, floor {ns.abs_floor * 1e3:g}ms)")
    if regressions:
        print(f"\n{len(regressions)} regression(s) — failing")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="metrics reporting and perf-regression diff",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("report", help="render a metrics JSON file as tables")
    p.add_argument("file", help="metrics JSON (or Chrome trace JSON)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("diff", help="compare two metrics files; exit 1 on "
                                    "regression")
    p.add_argument("old", help="baseline metrics JSON")
    p.add_argument("new", help="candidate metrics JSON")
    p.add_argument("--threshold", type=float, default=0.08,
                   help="relative slowdown tolerated for timing metrics "
                        "(default 0.08 = 8%%)")
    p.add_argument("--abs-floor", type=float, default=0.005,
                   help="absolute seconds a timing metric must grow by to "
                        "count (default 0.005)")
    p.add_argument("--count-threshold", type=float, default=0.02,
                   help="relative increase tolerated for deterministic work "
                        "counters (default 0.02)")
    p.add_argument("--verbose", action="store_true",
                   help="also list metrics only present on one side")
    p.set_defaults(fn=cmd_diff)

    ns = parser.parse_args(argv)
    try:
        return ns.fn(ns)
    except BrokenPipeError:  # e.g. `report ... | head`
        sys.stderr.close()
        return 0
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
