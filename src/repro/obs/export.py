"""Trace exporters: Chrome trace-event JSON and a summary table.

The Chrome exporter emits the `trace-event format`__ consumed by Perfetto
and ``chrome://tracing``: one ``"X"`` (complete) event per span, ``"i"``
instants, ``"C"`` counter samples, and ``"M"`` metadata events naming the
worker threads.  Timestamps are microseconds from the tracer's epoch.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

The summary exporter (:func:`format_summary`, the CLI's ``--profile``)
renders three tables: compiler passes, per-function instruction counts,
and runtime super-steps with per-worker utilization.
"""

from __future__ import annotations

import json


def chrome_trace(tracer) -> dict:
    """Render a tracer's events as a Chrome trace-event JSON object."""
    tids: dict[str, int] = {}
    out: list[dict] = []
    for ev in tracer.events:
        if ev.tid not in tids:
            tids[ev.tid] = len(tids) + 1
    for label, tid in tids.items():
        out.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "args": {"name": label},
        })
    for ev in tracer.events:
        rec = {
            "name": ev.name,
            "cat": ev.cat or "repro",
            "ph": ev.ph,
            "ts": ev.ts * 1e6,
            "pid": 1,
            "tid": tids[ev.tid],
            "args": ev.args,
        }
        if ev.ph == "X":
            rec["dur"] = ev.dur * 1e6
        elif ev.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
        out.append(rec)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer, path: str) -> str:
    """Write the Chrome trace-event JSON file; returns the path."""
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(chrome_trace(tracer), fp, default=float)
    return path


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _pass_table(tracer) -> list[str]:
    order: list[str] = []
    total: dict[str, float] = {}
    count: dict[str, int] = {}
    for ev in tracer.spans("pass"):
        if ev.name not in total:
            order.append(ev.name)
            total[ev.name] = 0.0
            count[ev.name] = 0
        total[ev.name] += ev.dur
        count[ev.name] += 1
    if not order:
        return []
    lines = ["compiler passes:", f"  {'pass':<18}{'calls':>6}{'time':>10}"]
    for name in order:
        lines.append(f"  {name:<18}{count[name]:>6}{_fmt_time(total[name]):>10}")
    lines.append(f"  {'total':<18}{'':>6}{_fmt_time(sum(total.values())):>10}")
    return lines


def _instr_table(tracer) -> list[str]:
    counts: dict[str, dict[str, int]] = {}
    removed: dict[str, int] = {}
    for ev in tracer.events:
        if ev.name == "instr-count" and ev.cat == "count":
            counts.setdefault(ev.args["func"], {})[ev.args["ir"]] = ev.args["value"]
        elif ev.name == "value-numbering" and ev.cat == "pass":
            fn = ev.args.get("func")
            removed[fn] = removed.get(fn, 0) + ev.args.get("removed", 0)
    if not counts:
        return []
    lines = ["instruction counts (HighIR → MidIR → LowIR):",
             f"  {'function':<12}{'high':>6}{'mid':>6}{'low':>6}{'VN-removed':>12}"]
    for fn, c in counts.items():
        lines.append(
            f"  {fn:<12}{c.get('high', 0):>6}{c.get('mid', 0):>6}"
            f"{c.get('low', 0):>6}{removed.get(fn, 0):>12}"
        )
    return lines


def _superstep_table(tracer) -> list[str]:
    steps = tracer.spans("superstep")
    if not steps:
        return []
    lines = ["super-steps:",
             f"  {'step':>4}{'time':>10}{'blocks':>8}{'active':>8}"
             f"{'stable':>8}{'died':>8}"]
    for ev in steps:
        a = ev.args
        lines.append(
            f"  {a.get('step', 0):>4}{_fmt_time(ev.dur):>10}{a.get('blocks', 0):>8}"
            f"{a.get('active', 0):>8}{a.get('stable', 0):>8}{a.get('died', 0):>8}"
        )
    return lines


def _tid_sort_key(tid: str) -> tuple:
    """Natural ordering for worker labels: worker-2 before worker-10.

    Block spans carry the same ``worker-<i>`` labels whether the worker
    was a thread or a forked process, so one table serves all backends.
    """
    head, _, tail = tid.rpartition("-")
    if tail.isdigit():
        return (head, int(tail))
    return (tid, -1)


def _worker_table(tracer) -> list[str]:
    blocks = tracer.spans("block")
    if not blocks:
        return []
    busy: dict[str, float] = {}
    n: dict[str, int] = {}
    for ev in blocks:
        busy[ev.tid] = busy.get(ev.tid, 0.0) + ev.dur
        n[ev.tid] = n.get(ev.tid, 0) + 1
    span_total = sum(ev.dur for ev in tracer.spans("superstep"))
    lines = ["workers:",
             f"  {'worker':<16}{'blocks':>8}{'busy':>10}{'util':>7}"]
    for tid in sorted(busy, key=_tid_sort_key):
        util = busy[tid] / span_total if span_total > 0 else 0.0
        lines.append(
            f"  {tid:<16}{n[tid]:>8}{_fmt_time(busy[tid]):>10}{util:>6.0%}"
        )
    return lines


def format_summary(tracer) -> str:
    """Human-readable profile of everything the tracer collected."""
    sections = [
        _pass_table(tracer),
        _instr_table(tracer),
        _superstep_table(tracer),
        _worker_table(tracer),
    ]
    body = "\n\n".join("\n".join(s) for s in sections if s)
    return body if body else "(no trace events collected)"
