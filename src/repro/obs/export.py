"""Trace exporters: Chrome trace-event JSON and a summary table.

The Chrome exporter emits the `trace-event format`__ consumed by Perfetto
and ``chrome://tracing``: one ``"X"`` (complete) event per span, ``"i"``
instants, ``"C"`` counter samples, and ``"M"`` metadata events naming the
worker threads.  Timestamps are microseconds from the tracer's epoch.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

The summary exporter (:func:`format_summary`, the CLI's ``--profile``)
renders three tables: compiler passes, per-function instruction counts,
and runtime super-steps with per-worker utilization.

:func:`format_metrics` / :func:`format_report` render a
:class:`repro.obs.metrics.MetricsRegistry` (or a saved metrics JSON
document) as the run report: compiler-pass totals, the hot-op profiler
table, scheduler-health distributions, per-worker load shares, and the
per-step convergence curve.  ``python -m repro.obs report`` is the CLI
entry point.
"""

from __future__ import annotations

import json


def chrome_trace(tracer) -> dict:
    """Render a tracer's events as a Chrome trace-event JSON object."""
    tids: dict[str, int] = {}
    out: list[dict] = []
    for ev in tracer.events:
        if ev.tid not in tids:
            tids[ev.tid] = len(tids) + 1
    for label, tid in tids.items():
        out.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "args": {"name": label},
        })
    for ev in tracer.events:
        rec = {
            "name": ev.name,
            "cat": ev.cat or "repro",
            "ph": ev.ph,
            "ts": ev.ts * 1e6,
            "pid": 1,
            "tid": tids[ev.tid],
            "args": ev.args,
        }
        if ev.ph == "X":
            rec["dur"] = ev.dur * 1e6
        elif ev.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
        out.append(rec)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer, path: str) -> str:
    """Write the Chrome trace-event JSON file; returns the path."""
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(chrome_trace(tracer), fp, default=float)
    return path


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _pass_table(tracer) -> list[str]:
    order: list[str] = []
    total: dict[str, float] = {}
    count: dict[str, int] = {}
    for ev in tracer.spans("pass"):
        if ev.name not in total:
            order.append(ev.name)
            total[ev.name] = 0.0
            count[ev.name] = 0
        total[ev.name] += ev.dur
        count[ev.name] += 1
    if not order:
        return []
    lines = ["compiler passes:", f"  {'pass':<18}{'calls':>6}{'time':>10}"]
    for name in order:
        lines.append(f"  {name:<18}{count[name]:>6}{_fmt_time(total[name]):>10}")
    lines.append(f"  {'total':<18}{'':>6}{_fmt_time(sum(total.values())):>10}")
    return lines


def _instr_table(tracer) -> list[str]:
    counts: dict[str, dict[str, int]] = {}
    removed: dict[str, int] = {}
    for ev in tracer.events:
        if ev.name == "instr-count" and ev.cat == "count":
            counts.setdefault(ev.args["func"], {})[ev.args["ir"]] = ev.args["value"]
        elif ev.name == "value-numbering" and ev.cat == "pass":
            fn = ev.args.get("func")
            removed[fn] = removed.get(fn, 0) + ev.args.get("removed", 0)
    if not counts:
        return []
    lines = ["instruction counts (HighIR → MidIR → LowIR):",
             f"  {'function':<12}{'high':>6}{'mid':>6}{'low':>6}{'VN-removed':>12}"]
    for fn, c in counts.items():
        lines.append(
            f"  {fn:<12}{c.get('high', 0):>6}{c.get('mid', 0):>6}"
            f"{c.get('low', 0):>6}{removed.get(fn, 0):>12}"
        )
    return lines


def _superstep_table(tracer) -> list[str]:
    steps = tracer.spans("superstep")
    if not steps:
        return []
    lines = ["super-steps:",
             f"  {'step':>4}{'time':>10}{'blocks':>8}{'active':>8}"
             f"{'stable':>8}{'died':>8}"]
    for ev in steps:
        a = ev.args
        lines.append(
            f"  {a.get('step', 0):>4}{_fmt_time(ev.dur):>10}{a.get('blocks', 0):>8}"
            f"{a.get('active', 0):>8}{a.get('stable', 0):>8}{a.get('died', 0):>8}"
        )
    return lines


def _tid_sort_key(tid: str) -> tuple:
    """Natural ordering for worker labels: worker-2 before worker-10.

    Block spans carry the same ``worker-<i>`` labels whether the worker
    was a thread or a forked process, so one table serves all backends.
    """
    head, _, tail = tid.rpartition("-")
    if tail.isdigit():
        return (head, int(tail))
    return (tid, -1)


def _worker_table(tracer) -> list[str]:
    blocks = tracer.spans("block")
    if not blocks:
        return []
    busy: dict[str, float] = {}
    n: dict[str, int] = {}
    for ev in blocks:
        busy[ev.tid] = busy.get(ev.tid, 0.0) + ev.dur
        n[ev.tid] = n.get(ev.tid, 0) + 1
    span_total = sum(ev.dur for ev in tracer.spans("superstep"))
    lines = ["workers:",
             f"  {'worker':<16}{'blocks':>8}{'busy':>10}{'util':>7}"]
    for tid in sorted(busy, key=_tid_sort_key):
        util = busy[tid] / span_total if span_total > 0 else 0.0
        lines.append(
            f"  {tid:<16}{n[tid]:>8}{_fmt_time(busy[tid]):>10}{util:>6.0%}"
        )
    return lines


def format_summary(tracer, metrics=None) -> str:
    """Human-readable profile of everything the tracer collected.

    When a metrics registry (or snapshot) is also given, its op-profiler
    and scheduler-health tables (:func:`format_metrics`) are appended —
    the CLI's ``--profile`` passes the run's registry here.
    """
    pass_table = _pass_table(tracer)
    sections = [
        pass_table,
        _instr_table(tracer),
        _superstep_table(tracer),
        _worker_table(tracer),
    ]
    body = "\n\n".join("\n".join(s) for s in sections if s)
    if metrics is not None:
        # the tracer's pass table (when present) is a superset of the
        # metrics one — don't print both
        mbody = format_metrics(metrics, passes=not pass_table)
        if mbody:
            body = f"{body}\n\n{mbody}" if body else mbody
    return body if body else "(no trace events collected)"


# -- metrics-registry rendering ----------------------------------------------


def _snap_of(metrics) -> dict:
    """Accept a registry, a snapshot dict, or a metrics JSON document."""
    if hasattr(metrics, "snapshot"):
        return metrics.snapshot()
    return metrics


def _group_ops(counters: dict) -> dict[str, dict[str, float]]:
    """Collect ``op.<name>.<field>`` counters into per-op dicts."""
    ops: dict[str, dict[str, float]] = {}
    for key, v in counters.items():
        if not key.startswith("op."):
            continue
        name, _, field = key[3:].rpartition(".")
        if name:
            ops.setdefault(name, {})[field] = v
    return ops


def _hot_op_table(counters: dict) -> list[str]:
    """The op-profiler table: runtime kernels ranked by accumulated time.

    Op names are the IR vocabulary the generated code calls
    (``rt.conv_contract`` etc.), so rows map directly to LowIR ops."""
    ops = _group_ops(counters)
    if not ops:
        return []
    total = sum(c.get("seconds", 0.0) for c in ops.values())
    lines = ["hot ops:",
             f"  {'op':<16}{'calls':>9}{'lanes':>12}{'time':>10}"
             f"{'share':>7}  {'notes'}"]
    for name in sorted(ops, key=lambda n: -ops[n].get("seconds", 0.0)):
        c = ops[name]
        secs = c.get("seconds", 0.0)
        share = secs / total if total > 0 else 0.0
        notes = ""
        hits = c.get("memo_hits")
        if hits is not None:
            tries = hits + c.get("memo_misses", 0)
            if tries:
                notes = f"memo {hits / tries:.0%}"
        lines.append(
            f"  {name:<16}{int(c.get('calls', 0)):>9}"
            f"{int(c.get('lanes', 0)):>12}{_fmt_time(secs):>10}"
            f"{share:>6.0%}  {notes}".rstrip()
        )
    scratch = counters.get("mem.scratch.allocated", 0) + counters.get(
        "mem.scratch.reused", 0)
    if scratch:
        reuse = counters.get("mem.scratch.reused", 0) / scratch
        lines.append(f"  scratch-pool reuse: {reuse:.0%} "
                     f"({int(scratch)} requests)")
    checked = counters.get("guard.checked", 0)
    if checked:
        skipped = counters.get("guard.skipped", 0)
        lines.append(f"  uniform-branch guards: {int(checked)} checked, "
                     f"{int(skipped)} skipped ({skipped / checked:.0%})")
    return lines


def _pass_metrics_table(counters: dict) -> list[str]:
    """Compiler-pass table from folded ``pass.<name>.seconds`` counters."""
    rows = []
    for key, secs in counters.items():
        if key.startswith("pass.") and key.endswith(".seconds"):
            name = key[len("pass."):-len(".seconds")]
            calls = counters.get(f"pass.{name}.calls", 0)
            rows.append((name, int(calls), secs))
    if not rows:
        return []
    lines = ["compiler passes:", f"  {'pass':<18}{'calls':>6}{'time':>10}"]
    for name, calls, secs in rows:
        lines.append(f"  {name:<18}{calls:>6}{_fmt_time(secs):>10}")
    lines.append(
        f"  {'total':<18}{'':>6}{_fmt_time(sum(r[2] for r in rows)):>10}")
    return lines


def _hist_line(name: str, hd: dict) -> str:
    from repro.obs.metrics import Histogram

    h = Histogram.from_dict(hd) if isinstance(hd, dict) else hd
    return (f"  {name:<28}{h.count:>7}"
            f"{_fmt_time(h.mean):>10}{_fmt_time(h.percentile(50)):>10}"
            f"{_fmt_time(h.percentile(95)):>10}{_fmt_time(h.max):>10}")


def _sched_health_table(snap: dict) -> list[str]:
    counters = snap.get("counters", {})
    hists = snap.get("histograms", {})
    if not counters.get("sched.supersteps") and not hists:
        return []
    lines = ["scheduler health:"]
    steps = counters.get("sched.supersteps", 0)
    if steps:
        lines.append(
            f"  super-steps: {int(steps)}   strand updates: "
            f"{int(counters.get('strands.updated', 0))}   stabilized: "
            f"{int(counters.get('strands.stabilized', 0))}   died: "
            f"{int(counters.get('strands.died', 0))}"
        )
    timing = [(n, hd) for n, hd in hists.items()
              if n in ("sched.step_seconds", "sched.block_seconds",
                       "sched.queue_wait_seconds")]
    if timing:
        lines.append(f"  {'distribution':<28}{'n':>7}{'mean':>10}"
                     f"{'p50':>10}{'p95':>10}{'max':>10}")
        for name, hd in timing:
            lines.append(_hist_line(name, hd))
    imb = hists.get("sched.imbalance")
    if imb:
        from repro.obs.metrics import Histogram

        h = Histogram.from_dict(imb) if isinstance(imb, dict) else imb
        lines.append(
            f"  load imbalance (max/mean busy): p50 {h.percentile(50):.2f}, "
            f"p95 {h.percentile(95):.2f}, worst {h.max:.2f}"
        )
    return lines


def _worker_metrics_table(counters: dict) -> list[str]:
    busy: dict[str, float] = {}
    blocks: dict[str, float] = {}
    for key, v in counters.items():
        if key.startswith("sched.worker.") and key.endswith(".busy_seconds"):
            busy[key[len("sched.worker."):-len(".busy_seconds")]] = v
        elif key.startswith("sched.worker.") and key.endswith(".blocks"):
            blocks[key[len("sched.worker."):-len(".blocks")]] = v
    if len(busy) < 2:  # a single worker's share is always 100%
        return []
    total = sum(busy.values())
    lines = ["workers:", f"  {'worker':<16}{'blocks':>8}{'busy':>10}{'share':>8}"]
    for label in sorted(busy, key=_tid_sort_key):
        share = busy[label] / total if total > 0 else 0.0
        lines.append(f"  {label:<16}{int(blocks.get(label, 0)):>8}"
                     f"{_fmt_time(busy[label]):>10}{share:>7.0%}")
    return lines


def _convergence_table(series: dict, limit: int = 40) -> list[str]:
    """The per-step convergence curve from the ``steps`` series."""
    rows = series.get("steps") or []
    if not rows:
        return []
    lines = ["convergence:",
             f"  {'step':>4}{'time':>10}{'blocks':>8}{'active':>8}"
             f"{'stable':>8}{'died':>8}"]
    shown = rows if len(rows) <= limit else rows[: limit // 2] + rows[-limit // 2:]
    prev_step = None
    for r in shown:
        if prev_step is not None and r.get("step", 0) != prev_step + 1:
            lines.append(f"  {'...':>4}")
        prev_step = r.get("step", 0)
        lines.append(
            f"  {r.get('step', 0):>4}{_fmt_time(r.get('seconds', 0.0)):>10}"
            f"{r.get('blocks', 0):>8}{r.get('active', 0):>8}"
            f"{r.get('stable', 0):>8}{r.get('died', 0):>8}"
        )
    return lines


def format_metrics(metrics, passes: bool = True) -> str:
    """Human-readable rendering of a metrics registry / snapshot / doc.

    ``passes=False`` drops the compiler-pass table (``format_summary``
    uses it when the tracer already rendered a richer one).
    """
    snap = _snap_of(metrics)
    counters = snap.get("counters", {})
    sections = [
        _pass_metrics_table(counters) if passes else None,
        _hot_op_table(counters),
        _sched_health_table(snap),
        _worker_metrics_table(counters),
        _convergence_table(snap.get("series", {})),
    ]
    body = "\n\n".join("\n".join(s) for s in sections if s)
    return body


def format_report(doc: dict) -> str:
    """The ``python -m repro.obs report`` body: meta header + tables."""
    lines = []
    meta = doc.get("meta", {})
    if meta:
        lines.append("run metadata:")
        for key in sorted(meta):
            lines.append(f"  {key}: {meta[key]}")
    body = format_metrics(doc)
    if body:
        lines.append("")
        lines.append(body)
    out = "\n".join(lines).strip()
    return out if out else "(no metrics recorded)"
