"""repro — a Python reproduction of *Diderot: A Parallel DSL for Image
Analysis and Visualization* (Chiw, Kindlmann, Reppy, Samuels, Seltzer,
PLDI 2012).

Quick start::

    import repro

    prog = repro.compile_program('''
        image(3)[] img = load("volume.nrrd");
        field#2(3)[] F = img ⊛ bspln3;
        strand S (int i) {
            output real v = 0.0;
            update { v = F([real(i), 0.0, 0.0]); stabilize; }
        }
        initially [ S(i) | i in 0 .. 9 ];
    ''')
    prog.bind_image("img", my_image)     # or let load(...) read the NRRD
    result = prog.run()
    print(result.outputs["v"])

Packages
--------
:mod:`repro.core`
    The Diderot compiler (the paper's contribution): front-end, three
    SSA-style IRs, field normalization, probe synthesis, domain-specific
    optimization, NumPy code generation.
:mod:`repro.runtime`
    Bulk-synchronous strand execution: sequential, threaded, and
    simulated-multicore schedulers.
:mod:`repro.fields`, :mod:`repro.kernels`, :mod:`repro.image`,
:mod:`repro.tensors`, :mod:`repro.nrrd`
    The substrates: continuous tensor fields by separable convolution,
    piecewise-polynomial kernels with symbolic derivatives, oriented
    images, small-tensor math with closed-form eigensystems, and the NRRD
    file format.
:mod:`repro.gage`
    A Teem/`gage`-style per-point probing library — the paper's baseline.
:mod:`repro.programs`, :mod:`repro.baselines`, :mod:`repro.data`
    The paper's four benchmark programs, their hand-written baselines, and
    synthetic stand-ins for the paper's datasets.
"""

from repro.core.driver import OptOptions, compile_file, compile_program, compile_to_source
from repro.fields import Field, convolve
from repro.image import Image, Orientation
from repro.kernels import KERNELS, Kernel, bspln3, bspln5, ctmr, tent
from repro.nrrd import read_nrrd, write_nrrd
from repro.runtime.program import Program, RunResult

__version__ = "1.0.0"

__all__ = [
    "KERNELS",
    "Field",
    "Image",
    "Kernel",
    "OptOptions",
    "Orientation",
    "Program",
    "RunResult",
    "bspln3",
    "bspln5",
    "compile_file",
    "compile_program",
    "compile_to_source",
    "convolve",
    "ctmr",
    "read_nrrd",
    "tent",
    "write_nrrd",
]
