"""The built-in kernel library (paper §3.1).

``tent``, ``ctmr``, and ``bspln3`` are the kernels the paper names; their
piece polynomials are the textbook formulas (Bartels/Beatty/Barsky, cited as
[3] in the paper).  Uniform B-splines of any odd degree are also constructed
symbolically from the truncated-power definition, which both provides the
``bspln5`` extension kernel and cross-checks the hand-written ``bspln3``
coefficients in the tests.
"""

from __future__ import annotations

import math

from repro.kernels.piecewise import Kernel, Polynomial

#: C0, support 1: linear interpolation ("tent" by shape).
tent = Kernel(
    "tent",
    support=1,
    continuity=0,
    pieces=[
        Polynomial.of([1.0, 1.0]),   # [-1, 0): 1 + x
        Polynomial.of([1.0, -1.0]),  # [ 0, 1): 1 - x
    ],
)

#: C1, support 2: interpolating Catmull-Rom cubic spline.
ctmr = Kernel(
    "ctmr",
    support=2,
    continuity=1,
    pieces=[
        Polynomial.of([2.0, 4.0, 2.5, 0.5]),    # [-2,-1): 2 + 4x + 5/2 x^2 + 1/2 x^3
        Polynomial.of([1.0, 0.0, -2.5, -1.5]),  # [-1, 0): 1 - 5/2 x^2 - 3/2 x^3
        Polynomial.of([1.0, 0.0, -2.5, 1.5]),   # [ 0, 1): 1 - 5/2 x^2 + 3/2 x^3
        Polynomial.of([2.0, -4.0, 2.5, -0.5]),  # [ 1, 2): 2 - 4x + 5/2 x^2 - 1/2 x^3
    ],
)


def bspline(degree: int) -> Kernel:
    """The centered uniform B-spline basis kernel of odd ``degree``.

    Built from the truncated-power-function definition

    ``B_n(x) = (1/n!) * sum_k (-1)^k C(n+1, k) * (x + (n+1)/2 - k)_+^n``

    whose activation boundaries fall on integers for odd ``n``, so each unit
    interval gets a single polynomial.  ``bspline(1)`` equals ``tent`` and
    ``bspline(3)`` equals ``bspln3``.
    """
    if degree < 1 or degree % 2 == 0:
        raise ValueError("bspline construction requires an odd degree >= 1")
    n = degree
    s = (n + 1) // 2
    x_to_n = Polynomial.of([0.0] * n + [1.0])
    pieces = []
    for j in range(-s, s):
        acc = Polynomial.of([0.0])
        for k in range(0, n + 2):
            shift = s - k  # (n+1)/2 - k
            if j + shift >= 0:  # term is active on [j, j+1)
                term = x_to_n.shift(shift).scale(((-1.0) ** k) * math.comb(n + 1, k))
                acc = acc.add(term)
        pieces.append(acc.scale(1.0 / math.factorial(n)))
    return Kernel(f"bspln{n}", support=s, continuity=n - 1, pieces=pieces)


#: C2, support 2: uniform cubic B-spline basis (non-interpolating).
bspln3 = Kernel(
    "bspln3",
    support=2,
    continuity=2,
    pieces=[
        Polynomial.of([4.0 / 3.0, 2.0, 1.0, 1.0 / 6.0]),    # [-2,-1): (2+x)^3 / 6
        Polynomial.of([2.0 / 3.0, 0.0, -1.0, -0.5]),        # [-1, 0)
        Polynomial.of([2.0 / 3.0, 0.0, -1.0, 0.5]),         # [ 0, 1)
        Polynomial.of([4.0 / 3.0, -2.0, 1.0, -1.0 / 6.0]),  # [ 1, 2): (2-x)^3 / 6
    ],
)

#: C4, support 3: uniform quintic B-spline (extension beyond the paper).
bspln5 = bspline(5)

#: Kernels available to Diderot programs by name.
KERNELS: dict[str, Kernel] = {
    "tent": tent,
    "ctmr": ctmr,
    "bspln3": bspln3,
    "bspln5": bspln5,
}


def kernel_by_name(name: str) -> Kernel:
    """Look up a built-in kernel; raises ``KeyError`` with the known names."""
    try:
        return KERNELS[name]
    except KeyError:
        known = ", ".join(sorted(KERNELS))
        raise KeyError(f"unknown kernel {name!r}; built-ins are: {known}") from None
