"""Piecewise-polynomial kernels and exact symbolic differentiation.

A :class:`Kernel` is a function ``h(x)`` that is zero outside ``(-s, s)``
(``s`` = integer support radius) and polynomial on every unit interval
``[j, j+1)`` for ``-s <= j < s``.  All the machinery the compiler needs —
evaluation, symbolic derivatives, and the per-offset *weight polynomials*
that probe synthesis expands into Horner-form arithmetic (paper §5.3) — lives
here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Polynomial:
    """A univariate polynomial with float coefficients, lowest degree first."""

    coeffs: tuple[float, ...]

    @staticmethod
    def of(coeffs) -> "Polynomial":
        """Build a polynomial, trimming trailing (high-degree) zeros."""
        cs = [float(c) for c in coeffs]
        while len(cs) > 1 and cs[-1] == 0.0:
            cs.pop()
        if not cs:
            cs = [0.0]
        return Polynomial(tuple(cs))

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def __call__(self, x, out=None):
        """Evaluate by Horner's rule; ``x`` may be an array.

        Accumulates in place (``out *= x; out += c``) — into ``out`` when
        given (any writeable array of ``x``'s shape, e.g. a column of a
        preallocated weight table) instead of allocating one temporary per
        coefficient.
        """
        x = np.asarray(x)
        if out is None:
            out = np.empty(x.shape, dtype=np.result_type(x, np.float64))
        out.fill(self.coeffs[-1])
        for c in reversed(self.coeffs[:-1]):
            out *= x
            out += c
        return out

    def derivative(self) -> "Polynomial":
        """Symbolic derivative."""
        if self.degree == 0:
            return Polynomial.of([0.0])
        return Polynomial.of([k * c for k, c in enumerate(self.coeffs)][1:])

    def shift(self, a: float) -> "Polynomial":
        """The composition ``p(x + a)`` expanded in powers of ``x``.

        Used to turn a kernel piece (a polynomial in the kernel argument) into
        a *weight polynomial* in the in-cell fraction ``f``.
        """
        n = self.degree
        out = [0.0] * (n + 1)
        for k, c in enumerate(self.coeffs):
            # c * (x + a)^k = c * sum_j C(k,j) a^(k-j) x^j
            for j in range(k + 1):
                out[j] += c * math.comb(k, j) * (a ** (k - j))
        return Polynomial.of(out)

    def scale(self, s: float) -> "Polynomial":
        return Polynomial.of([s * c for c in self.coeffs])

    def add(self, other: "Polynomial") -> "Polynomial":
        n = max(len(self.coeffs), len(other.coeffs))
        a = list(self.coeffs) + [0.0] * (n - len(self.coeffs))
        b = list(other.coeffs) + [0.0] * (n - len(other.coeffs))
        return Polynomial.of([x + y for x, y in zip(a, b)])

    def is_zero(self) -> bool:
        return all(c == 0.0 for c in self.coeffs)


class Kernel:
    """A piecewise-polynomial reconstruction kernel.

    Parameters
    ----------
    name:
        Identifier used in Diderot source (``tent``, ``ctmr``, ...) and in
        diagnostics; derivatives get a ``'`` suffix per level.
    support:
        Integer support radius ``s``; the kernel is zero outside ``(-s, s)``.
    continuity:
        The ``k`` of the Diderot type ``kernel#k``: the number of continuous
        derivatives.  Differentiation decreases it (Figure 2's typing rules);
        it may become negative for kernels differentiated past smoothness,
        which the type checker rejects at the source level.
    pieces:
        ``2*s`` polynomials; ``pieces[j + s]`` is the restriction of ``h`` to
        ``[j, j+1)``.
    """

    def __init__(self, name: str, support: int, continuity: int, pieces: list[Polynomial]):
        if support < 1:
            raise ValueError("kernel support radius must be >= 1")
        if len(pieces) != 2 * support:
            raise ValueError(
                f"kernel {name!r}: expected {2 * support} pieces, got {len(pieces)}"
            )
        self.name = name
        self.support = support
        self.continuity = continuity
        self.pieces = list(pieces)
        self._deriv: Kernel | None = None
        self._wpolys: list[Polynomial] | None = None

    def __repr__(self) -> str:
        return f"Kernel({self.name}, support={self.support}, C{self.continuity})"

    def piece_for(self, j: int) -> Polynomial:
        """The polynomial on ``[j, j+1)``; zero outside the support."""
        if -self.support <= j < self.support:
            return self.pieces[j + self.support]
        return Polynomial.of([0.0])

    def __call__(self, x):
        """Evaluate ``h(x)`` pointwise; ``x`` may be an array."""
        x = np.asarray(x, dtype=np.float64)
        j = np.floor(x).astype(np.int64)
        out = np.zeros(x.shape, dtype=np.float64)
        for idx in range(-self.support, self.support):
            mask = j == idx
            if np.any(mask):
                out[mask] = self.pieces[idx + self.support](x[mask])
        # x == support falls outside every [j, j+1) piece; it is 0 by support.
        return out

    def derivative(self, levels: int = 1) -> "Kernel":
        """The ``levels``-th symbolic derivative, cached per level."""
        if levels < 0:
            raise ValueError("derivative levels must be >= 0")
        k: Kernel = self
        for _ in range(levels):
            if k._deriv is None:
                k._deriv = Kernel(
                    k.name + "'",
                    k.support,
                    k.continuity - 1,
                    [p.derivative() for p in k.pieces],
                )
            k = k._deriv
        return k

    def weight_polynomials(self) -> list[Polynomial]:
        """Per-offset weight polynomials in the in-cell fraction ``f``.

        Probing at image-space position ``n + f`` (``n`` integer, ``0<=f<1``)
        sums image samples at offsets ``i = 1-s .. s`` with weights
        ``h(f - i)``.  Since ``f - i`` always lands in piece ``[-i, -i+1)``,
        each weight is a single polynomial in ``f``:

        ``w_i(f) = piece_{-i}(f - i)``

        Returned in offset order ``[1-s, ..., s]`` (length ``2*s``).  These
        are what the MidIR→LowIR translation expands into Horner arithmetic.
        The list is built once per kernel and cached (the shift expansion
        is pure and the runtime evaluates it every block otherwise).
        """
        if self._wpolys is None:
            self._wpolys = [self.piece_for(-i).shift(-i) for i in self.offsets()]
        return self._wpolys

    def offsets(self) -> range:
        """Sample offsets contributing to a probe: ``1-s .. s`` inclusive."""
        return range(1 - self.support, self.support + 1)

    def weights(self, f: np.ndarray) -> np.ndarray:
        """Evaluate all ``2*s`` weight polynomials at fractions ``f``.

        ``f`` has any shape; the result appends one axis of length ``2*s``
        in the same offset order as :meth:`offsets`.  Each polynomial is
        evaluated directly into its column of one preallocated table (no
        per-polynomial temporaries, no final stack copy).
        """
        f = np.asarray(f)
        polys = self.weight_polynomials()
        out = np.empty(f.shape + (len(polys),),
                       dtype=np.result_type(f, np.float64))
        for i, p in enumerate(polys):
            p(f, out=out[..., i])
        return out

    # -- diagnostics used by tests and by the field API ---------------------

    def is_interpolating(self, tol: float = 1e-12) -> bool:
        """True if ``h(0) = 1`` and ``h(j) = 0`` for integer ``j != 0``."""
        if abs(float(self(0.0)) - 1.0) > tol:
            return False
        for j in range(-self.support + 1, self.support):
            if j != 0 and abs(float(self(float(j)))) > tol:
                return False
        return True

    def partition_of_unity_error(self, samples: int = 101) -> float:
        """Max deviation of ``sum_i h(f - i)`` from 1 over ``f`` in [0,1)."""
        f = np.linspace(0.0, 1.0, samples, endpoint=False)
        total = self.weights(f).sum(axis=-1)
        return float(np.max(np.abs(total - 1.0)))
