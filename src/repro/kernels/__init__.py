"""Separable convolution kernels (paper §2, §3.1).

Diderot reconstructs continuous fields from discrete images by separable
convolution with piecewise-polynomial kernels.  A ``kernel#k`` value is a
C^k kernel; the built-ins from the paper are

* ``tent``   — C⁰ linear interpolation,
* ``ctmr``   — C¹ interpolating Catmull-Rom cubic spline,
* ``bspln3`` — C² (non-interpolating) uniform cubic B-spline.

We additionally provide ``bspln5`` (C⁴ quintic B-spline), constructed
symbolically from the truncated-power-function definition, for programs that
need more continuous derivatives than the paper's examples.

Because every kernel is piecewise polynomial, derivatives are computed
symbolically (paper §5.3: "The kernels that Diderot supports are all
piecewise polynomial, so it is straightforward to symbolically differentiate
them").
"""

from repro.kernels.piecewise import Kernel, Polynomial
from repro.kernels.library import KERNELS, bspln3, bspln5, ctmr, kernel_by_name, tent

__all__ = [
    "KERNELS",
    "Kernel",
    "Polynomial",
    "bspln3",
    "bspln5",
    "ctmr",
    "kernel_by_name",
    "tent",
]
