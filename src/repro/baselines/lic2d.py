"""lic2d baseline: line integral convolution via gage.

Midpoint-method streamline integration with per-point probes of the
vector field and the noise texture — two probing contexts, four probes
per integration step.
"""

from __future__ import annotations

import numpy as np

from repro.gage import Context
from repro.image import Image
from repro.kernels import ctmr, tent


def run(
    vectors: Image,
    rand: Image,
    res_u: int = 250,
    res_v: int = 250,
    h: float = 0.005,
    step_num: int = 20,
    extent: float = 0.75,
    dtype=np.float64,
) -> np.ndarray:
    """Compute the LIC gray image; returns (res_v, res_u)."""
    vctx = Context(vectors, dtype=dtype)
    vctx.kernel_set(0, ctmr)
    vctx.query_on("vector")
    vctx.update()
    vec_buf = vctx.answer("vector")

    rctx = Context(rand, dtype=dtype)
    rctx.kernel_set(0, tent)
    rctx.query_on("value")
    rctx.update()
    r_buf = rctx.answer("value")

    def vec_at(p: np.ndarray) -> np.ndarray:
        vctx.probe(p)
        return vec_buf.copy()

    def noise_at(p: np.ndarray) -> float:
        rctx.probe(p)
        return float(r_buf)

    out = np.zeros((res_v, res_u), dtype=dtype)
    for vi in range(res_v):
        for ui in range(res_u):
            # BEGIN CORE
            pos0 = np.array(
                [extent * (2.0 * ui / (res_u - 1) - 1.0),
                 extent * (2.0 * vi / (res_v - 1) - 1.0)],
                dtype=dtype,
            )
            forw = pos0.copy()
            back = pos0.copy()
            total = noise_at(pos0)
            for _ in range(step_num):
                forw = forw + h * vec_at(forw + 0.5 * h * vec_at(forw))
                back = back - h * vec_at(back - 0.5 * h * vec_at(back))
                total += noise_at(forw) + noise_at(back)
            v0 = vec_at(pos0)
            total *= np.sqrt(v0 @ v0) / (1 + 2 * step_num)
            out[vi, ui] = total
            # END CORE
    return out
