"""Hand-written baseline implementations — the paper's "Teem" column.

These are the comparison programs of Table 1/Table 2: the same four
algorithms written by hand against the :mod:`repro.gage` probing-context
API, in the per-point style a C Teem program uses.  The paper's point —
that the context/buffer API costs both lines of code and per-probe
overhead relative to Diderot's compiled probes — carries over directly.

Each module provides ``run(...)`` mirroring the corresponding Diderot
program's inputs and outputs, and delimits its computational core (the
analogue of the Diderot ``update`` method) with ``# BEGIN CORE`` /
``# END CORE`` markers so the Table 1 line counter can find it.
"""

from repro.baselines import illust_vr, lic2d, ridge3d, vr_lite

ALL = {
    "vr-lite": vr_lite,
    "illust-vr": illust_vr,
    "lic2d": lic2d,
    "ridge3d": ridge3d,
}

__all__ = ["ALL", "illust_vr", "lic2d", "ridge3d", "vr_lite"]
