"""illust-vr baseline: curvature-shaded volume rendering via gage.

Demonstrates the paper's §4.1 point from the other side: the curvature
formulas that translate directly from the whiteboard in Diderot require
explicit buffer juggling and index-level matrix code here.
"""

from __future__ import annotations

import numpy as np

from repro.gage import Context
from repro.image import Image
from repro.kernels import bspln3, tent


def run(
    img: Image,
    xfer: Image,
    res_u: int = 100,
    res_v: int = 100,
    step_sz: float = 0.5,
    eye=(0.0, 0.0, 90.0),
    orig=(-15.0, -15.0, 45.0),
    c_vec=(0.3, 0.0, 0.0),
    r_vec=(0.0, 0.3, 0.0),
    opac_min: float = 350.0,
    opac_max: float = 900.0,
    t_max: float = 120.0,
    dtype=np.float64,
) -> np.ndarray:
    """Render the volume with curvature-based color; (res_v, res_u, 3)."""
    eye = np.asarray(eye, dtype=dtype)
    orig = np.asarray(orig, dtype=dtype)
    c_vec = np.asarray(c_vec, dtype=dtype)
    r_vec = np.asarray(r_vec, dtype=dtype)

    ctx = Context(img, dtype=dtype)
    ctx.kernel_set(0, bspln3)
    ctx.kernel_set(1, bspln3.derivative())
    ctx.kernel_set(2, bspln3.derivative(2))
    ctx.query_on("value")
    ctx.query_on("gradient")
    ctx.query_on("hessian")
    ctx.update()
    val_buf = ctx.answer("value")
    grad_buf = ctx.answer("gradient")
    hess_buf = ctx.answer("hessian")

    cmap = Context(xfer, dtype=dtype)
    cmap.kernel_set(0, tent)
    cmap.query_on("value")
    cmap.update()
    rgb_buf = cmap.answer("value")

    ident = np.eye(3, dtype=dtype)
    out = np.zeros((res_v, res_u, 3), dtype=dtype)
    for vi in range(res_v):
        for ui in range(res_u):
            # BEGIN CORE
            pos = orig + vi * r_vec + ui * c_vec
            direc = pos - eye
            direc = direc / np.sqrt(direc @ direc)
            t = 0.0
            transp = 1.0
            rgb = np.zeros(3, dtype=dtype)
            while t <= t_max:
                pos = pos + step_sz * direc
                t = t + step_sz
                if ctx.probe(pos):
                    val = float(val_buf)
                    if val > opac_min:
                        if val > opac_max:
                            opac = 1.0
                        else:
                            opac = (val - opac_min) / (opac_max - opac_min)
                        grad = -grad_buf.copy()
                        gmag = np.sqrt(grad @ grad)
                        if gmag > 0.0:
                            norm = grad / gmag
                        else:
                            norm = np.zeros(3, dtype=dtype)
                        hess = hess_buf.copy()
                        proj = ident - np.outer(norm, norm)
                        geom = -(proj @ hess @ proj) / gmag if gmag > 0 else np.zeros((3, 3), dtype=dtype)
                        fro2 = float(np.sum(geom * geom))
                        tr = float(np.trace(geom))
                        disc = np.sqrt(max(0.0, 2.0 * fro2 - tr * tr))
                        k1 = (tr + disc) / 2.0
                        k2 = (tr - disc) / 2.0
                        cpos = np.array(
                            [max(-1.0, min(0.99, 6.0 * k1)),
                             max(-1.0, min(0.99, 6.0 * k2))],
                            dtype=dtype,
                        )
                        cmap.probe(cpos)
                        mat_rgb = rgb_buf.copy()
                        diff = max(0.0, float(-direc @ norm))
                        rgb += transp * opac * diff * mat_rgb
                        transp *= 1.0 - opac
            out[vi, ui] = rgb
            # END CORE
    return out
