"""ridge3d baseline: particle-based vessel-ridge detection via gage.

Newton iteration in the Hessian's cross-sectional eigenplane; the gage
context supplies gradient, Hessian eigenvalues, and eigenvectors per
probe (three answer buffers to copy from, vs Diderot's four expressions).
"""

from __future__ import annotations

import numpy as np

from repro.gage import Context
from repro.image import Image
from repro.kernels import bspln3


def run(
    img: Image,
    grid_res: int = 12,
    grid_ext: float = 12.0,
    epsilon: float = 0.001,
    max_step: float = 1.0,
    steps_max: int = 30,
    strength_min: float = 30.0,
    dtype=np.float64,
) -> np.ndarray:
    """Return the converged particle positions, shape (n_stable, 3)."""
    ctx = Context(img, dtype=dtype)
    ctx.kernel_set(0, bspln3)
    ctx.kernel_set(1, bspln3.derivative())
    ctx.kernel_set(2, bspln3.derivative(2))
    ctx.query_on("gradient")
    ctx.query_on("hesseval")
    ctx.query_on("hessevec")
    ctx.update()
    grad_buf = ctx.answer("gradient")
    lam_buf = ctx.answer("hesseval")
    evec_buf = ctx.answer("hessevec")

    stable: list[np.ndarray] = []
    coords = [
        grid_ext * (2.0 * i / (grid_res - 1) - 1.0) for i in range(grid_res)
    ]
    for x0 in coords:
        for y0 in coords:
            for z0 in coords:
                # BEGIN CORE
                pos = np.array([x0, y0, z0], dtype=dtype)
                for _ in range(steps_max + 1):
                    if not ctx.probe(pos):
                        break  # left the field domain: particle dies
                    grad = grad_buf.copy()
                    lam = lam_buf.copy()
                    evec = evec_buf.copy()
                    if lam[1] > -strength_min:
                        break  # not vessel-like here: particle dies
                    e2, e3 = evec[1], evec[2]
                    delta = (
                        -(float(grad @ e2) / lam[1]) * e2
                        - (float(grad @ e3) / lam[2]) * e3
                    )
                    dlen = np.sqrt(delta @ delta)
                    if dlen > max_step:
                        delta = max_step * delta / dlen
                    if dlen < epsilon:
                        stable.append(pos)
                        break
                    pos = pos + delta
                # END CORE
    if not stable:
        return np.zeros((0, 3), dtype=dtype)
    return np.array(stable, dtype=dtype)
