"""vr-lite baseline: Phong-shaded volume rendering via the gage API.

The probing context is configured once (kernels, query items, update),
then every ray step calls ``ctx.probe`` and copies the value and gradient
out of the answer buffers — the work flow the paper describes for Teem in
§7.
"""

from __future__ import annotations

import numpy as np

from repro.gage import Context
from repro.image import Image
from repro.kernels import bspln3


def run(
    img: Image,
    res_u: int = 100,
    res_v: int = 100,
    step_sz: float = 0.5,
    eye=(0.0, 0.0, 90.0),
    orig=(-15.0, -15.0, 45.0),
    c_vec=(0.3, 0.0, 0.0),
    r_vec=(0.0, 0.3, 0.0),
    opac_min: float = 350.0,
    opac_max: float = 900.0,
    t_max: float = 120.0,
    dtype=np.float64,
) -> np.ndarray:
    """Render the scalar volume; returns a (res_v, res_u) gray image."""
    eye = np.asarray(eye, dtype=dtype)
    orig = np.asarray(orig, dtype=dtype)
    c_vec = np.asarray(c_vec, dtype=dtype)
    r_vec = np.asarray(r_vec, dtype=dtype)

    # set up the probing context: volume, kernels, query, buffers
    ctx = Context(img, dtype=dtype)
    ctx.kernel_set(0, bspln3)
    ctx.kernel_set(1, bspln3.derivative())
    ctx.query_on("value")
    ctx.query_on("gradient")
    ctx.update()
    val_buf = ctx.answer("value")
    grad_buf = ctx.answer("gradient")

    out = np.zeros((res_v, res_u), dtype=dtype)
    for vi in range(res_v):
        for ui in range(res_u):
            # BEGIN CORE
            pos = orig + vi * r_vec + ui * c_vec
            direc = pos - eye
            direc = direc / np.sqrt(direc @ direc)
            t = 0.0
            transp = 1.0
            gray = 0.0
            while t <= t_max:
                pos = pos + step_sz * direc
                t = t + step_sz
                if ctx.probe(pos):
                    val = float(val_buf)
                    if val > opac_min:
                        if val > opac_max:
                            opac = 1.0
                        else:
                            opac = (val - opac_min) / (opac_max - opac_min)
                        grad = grad_buf.copy()
                        gmag = np.sqrt(grad @ grad)
                        if gmag > 0.0:
                            norm = -grad / gmag
                        else:
                            norm = np.zeros(3, dtype=dtype)
                        gray += transp * opac * max(0.0, float(-direc @ norm))
                        transp *= 1.0 - opac
            out[vi, ui] = gray
            # END CORE
    return out
