"""Operator vocabularies for the three IR levels.

Each level is a dict mapping op name → :class:`OpInfo`.  The translation
passes in :mod:`repro.core.xform` replace higher-level ops with their
lower-level equivalents (paper §5.1: "the translations between these
representations replaces higher-level operations with their equivalent
lower-level operations"); :func:`repro.core.ir.base.validate` enforces that
each function only uses its level's vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpInfo:
    """Static op metadata.

    ``foldable`` ops can be constant-folded by contraction when all
    arguments are constants; every op in these vocabularies is pure (no
    side effects), which is what makes value numbering sound everywhere.
    """

    doc: str
    foldable: bool = True


#: ops common to every level: arithmetic, comparisons, small-tensor math.
_COMMON: dict[str, OpInfo] = {
    "const": OpInfo("literal constant; attrs: value"),
    "add": OpInfo("addition (int or tensor)"),
    "sub": OpInfo("subtraction"),
    "mul": OpInfo("multiplication (int*int or scalar*tensor)"),
    "div": OpInfo("division (int trunc-div or tensor/scalar)"),
    "mod": OpInfo("int remainder (C semantics)"),
    "neg": OpInfo("negation"),
    "pow": OpInfo("power (real^int or real^real)"),
    "eq": OpInfo("equality"),
    "ne": OpInfo("inequality"),
    "lt": OpInfo("less-than"),
    "le": OpInfo("less-or-equal"),
    "gt": OpInfo("greater-than"),
    "ge": OpInfo("greater-or-equal"),
    "and": OpInfo("boolean and (strict)"),
    "or": OpInfo("boolean or (strict)"),
    "not": OpInfo("boolean not"),
    "select": OpInfo("strict conditional value: select(cond, a, b)"),
    "dot": OpInfo("inner product u•v / matrix-vector / matrix-matrix"),
    "cross": OpInfo("cross product (3-D) or scalar cross (2-D)"),
    "outer": OpInfo("tensor product u⊗v"),
    "norm": OpInfo("|t|: Euclidean / Frobenius norm; attrs: order"),
    "trace": OpInfo("matrix trace"),
    "det": OpInfo("matrix determinant"),
    "transpose": OpInfo("matrix transpose"),
    "evals": OpInfo("symmetric eigenvalues, descending"),
    "evecs": OpInfo("symmetric eigenvectors (rows), matching evals"),
    "normalize_v": OpInfo("unit vector (zero maps to zero)"),
    "tensor_cons": OpInfo("stack args along a new leading axis"),
    "tensor_index": OpInfo("constant indexing; attrs: indices"),
    "identity": OpInfo("identity matrix; attrs: n"),
    "sqrt": OpInfo("square root"),
    "sin": OpInfo("sine"), "cos": OpInfo("cosine"), "tan": OpInfo("tangent"),
    "asin": OpInfo("arcsine"), "acos": OpInfo("arccosine"), "atan": OpInfo("arctangent"),
    "exp": OpInfo("exponential"), "log": OpInfo("natural log"),
    "atan2": OpInfo("two-argument arctangent"),
    "fmod": OpInfo("floating remainder"),
    "floor": OpInfo("floor"), "ceil": OpInfo("ceiling"),
    "min": OpInfo("minimum"), "max": OpInfo("maximum"), "abs": OpInfo("absolute value"),
    "clamp": OpInfo("clamp(lo, hi, x)"),
    "lerp": OpInfo("lerp(a, b, t)"),
    "int_to_real": OpInfo("int → real cast"),
    "real_to_int": OpInfo("real → int cast (truncating)"),
}

#: HighIR: the desugared source language — fields appear only as probes of
#: normalized convolutions (after field normalization).
HIGH: dict[str, OpInfo] = {
    **_COMMON,
    "probe": OpInfo(
        "probe V ⊛ ∇ⁱh at a world position; attrs: image, kernel, deriv, "
        "out_shape",
        foldable=False,
    ),
    "inside": OpInfo(
        "domain test for a convolution field; attrs: image, support",
        foldable=False,
    ),
}

#: MidIR: "supports vectors, transforms between coordinate spaces, loading
#: image data, and kernel evaluations.  At this stage, fields and probes
#: have been compiled away" (§5.1).
MID: dict[str, OpInfo] = {
    **_COMMON,
    "to_index": OpInfo("world → image-index position; attrs: image", foldable=False),
    "floor_i": OpInfo("integer part of an index position (int vector)"),
    "fract": OpInfo("fractional part of an index position"),
    "gather": OpInfo(
        "load the (2s)^d sample neighborhood; attrs: image, support",
        foldable=False,
    ),
    "weights": OpInfo(
        "per-axis kernel weight vector h⁽ʳ⁾(f-i); attrs: kernel, deriv",
        foldable=False,
    ),
    "conv_contract": OpInfo(
        "contract a gathered neighborhood with per-axis weights; "
        "attrs: image (for the sample tensor shape)",
        foldable=False,
    ),
    "deriv_assemble": OpInfo(
        "assemble per-derivative-combo contractions into one tensor; "
        "attrs: tshape, dim, deriv"
    ),
    "grad_xform": OpInfo(
        "apply M⁻ᵀ to the derivative axes of a probe result; "
        "attrs: image, deriv",
        foldable=False,
    ),
    "index_inside": OpInfo(
        "bounds test on floor indices; attrs: image, support", foldable=False
    ),
    # probe-fusion ops (repro.core.xform.probe_fuse): separable contraction
    # of a gathered neighborhood, one sample axis at a time, so partial sums
    # are shared across the derivative combos of co-located probes.
    "contract_axis": OpInfo(
        "contract the leading remaining sample axis of a neighborhood (or "
        "partial contraction) with one weight vector; attrs: image, "
        "support, axes (sample axes remaining before this contraction)",
        foldable=False,
    ),
    "probe_parts": OpInfo(
        "multi-result fused probe: evaluate several per-combo contractions "
        "of one gathered neighborhood through a shared partial-contraction "
        "tree; attrs: image, support, dim, specs (per-result tuple of "
        "weight-argument indices, one per sample axis)",
        foldable=False,
    ),
}

#: LowIR: "basic operations on vectors, scalars, and memory objects" —
#: kernel weight evaluation is now explicit Horner arithmetic.
LOW: dict[str, OpInfo] = {k: v for k, v in MID.items() if k != "weights"}
LOW.update(
    {
        "horner": OpInfo(
            "evaluate a fixed polynomial by Horner's rule; attrs: coeffs"
        ),
        "vec_cons": OpInfo("pack scalar values into a vector"),
    }
)
