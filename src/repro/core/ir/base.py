"""Structured SSA: the representation shared by HighIR, MidIR, and LowIR.

A :class:`Func` has parameter :class:`Value`\\ s, a :class:`Body`, and a list
of result Values.  A Body is a sequence of :class:`Instr`\\ s and
:class:`IfRegion`\\ s; an IfRegion carries two sub-bodies and a φ-list
merging the values that differ between them.  Every Value is assigned
exactly once (SSA), so the optimization passes — contraction and value
numbering (paper §5.4) — are simple worklist/hash-table algorithms.

Instructions are generic: an op name (validated against the level's
vocabulary), SSA arguments, and a dict of compile-time attributes (tensor
shapes, kernels, image slots, constants).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CompileError

_counter = itertools.count()


class Value:
    """An SSA value.

    ``ty`` is the semantic type at HighIR level and a lowered type tag at
    Mid/Low level; the passes only require it to be propagated, not
    interpreted, so one class serves all three IRs.
    """

    __slots__ = ("id", "ty", "producer")

    def __init__(self, ty, producer=None):
        self.id = next(_counter)
        self.ty = ty
        self.producer = producer  # Instr | Phi | ("param", Func) | None

    def __repr__(self) -> str:
        return f"%{self.id}"


@dataclass
class Instr:
    """``results = op(args) {attrs}``; most ops have exactly one result."""

    op: str
    args: list[Value]
    attrs: dict
    results: list[Value] = field(default_factory=list)

    def new_result(self, ty) -> Value:
        v = Value(ty, self)
        self.results.append(v)
        return v

    @property
    def result(self) -> Value:
        if len(self.results) != 1:
            raise CompileError(f"{self.op} has {len(self.results)} results")
        return self.results[0]

    def __repr__(self) -> str:
        res = ", ".join(map(repr, self.results))
        args = ", ".join(map(repr, self.args))
        at = f" {self.attrs}" if self.attrs else ""
        return f"{res} = {self.op}({args}){at}"


@dataclass
class Phi:
    """A join value: ``result = φ(then_val, else_val)`` of an IfRegion."""

    result: Value
    then_val: Value
    else_val: Value

    def __repr__(self) -> str:
        return f"{self.result!r} = φ({self.then_val!r}, {self.else_val!r})"


@dataclass
class IfRegion:
    """Structured two-way conditional with SSA joins."""

    cond: Value
    then_body: "Body"
    else_body: "Body"
    phis: list[Phi]


@dataclass
class Body:
    items: list = field(default_factory=list)

    def add(self, item) -> None:
        self.items.append(item)

    def emit(self, op: str, args: list[Value], ty, **attrs) -> Value:
        """Append a single-result instruction and return its value."""
        instr = Instr(op, list(args), attrs)
        v = instr.new_result(ty)
        self.add(instr)
        return v

    def instructions(self) -> Iterator[Instr]:
        """All instructions, depth-first."""
        for item in self.items:
            if isinstance(item, Instr):
                yield item
            else:
                yield from item.then_body.instructions()
                yield from item.else_body.instructions()


@dataclass
class Func:
    """An SSA function: compiled form of one strand method or initializer."""

    name: str
    params: list[Value]
    param_names: list[str]
    body: Body
    results: list[Value] = field(default_factory=list)
    result_names: list[str] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"Func({self.name}, {len(self.params)} params)"


def format_func(func: Func) -> str:
    """Human-readable dump, used in tests and debugging."""
    lines = [f"func {func.name}({', '.join(f'{n}={v!r}' for n, v in zip(func.param_names, func.params))})"]

    def walk(body: Body, indent: int) -> None:
        pad = "  " * indent
        for item in body.items:
            if isinstance(item, Instr):
                lines.append(pad + repr(item))
            else:
                lines.append(pad + f"if {item.cond!r}:")
                walk(item.then_body, indent + 1)
                lines.append(pad + "else:")
                walk(item.else_body, indent + 1)
                for phi in item.phis:
                    lines.append(pad + repr(phi))

    walk(func.body, 1)
    lines.append(
        "  return " + ", ".join(f"{n}={v!r}" for n, v in zip(func.result_names, func.results))
    )
    return "\n".join(lines)


def validate(func: Func, vocabulary: dict[str, object], level: str) -> None:
    """Check SSA well-formedness and op-vocabulary membership.

    * every op name is in ``vocabulary``;
    * every instruction argument and φ-operand is defined before use (in
      the structured dominance order);
    * every value is defined exactly once.
    """
    defined: set[int] = {p.id for p in func.params}
    seen_defs: set[int] = set(defined)

    def define(v: Value, where: str) -> None:
        if v.id in seen_defs:
            raise CompileError(f"{level}:{func.name}: {v!r} defined twice ({where})")
        seen_defs.add(v.id)

    def check_use(v: Value, scope: set[int], where: str) -> None:
        if v.id not in scope:
            raise CompileError(
                f"{level}:{func.name}: use of undefined {v!r} in {where}"
            )

    def walk(body: Body, scope: set[int]) -> set[int]:
        for item in body.items:
            if isinstance(item, Instr):
                if item.op not in vocabulary:
                    raise CompileError(
                        f"{level}:{func.name}: op {item.op!r} is not in the "
                        f"{level} vocabulary"
                    )
                for a in item.args:
                    check_use(a, scope, item.op)
                for r in item.results:
                    define(r, item.op)
                    scope.add(r.id)
            else:
                check_use(item.cond, scope, "if-condition")
                then_scope = walk(item.then_body, set(scope))
                else_scope = walk(item.else_body, set(scope))
                for phi in item.phis:
                    check_use(phi.then_val, then_scope, "phi")
                    check_use(phi.else_val, else_scope, "phi")
                    define(phi.result, "phi")
                    scope.add(phi.result.id)
        return scope

    final_scope = walk(func.body, set(defined))
    for r in func.results:
        check_use(r, final_scope, "return")
