"""The compiler's intermediate representations (paper §5.1).

"The optimization and lowering occurs over a series of three intermediate
representations (IRs) based on Static Single Assignment (SSA) form.  These
IRs share a common control-flow graph representation, but differ in their
types and operations."

Our shared representation (:mod:`repro.core.ir.base`) is *structured SSA*:
because the 2012 surface language has structured control flow only, each
function body is a tree of instructions and ``if`` regions with explicit
φ-lists at the joins, rather than a free-form CFG (DESIGN.md, deviation 1).
The three levels share this structure and differ in their operator
vocabularies, declared in :mod:`repro.core.ir.high`,
:mod:`repro.core.ir.mid`, and :mod:`repro.core.ir.low` and enforced by
:func:`repro.core.ir.base.validate`.

* **HighIR** — "essentially a desugared version of the source language":
  tensor operations and probes of *normalized* convolution fields.
* **MidIR** — probes compiled away into world→index transforms, voxel
  gathers, per-axis kernel weights, convolution contractions, and the
  ``M⁻ᵀ`` gradient pushback.
* **LowIR** — kernel weight evaluations expanded into Horner-form
  arithmetic; only vector/scalar primitives and library calls remain.
"""

from repro.core.ir.base import Body, Func, IfRegion, Instr, Phi, Value, validate

__all__ = ["Body", "Func", "IfRegion", "Instr", "Phi", "Value", "validate"]
