"""Contraction: constant folding + dead-code elimination (paper §5.4).

"We implement an extended form of constant folding and dead-code
elimination that shrinks (or contracts) the program" (citing Appel & Jim's
shrinking reductions).  The pass iterates folding, copy propagation,
branch splicing, and dead-code elimination to a fixpoint; because every IR
op is pure, DCE is simply backward liveness over the structured SSA.

Run at every IR level (the vocabularies share the foldable core ops).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.ir.base import Body, Func, Instr, Value
from repro.core.ty.types import INT
from repro.runtime import ops as rt

# -- constant evaluation -------------------------------------------------------


def _as_np(v):
    return np.asarray(v)


def _fold(instr: Instr, args: list) -> object:
    """Evaluate a foldable op on constant arguments.

    Returns the constant, or raises ``_NoFold`` when this op isn't folded.
    """
    op = instr.op
    a = args
    ty = instr.results[0].ty if instr.results else None
    is_int = ty == INT
    if op == "add":
        return a[0] + a[1]
    if op == "sub":
        return a[0] - a[1]
    if op == "mul":
        # folded operands are unbatched, so plain broadcasting is correct
        return a[0] * a[1]
    if op == "div":
        if is_int:
            if a[1] == 0:
                raise _NoFold  # leave the fault to runtime
            return int(rt.idiv(a[0], a[1]))
        if isinstance(a[1], (int, float)) and a[1] == 0:
            raise _NoFold  # keep IEEE faults at runtime
        return a[0] / a[1]
    if op == "mod":
        if a[1] == 0:
            raise _NoFold
        return int(rt.imod(a[0], a[1]))
    if op == "neg":
        return -_as_np(a[0]) if isinstance(a[0], np.ndarray) else -a[0]
    if op == "pow":
        return rt.power(a[0], a[1])
    if op == "eq":
        return bool(np.all(_as_np(a[0]) == _as_np(a[1])))
    if op == "ne":
        return bool(np.any(_as_np(a[0]) != _as_np(a[1])))
    if op == "lt":
        return bool(a[0] < a[1])
    if op == "le":
        return bool(a[0] <= a[1])
    if op == "gt":
        return bool(a[0] > a[1])
    if op == "ge":
        return bool(a[0] >= a[1])
    if op == "and":
        return bool(a[0]) and bool(a[1])
    if op == "or":
        return bool(a[0]) or bool(a[1])
    if op == "not":
        return not bool(a[0])
    if op == "select":
        return a[1] if bool(a[0]) else a[2]
    if op in ("sqrt", "sin", "cos", "tan", "asin", "acos", "atan", "exp", "log", "floor", "ceil"):
        fn = getattr(math, op)
        return fn(a[0])
    if op == "atan2":
        return math.atan2(a[0], a[1])
    if op == "fmod":
        return math.fmod(a[0], a[1])
    if op == "min":
        return min(a[0], a[1])
    if op == "max":
        return max(a[0], a[1])
    if op == "abs":
        return abs(a[0])
    if op == "clamp":
        return float(rt.clamp(a[0], a[1], a[2]))
    if op == "lerp":
        return rt.lerp(a[0], a[1], a[2])
    if op == "int_to_real":
        return float(a[0])
    if op == "real_to_int":
        return int(np.trunc(a[0]))
    if op == "norm":
        return float(rt.norm(_as_np(a[0]), instr.attrs["order"]))
    if op == "dot":
        return rt.dot(_as_np(a[0]), _as_np(a[1]))
    if op == "cross":
        return rt.cross(_as_np(a[0]), _as_np(a[1]))
    if op == "outer":
        return rt.outer(_as_np(a[0]), _as_np(a[1]))
    if op == "trace":
        return float(rt.trace(_as_np(a[0])))
    if op == "det":
        return float(rt.det(_as_np(a[0])))
    if op == "transpose":
        return rt.transpose(_as_np(a[0]))
    if op == "normalize_v":
        return rt.normalize_v(_as_np(a[0]))
    if op == "evals":
        return rt.evals(_as_np(a[0]))
    if op == "evecs":
        return rt.evecs(_as_np(a[0]))
    if op == "tensor_cons":
        return rt.tensor_cons_flat(*a)
    if op == "tensor_index":
        arr = _as_np(a[0])
        return rt.tensor_index(arr, instr.attrs["indices"], order=arr.ndim)
    if op == "identity":
        return rt.identity(instr.attrs["n"])
    if op == "vec_cons":
        return np.stack([np.asarray(x) for x in a], axis=-1)
    if op == "horner":
        return float(rt.horner(instr.attrs["coeffs"], np.float64(a[0])))
    raise _NoFold


class _NoFold(Exception):
    pass


# -- the pass -------------------------------------------------------------------


class _Contract:
    def __init__(self, func: Func, vocabulary: dict):
        self.func = func
        self.vocab = vocabulary
        self.consts: dict[int, object] = {}
        self.repl: dict[int, Value] = {}
        self.changed = False

    def resolve(self, v: Value) -> Value:
        while v.id in self.repl:
            v = self.repl[v.id]
        return v

    def const_of(self, v: Value):
        v = self.resolve(v)
        return self.consts.get(v.id, _NoFold)

    # forward pass: folding, copy propagation, branch splicing
    def forward(self, body: Body) -> None:
        new_items = []
        for item in body.items:
            if isinstance(item, Instr):
                item.args = [self.resolve(a) for a in item.args]
                if item.op == "const":
                    self.consts[item.results[0].id] = item.attrs["value"]
                    new_items.append(item)
                    continue
                info = self.vocab.get(item.op)
                arg_consts = [self.const_of(a) for a in item.args]
                if (
                    info is not None
                    and info.foldable
                    and item.results
                    and len(item.results) == 1
                    and all(c is not _NoFold for c in arg_consts)
                ):
                    try:
                        value = _fold(item, arg_consts)
                    except (_NoFold, ValueError, ZeroDivisionError, OverflowError):
                        value = _NoFold
                    if value is not _NoFold:
                        item.op = "const"
                        item.args = []
                        item.attrs = {"value": value}
                        self.consts[item.results[0].id] = value
                        self.changed = True
                        new_items.append(item)
                        continue
                self._algebraic(item, arg_consts)
                new_items.append(item)
            else:
                item.cond = self.resolve(item.cond)
                cond_const = self.const_of(item.cond)
                if cond_const is not _NoFold:
                    # branch splicing: inline the taken side
                    taken = item.then_body if bool(cond_const) else item.else_body
                    self.forward(taken)
                    new_items.extend(taken.items)
                    for phi in item.phis:
                        src = phi.then_val if bool(cond_const) else phi.else_val
                        self.repl[phi.result.id] = self.resolve(src)
                    self.changed = True
                    continue
                self.forward(item.then_body)
                self.forward(item.else_body)
                live_phis = []
                for phi in item.phis:
                    phi.then_val = self.resolve(phi.then_val)
                    phi.else_val = self.resolve(phi.else_val)
                    if phi.then_val is phi.else_val:
                        self.repl[phi.result.id] = phi.then_val
                        self.changed = True
                    else:
                        live_phis.append(phi)
                item.phis = live_phis
                new_items.append(item)
        body.items = new_items

    def _algebraic(self, item: Instr, arg_consts: list) -> None:
        """Safe strength reductions (no IEEE-semantics changes)."""
        op = item.op
        if op == "select" and len(item.args) == 3 and item.args[1] is item.args[2]:
            self.repl[item.results[0].id] = item.args[1]
            self.changed = True
        elif op == "and":
            for i, c in enumerate(arg_consts):
                if c is not _NoFold:
                    other = item.args[1 - i]
                    if bool(c):
                        self.repl[item.results[0].id] = other
                    else:
                        item.op = "const"
                        item.args = []
                        item.attrs = {"value": False}
                        self.consts[item.results[0].id] = False
                    self.changed = True
                    return
        elif op == "or":
            for i, c in enumerate(arg_consts):
                if c is not _NoFold:
                    other = item.args[1 - i]
                    if not bool(c):
                        self.repl[item.results[0].id] = other
                    else:
                        item.op = "const"
                        item.args = []
                        item.attrs = {"value": True}
                        self.consts[item.results[0].id] = True
                    self.changed = True
                    return

    # backward pass: dead-code elimination
    def dce(self) -> None:
        needed: set[int] = set()
        self.func.results = [self.resolve(r) for r in self.func.results]
        for r in self.func.results:
            needed.add(r.id)

        def walk(body: Body) -> None:
            kept = []
            for item in reversed(body.items):
                if isinstance(item, Instr):
                    if any(r.id in needed for r in item.results):
                        for a in item.args:
                            needed.add(a.id)
                        kept.append(item)
                    else:
                        self.changed = True
                else:
                    item.phis = [p for p in item.phis if p.result.id in needed]
                    for p in item.phis:
                        needed.add(p.then_val.id)
                        needed.add(p.else_val.id)
                    # prune inner bodies against the updated needed set
                    walk(item.then_body)
                    walk(item.else_body)
                    if item.phis or item.then_body.items or item.else_body.items:
                        needed.add(item.cond.id)
                        kept.append(item)
                    else:
                        self.changed = True
            kept.reverse()
            body.items = kept

        walk(self.func.body)


def contract(func: Func, vocabulary: dict, max_rounds: int = 10) -> Func:
    """Run contraction to a fixpoint (bounded by ``max_rounds``)."""
    for _ in range(max_rounds):
        c = _Contract(func, vocabulary)
        c.forward(func.body)
        c.dce()
        if not c.changed:
            break
    return func
