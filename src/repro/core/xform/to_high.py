"""Typed AST → HighIR (paper §5.1-5.2).

HighIR is "essentially a desugared version of the source language": SSA
over source-level tensor operations.  Field-typed expressions never become
runtime values — they are evaluated *symbolically* into the normalized
field values of :mod:`repro.core.xform.normalize`, and only their probes
and inside-tests emit instructions (the rewrite rules of Figure 10 applied
at probe sites).

The output is one SSA :class:`~repro.core.ir.base.Func` per program piece:

* ``globals``  — input globals → derived concrete globals
* ``seed``     — globals + comprehension iterators → strand arguments
* ``init``     — globals + strand parameters → initial state
* ``update``   — globals + state → new state + ``$status``
* ``stabilize``— globals + state → new state (optional)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.ir.base import Body, Func, IfRegion, Phi, Value
from repro.core.ir import ops as irops
from repro.core.simple import (
    RUNNING,
    STATUS_VAR,
    simplify_method,
)
from repro.core.syntax import ast
from repro.core.ty.check import TypedProgram
from repro.core.ty.types import (
    BOOL,
    FieldTy,
    ImageTy,
    INT,
    KernelTy,
    REAL,
    STRING,
    TensorTy,
    Ty,
)
from repro.core.xform import normalize as nf
from repro.errors import CompileError
from repro.kernels import KERNELS, Kernel


@dataclass
class ImageSlot:
    """A global image: its declared type and where its data comes from."""

    name: str
    dim: int
    shape: tuple[int, ...]
    path: Optional[str]  # NRRD path from load(...), or None if bound in API


@dataclass
class HighProgram:
    """All HighIR functions for one Diderot program, plus symbol info."""

    typed: TypedProgram
    images: dict[str, ImageSlot]
    fields: dict[str, nf.SymField]
    globals_func: Func
    defaults_func: Func
    bounds_func: Func
    seed_func: Func
    init_func: Func
    update_func: Func
    stabilize_func: Optional[Func]
    #: inputs that have a default value (computable by defaults_func)
    defaulted_inputs: list[str]
    #: concrete globals in declaration order (the runtime "globals" record)
    concrete_globals: list[str]
    input_names: list[str]
    iter_names: list[str]
    grid: bool
    state_order: list[str]
    #: strand parameters referenced inside methods: persisted as hidden,
    #: immutable state alongside the declared state variables
    extra_state: list[str]
    outputs: list[str]


_MATH_FUNCS = {
    "sqrt", "sin", "cos", "tan", "asin", "acos", "atan", "exp", "log",
    "atan2", "fmod", "floor", "ceil",
}
_DIRECT_FUNCS = {
    "trace": "trace",
    "det": "det",
    "transpose": "transpose",
    "evals": "evals",
    "evecs": "evecs",
    "normalize": "normalize_v",
    "min": "min",
    "max": "max",
    "abs": "abs",
    "clamp": "clamp",
    "lerp": "lerp",
    "dot": "dot",
    "cross": "cross",
    "outer": "outer",
    "pow": "pow",
}

_CMP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}


class HighBuilder:
    def __init__(self, typed: TypedProgram, check: bool = True, tracer=None):
        from repro.obs import NULL_TRACER

        self.typed = typed
        self.check = check
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.images: dict[str, ImageSlot] = {}
        self.fields: dict[str, nf.SymField] = {}
        self.kernels: dict[str, Kernel] = dict(KERNELS)
        # Values of concrete globals *within the currently-built function*
        self.globals_env: dict[str, Value] = {}
        self.concrete_globals: list[str] = []
        # synthetic globals for field scale factors defined in the global
        # section (their SSA values live in the globals function only)
        self.synthetic_tys: dict[str, Ty] = {}
        self._globals_results: Optional[list[Value]] = None
        self._globals_result_names: Optional[list[str]] = None
        self._globals_env_ref: Optional[dict[str, Value]] = None

    def add_scale_global(self, value: Value) -> str:
        """Register a field scale factor computed in the global section as
        a synthetic concrete global, so strand functions can reference it
        by name (it arrives as one of their parameters)."""
        name = f"$fscale{len(self.synthetic_tys)}"
        self.synthetic_tys[name] = value.ty
        self._globals_results.append(value)
        self._globals_result_names.append(name)
        self._globals_env_ref[name] = value
        self.concrete_globals.append(name)
        return name

    # -- main entry ----------------------------------------------------------

    def _params_used_in_methods(self, prog: ast.Program) -> list[str]:
        param_names = {p.name for p in prog.strand.params}
        used: set[str] = set()

        def walk(node) -> None:
            if isinstance(node, ast.Var) and node.name in param_names:
                used.add(node.name)
            if not isinstance(node, ast.Node):
                return
            import dataclasses as _dc

            for f in _dc.fields(node):
                v = getattr(node, f.name)
                if isinstance(v, ast.Node):
                    walk(v)
                elif isinstance(v, list):
                    for x in v:
                        if isinstance(x, ast.Node):
                            walk(x)

        for m in prog.strand.methods:
            walk(m.body)
        return [p.name for p in prog.strand.params if p.name in used]

    def build(self) -> HighProgram:
        prog = self.typed.program
        self.extra_state = self._params_used_in_methods(prog)
        globals_func = self.build_globals(prog)
        defaults_func, defaulted = self.build_defaults(prog)
        bounds_func = self.build_bounds(prog)
        seed_func = self.build_seed(prog)
        init_func = self.build_init(prog)
        update_func = self.build_method(prog, "update")
        stab = None
        if prog.strand.method("stabilize") is not None:
            stab = self.build_method(prog, "stabilize")
        hp = HighProgram(
            typed=self.typed,
            images=self.images,
            fields=self.fields,
            globals_func=globals_func,
            defaults_func=defaults_func,
            bounds_func=bounds_func,
            defaulted_inputs=defaulted,
            seed_func=seed_func,
            init_func=init_func,
            update_func=update_func,
            stabilize_func=stab,
            concrete_globals=list(self.concrete_globals),
            input_names=self.typed.inputs,
            iter_names=[it.name for it in prog.initially.iters],
            grid=prog.initially.kind == "grid",
            state_order=list(self.typed.state_order),
            extra_state=list(self.extra_state),
            outputs=list(self.typed.outputs),
        )
        if self.check:
            from repro.core.ir.base import validate

            for fn in self.all_funcs(hp):
                validate(fn, irops.HIGH, "HighIR")
        return hp

    @staticmethod
    def all_funcs(hp: HighProgram) -> list[Func]:
        fns = [
            hp.globals_func,
            hp.defaults_func,
            hp.bounds_func,
            hp.seed_func,
            hp.init_func,
            hp.update_func,
        ]
        if hp.stabilize_func is not None:
            fns.append(hp.stabilize_func)
        return fns

    # -- function builders ------------------------------------------------------

    def _is_concrete_ty(self, ty: Ty) -> bool:
        return isinstance(ty, (TensorTy, type(BOOL), type(INT)))

    def build_globals(self, prog: ast.Program) -> Func:
        """Inputs → derived concrete globals; also record images/fields."""
        body = Body()
        params: list[Value] = []
        param_names: list[str] = []
        env: dict[str, Value] = {}
        # input globals become parameters
        for g in prog.globals:
            if g.is_input:
                info = self.typed.globals[g.name]
                v = Value(info.ty, ("param", g.name))
                params.append(v)
                param_names.append(g.name)
                env[g.name] = v
                self.concrete_globals.append(g.name)
        ctx = ExprCtx(self, body, env, global_ctx=True)
        results: list[Value] = []
        result_names: list[str] = []
        self._globals_results = results
        self._globals_result_names = result_names
        self._globals_env_ref = env
        for g in prog.globals:
            if g.is_input:
                continue
            info = self.typed.globals[g.name]
            ty = info.ty
            if isinstance(ty, ImageTy):
                path = g.init.path if isinstance(g.init, ast.Load) else None
                if path is None:
                    raise CompileError(
                        f"image global {g.name!r} must be initialized with "
                        "load(...)"
                    )
                self.images[g.name] = ImageSlot(g.name, ty.dim, ty.shape, path)
                continue
            if isinstance(ty, KernelTy):
                self.kernels[g.name] = ctx.eval_kernel(g.init)
                continue
            if isinstance(ty, FieldTy):
                self.fields[g.name] = ctx.eval_field(g.init)
                continue
            if ty == STRING:
                raise CompileError("string globals are not supported")
            v = ctx.eval(g.init)
            env[g.name] = v
            results.append(v)
            result_names.append(g.name)
            self.concrete_globals.append(g.name)
        return Func("globals", params, param_names, body, results, result_names)

    def _global_params(self, body_env: dict[str, Value]) -> tuple[list[Value], list[str]]:
        params = []
        names = []
        for name in self.concrete_globals:
            if name in self.synthetic_tys:
                ty = self.synthetic_tys[name]
            else:
                ty = self.typed.globals[name].ty
            v = Value(ty, ("param", name))
            params.append(v)
            names.append(name)
            body_env[name] = v
        return params, names

    def build_defaults(self, prog: ast.Program) -> tuple[Func, list[str]]:
        """Default values for ``input`` globals that declare one.

        Defaults are closed expressions (they may not reference other
        globals: the order in which users override inputs is unspecified),
        so this function takes no parameters.
        """
        body = Body()
        ctx = ExprCtx(self, body, {})
        results: list[Value] = []
        names: list[str] = []
        for g in prog.globals:
            if g.is_input and g.init is not None:
                try:
                    results.append(ctx.eval(g.init))
                except CompileError as exc:
                    raise CompileError(
                        f"default for input {g.name!r} must be a closed "
                        f"expression: {exc}"
                    ) from exc
                names.append(g.name)
        return Func("defaults", [], [], body, results, names), names

    def build_bounds(self, prog: ast.Program) -> Func:
        """Comprehension iterator bounds: globals → (lo, hi) per iterator."""
        body = Body()
        env: dict[str, Value] = {}
        params, names = self._global_params(env)
        ctx = ExprCtx(self, body, env)
        results: list[Value] = []
        result_names: list[str] = []
        for it in prog.initially.iters:
            results.append(ctx.eval(it.lo))
            result_names.append(f"{it.name}.lo")
            results.append(ctx.eval(it.hi))
            result_names.append(f"{it.name}.hi")
        return Func("bounds", params, names, body, results, result_names)

    def build_seed(self, prog: ast.Program) -> Func:
        body = Body()
        env: dict[str, Value] = {}
        params, names = self._global_params(env)
        for it in prog.initially.iters:
            v = Value(INT, ("param", it.name))
            params.append(v)
            names.append(it.name)
            env[it.name] = v
        ctx = ExprCtx(self, body, env)
        results = [ctx.eval(a) for a in prog.initially.args]
        result_names = [p.name for p in prog.strand.params]
        return Func("seed", params, names, body, results, result_names)

    def build_init(self, prog: ast.Program) -> Func:
        body = Body()
        env: dict[str, Value] = {}
        params, names = self._global_params(env)
        for p in prog.strand.params:
            info = self.typed.params[p.name]
            v = Value(info.ty, ("param", p.name))
            params.append(v)
            names.append(p.name)
            env[p.name] = v
        ctx = ExprCtx(self, body, env)
        results: list[Value] = []
        for sv in prog.strand.state:
            v = ctx.eval(sv.init)
            env[sv.name] = v
            results.append(v)
        # forward method-referenced parameters as hidden state
        results.extend(env[p] for p in self.extra_state)
        result_names = list(self.typed.state_order) + list(self.extra_state)
        return Func("init", params, names, body, results, result_names)

    def build_method(self, prog: ast.Program, mname: str) -> Func:
        method = prog.strand.method(mname)
        with self.tracer.span("simplify", cat="pass", func=mname):
            body_ast = simplify_method(method.body, is_update=(mname == "update"))
        body = Body()
        env: dict[str, Value] = {}
        params, names = self._global_params(env)
        for sname in self.typed.state_order:
            info = self.typed.state[sname]
            v = Value(info.ty, ("param", sname))
            params.append(v)
            names.append(sname)
            env[sname] = v
        # Method-referenced strand parameters ride along as hidden immutable
        # state (the init function forwards their values).
        for pname in self.extra_state:
            info = self.typed.params[pname]
            v = Value(info.ty, ("param", pname))
            params.append(v)
            names.append(pname)
            env[pname] = v
        ctx = ExprCtx(self, body, env)
        if mname == "update":
            env[STATUS_VAR] = body.emit("const", [], INT, value=RUNNING)
        self.compile_block(ctx, body_ast)
        results = [env[s] for s in self.typed.state_order]
        result_names = list(self.typed.state_order)
        if mname == "update":
            results.append(env[STATUS_VAR])
            result_names.append(STATUS_VAR)
        return Func(mname, params, names, body, results, result_names)

    # -- statement compilation ------------------------------------------------

    def compile_block(self, ctx: "ExprCtx", block: ast.Block) -> None:
        # Locals declared in this block are scoped: we snapshot the name set
        # and drop new names afterwards (their SSA values simply become
        # unreferenced).
        outer_names = set(ctx.env.keys())
        for s in block.stmts:
            self.compile_stmt(ctx, s)
        for name in list(ctx.env.keys()):
            if name not in outer_names:
                del ctx.env[name]

    def compile_stmt(self, ctx: "ExprCtx", s: ast.Stmt) -> None:
        if isinstance(s, ast.Block):
            self.compile_block(ctx, s)
            return
        if isinstance(s, ast.DeclStmt):
            if isinstance(s.init.ty, FieldTy):
                # field-typed local: symbolic only
                self.fields[s.name] = ctx.eval_field(s.init)
                return
            ctx.env[s.name] = ctx.eval(s.init)
            return
        if isinstance(s, ast.AssignStmt):
            if s.op == "=":
                ctx.env[s.name] = ctx.eval(s.value)
            else:
                cur = ctx.env[s.name]
                rhs = ctx.eval(s.value)
                opname = {"+=": "add", "-=": "sub", "*=": "mul", "/=": "div"}[s.op]
                ctx.env[s.name] = ctx.body.emit(opname, [cur, rhs], cur.ty)
            return
        if isinstance(s, ast.IfStmt):
            cond = ctx.eval(s.cond)
            outer_env = ctx.env
            then_body = Body()
            then_env = dict(outer_env)
            self.compile_stmt(ExprCtx(self, then_body, then_env), s.then_s)
            else_body = Body()
            else_env = dict(outer_env)
            if s.else_s is not None:
                self.compile_stmt(ExprCtx(self, else_body, else_env), s.else_s)
            phis: list[Phi] = []
            for name, old in outer_env.items():
                tv = then_env.get(name, old)
                ev = else_env.get(name, old)
                if tv is not ev:
                    merged = Value(tv.ty)
                    phi = Phi(merged, tv, ev)
                    merged.producer = phi
                    phis.append(phi)
                    outer_env[name] = merged
            ctx.body.add(IfRegion(cond, then_body, else_body, phis))
            return
        raise CompileError(f"unexpected statement {type(s).__name__} after simplify")


@dataclass
class ExprCtx:
    """Expression compilation context: emits into one body with one env.

    ``global_ctx`` marks the global section: field scale factors computed
    there must be exported as synthetic globals (see ``add_scale_global``)
    rather than referenced as raw SSA values, since later functions cannot
    see the globals function's values.
    """

    builder: HighBuilder
    body: Body
    env: dict[str, Value]
    global_ctx: bool = False

    def _scale_atom(self, value: Value):
        if self.global_ctx:
            return self.builder.add_scale_global(value)
        return value

    def _resolve_scale(self, scale) -> Value:
        if isinstance(scale, Value):
            return scale
        return self.env[scale]

    # -- symbolic (compile-time) evaluation of abstract types ----------------

    def eval_kernel(self, e: ast.Expr) -> Kernel:
        if isinstance(e, ast.Var) and e.name in self.builder.kernels:
            return self.builder.kernels[e.name]
        raise CompileError("kernel expressions must name a kernel")

    def eval_field(self, e: ast.Expr) -> nf.SymField:
        if isinstance(e, ast.Var):
            try:
                return self.builder.fields[e.name]
            except KeyError:
                raise CompileError(f"{e.name!r} is not a known field") from None
        if isinstance(e, ast.BinOp):
            if e.op == "⊛":
                img_e, kern_e = e.left, e.right
                if isinstance(img_e.ty, KernelTy):
                    img_e, kern_e = kern_e, img_e
                slot = self._image_slot(img_e)
                kern = self.eval_kernel(kern_e)
                return nf.conv(slot.name, slot.dim, slot.shape, kern)
            if e.op == "+":
                return nf.add(self.eval_field(e.left), self.eval_field(e.right))
            if e.op == "-":
                right = self.eval_field(e.right)
                neg1 = self.body.emit("const", [], REAL, value=-1.0)
                return nf.add(self.eval_field(e.left), nf.scale(self._scale_atom(neg1), right))
            if e.op == "*":
                if isinstance(e.left.ty, FieldTy):
                    return nf.scale(self._scale_atom(self.eval(e.right)), self.eval_field(e.left))
                return nf.scale(self._scale_atom(self.eval(e.left)), self.eval_field(e.right))
            if e.op == "/":
                inv = self.body.emit("const", [], REAL, value=1.0)
                denom = self.eval(e.right)
                recip = self.body.emit("div", [inv, denom], REAL)
                return nf.scale(self._scale_atom(recip), self.eval_field(e.left))
        if isinstance(e, ast.UnOp):
            if e.op == "-":
                neg1 = self.body.emit("const", [], REAL, value=-1.0)
                return nf.scale(self._scale_atom(neg1), self.eval_field(e.operand))
            if e.op in ("∇", "∇⊗"):
                return nf.deriv(self.eval_field(e.operand))
            if e.op == "∇•":
                return nf.divergence(self.eval_field(e.operand))
            if e.op == "∇×":
                return nf.curl(self.eval_field(e.operand))
        raise CompileError(
            f"field expression {type(e).__name__} is not statically "
            "determined (simplification should have removed it)"
        )

    def _image_slot(self, e: ast.Expr) -> ImageSlot:
        if isinstance(e, ast.Var) and e.name in self.builder.images:
            return self.builder.images[e.name]
        if isinstance(e, ast.Load):
            # anonymous load in a convolution: synthesize a slot named
            # after the file stem so Program.bind_image can address it
            ity = e.ty
            stem = e.path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
            name = "".join(c if c.isalnum() or c == "_" else "_" for c in stem)
            if not name or not (name[0].isalpha() or name[0] == "_"):
                name = f"img_{name}"
            base = name
            k = 1
            while name in self.builder.images:
                name = f"{base}_{k}"
                k += 1
            slot = ImageSlot(name, ity.dim, tuple(ity.shape), e.path)
            self.builder.images[name] = slot
            return slot
        raise CompileError("convolution operand must be an image")

    # -- probes ----------------------------------------------------------------

    def emit_probe(self, sym: nf.SymField, pos: Value) -> Value:
        """Figure 10's probe rules: lower a probe of a normalized field."""
        if isinstance(sym, nf.SymSum):
            left = self.emit_probe(sym.left, pos)
            right = self.emit_probe(sym.right, pos)
            return self.body.emit("add", [left, right], left.ty)
        if isinstance(sym, nf.SymScale):
            inner = self.emit_probe(sym.field, pos)
            scale = self._resolve_scale(sym.scale)
            return self.body.emit("mul", [scale, inner], inner.ty)
        if isinstance(sym, nf.SymConv):
            out_shape = sym.shape
            return self.body.emit(
                "probe",
                [pos],
                TensorTy(out_shape),
                image=sym.image,
                kernel=sym.kernel,
                deriv=sym.deriv,
                out_shape=out_shape,
            )
        if isinstance(sym, nf.SymContract):
            jac = self.emit_probe(sym.conv, pos)
            if sym.kind == "div":
                return self.body.emit("trace", [jac], REAL)
            if sym.kind == "curl2":
                a = self.body.emit("tensor_index", [jac], REAL, indices=(1, 0))
                b = self.body.emit("tensor_index", [jac], REAL, indices=(0, 1))
                return self.body.emit("sub", [a, b], REAL)
            comps = []
            for (i, j) in ((2, 1), (0, 2), (1, 0)):
                a = self.body.emit("tensor_index", [jac], REAL, indices=(i, j))
                b = self.body.emit("tensor_index", [jac], REAL, indices=(j, i))
                comps.append(self.body.emit("sub", [a, b], REAL))
            return self.body.emit("tensor_cons", comps, TensorTy((3,)))
        raise CompileError(f"cannot probe {type(sym).__name__}")

    def emit_inside(self, sym: nf.SymField, pos: Value) -> Value:
        """``inside(x, F)``: conjunction over the convolution leaves."""
        unique = {(leaf.image, leaf.kernel.support) for leaf in sym.leaves()}
        tests = [
            self.body.emit("inside", [pos], BOOL, image=image, support=support)
            for image, support in sorted(unique)
        ]
        out = tests[0]
        for t in tests[1:]:
            out = self.body.emit("and", [out, t], BOOL)
        return out

    # -- concrete expression evaluation -----------------------------------------

    def eval(self, e: ast.Expr) -> Value:
        if isinstance(e, ast.IntLit):
            return self.body.emit("const", [], INT, value=e.value)
        if isinstance(e, ast.RealLit):
            return self.body.emit("const", [], REAL, value=e.value)
        if isinstance(e, ast.BoolLit):
            return self.body.emit("const", [], BOOL, value=e.value)
        if isinstance(e, ast.Var):
            if e.name in self.env:
                return self.env[e.name]
            if e.name == "pi":
                return self.body.emit("const", [], REAL, value=math.pi)
            raise CompileError(f"no runtime value for {e.name!r}")
        if isinstance(e, ast.Identity):
            return self.body.emit("identity", [], TensorTy((e.n, e.n)), n=e.n)
        if isinstance(e, ast.Norm):
            inner = self.eval(e.operand)
            order = len(inner.ty.shape) if isinstance(inner.ty, TensorTy) else 0
            return self.body.emit("norm", [inner], REAL, order=order)
        if isinstance(e, ast.UnOp):
            if e.op == "-":
                v = self.eval(e.operand)
                return self.body.emit("neg", [v], v.ty)
            if e.op == "!":
                v = self.eval(e.operand)
                return self.body.emit("not", [v], BOOL)
            raise CompileError(f"unary {e.op!r} does not produce a concrete value")
        if isinstance(e, ast.BinOp):
            opname = {
                "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
                "^": "pow", "•": "dot", "×": "cross", "⊗": "outer",
                "&&": "and", "||": "or",
            }.get(e.op) or _CMP.get(e.op)
            if opname is None:
                raise CompileError(f"operator {e.op!r} in concrete context")
            left = self.eval(e.left)
            right = self.eval(e.right)
            return self.body.emit(opname, [left, right], e.ty)
        if isinstance(e, ast.Cond):
            cond = self.eval(e.cond)
            a = self.eval(e.then_e)
            b = self.eval(e.else_e)
            return self.body.emit("select", [cond, a, b], e.ty)
        if isinstance(e, ast.Index):
            base = self.eval(e.base)
            indices = []
            for idx in e.indices:
                if not isinstance(idx, ast.IntLit):
                    raise CompileError(
                        "tensor indices must be integer literals",
                    )
                indices.append(idx.value)
            return self.body.emit(
                "tensor_index", [base], e.ty, indices=tuple(indices)
            )
        if isinstance(e, ast.TensorCons):
            elems = [self.eval(el) for el in e.elements]
            return self.body.emit("tensor_cons", elems, e.ty)
        if isinstance(e, ast.Probe):
            sym = self.eval_field(e.field)
            pos = self.eval(e.pos)
            return self.emit_probe(sym, pos)
        if isinstance(e, ast.Call):
            return self.eval_call(e)
        raise CompileError(f"cannot compile expression {type(e).__name__}")

    def eval_call(self, e: ast.Call) -> Value:
        name = e.func
        # field probe through a variable
        if name in self.builder.fields:
            sym = self.builder.fields[name]
            pos = self.eval(e.args[0])
            return self.emit_probe(sym, pos)
        if name == "inside":
            sym = self.eval_field(e.args[1])
            pos = self.eval(e.args[0])
            return self.emit_inside(sym, pos)
        if name == "real":
            arg = self.eval(e.args[0])
            if arg.ty == INT:
                return self.body.emit("int_to_real", [arg], REAL)
            return arg
        if name == "int":
            arg = self.eval(e.args[0])
            if arg.ty == INT:
                return arg
            return self.body.emit("real_to_int", [arg], INT)
        if name in _MATH_FUNCS:
            args = [self.eval(a) for a in e.args]
            return self.body.emit(name, args, e.ty)
        if name in _DIRECT_FUNCS:
            args = [self.eval(a) for a in e.args]
            return self.body.emit(_DIRECT_FUNCS[name], args, e.ty)
        raise CompileError(f"unknown function {name!r}")
