"""MidIR probe fusion: shared partial contractions across derivative combos.

Probe synthesis (``to_mid``) emits one full ``conv_contract`` per derivative
multi-index: a 3-D Hessian probe contracts the same gathered ``(2s)^3``
neighborhood six times (after value numbering merges the symmetric pairs),
and co-located probes of ``F``, ``∇F``, and ``∇⊗∇F`` share the gather but
still each contract the whole neighborhood from scratch.  Separability makes
most of that work redundant: contracting the neighborhood one sample axis at
a time, the partial contractions for combos that agree on a prefix of
per-axis weights are *identical* and can be computed once.

This pass rewrites each group of ``conv_contract`` instructions that read
one gathered neighborhood into a single multi-result ``probe_parts``
instruction.  Its ``specs`` attribute lists, per result, the weight argument
used on each sample axis; the runtime evaluates all specs through a shared
prefix tree of incremental axis contractions (``rt.probe_parts``), turning
``m`` full ``(2s)^d`` contractions into at most ``d·m`` — and in practice
far fewer — cheap axis contractions.  A neighborhood contracted only once
(a lone order-0 probe) still profits from the incremental schedule when
``d ≥ 2``; it is rewritten into a chain of single-axis ``contract_axis``
instructions instead.

Weight instructions produced after the group's first member (typical for
co-located probes of different derivative orders, whose weights sit between
the earlier probe's contractions) are hoisted up to the fused instruction
when their own inputs permit; members whose weights cannot be scheduled
before an existing fused instruction start a new one, so dominance is
preserved by construction.

The pass runs after MidIR contraction + value numbering (which it relies on
for the sharing of gathers and weights between co-located probes) and is
gated by ``OptOptions.probe_fusion`` / the driver's ``--no-fuse`` flag.

Fusion is decided per group by a cost model (:func:`_fusion_profitable`)
built from the neighborhood shape: 1-D groups are never fused — BENCH_probe
measured the incremental schedule *losing* (0.67–0.98x) on every 1-D case,
where there is no prefix to share and the per-axis dispatch overhead
dominates the single ``2s``-wide contraction — while for ``d ≥ 2`` the
modelled axis-contraction cost of the shared prefix tree is never worse
than repeating full ``(2s)^d`` contractions, so those groups always fuse.
"""

from __future__ import annotations

from repro.core.ir.base import Body, Func, Instr, Value


def probe_fuse(func: Func) -> dict:
    """Fuse the probe contractions of ``func`` in place.

    Returns a counter dict: ``groups`` (fused ``probe_parts`` emitted),
    ``fused_contracts`` (``conv_contract`` s absorbed into them), ``chains``
    (lone contractions rewritten as ``contract_axis`` chains), ``hoisted``
    (weight instructions moved up to a fusion site), and ``rejected``
    (groups the cost model left as plain ``conv_contract`` s).
    """
    stats = {"groups": 0, "fused_contracts": 0, "chains": 0,
             "hoisted": 0, "rejected": 0}
    _fuse_body(func.body, stats)
    return stats


def _fusion_profitable(dim: int, support: int, specs: list[tuple]) -> bool:
    """Decide whether the incremental schedule beats full contractions.

    ``specs`` lists, per group member, the identity of the weight vector it
    applies on each sample axis.  Both sides are modelled as axis-by-axis
    contraction chains — contracting axis ``L`` of a partially-contracted
    neighborhood costs ``(2s)^(d-L+1)`` multiply-adds: an unfused member
    pays the whole chain ``Σ_L (2s)^(d-L+1)`` itself, while fused members
    pay once per *unique* spec prefix (partial contractions are shared
    through the prefix tree, so duplicates are free).  For ``dim == 1``
    the schedule can share nothing and its constant per-axis dispatch
    overhead loses in practice (see BENCH_probe.json's 1-D rows), so 1-D
    groups are rejected outright.
    """
    if dim < 2:
        return False
    width = 2 * support
    chain = sum(width ** (dim - k) for k in range(dim))
    prefixes = {spec[:k] for spec in specs for k in range(1, len(spec) + 1)}
    fused = sum(width ** (dim - len(p) + 1) for p in prefixes)
    return fused <= len(specs) * chain


def _placeable(v: Value, anchor: int, pos: dict, hoist_pos: dict) -> bool:
    """True if ``v`` is (or will be) defined before item index ``anchor``.

    Values from outer scopes or parameters are absent from ``pos`` and count
    as defined at -1; hoisted weights land immediately before their own
    anchor, i.e. at ``anchor - 0.5``.
    """
    p = hoist_pos.get(v.id)
    if p is not None:
        return p - 0.5 < anchor
    return pos.get(v.id, -1) < anchor


def _fuse_body(body: Body, stats: dict) -> None:
    for item in body.items:
        if not isinstance(item, Instr):
            _fuse_body(item.then_body, stats)
            _fuse_body(item.else_body, stats)

    # Item index of every value defined at this body's top level.
    pos: dict[int, int] = {}
    for i, item in enumerate(body.items):
        if isinstance(item, Instr):
            for r in item.results:
                pos[r.id] = i
        else:
            for phi in item.phis:
                pos[phi.result.id] = i

    # Group full contractions by the gathered neighborhood they consume.
    groups: dict[int, list[tuple[int, Instr]]] = {}
    for i, item in enumerate(body.items):
        if (
            isinstance(item, Instr)
            and item.op == "conv_contract"
            and len(item.args) >= 2
            and isinstance(item.args[0].ty, tuple)
            and item.args[0].ty
            and item.args[0].ty[0] == "vox"
        ):
            groups.setdefault(item.args[0].id, []).append((i, item))
    if not groups:
        return

    hoist_pos: dict[int, int] = {}  # weight value id -> anchor it moves to
    inserts: dict[int, list[Instr]] = {}  # anchor index -> replacement items
    drop: set[int] = set()  # original indices vacated by fusion/hoisting

    for members in groups.values():
        vox0 = members[0][1].args[0]
        group_dim = len(members[0][1].args) - 1
        group_specs = [tuple(w.id for w in m.args[1:]) for _, m in members]
        if not _fusion_profitable(group_dim, vox0.ty[2], group_specs):
            stats["rejected"] += 1
            continue
        # Partition the group into subgroups whose weights can all be
        # scheduled before the subgroup's anchor (its first member's slot).
        subgroups: list[dict] = []
        for idx, instr in members:
            placed = False
            for sg in subgroups:
                need: list[Value] = []
                ok = True
                for w in instr.args[1:]:
                    if _placeable(w, sg["anchor"], pos, hoist_pos):
                        continue
                    prod = w.producer
                    if (
                        isinstance(prod, Instr)
                        and prod.op == "weights"
                        and w.id in pos
                        and all(
                            _placeable(a, sg["anchor"], pos, hoist_pos)
                            for a in prod.args
                        )
                    ):
                        need.append(w)
                    else:
                        ok = False
                        break
                if ok:
                    for w in need:
                        if w.id not in hoist_pos:
                            sg["hoists"].append(body.items[pos[w.id]])
                            drop.add(pos[w.id])
                            hoist_pos[w.id] = sg["anchor"]
                    sg["members"].append((idx, instr))
                    placed = True
                    break
            if not placed:
                subgroups.append({"anchor": idx, "members": [(idx, instr)], "hoists": []})

        for sg in subgroups:
            mlist = sg["members"]
            anchor = sg["anchor"]
            first = mlist[0][1]
            vox = first.args[0]
            image = vox.ty[1]
            support = vox.ty[2]
            dim = len(first.args) - 1

            if len(mlist) == 1:
                if dim < 2:
                    continue  # 1-D lone contraction: nothing to split
                # Rewrite as an explicit chain of single-axis contractions.
                chain: list[Instr] = []
                val = vox
                for k in range(dim):
                    axes = dim - k
                    ca = Instr(
                        "contract_axis",
                        [val, first.args[1 + k]],
                        {"image": image, "support": support, "axes": axes},
                    )
                    if k == dim - 1:
                        r = first.results[0]
                        r.producer = ca
                        ca.results.append(r)
                    else:
                        val = ca.new_result(("part", image, support, axes - 1))
                    chain.append(ca)
                inserts[anchor] = sg["hoists"] + chain
                drop.add(anchor)
                stats["chains"] += 1
            else:
                # One multi-result probe_parts over the whole subgroup.
                weights: list[Value] = []
                windex: dict[int, int] = {}
                specs: list[tuple[int, ...]] = []
                for _, m in mlist:
                    spec = []
                    for w in m.args[1:]:
                        wi = windex.get(w.id)
                        if wi is None:
                            wi = windex[w.id] = len(weights)
                            weights.append(w)
                        spec.append(wi)
                    specs.append(tuple(spec))
                pp = Instr(
                    "probe_parts",
                    [vox] + weights,
                    {
                        "image": image,
                        "support": support,
                        "dim": dim,
                        "specs": tuple(specs),
                    },
                )
                for idx, m in mlist:
                    r = m.results[0]
                    r.producer = pp
                    pp.results.append(r)
                    drop.add(idx)
                inserts[anchor] = sg["hoists"] + [pp]
                stats["groups"] += 1
                stats["fused_contracts"] += len(mlist)
            stats["hoisted"] += len(sg["hoists"])

    if not inserts:
        return
    items = []
    for i, item in enumerate(body.items):
        ins = inserts.get(i)
        if ins:
            items.extend(ins)
        if i not in drop:
            items.append(item)
    body.items = items
