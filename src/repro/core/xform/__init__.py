"""Compiler transformation passes: normalization, lowering, optimization."""
