"""Value numbering over structured SSA (paper §5.4).

"We eliminate redundant computations using value numbering ... when
combined with the domain-specific operators in our IR, they produce
domain-specific optimizations that a general-purpose compiler would be
unlikely to achieve.  For example, if a program probes both a field F and
the gradient field ∇F at the same position, there are redundant
convolution computations that can be detected and eliminated.  Another
example is the symmetry of the Hessian, which is also detected by our
value-numbering pass."

Both examples fall out here exactly as described:

* probing ``F`` and ``∇F`` at the same position hashes the shared
  ``to_index`` / ``floor_i`` / ``fract`` / ``gather`` / order-0 ``weights``
  instructions to the same value numbers, so only the derivative weights
  and the final contractions differ;
* the Hessian components ``H[i][j]`` and ``H[j][i]`` lower to
  ``conv_contract`` instructions with *identical* argument lists (the same
  per-axis weight multiset), so the 9 contractions of a 3-D Hessian
  collapse to 6.

The walk is scoped lexically: a value computed in one branch of an ``if``
is available only within it, which is exactly dominance for structured
SSA.
"""

from __future__ import annotations

import numpy as np

from repro.core.ir.base import Body, Func, Instr, Value
from repro.kernels import Kernel

#: ops whose two arguments commute (sorted for hashing)
_COMMUTATIVE = {"add", "mul", "and", "or", "eq", "ne", "min", "max"}

#: ops that must not be merged even with equal keys (none currently — all
#: IR ops are pure — but kept as an explicit extension point)
_BARRIER: set[str] = set()


def _attr_key(v) -> object:
    if isinstance(v, np.ndarray):
        return ("ndarray", v.shape, str(v.dtype), v.tobytes())
    if isinstance(v, Kernel):
        # structural identity: two kernels with the same support and
        # piecewise polynomials compute the same weights, even when they
        # were constructed through different paths (e.g. bspline(3) vs the
        # interned KERNELS["bspln3"]).  Keying on id() here missed those
        # merges.
        return ("kernel", v.support, tuple(p.coeffs for p in v.pieces))
    if isinstance(v, (list, tuple)):
        return tuple(_attr_key(x) for x in v)
    if isinstance(v, float) and v != v:  # NaN constants never merge
        return ("nan", object())
    if isinstance(v, (bool, int, float)):
        # 1 == 1.0 == True in Python; an int constant must not merge with
        # a real constant (their runtime dtypes differ)
        return (type(v).__name__, v)
    return v


def _instr_key(instr: Instr, number: dict[int, int]) -> tuple:
    args = [number[a.id] for a in instr.args]
    if instr.op in _COMMUTATIVE and len(args) == 2:
        args.sort()
    attrs = tuple(sorted((k, _attr_key(v)) for k, v in instr.attrs.items()))
    return (instr.op, tuple(args), attrs)


class _Numbering:
    def __init__(self):
        self.next = 0
        self.number: dict[int, int] = {}  # value id -> value number
        self.repl: dict[int, Value] = {}
        self.removed = 0

    def fresh(self, v: Value) -> None:
        self.number[v.id] = self.next
        self.next += 1

    def resolve(self, v: Value) -> Value:
        while v.id in self.repl:
            v = self.repl[v.id]
        return v


def value_number(func: Func) -> int:
    """Run global value numbering in place; returns #instructions removed."""
    vn = _Numbering()
    for p in func.params:
        vn.fresh(p)

    def walk(body: Body, table: dict[tuple, Value]) -> None:
        new_items = []
        for item in body.items:
            if isinstance(item, Instr):
                item.args = [vn.resolve(a) for a in item.args]
                if len(item.results) == 1 and item.op not in _BARRIER:
                    key = _instr_key(item, vn.number)
                    hit = table.get(key)
                    if hit is not None:
                        vn.repl[item.results[0].id] = hit
                        vn.number[item.results[0].id] = vn.number[hit.id]
                        vn.removed += 1
                        continue  # drop the redundant instruction
                    vn.fresh(item.results[0])
                    table[key] = item.results[0]
                else:
                    for r in item.results:
                        vn.fresh(r)
                new_items.append(item)
            else:
                item.cond = vn.resolve(item.cond)
                walk(item.then_body, dict(table))
                walk(item.else_body, dict(table))
                for phi in item.phis:
                    phi.then_val = vn.resolve(phi.then_val)
                    phi.else_val = vn.resolve(phi.else_val)
                    if phi.then_val is phi.else_val:
                        vn.repl[phi.result.id] = phi.then_val
                        vn.number[phi.result.id] = vn.number[phi.then_val.id]
                    else:
                        vn.fresh(phi.result)
                item.phis = [p for p in item.phis if p.result.id not in vn.repl]
                new_items.append(item)
        body.items = new_items

    walk(func.body, {})
    func.results = [vn.resolve(r) for r in func.results]
    return vn.removed
