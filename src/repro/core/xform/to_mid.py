"""HighIR → MidIR: probe synthesis (paper §5.3, Figure 11).

Each HighIR ``probe`` becomes the explicit pipeline the paper describes —
"code that maps the world-space coordinates to image space and then
convolves the image values in the neighborhood of the position":

.. code-block:: text

   x  = M⁻¹ · pos                  to_index
   n  = ⌊x⌋,  f = x - n            floor_i / fract
   V  = image[n + offsets]         gather
   wₐ = h⁽ʳᵃ⁾(fₐ - i)              weights      (one per axis, per order)
   cᵢ = Σ V·w₀·w₁·w₂               conv_contract (one per derivative combo)
   T  = assemble(cᵢ)               deriv_assemble
   out = M⁻ᵀ ⊙ T                   grad_xform   (covariant pushback)

One ``conv_contract`` is emitted per derivative multi-index, so the
symmetric Hessian's off-diagonal pairs produce *identical* instructions for
value numbering to merge (§5.4), and probes of ``F`` and ``∇F`` at one
position share everything up to the weights.

``inside`` lowers to a bounds test on the index-space position.
"""

from __future__ import annotations

from repro.core.ir.base import Body, Func, Instr, Value
from repro.core.ir import ops as irops
from repro.core.ty.types import BOOL, TensorTy
from repro.core.xform.to_high import ImageSlot


def _combos(dim: int, deriv: int) -> list[tuple[int, ...]]:
    """Derivative multi-indices in row-major order (last index fastest)."""
    if deriv == 0:
        return [()]
    out = [()]
    for _ in range(deriv):
        out = [c + (a,) for c in out for a in range(dim)]
    return out


class _MidLowerer:
    def __init__(self, images: dict[str, ImageSlot]):
        self.images = images
        self.repl: dict[int, Value] = {}

    def resolve(self, v: Value) -> Value:
        while v.id in self.repl:
            v = self.repl[v.id]
        return v

    def lower_body(self, body: Body) -> Body:
        new = Body()
        for item in body.items:
            if isinstance(item, Instr):
                item.args = [self.resolve(a) for a in item.args]
                if item.op == "probe":
                    result = self.lower_probe(new, item)
                    self.repl[item.results[0].id] = result
                elif item.op == "inside":
                    result = self.lower_inside(new, item)
                    self.repl[item.results[0].id] = result
                else:
                    new.add(item)
            else:
                item.cond = self.resolve(item.cond)
                then_b = self.lower_body(item.then_body)
                else_b = self.lower_body(item.else_body)
                for phi in item.phis:
                    phi.then_val = self.resolve(phi.then_val)
                    phi.else_val = self.resolve(phi.else_val)
                item.then_body = then_b
                item.else_body = else_b
                new.add(item)
        return new

    def _index_pos(self, body: Body, pos: Value, image: str, dim: int) -> Value:
        if dim == 1:
            # 1-D probes take a real position; wrap it into a 1-vector
            pos = body.emit("tensor_cons", [pos], TensorTy((1,)))
        return body.emit("to_index", [pos], TensorTy((dim,)), image=image)

    def lower_probe(self, body: Body, instr: Instr) -> Value:
        image = instr.attrs["image"]
        kernel = instr.attrs["kernel"]
        deriv = instr.attrs["deriv"]
        slot = self.images[image]
        dim = slot.dim
        tshape = slot.shape
        support = kernel.support
        pos = instr.args[0]

        pidx = self._index_pos(body, pos, image, dim)
        n = body.emit("floor_i", [pidx], ("ivec", dim))
        f = body.emit("fract", [pidx], TensorTy((dim,)))
        vox = body.emit(
            "gather", [n], ("vox", image, support), image=image, support=support
        )
        f_axis = [
            body.emit("tensor_index", [f], TensorTy(()), indices=(a,))
            for a in range(dim)
        ]

        def weight(axis: int, order: int) -> Value:
            return body.emit(
                "weights",
                [f_axis[axis]],
                ("weights", 2 * support),
                kernel=kernel,
                deriv=order,
            )

        parts = []
        for combo in _combos(dim, deriv):
            ws = [weight(a, combo.count(a)) for a in range(dim)]
            parts.append(
                body.emit(
                    "conv_contract", [vox] + ws, TensorTy(tshape), image=image
                )
            )
        if deriv == 0:
            return parts[0]
        out_shape = tshape + (dim,) * deriv
        assembled = body.emit(
            "deriv_assemble",
            parts,
            TensorTy(out_shape),
            tshape=tshape,
            dim=dim,
            deriv=deriv,
        )
        return body.emit(
            "grad_xform", [assembled], TensorTy(out_shape), image=image, deriv=deriv
        )

    def lower_inside(self, body: Body, instr: Instr) -> Value:
        image = instr.attrs["image"]
        support = instr.attrs["support"]
        slot = self.images[image]
        pidx = self._index_pos(body, instr.args[0], image, slot.dim)
        return body.emit(
            "index_inside", [pidx], BOOL, image=image, support=support
        )


def to_mid(func: Func, images: dict[str, ImageSlot], check: bool = True) -> Func:
    """Lower one HighIR function to MidIR in place (body is rebuilt)."""
    lw = _MidLowerer(images)
    func.body = lw.lower_body(func.body)
    func.results = [lw.resolve(r) for r in func.results]
    if check:
        from repro.core.ir.base import validate

        validate(func, irops.MID, "MidIR")
    return func
