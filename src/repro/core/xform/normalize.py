"""Field normalization (paper §5.2, Figures 9-10).

"Diderot's fields are abstract values that represent continuous functions.
As such, we use a symbolic representation of field values in the compiler."
This module is that symbolic representation, together with the rewrite
system of Figure 10 that lowers higher-order field operations to operations
on tensors:

.. code-block:: text

   (f₁ + f₂)(x)  ⇒  f₁(x) + f₂(x)          ∇(f₁ + f₂)  ⇒  ∇f₁ + ∇f₂
   (e * f)(x)    ⇒  e * f(x)               ∇(e * f)    ⇒  e * ∇f
                                           ∇(V ⊛ ∇ⁱh)  ⇒  V ⊛ ∇ⁱ⁺¹h

The rewrites are oriented, so a field value built through the smart
constructors here is always in the normal form of Figure 9b, which
guarantees the three invariants the paper lists: differentiation reaches
the kernels, probed fields are direct convolutions, and field arithmetic
becomes tensor arithmetic.  The divergence/curl extensions (§8.3) normalize
to a contraction of a ``V ⊛ ∇ⁱ⁺¹h`` probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.ir.base import Value
from repro.errors import CompileError
from repro.kernels import Kernel


class SymField:
    """A symbolic field value (normalized form of Figure 9b).

    Attributes: ``dim`` (domain dimension), ``shape`` (range tensor shape),
    ``continuity`` (remaining continuous derivatives).
    """

    dim: int
    shape: tuple[int, ...]
    continuity: int

    def leaves(self) -> Iterator["SymConv"]:
        """All convolution leaves (for ``inside`` tests and diagnostics)."""
        raise NotImplementedError


@dataclass(frozen=True)
class SymConv(SymField):
    """``V ⊛ ∇ⁱh``: the terminal form of Figure 9b.

    ``image`` names a global image slot; ``image_dim``/``image_shape``
    record its type; ``deriv`` is the differentiation level ``i``.
    """

    image: str
    image_dim: int
    image_shape: tuple[int, ...]
    kernel: Kernel
    deriv: int

    @property
    def dim(self) -> int:
        return self.image_dim

    @property
    def shape(self) -> tuple[int, ...]:
        return self.image_shape + (self.image_dim,) * self.deriv

    @property
    def continuity(self) -> int:
        return self.kernel.continuity - self.deriv

    def leaves(self):
        yield self


@dataclass(frozen=True)
class SymSum(SymField):
    left: SymField
    right: SymField

    def __post_init__(self):
        if (self.left.dim, self.left.shape) != (self.right.dim, self.right.shape):
            raise CompileError("field sum of incompatible fields")

    @property
    def dim(self) -> int:
        return self.left.dim

    @property
    def shape(self) -> tuple[int, ...]:
        return self.left.shape

    @property
    def continuity(self) -> int:
        return min(self.left.continuity, self.right.continuity)

    def leaves(self):
        yield from self.left.leaves()
        yield from self.right.leaves()


@dataclass(frozen=True)
class SymScale(SymField):
    """``e * f`` where ``e`` is a runtime scalar.

    ``scale`` is an SSA :class:`Value` when the scaling happens inside the
    function being compiled, or a *global name* (str) when the field was
    defined in the global section — globals are per-function parameters,
    so a cross-function reference must go by name.
    """

    scale: object  # Value | str
    field: SymField

    @property
    def dim(self) -> int:
        return self.field.dim

    @property
    def shape(self) -> tuple[int, ...]:
        return self.field.shape

    @property
    def continuity(self) -> int:
        return self.field.continuity

    def leaves(self):
        yield from self.field.leaves()


@dataclass(frozen=True)
class SymContract(SymField):
    """Divergence/curl of a convolution: a contraction of ``V ⊛ ∇ⁱ⁺¹h``.

    ``kind`` is ``"div"``, ``"curl2"``, or ``"curl3"``.  The wrapped
    convolution already carries the raised derivative level; probing emits
    the Jacobian probe followed by the contraction.
    """

    kind: str
    conv: SymConv

    @property
    def dim(self) -> int:
        return self.conv.dim

    @property
    def shape(self) -> tuple[int, ...]:
        if self.kind == "curl3":
            return (3,)
        return ()

    @property
    def continuity(self) -> int:
        return self.conv.continuity

    def leaves(self):
        yield self.conv


# --------------------------------------------------------------------------
# the rewrite system (smart constructors keep values in normal form)


def conv(image: str, image_dim: int, image_shape: tuple[int, ...], kernel: Kernel) -> SymConv:
    """``V ⊛ h``: field construction from an image and a kernel."""
    return SymConv(image, image_dim, tuple(image_shape), kernel, 0)


def add(f1: SymField, f2: SymField) -> SymField:
    return SymSum(f1, f2)


def scale(e: Value, f: SymField) -> SymField:
    # Collapse nested scales structurally?  The scales are runtime values,
    # so we keep them; contraction/value numbering will clean up the
    # resulting multiplications instead.
    return SymScale(e, f)


def _check_differentiable(f: SymField, what: str) -> None:
    if f.continuity <= 0:
        raise CompileError(
            f"{what} of a C{f.continuity} field — the type checker should "
            "have rejected this"
        )


def deriv(f: SymField) -> SymField:
    """``∇f`` / ``∇⊗f``: push differentiation to the kernels (Figure 10)."""
    _check_differentiable(f, "derivative")
    if isinstance(f, SymConv):
        return SymConv(f.image, f.image_dim, f.image_shape, f.kernel, f.deriv + 1)
    if isinstance(f, SymSum):
        return SymSum(deriv(f.left), deriv(f.right))
    if isinstance(f, SymScale):
        return SymScale(f.scale, deriv(f.field))
    raise CompileError(f"cannot differentiate {type(f).__name__}")


def divergence(f: SymField) -> SymField:
    """``∇•f`` for a d-vector field (§8.3 extension)."""
    _check_differentiable(f, "divergence")
    if isinstance(f, SymConv):
        raised = SymConv(f.image, f.image_dim, f.image_shape, f.kernel, f.deriv + 1)
        return SymContract("div", raised)
    if isinstance(f, SymSum):
        return SymSum(divergence(f.left), divergence(f.right))
    if isinstance(f, SymScale):
        return SymScale(f.scale, divergence(f.field))
    raise CompileError(f"cannot take divergence of {type(f).__name__}")


def curl(f: SymField) -> SymField:
    """``∇×f`` for a 2-D or 3-D vector field (§8.3 extension)."""
    _check_differentiable(f, "curl")
    if isinstance(f, SymConv):
        if f.shape != (f.dim,) or f.dim not in (2, 3):
            raise CompileError("curl requires a 2-D or 3-D vector field")
        raised = SymConv(f.image, f.image_dim, f.image_shape, f.kernel, f.deriv + 1)
        return SymContract("curl2" if f.dim == 2 else "curl3", raised)
    if isinstance(f, SymSum):
        return SymSum(curl(f.left), curl(f.right))
    if isinstance(f, SymScale):
        return SymScale(f.scale, curl(f.field))
    raise CompileError(f"cannot take curl of {type(f).__name__}")


def is_normal(f: SymField) -> bool:
    """True if ``f`` is in the normal form of Figure 9b (it always is when
    built via this module's constructors; used as a sanity check)."""
    if isinstance(f, SymConv):
        return True
    if isinstance(f, SymSum):
        return is_normal(f.left) and is_normal(f.right)
    if isinstance(f, SymScale):
        return is_normal(f.field)
    if isinstance(f, SymContract):
        return True
    return False
