"""MidIR → LowIR: kernel-evaluation expansion (paper §5.3).

"The final step in generating executable code for field probes is to
expand the kernel evaluations ... The kernels that Diderot supports are
all piecewise polynomial, so it is straightforward to symbolically
differentiate them."

Each MidIR ``weights`` instruction — a whole per-axis weight vector —
expands into ``2s`` ``horner`` instructions (one fixed polynomial in the
in-cell fraction per sample offset, coefficients baked in as attributes)
followed by a ``vec_cons`` packing them into the weight vector.  After this
pass the only remaining domain ops are memory ops (``gather``) and
contractions; everything else is scalar/vector arithmetic — the paper's
"code that is easily vectorized".
"""

from __future__ import annotations

from repro.core.ir.base import Body, Func, Instr, Value
from repro.core.ir import ops as irops
from repro.core.ty.types import TensorTy


class _LowLowerer:
    def __init__(self):
        self.repl: dict[int, Value] = {}

    def resolve(self, v: Value) -> Value:
        while v.id in self.repl:
            v = self.repl[v.id]
        return v

    def lower_body(self, body: Body) -> Body:
        new = Body()
        for item in body.items:
            if isinstance(item, Instr):
                item.args = [self.resolve(a) for a in item.args]
                if item.op == "weights":
                    self.repl[item.results[0].id] = self.lower_weights(new, item)
                else:
                    new.add(item)
            else:
                item.cond = self.resolve(item.cond)
                item.then_body = self.lower_body(item.then_body)
                item.else_body = self.lower_body(item.else_body)
                for phi in item.phis:
                    phi.then_val = self.resolve(phi.then_val)
                    phi.else_val = self.resolve(phi.else_val)
                new.add(item)
        return new

    def lower_weights(self, body: Body, instr: Instr) -> Value:
        kernel = instr.attrs["kernel"]
        order = instr.attrs["deriv"]
        f = instr.args[0]
        polys = kernel.derivative(order).weight_polynomials()
        scalars = [
            body.emit("horner", [f], TensorTy(()), coeffs=p.coeffs)
            for p in polys
        ]
        return body.emit(
            "vec_cons", scalars, ("weights", len(polys))
        )


def to_low(func: Func, check: bool = True) -> Func:
    """Lower one MidIR function to LowIR in place (body is rebuilt)."""
    lw = _LowLowerer()
    func.body = lw.lower_body(func.body)
    func.results = [lw.resolve(r) for r in func.results]
    if check:
        from repro.core.ir.base import validate

        validate(func, irops.LOW, "LowIR")
    return func
