"""Simplification: AST→AST rewrites before IR construction (paper §5.1)."""

from repro.core.simple.simplify import (
    RUNNING,
    STABILIZE,
    DIE,
    STATUS_VAR,
    eliminate_exits,
    hoist_field_conditionals,
    simplify_method,
)

__all__ = [
    "DIE",
    "RUNNING",
    "STABILIZE",
    "STATUS_VAR",
    "eliminate_exits",
    "hoist_field_conditionals",
    "simplify_method",
]
