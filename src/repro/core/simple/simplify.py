"""The simplification phase (paper §5.1).

Two rewrites on the *typed* AST prepare a strand method for SSA
construction:

1. **Field-conditional duplication.**  "We also duplicate code, as
   necessary, to ensure that fields are statically determined": an
   operation applied to a field-typed conditional is pushed into both
   branches, e.g. ``(F1 if b else F2)(x)`` becomes
   ``F1(x) if b else F2(x)``.  The paper notes this can cause exponential
   growth in pathological programs; in practice field conditionals are
   rare and shallow.

2. **Early-exit elimination.**  ``stabilize``/``die`` cease execution of
   the update method immediately (§3.3.2).  We lower them to assignments
   of a synthetic ``int`` status variable (``$status``), guarding the
   statements that follow an exiting conditional with
   ``if ($status == RUNNING)``.  The result has single-exit structured
   control flow, which is what lets the whole method compile to predicated
   straight-line SSA.
"""

from __future__ import annotations

import dataclasses

from repro.core.syntax import ast
from repro.core.syntax.source import Span
from repro.core.ty.types import BOOL, FieldTy, INT

#: synthetic local tracking the strand's exit status within one update call.
STATUS_VAR = "$status"
RUNNING = 0
STABILIZE = 1
DIE = 2

_SPAN = Span(0, 0)


# --------------------------------------------------------------------------
# 1. field-conditional duplication


def _is_field_cond(e) -> bool:
    return isinstance(e, ast.Cond) and isinstance(e.ty, FieldTy)


def _expr_children(e: ast.Expr) -> list[tuple[str, object]]:
    """(field_name, value) pairs for the expression-valued children."""
    out = []
    for f in dataclasses.fields(e):
        v = getattr(e, f.name)
        if isinstance(v, ast.Expr):
            out.append((f.name, v))
        elif isinstance(v, list) and v and all(isinstance(x, ast.Expr) for x in v):
            out.append((f.name, v))
    return out


def _replace_child(e: ast.Expr, name: str, new) -> ast.Expr:
    """A shallow copy of ``e`` with one child replaced, preserving ``ty``."""
    copy = dataclasses.replace(e, **{name: new})
    copy.ty = e.ty
    return copy


def hoist_field_conditionals(e: ast.Expr) -> ast.Expr:
    """Push operations on field-typed conditionals into the branches.

    After this rewrite no field-typed ``Cond`` remains *under* another
    operation; a field-typed Cond may only survive at top level of a
    field-typed expression (where it is consumed by a declaration, which
    the symbolic evaluator handles by the same duplication).
    """
    # rewrite children first
    for name, child in _expr_children(e):
        if isinstance(child, list):
            new_list = [hoist_field_conditionals(c) for c in child]
            if any(n is not o for n, o in zip(new_list, child)):
                e = _replace_child(e, name, new_list)
        else:
            new_child = hoist_field_conditionals(child)
            if new_child is not child:
                e = _replace_child(e, name, new_child)
    # If e itself is an operation over a field-typed Cond child, distribute.
    # (A field-typed Cond that *is* e stays; its consumer distributes.)
    if isinstance(e, ast.Cond):
        return e
    for name, child in _expr_children(e):
        if isinstance(child, list):
            for i, c in enumerate(child):
                if _is_field_cond(c):
                    then_list = list(child)
                    then_list[i] = c.then_e
                    else_list = list(child)
                    else_list[i] = c.else_e
                    then_e = hoist_field_conditionals(
                        _replace_child(e, name, then_list)
                    )
                    else_e = hoist_field_conditionals(
                        _replace_child(e, name, else_list)
                    )
                    out = ast.Cond(e.span, then_e, c.cond, else_e)
                    out.ty = e.ty
                    return out
        elif _is_field_cond(child):
            then_e = hoist_field_conditionals(_replace_child(e, name, child.then_e))
            else_e = hoist_field_conditionals(_replace_child(e, name, child.else_e))
            out = ast.Cond(e.span, then_e, child.cond, else_e)
            out.ty = e.ty
            return out
    return e


def _map_exprs_stmt(s: ast.Stmt, fn) -> ast.Stmt:
    if isinstance(s, ast.Block):
        return ast.Block(s.span, [_map_exprs_stmt(x, fn) for x in s.stmts])
    if isinstance(s, ast.DeclStmt):
        return ast.DeclStmt(s.span, s.ty_expr, s.name, fn(s.init))
    if isinstance(s, ast.AssignStmt):
        return ast.AssignStmt(s.span, s.name, s.op, fn(s.value))
    if isinstance(s, ast.IfStmt):
        return ast.IfStmt(
            s.span,
            fn(s.cond),
            _map_exprs_stmt(s.then_s, fn),
            None if s.else_s is None else _map_exprs_stmt(s.else_s, fn),
        )
    return s


# --------------------------------------------------------------------------
# 2. early-exit elimination


def _may_exit(s: ast.Stmt) -> bool:
    if isinstance(s, (ast.StabilizeStmt, ast.DieStmt)):
        return True
    if isinstance(s, ast.Block):
        return any(_may_exit(x) for x in s.stmts)
    if isinstance(s, ast.IfStmt):
        return _may_exit(s.then_s) or (s.else_s is not None and _may_exit(s.else_s))
    return False


def _status_assign(code: int) -> ast.AssignStmt:
    lit = ast.IntLit(_SPAN, code)
    lit.ty = INT
    return ast.AssignStmt(_SPAN, STATUS_VAR, "=", lit)


def _running_guard(body: list[ast.Stmt]) -> ast.IfStmt:
    status = ast.Var(_SPAN, STATUS_VAR)
    status.ty = INT
    zero = ast.IntLit(_SPAN, RUNNING)
    zero.ty = INT
    cond = ast.BinOp(_SPAN, "==", status, zero)
    cond.ty = BOOL
    return ast.IfStmt(_SPAN, cond, ast.Block(_SPAN, body), None)


def eliminate_exits(stmts: list[ast.Stmt]) -> list[ast.Stmt]:
    """Rewrite a statement list into single-exit form.

    ``stabilize``/``die`` become assignments to ``$status``; statements
    following a possibly-exiting conditional are wrapped in an
    ``if ($status == RUNNING)`` guard.  Statements after an unconditional
    exit are unreachable and dropped.
    """
    out: list[ast.Stmt] = []
    for i, s in enumerate(stmts):
        if isinstance(s, ast.StabilizeStmt):
            out.append(_status_assign(STABILIZE))
            return out  # rest unreachable
        if isinstance(s, ast.DieStmt):
            out.append(_status_assign(DIE))
            return out
        if isinstance(s, ast.Block):
            inner = eliminate_exits(s.stmts)
            out.append(ast.Block(s.span, inner))
            if _may_exit(s):
                rest = eliminate_exits(stmts[i + 1:])
                if rest:
                    out.append(_running_guard(rest))
                return out
            continue
        if isinstance(s, ast.IfStmt):
            then_s = ast.Block(s.then_s.span, eliminate_exits([s.then_s]))
            else_s = (
                None
                if s.else_s is None
                else ast.Block(s.else_s.span, eliminate_exits([s.else_s]))
            )
            out.append(ast.IfStmt(s.span, s.cond, then_s, else_s))
            if _may_exit(s):
                rest = eliminate_exits(stmts[i + 1:])
                if rest:
                    out.append(_running_guard(rest))
                return out
            continue
        out.append(s)
    return out


def simplify_method(body: ast.Block, is_update: bool) -> ast.Block:
    """Apply both simplification rewrites to a method body."""
    stmts = body.stmts
    if is_update:
        stmts = eliminate_exits(stmts)
    new = ast.Block(body.span, [_map_exprs_stmt(s, hoist_field_conditionals) for s in stmts])
    return new
