"""Compile and cache native-backend C modules.

Thin wrapper around the system C compiler and :mod:`cffi`'s ABI mode:

- :func:`compiler_available` — can this machine build and load native
  kernels at all (cffi importable + a ``cc``/``gcc``/``clang`` on PATH)?
- :func:`build` — compile a C translation unit emitted by
  :mod:`repro.core.codegen.cgen` into a shared object and ``dlopen`` it,
  returning ``(lib, ffi)``.

Artifacts are cached on disk keyed by a hash of the source, the exact flag
set, the compiler path, and the toolchain version (``cc --version``), so
repeat builds of the same program are a single ``dlopen`` — and a flags or
toolchain change can never serve a stale ``.so``.  The version probe is
memoized per compiler path (one subprocess per process lifetime, not one
per build), and a *failed* probe mixes a per-path failure sentinel into
the key: two broken toolchains at different paths must never hash to the
same artifact.  The cache directory is ``$REPRO_CGEN_CACHE`` or
``~/.cache/repro-cgen``; each entry stores both ``<key>.c`` (for
inspection/debugging) and ``<key>.so``.

Concurrency: writes go through a pid-suffixed temporary plus
:func:`os.replace` (atomic publish), and the compile itself runs under a
per-key inter-process file lock (``<key>.lock``) so a cold-cache stampede
— N process workers missing on the same key at once — does exactly one
compile; the other workers wait on the lock and reuse the published
artifact.  Locks time out (``REPRO_CGEN_LOCK_TIMEOUT``, default 300 s)
and stale locks left by crashed builders are broken and reclaimed.

Hygiene: a failed build removes its ``<key>.c`` and temporary ``.so``
so failures never leak files into the cache, and when
``REPRO_CGEN_CACHE_MAX`` is set (max number of cached artifacts; default
unbounded) the least-recently-used entries (by ``.so`` mtime — refreshed
on every cache hit) are evicted after each successful build, so a
long-lived server's cache stays bounded.

Flag sets come from :func:`flags_for`: both precisions build with
``-O3 -march=native -fno-math-errno -fopenmp-simd`` so the batched lane
loops emitted by :mod:`~repro.core.codegen.cgen` actually vectorize.  On the
double-precision path ``-ffp-contract=off`` is load-bearing: it forbids
fused multiply-adds so the native kernels round exactly like the NumPy
oracle.  The single-precision path omits it (FMA allowed; its oracle
tolerance is relaxed).  If the compiler rejects ``-march=native`` (exotic
targets), the build retries once without it — the cache key still reflects
the *requested* flags.  All failures are wrapped in
:class:`~repro.errors.CodegenError` so ``Program`` can fall back to the
NumPy backend.
"""

from __future__ import annotations

import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import threading
import time

from ...errors import CodegenError
from ...obs import metrics as _mx

__all__ = [
    "CDEF",
    "CFLAGS",
    "build",
    "cache_dir",
    "compiler_available",
    "compiler_version",
    "find_compiler",
    "flags_for",
]

#: The fixed entry-point ABI shared by every generated module (see cgen).
#: RP entries point at dd_real payloads (double or float per the plan's
#: ``real_dtype``), so the table itself is ``void **``.
CDEF = (
    "int dd_update(void **RP, int64_t **IP, unsigned char **BP,"
    " const double *SC, const int64_t *IC,"
    " const int64_t *idx, int64_t start, int64_t end);"
)

#: how long a waiter polls a peer's build lock before assuming the
#: builder is dead (seconds; also the stale-lock age threshold)
DEFAULT_LOCK_TIMEOUT = 300.0


def flags_for(single: bool = False) -> list[str]:
    """Compiler flag set for a kernel of the given precision."""
    flags = ["-O3"]
    if not single:
        # forbids FMA contraction so double kernels round exactly like the
        # NumPy oracle (1e-12 differential agreement)
        flags.append("-ffp-contract=off")
    flags += [
        "-march=native",
        "-fno-math-errno",
        "-fopenmp-simd",
        "-fPIC",
        "-shared",
        "-w",
    ]
    return flags


#: Default (double-precision) compiler flags.
CFLAGS = flags_for(False)

_COMPILERS = ("cc", "gcc", "clang")


def find_compiler() -> str | None:
    """Path of the first working C compiler on PATH, or None."""
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def _have_cffi() -> bool:
    try:
        import cffi  # noqa: F401
    except Exception:
        return False
    return True


def compiler_available() -> bool:
    """True when native kernels can be built and loaded on this machine."""
    return _have_cffi() and find_compiler() is not None


def cache_dir() -> str:
    """The on-disk artifact cache directory (created on demand)."""
    d = os.environ.get("REPRO_CGEN_CACHE")
    if not d:
        d = os.path.join(os.path.expanduser("~"), ".cache", "repro-cgen")
    os.makedirs(d, exist_ok=True)
    return d


# compiler path → version line (or failure sentinel), probed once per
# process instead of forking `cc --version` on every build call
_VERSION_CACHE: dict[str, str] = {}
_VERSION_LOCK = threading.Lock()


def compiler_version(cc: str) -> str:
    """The toolchain's ``--version`` first line, memoized per path.

    A failed probe (missing binary, non-zero exit, empty output, timeout)
    returns a sentinel that embeds the compiler *path* and the failure
    kind: two different broken toolchains must key different artifacts,
    never serve each other's.  The sentinel is cached like a success —
    a broken probe is stable for the life of the process.
    """
    with _VERSION_LOCK:
        ver = _VERSION_CACHE.get(cc)
    if ver is not None:
        return ver
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
        first = proc.stdout.splitlines()[:1]
        if proc.returncode != 0 or not first or not first[0].strip():
            ver = f"version-probe-failed:{cc}:rc={proc.returncode}"
        else:
            ver = first[0].strip()
    except Exception as exc:
        ver = f"version-probe-failed:{cc}:{type(exc).__name__}"
    with _VERSION_LOCK:
        _VERSION_CACHE[cc] = ver
    return ver


def _cache_key(c_source: str, cc: str, flags: list[str]) -> str:
    h = hashlib.sha256()
    h.update(c_source.encode())
    h.update("\0".join(flags).encode())
    h.update(cc.encode())
    h.update(platform.machine().encode())
    # toolchain version: a new compiler may emit different code for the
    # same source, so it must key the artifact (failure sentinel included
    # — see compiler_version)
    h.update(compiler_version(cc).encode())
    return h.hexdigest()[:32]


def _atomic_write(path: str, data: bytes) -> None:
    d = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=d, suffix=f".tmp{os.getpid()}")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _lock_timeout() -> float:
    try:
        return float(os.environ.get("REPRO_CGEN_LOCK_TIMEOUT", ""))
    except ValueError:
        return DEFAULT_LOCK_TIMEOUT


class _KeyLock:
    """A per-key inter-process build lock (``<key>.lock``).

    ``O_CREAT | O_EXCL`` makes acquisition atomic across processes.  The
    lock file carries the owner's pid for debugging; a lock older than
    the timeout is presumed abandoned (builder crashed before its
    ``finally``) and broken so waiters can reclaim the key.
    """

    def __init__(self, path: str, timeout: float):
        self.path = path
        self.timeout = timeout
        self.held = False

    def try_acquire(self) -> bool:
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            self._break_if_stale()
            return False
        with os.fdopen(fd, "w") as f:
            f.write(f"{os.getpid()}\n")
        self.held = True
        return True

    def _break_if_stale(self) -> None:
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return  # released between the open and the stat
        if age > self.timeout:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def release(self) -> None:
        if self.held:
            self.held = False
            try:
                os.unlink(self.path)
            except OSError:
                pass


def _evict_lru(d: str, keep_key: str | None = None) -> int:
    """Bound the cache to ``REPRO_CGEN_CACHE_MAX`` entries (LRU by mtime).

    Also sweeps build debris: ``*.tmp*`` temporaries and orphan ``.c``
    files (no published ``.so``) older than the lock timeout — leftovers
    from builders that died without cleanup.  Returns the number of
    artifacts evicted.
    """
    now = time.time()
    horizon = _lock_timeout()
    sos = []
    for name in os.listdir(d):
        path = os.path.join(d, name)
        try:
            mtime = os.stat(path).st_mtime
        except OSError:
            continue
        if ".tmp" in name or name.endswith(".lock"):
            if now - mtime > horizon:
                _unlink_quiet(path)
            continue
        if name.endswith(".so"):
            sos.append((mtime, path))
        elif name.endswith(".c"):
            if not os.path.exists(path[:-2] + ".so") and now - mtime > horizon:
                _unlink_quiet(path)
    raw = os.environ.get("REPRO_CGEN_CACHE_MAX")
    if not raw:
        return 0
    try:
        limit = int(raw)
    except ValueError:
        return 0
    if limit <= 0 or len(sos) <= limit:
        return 0
    sos.sort()  # oldest mtime first; hits re-touch their .so (see build)
    evicted = 0
    for _, path in sos[: len(sos) - limit]:
        if keep_key and os.path.basename(path) == f"{keep_key}.so":
            continue
        _unlink_quiet(path)
        _unlink_quiet(path[:-3] + ".c")
        evicted += 1
    if evicted:
        _mx.ACTIVE.inc("cgen.cache.evicted", evicted)
    return evicted


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _compile(cc: str, flags: list[str], c_path: str, so_path: str,
             d: str) -> None:
    """Run the compiler and atomically publish ``so_path``.

    On *any* failure the entry's ``.c`` and the temporary ``.so`` are
    removed — a failed build must leave nothing behind in the cache.
    """
    fd, tmp_so = tempfile.mkstemp(dir=d, suffix=f".so.tmp{os.getpid()}")
    os.close(fd)
    ok = False
    try:
        proc = subprocess.run(
            [cc, *flags, "-o", tmp_so, c_path, "-lm"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        if proc.returncode != 0 and "-march=native" in flags:
            # some toolchains/targets reject -march=native; retry
            # without it (the cache key stays on the requested flags)
            retry = [f for f in flags if f != "-march=native"]
            proc = subprocess.run(
                [cc, *retry, "-o", tmp_so, c_path, "-lm"],
                capture_output=True,
                text=True,
                timeout=300,
            )
        if proc.returncode != 0:
            raise CodegenError(
                f"native backend: C compilation failed:\n{proc.stderr.strip()}"
            )
        os.replace(tmp_so, so_path)
        ok = True
    except CodegenError:
        raise
    except Exception as exc:
        raise CodegenError(f"native backend: C compilation failed: {exc}") from exc
    finally:
        _unlink_quiet(tmp_so)
        if not ok:
            _unlink_quiet(c_path)


def build(c_source: str, flags: list[str] | None = None):
    """Compile ``c_source`` (or reuse a cached artifact) and dlopen it.

    ``flags`` defaults to the double-precision :data:`CFLAGS`; pass
    ``flags_for(True)`` for single-precision kernels.  Returns
    ``(lib, ffi)`` where ``lib.dd_update`` is the native entry point.  The
    cffi call releases the GIL for its whole duration, which is what lets
    the thread scheduler scale across cores.  Raises :class:`CodegenError`
    when no compiler/cffi is available or the build fails.

    Cold-cache concurrency contract: concurrent builders of the same key
    (threads or processes) serialize on ``<key>.lock`` — one compiles,
    the rest wait and reuse the published ``.so``.  Metrics:
    ``cgen.cache.hits`` / ``.misses`` / ``.lock_waits`` / ``.evicted``.
    """
    if flags is None:
        flags = CFLAGS
    if not _have_cffi():
        raise CodegenError("native backend unavailable: cffi is not importable")
    cc = find_compiler()
    if cc is None:
        raise CodegenError(
            "native backend unavailable: no C compiler (cc/gcc/clang) on PATH"
        )

    import cffi

    d = cache_dir()
    key = _cache_key(c_source, cc, flags)
    so_path = os.path.join(d, f"{key}.so")
    c_path = os.path.join(d, f"{key}.c")

    if os.path.exists(so_path):
        _mx.ACTIVE.inc("cgen.cache.hits")
        # refresh the artifact's LRU position so hot entries survive
        # REPRO_CGEN_CACHE_MAX eviction
        try:
            os.utime(so_path)
        except OSError:
            pass
    else:
        _build_locked(cc, flags, c_source, c_path, so_path, d, key)

    try:
        ffi = cffi.FFI()
        ffi.cdef(CDEF)
        lib = ffi.dlopen(so_path)
    except Exception as exc:
        raise CodegenError(f"native backend: failed to load {so_path}: {exc}") from exc
    return lib, ffi


def _build_locked(cc, flags, c_source, c_path, so_path, d, key) -> None:
    """The cold-cache path: compile under the per-key file lock."""
    timeout = _lock_timeout()
    lock = _KeyLock(os.path.join(d, f"{key}.lock"), timeout)
    deadline = time.monotonic() + timeout
    waited = False
    try:
        while True:
            if os.path.exists(so_path):
                # a peer published while we waited: a shared-stampede hit
                _mx.ACTIVE.inc("cgen.cache.hits")
                if waited:
                    _mx.ACTIVE.inc("cgen.cache.lock_waits")
                return
            if lock.try_acquire():
                if os.path.exists(so_path):  # re-check under the lock
                    _mx.ACTIVE.inc("cgen.cache.hits")
                    return
                _mx.ACTIVE.inc("cgen.cache.misses")
                if waited:
                    _mx.ACTIVE.inc("cgen.cache.lock_waits")
                _atomic_write(c_path, c_source.encode())
                _compile(cc, flags, c_path, so_path, d)
                _evict_lru(d, keep_key=key)
                return
            waited = True
            if time.monotonic() > deadline:
                raise CodegenError(
                    f"native backend: timed out after {timeout:.0f}s waiting "
                    f"for a concurrent build of {key} (stale {key}.lock?)"
                )
            time.sleep(0.02)
    finally:
        lock.release()
