"""Compile and cache native-backend C modules.

Thin wrapper around the system C compiler and :mod:`cffi`'s ABI mode:

- :func:`compiler_available` — can this machine build and load native
  kernels at all (cffi importable + a ``cc``/``gcc``/``clang`` on PATH)?
- :func:`build` — compile a C translation unit emitted by
  :mod:`repro.core.codegen.cgen` into a shared object and ``dlopen`` it,
  returning ``(lib, ffi)``.

Artifacts are cached on disk keyed by a hash of the source, the exact flag
set, the compiler path, and the toolchain version (``cc --version``), so
repeat builds of the same program are a single ``dlopen`` — and a flags or
toolchain change can never serve a stale ``.so``.  The cache directory is
``$REPRO_CGEN_CACHE`` or ``~/.cache/repro-cgen``; each entry stores both
``<key>.c`` (for inspection/debugging) and ``<key>.so``.  Writes go through
a pid-suffixed temporary plus :func:`os.replace`, so concurrent builders
(e.g. forked process-scheduler workers racing on a cold cache) are safe.

Flag sets come from :func:`flags_for`: both precisions build with
``-O3 -march=native -fno-math-errno -fopenmp-simd`` so the batched lane
loops emitted by :mod:`~repro.core.codegen.cgen` actually vectorize.  On the
double-precision path ``-ffp-contract=off`` is load-bearing: it forbids
fused multiply-adds so the native kernels round exactly like the NumPy
oracle.  The single-precision path omits it (FMA allowed; its oracle
tolerance is relaxed).  If the compiler rejects ``-march=native`` (exotic
targets), the build retries once without it — the cache key still reflects
the *requested* flags.  All failures are wrapped in
:class:`~repro.errors.CodegenError` so ``Program`` can fall back to the
NumPy backend.
"""

from __future__ import annotations

import hashlib
import os
import platform
import shutil
import subprocess
import tempfile

from ...errors import CodegenError

__all__ = [
    "CDEF",
    "CFLAGS",
    "build",
    "cache_dir",
    "compiler_available",
    "find_compiler",
    "flags_for",
]

#: The fixed entry-point ABI shared by every generated module (see cgen).
#: RP entries point at dd_real payloads (double or float per the plan's
#: ``real_dtype``), so the table itself is ``void **``.
CDEF = (
    "int dd_update(void **RP, int64_t **IP, unsigned char **BP,"
    " const double *SC, const int64_t *IC,"
    " const int64_t *idx, int64_t start, int64_t end);"
)


def flags_for(single: bool = False) -> list[str]:
    """Compiler flag set for a kernel of the given precision."""
    flags = ["-O3"]
    if not single:
        # forbids FMA contraction so double kernels round exactly like the
        # NumPy oracle (1e-12 differential agreement)
        flags.append("-ffp-contract=off")
    flags += [
        "-march=native",
        "-fno-math-errno",
        "-fopenmp-simd",
        "-fPIC",
        "-shared",
        "-w",
    ]
    return flags


#: Default (double-precision) compiler flags.
CFLAGS = flags_for(False)

_COMPILERS = ("cc", "gcc", "clang")


def find_compiler() -> str | None:
    """Path of the first working C compiler on PATH, or None."""
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def _have_cffi() -> bool:
    try:
        import cffi  # noqa: F401
    except Exception:
        return False
    return True


def compiler_available() -> bool:
    """True when native kernels can be built and loaded on this machine."""
    return _have_cffi() and find_compiler() is not None


def cache_dir() -> str:
    """The on-disk artifact cache directory (created on demand)."""
    d = os.environ.get("REPRO_CGEN_CACHE")
    if not d:
        d = os.path.join(os.path.expanduser("~"), ".cache", "repro-cgen")
    os.makedirs(d, exist_ok=True)
    return d


def _cache_key(c_source: str, cc: str, flags: list[str]) -> str:
    h = hashlib.sha256()
    h.update(c_source.encode())
    h.update("\0".join(flags).encode())
    h.update(cc.encode())
    h.update(platform.machine().encode())
    # toolchain version: a new compiler may emit different code for the
    # same source, so it must key the artifact
    try:
        ver = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        ).stdout.splitlines()[:1]
        h.update("".join(ver).encode())
    except Exception:
        pass
    return h.hexdigest()[:32]


def _atomic_write(path: str, data: bytes) -> None:
    d = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=d, suffix=f".tmp{os.getpid()}")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def build(c_source: str, flags: list[str] | None = None):
    """Compile ``c_source`` (or reuse a cached artifact) and dlopen it.

    ``flags`` defaults to the double-precision :data:`CFLAGS`; pass
    ``flags_for(True)`` for single-precision kernels.  Returns
    ``(lib, ffi)`` where ``lib.dd_update`` is the native entry point.  The
    cffi call releases the GIL for its whole duration, which is what lets
    the thread scheduler scale across cores.  Raises :class:`CodegenError`
    when no compiler/cffi is available or the build fails.
    """
    if flags is None:
        flags = CFLAGS
    if not _have_cffi():
        raise CodegenError("native backend unavailable: cffi is not importable")
    cc = find_compiler()
    if cc is None:
        raise CodegenError(
            "native backend unavailable: no C compiler (cc/gcc/clang) on PATH"
        )

    import cffi

    d = cache_dir()
    key = _cache_key(c_source, cc, flags)
    so_path = os.path.join(d, f"{key}.so")
    c_path = os.path.join(d, f"{key}.c")

    if not os.path.exists(so_path):
        _atomic_write(c_path, c_source.encode())
        fd, tmp_so = tempfile.mkstemp(dir=d, suffix=f".so.tmp{os.getpid()}")
        os.close(fd)
        try:
            proc = subprocess.run(
                [cc, *flags, "-o", tmp_so, c_path, "-lm"],
                capture_output=True,
                text=True,
                timeout=300,
            )
            if proc.returncode != 0 and "-march=native" in flags:
                # some toolchains/targets reject -march=native; retry
                # without it (the cache key stays on the requested flags)
                retry = [f for f in flags if f != "-march=native"]
                proc = subprocess.run(
                    [cc, *retry, "-o", tmp_so, c_path, "-lm"],
                    capture_output=True,
                    text=True,
                    timeout=300,
                )
            if proc.returncode != 0:
                raise CodegenError(
                    f"native backend: C compilation failed:\n{proc.stderr.strip()}"
                )
            os.replace(tmp_so, so_path)
        except CodegenError:
            raise
        except Exception as exc:
            raise CodegenError(f"native backend: C compilation failed: {exc}") from exc
        finally:
            try:
                os.unlink(tmp_so)
            except OSError:
                pass

    try:
        ffi = cffi.FFI()
        ffi.cdef(CDEF)
        lib = ffi.dlopen(so_path)
    except Exception as exc:
        raise CodegenError(f"native backend: failed to load {so_path}: {exc}") from exc
    return lib, ffi
