"""Compile and cache native-backend C modules.

Thin wrapper around the system C compiler and :mod:`cffi`'s ABI mode:

- :func:`compiler_available` — can this machine build and load native
  kernels at all (cffi importable + a ``cc``/``gcc``/``clang`` on PATH)?
- :func:`build` — compile a C translation unit emitted by
  :mod:`repro.core.codegen.cgen` into a shared object and ``dlopen`` it,
  returning ``(lib, ffi)``.

Artifacts are cached on disk keyed by a hash of the source, the compiler
command line, and the toolchain versions, so repeat builds of the same
program are a single ``dlopen``.  The cache directory is
``$REPRO_CGEN_CACHE`` or ``~/.cache/repro-cgen``; each entry stores both
``<key>.c`` (for inspection/debugging) and ``<key>.so``.  Writes go through
a pid-suffixed temporary plus :func:`os.replace`, so concurrent builders
(e.g. forked process-scheduler workers racing on a cold cache) are safe.

``-ffp-contract=off`` is load-bearing: it forbids fused multiply-adds so
the native kernels round exactly like the NumPy oracle.  All failures are
wrapped in :class:`~repro.errors.CodegenError` so ``Program`` can fall back
to the NumPy backend.
"""

from __future__ import annotations

import hashlib
import os
import platform
import shutil
import subprocess
import tempfile

from ...errors import CodegenError

__all__ = ["CDEF", "build", "cache_dir", "compiler_available", "find_compiler"]

#: The fixed entry-point ABI shared by every generated module (see cgen).
CDEF = (
    "int dd_update(double **RP, int64_t **IP, unsigned char **BP,"
    " const double *SC, const int64_t *IC,"
    " const int64_t *idx, int64_t start, int64_t end);"
)

#: Compiler flags; -ffp-contract=off keeps FMA off for NumPy bit-parity.
CFLAGS = ["-O3", "-ffp-contract=off", "-fno-math-errno", "-fPIC", "-shared", "-w"]

_COMPILERS = ("cc", "gcc", "clang")


def find_compiler() -> str | None:
    """Path of the first working C compiler on PATH, or None."""
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def _have_cffi() -> bool:
    try:
        import cffi  # noqa: F401
    except Exception:
        return False
    return True


def compiler_available() -> bool:
    """True when native kernels can be built and loaded on this machine."""
    return _have_cffi() and find_compiler() is not None


def cache_dir() -> str:
    """The on-disk artifact cache directory (created on demand)."""
    d = os.environ.get("REPRO_CGEN_CACHE")
    if not d:
        d = os.path.join(os.path.expanduser("~"), ".cache", "repro-cgen")
    os.makedirs(d, exist_ok=True)
    return d


def _cache_key(c_source: str, cc: str) -> str:
    h = hashlib.sha256()
    h.update(c_source.encode())
    h.update("\0".join(CFLAGS).encode())
    h.update(cc.encode())
    h.update(platform.machine().encode())
    # toolchain version: a new compiler may emit different code for the
    # same source, so it must key the artifact
    try:
        ver = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        ).stdout.splitlines()[:1]
        h.update("".join(ver).encode())
    except Exception:
        pass
    return h.hexdigest()[:32]


def _atomic_write(path: str, data: bytes) -> None:
    d = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=d, suffix=f".tmp{os.getpid()}")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def build(c_source: str):
    """Compile ``c_source`` (or reuse a cached artifact) and dlopen it.

    Returns ``(lib, ffi)`` where ``lib.dd_update`` is the native entry
    point.  The cffi call releases the GIL for its whole duration, which is
    what lets the thread scheduler scale across cores.  Raises
    :class:`CodegenError` when no compiler/cffi is available or the build
    fails.
    """
    if not _have_cffi():
        raise CodegenError("native backend unavailable: cffi is not importable")
    cc = find_compiler()
    if cc is None:
        raise CodegenError(
            "native backend unavailable: no C compiler (cc/gcc/clang) on PATH"
        )

    import cffi

    d = cache_dir()
    key = _cache_key(c_source, cc)
    so_path = os.path.join(d, f"{key}.so")
    c_path = os.path.join(d, f"{key}.c")

    if not os.path.exists(so_path):
        _atomic_write(c_path, c_source.encode())
        fd, tmp_so = tempfile.mkstemp(dir=d, suffix=f".so.tmp{os.getpid()}")
        os.close(fd)
        try:
            proc = subprocess.run(
                [cc, *CFLAGS, "-o", tmp_so, c_path, "-lm"],
                capture_output=True,
                text=True,
                timeout=300,
            )
            if proc.returncode != 0:
                raise CodegenError(
                    f"native backend: C compilation failed:\n{proc.stderr.strip()}"
                )
            os.replace(tmp_so, so_path)
        except CodegenError:
            raise
        except Exception as exc:
            raise CodegenError(f"native backend: C compilation failed: {exc}") from exc
        finally:
            try:
                os.unlink(tmp_so)
            except OSError:
                pass

    try:
        ffi = cffi.FFI()
        ffi.cdef(CDEF)
        lib = ffi.dlopen(so_path)
    except Exception as exc:
        raise CodegenError(f"native backend: failed to load {so_path}: {exc}") from exc
    return lib, ffi
